"""Tests for the reporting workload archetype."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR, Window, day_of_week, hour_of_day
from repro.workloads.reporting import ReportingWorkload


class TestReportingWorkload:
    def test_requires_some_reports(self, rng):
        with pytest.raises(ConfigurationError):
            ReportingWorkload(rng, daily_reports=[], weekly_reports=[])

    def test_weekday_validation(self, rng):
        workload = ReportingWorkload.synthesize(rng)
        with pytest.raises(ConfigurationError):
            ReportingWorkload(
                rng,
                daily_reports=workload.daily_reports,
                weekly_reports=[],
                weekly_weekday=8,
            )

    def test_daily_count(self, rng):
        workload = ReportingWorkload.synthesize(rng, n_daily=4, n_weekly=0)
        requests = workload.generate(Window(0, 7 * DAY))
        assert len(requests) == 7 * 4

    def test_weekly_runs_once_per_week(self, rng):
        workload = ReportingWorkload.synthesize(rng, n_daily=0, n_weekly=2, weekly_weekday=2)
        requests = workload.generate(Window(0, 14 * DAY))
        assert len(requests) == 2 * 2  # two Wednesdays
        assert all(day_of_week(r.arrival_time) == 2 for r in requests)

    def test_schedule_hour_respected(self, rng):
        workload = ReportingWorkload.synthesize(rng, n_daily=3, n_weekly=0, daily_at_hour=6.0)
        requests = workload.generate(Window(0, 3 * DAY))
        for r in requests:
            assert 6.0 <= hour_of_day(r.arrival_time) < 6.1

    def test_same_report_same_text_hash_within_day(self, rng):
        workload = ReportingWorkload.synthesize(rng, n_daily=2, n_weekly=0)
        day1 = [r for r in workload.generate(Window(0, DAY))]
        day2 = [r for r in workload.generate(Window(DAY, 2 * DAY))]
        # Different days re-run with different constants (date predicates).
        assert {r.template_hash for r in day1} == {r.template_hash for r in day2}
        assert {r.text_hash for r in day1}.isdisjoint({r.text_hash for r in day2})

    def test_reports_are_latency_tolerant_templates(self, rng):
        workload = ReportingWorkload.synthesize(rng)
        for template in workload.daily_reports + workload.weekly_reports:
            assert template.cold_multiplier <= 1.3
            assert template.scale_exponent >= 0.85

    def test_window_boundaries(self, rng):
        workload = ReportingWorkload.synthesize(rng, n_daily=2, n_weekly=0, daily_at_hour=6.0)
        # A window that excludes the 6am slot yields nothing.
        assert workload.generate(Window(8 * HOUR, 20 * HOUR)) == []
