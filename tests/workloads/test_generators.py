"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, HOUR, Window, day_of_week, hour_of_day
from repro.workloads.adhoc import AdhocWorkload
from repro.workloads.base import (
    CompositeWorkload,
    business_hours_profile,
    make_partition_universe,
    month_end_multiplier,
    poisson_arrivals,
    sample_table_subset,
)
from repro.workloads.bi import BiWorkload
from repro.workloads.etl import EtlWorkload
from repro.workloads.mixed import (
    make_predictable_workload,
    make_static_etl_workload,
    make_unpredictable_workload,
)


class TestArrivalProcesses:
    def test_poisson_rate_roughly_matches(self, rng):
        window = Window(0, 10 * HOUR)
        arrivals = poisson_arrivals(rng, window, lambda t: 30.0)
        assert 200 < len(arrivals) < 400  # 300 expected

    def test_zero_rate_no_arrivals(self, rng):
        assert poisson_arrivals(rng, Window(0, DAY), lambda t: 0.0) == []

    def test_arrivals_inside_window_and_sorted(self, rng):
        window = Window(HOUR, 3 * HOUR)
        arrivals = poisson_arrivals(rng, window, lambda t: 20.0)
        assert all(window.contains(t) for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_thinning_respects_profile(self, rng):
        # Rate 60/hr in the second hour only.
        def rate(t):
            return 60.0 if HOUR <= t < 2 * HOUR else 1.0

        arrivals = poisson_arrivals(rng, Window(0, 3 * HOUR), rate)
        in_peak = sum(1 for t in arrivals if HOUR <= t < 2 * HOUR)
        assert in_peak > 0.7 * len(arrivals)

    def test_business_hours_profile(self):
        monday_10am = 10 * HOUR
        monday_3am = 3 * HOUR
        saturday_noon = 5 * DAY + 12 * HOUR
        assert business_hours_profile(monday_10am, 1.0, 10.0) > 4.0
        assert business_hours_profile(monday_3am, 1.0, 10.0) == 1.0
        assert business_hours_profile(saturday_noon, 1.0, 10.0) == 1.0

    def test_month_end_multiplier(self):
        assert month_end_multiplier(26 * DAY, boost=2.0, days=3) == 2.0
        assert month_end_multiplier(10 * DAY, boost=2.0, days=3) == 1.0
        # Next month's end also boosts.
        assert month_end_multiplier((28 + 27) * DAY, boost=2.0, days=3) == 2.0


class TestPartitionHelpers:
    def test_universe_shape(self):
        universe = make_partition_universe("x", n_tables=3, partitions_per_table=4)
        assert len(universe) == 3
        assert all(len(t) == 4 for t in universe)
        assert len({p for t in universe for p in t}) == 12

    def test_sample_subset_contiguous_within_table(self, rng):
        universe = make_partition_universe("x", 5, 10)
        parts = sample_table_subset(rng, universe, n_tables=2, fraction=0.5)
        assert len(parts) == 10  # 2 tables x 5 partitions
        assert len(set(parts)) == len(parts)


class TestEtlWorkload:
    def test_chained_steps(self, rng):
        workload = EtlWorkload.synthesize(rng, n_pipelines=2, steps_per_pipeline=4, launches_per_day=1)
        requests = workload.generate(Window(0, DAY))
        chains = [r for r in requests if r.chained]
        # 3 chained steps per pipeline launch.
        assert len(chains) == 2 * 3

    def test_chained_arrivals_follow_expected_durations(self, rng):
        workload = EtlWorkload.synthesize(rng, n_pipelines=1, steps_per_pipeline=3, launches_per_day=1)
        requests = sorted(workload.generate(Window(0, DAY)), key=lambda r: r.arrival_time)
        gaps = np.diff([r.arrival_time for r in requests])
        assert (gaps > 0).all()

    def test_recurring_daily(self, rng):
        workload = EtlWorkload.synthesize(rng, n_pipelines=1, steps_per_pipeline=2, launches_per_day=2)
        week = workload.generate(Window(0, 7 * DAY))
        assert len(week) == 7 * 2 * 2

    def test_weekday_restriction(self, rng):
        workload = EtlWorkload.synthesize(rng, n_pipelines=1, steps_per_pipeline=1, launches_per_day=1)
        workload.pipelines[0].weekdays = (0,)  # Mondays only
        week = workload.generate(Window(0, 7 * DAY))
        assert len(week) == 1
        assert day_of_week(week[0].arrival_time) == 0

    def test_evenly_spaced_launches(self, rng):
        workload = EtlWorkload.synthesize(
            rng, n_pipelines=1, steps_per_pipeline=1, launches_per_day=24, evenly_spaced=True
        )
        launches = workload.pipelines[0].launch_times
        gaps = np.diff(launches)
        assert np.allclose(gaps, HOUR)

    def test_empty_pipelines_rejected(self, rng):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            EtlWorkload(rng, [])


class TestBiWorkload:
    def test_panel_submitted_together(self, rng):
        workload = BiWorkload.synthesize(rng, n_dashboards=1, panels_per_dashboard=6)
        requests = workload.generate(Window(0, 7 * DAY))
        assert len(requests) % 6 == pytest.approx(0)

    def test_identical_text_hashes_across_refreshes(self, rng):
        workload = BiWorkload.synthesize(rng, n_dashboards=1, panels_per_dashboard=2)
        requests = workload.generate(Window(0, 7 * DAY))
        hashes = {}
        for r in requests:
            hashes.setdefault(r.template_hash, set()).add(r.text_hash)
        # Every panel query re-issues the same SQL text each refresh.
        assert all(len(texts) == 1 for texts in hashes.values())

    def test_business_hours_concentration(self, rng):
        workload = BiWorkload.synthesize(rng, n_dashboards=3)
        requests = workload.generate(Window(0, 7 * DAY))
        in_hours = sum(
            1
            for r in requests
            if day_of_week(r.arrival_time) < 5 and 8 <= hour_of_day(r.arrival_time) < 18
        )
        assert in_hours > 0.7 * len(requests)

    def test_cache_sensitive_templates(self, rng):
        workload = BiWorkload.synthesize(rng, n_dashboards=2)
        for dashboard in workload.dashboards:
            for tpl in dashboard.panel:
                assert tpl.cold_multiplier >= 2.0


class TestAdhocWorkload:
    def test_generation_deterministic_per_seed(self):
        def build(seed):
            wl = AdhocWorkload.synthesize(np.random.default_rng(seed))
            return wl.generate(Window(0, 3 * DAY))

        a = build(5)
        b = build(5)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        assert len(build(6)) != len(a) or build(6)[0].arrival_time != a[0].arrival_time

    def test_spike_days_stable_across_windows(self, rng):
        workload = AdhocWorkload.synthesize(rng, spike_probability_per_day=0.5)
        d1 = workload._spike_days(Window(0, 10 * DAY))
        d2 = workload._spike_days(Window(5 * DAY, 10 * DAY))
        assert {d for d in d1 if d >= 5} == d2

    def test_unique_text_hashes(self, rng):
        workload = AdhocWorkload.synthesize(rng, peak_rate_per_hour=10.0)
        requests = workload.generate(Window(0, 2 * DAY))
        texts = [r.text_hash for r in requests]
        assert len(set(texts)) == len(texts)

    def test_template_skew(self, rng):
        workload = AdhocWorkload.synthesize(rng, n_templates=20, peak_rate_per_hour=40.0)
        requests = workload.generate(Window(0, 5 * DAY))
        counts = {}
        for r in requests:
            counts[r.template_hash] = counts.get(r.template_hash, 0) + 1
        top = max(counts.values())
        assert top > 2 * (len(requests) / 20)  # heavily skewed


class TestCompositeAndPresets:
    def test_composite_merges_sorted(self, rng):
        def parts():
            return [
                EtlWorkload.synthesize(
                    np.random.default_rng(1), n_pipelines=1, steps_per_pipeline=2
                ),
                BiWorkload.synthesize(np.random.default_rng(2), n_dashboards=1),
            ]

        merged = CompositeWorkload(parts()).generate(Window(0, 2 * DAY))
        times = [r.arrival_time for r in merged]
        assert times == sorted(times)
        # Fresh generators (same seeds): the union has every part's requests.
        a, b = parts()
        expected = len(a.generate(Window(0, 2 * DAY))) + len(b.generate(Window(0, 2 * DAY)))
        assert len(merged) == expected

    def test_empty_composite_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CompositeWorkload([])

    @pytest.mark.parametrize(
        "factory",
        [make_predictable_workload, make_unpredictable_workload, make_static_etl_workload],
    )
    def test_presets_generate_nonempty(self, factory):
        workload = factory(RngRegistry(3))
        requests = workload.generate(Window(0, 2 * DAY))
        assert len(requests) > 50
        assert all(0 <= r.arrival_time < 2 * DAY for r in requests)
