"""Framing and atomic-write primitives: the bytes the recovery contract rests on."""

import numpy as np
import pytest

from repro.common.errors import RecoveryError
from repro.durability.io import (
    append_journal_entry,
    atomic_savez,
    atomic_write_bytes,
    atomic_write_text,
    frame_entry,
    read_journal,
)


class TestAtomicWrites:
    def test_write_text_roundtrip(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_text(path, '{"x": 1}\n')
        assert path.read_text() == '{"x": 1}\n'

    def test_write_replaces_existing(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_tmp_file_left_behind(self, tmp_path):
        atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["b.bin"]

    def test_savez_roundtrip(self, tmp_path):
        arrays = [np.arange(6).reshape(2, 3), np.ones(4)]
        path = tmp_path / "w.npz"
        atomic_savez(path, *arrays)
        with np.load(path) as archive:
            assert np.array_equal(archive["arr_0"], arrays[0])
            assert np.array_equal(archive["arr_1"], arrays[1])
        assert sorted(p.name for p in tmp_path.iterdir()) == ["w.npz"]


class TestFraming:
    def test_frame_is_deterministic(self):
        assert frame_entry({"seq": 1, "b": 2}) == frame_entry({"b": 2, "seq": 1})

    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        entries = [{"seq": i, "payload": f"e{i}"} for i in range(5)]
        for entry in entries:
            append_journal_entry(path, entry)
        scan = read_journal(path, start_seq=0)
        assert scan.entries == entries
        assert scan.torn_tail is None
        assert scan.good_bytes == path.stat().st_size

    def test_missing_file_is_empty_scan(self, tmp_path):
        scan = read_journal(tmp_path / "absent.jsonl", start_seq=None)
        assert scan.entries == []

    def test_start_seq_none_accepts_first_entry(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        append_journal_entry(path, {"seq": 7})
        append_journal_entry(path, {"seq": 8})
        assert [e["seq"] for e in read_journal(path, start_seq=None).entries] == [7, 8]


class TestTornTail:
    def _journal(self, tmp_path, n=3):
        path = tmp_path / "journal.jsonl"
        for i in range(n):
            append_journal_entry(path, {"seq": i})
        return path

    def test_torn_tail_strict_raises(self, tmp_path):
        path = self._journal(tmp_path)
        good = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(frame_entry({"seq": 3})[:-4])
        with pytest.raises(RecoveryError, match="torn journal tail"):
            read_journal(path, start_seq=0)
        assert path.stat().st_size > good  # strict mode never mutates

    def test_torn_tail_repair_truncates(self, tmp_path):
        path = self._journal(tmp_path)
        good = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(frame_entry({"seq": 3})[:-4])
        scan = read_journal(path, start_seq=0, repair=True)
        assert [e["seq"] for e in scan.entries] == [0, 1, 2]
        assert scan.torn_tail is not None
        assert path.stat().st_size == good  # file truncated back to good bytes
        # After repair the journal reads clean.
        assert read_journal(path, start_seq=0).torn_tail is None

    def test_mid_journal_corruption_fatal_even_with_repair(self, tmp_path):
        path = self._journal(tmp_path)
        raw = bytearray(path.read_bytes())
        # Flip a byte inside the FIRST framed body, not the tail.
        raw[len(raw) // 6] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(RecoveryError, match="mid-journal corruption"):
            read_journal(path, start_seq=0, repair=True)

    def test_crc_mismatch_detected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        line = bytearray(frame_entry({"seq": 0, "v": "abcd"}))
        line[-3] ^= 0x01  # corrupt the body, keep length and newline
        path.write_bytes(bytes(line))
        with pytest.raises(RecoveryError):
            read_journal(path, start_seq=0)

    def test_seq_gap_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        append_journal_entry(path, {"seq": 0})
        append_journal_entry(path, {"seq": 2})
        with pytest.raises(RecoveryError, match="gap or replay"):
            read_journal(path, start_seq=0)

    def test_wrong_start_seq_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        append_journal_entry(path, {"seq": 5})
        with pytest.raises(RecoveryError):
            read_journal(path, start_seq=0)
