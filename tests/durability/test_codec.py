"""Codec roundtrips: every primitive the state dicts are built from."""

import numpy as np
import pytest

from repro.common.errors import RecoveryError
from repro.common.simtime import Window
from repro.durability.codec import (
    StateCodec,
    decode_array,
    decode_config,
    decode_window,
    encode_array,
    encode_config,
    encode_window,
    require_keys,
    state_checksum,
)
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import ScalingPolicy, WarehouseSize


class TestArrayCodec:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(12, dtype=np.float64).reshape(3, 4),
            np.array([], dtype=np.float32),
            np.array([[True, False]]),
            np.arange(5, dtype=np.int64),
        ],
    )
    def test_roundtrip_exact(self, arr):
        out = decode_array(encode_array(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_noncontiguous_input(self):
        arr = np.arange(12).reshape(3, 4)[:, ::2]
        assert np.array_equal(decode_array(encode_array(arr)), arr)

    def test_encoding_is_json_safe_and_stable(self):
        arr = np.linspace(0, 1, 7)
        assert encode_array(arr) == encode_array(arr.copy())

    def test_decoded_array_is_writable(self):
        out = decode_array(encode_array(np.ones(3)))
        out[0] = 2.0  # would raise on a frombuffer view


class TestConfigAndWindowCodec:
    def test_config_roundtrip(self):
        config = WarehouseConfig(
            size=WarehouseSize.L,
            auto_suspend_seconds=300.0,
            min_clusters=1,
            max_clusters=4,
            scaling_policy=ScalingPolicy.ECONOMY,
            max_concurrency=12,
        )
        assert decode_config(encode_config(config)) == config

    def test_window_roundtrip(self):
        window = Window(10.0, 3600.0)
        out = decode_window(encode_window(window))
        assert (out.start, out.end) == (window.start, window.end)


class TestChecksumAndKeys:
    def test_checksum_order_insensitive(self):
        assert state_checksum({"a": 1, "b": [2]}) == state_checksum({"b": [2], "a": 1})

    def test_checksum_value_sensitive(self):
        assert state_checksum({"a": 1}) != state_checksum({"a": 2})

    def test_require_keys_passes(self):
        require_keys({"a": 1, "b": 2}, ("a", "b"), "owner")

    def test_require_keys_typed_error(self):
        with pytest.raises(RecoveryError, match="ledger state missing keys: b, c"):
            require_keys({"a": 1}, ("a", "b", "c"), "ledger")


class TestStateCodecProtocol:
    def test_core_components_implement_protocol(self):
        from repro.core.ledger import SavingsLedger
        from repro.learning.buffer import ReplayBuffer
        from repro.learning.network import MLP

        assert isinstance(SavingsLedger(warehouse="WH"), StateCodec)
        assert isinstance(ReplayBuffer(capacity=8), StateCodec)
        assert isinstance(MLP(4, 3, (8,), np.random.default_rng(0)), StateCodec)
