"""The corrupted-artifact corpus: every damage pattern is a typed refusal.

Each test builds a healthy checkpoint directory, applies one corruption,
and asserts the store raises :class:`RecoveryError` (or repairs, in the
one case — a torn tail under ``repair=True`` — the contract allows).
There is no damage pattern that loads silently.
"""

import json

import pytest

from repro.common.errors import RecoveryError
from repro.durability.checkpoint import SCHEMA, CheckpointStore


def healthy_store(tmp_path, deltas: int = 3) -> CheckpointStore:
    store = CheckpointStore(tmp_path / "ckpt")
    store.initialize(account="acme", config_hash="cfg-1", cadence_seconds=3600.0)
    store.write_snapshot(seq=0, time=0.0, state={"optimizers": {"WH": {"x": 1}}})
    for i in range(1, deltas + 1):
        store.append({"seq": i, "kind": "delta", "time": float(i)})
    return store


class TestHealthyLoad:
    def test_load_returns_snapshot_and_entries(self, tmp_path):
        store = healthy_store(tmp_path)
        load = store.load(expected_config_hash="cfg-1")
        assert load.snapshot["seq"] == 0
        assert [e["seq"] for e in load.entries] == [1, 2, 3]
        assert load.repairs == []
        assert load.state == {"optimizers": {"WH": {"x": 1}}}

    def test_verify_ok(self, tmp_path):
        report = healthy_store(tmp_path).verify()
        assert report["ok"] is True
        assert report["snapshot_seq"] == 0
        assert report["journal_entries"] == 3
        assert report["errors"] == []

    def test_compaction_lagging_basis_is_benign(self, tmp_path):
        """Snapshot published, crash before the journal reset: entries the
        new snapshot already covers are discarded on load."""
        store = healthy_store(tmp_path)
        old_journal = store.journal_path.read_bytes()
        # Compaction writes the snapshot first...
        store.write_snapshot(seq=3, time=3.0, state={"optimizers": {"WH": {"x": 9}}})
        # ...and crashes before resetting the journal: put the old
        # basis(0) + deltas 1..3 back.
        store.journal_path.write_bytes(old_journal)
        load = store.load(expected_config_hash="cfg-1")
        assert load.snapshot["seq"] == 3
        assert load.entries == []  # deltas 1..3 overlapped; discarded


class TestManifestCorruption:
    def test_missing_manifest(self, tmp_path):
        store = healthy_store(tmp_path)
        store.manifest_path.unlink()
        with pytest.raises(RecoveryError, match="missing MANIFEST.json"):
            store.load()

    def test_manifest_not_json(self, tmp_path):
        store = healthy_store(tmp_path)
        store.manifest_path.write_text("{not json")
        with pytest.raises(RecoveryError, match="not valid JSON"):
            store.load()

    def test_manifest_wrong_schema(self, tmp_path):
        store = healthy_store(tmp_path)
        manifest = json.loads(store.manifest_path.read_text())
        manifest["schema"] = "something/else"
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(RecoveryError, match="schema"):
            store.load()

    def test_config_hash_mismatch(self, tmp_path):
        store = healthy_store(tmp_path)
        with pytest.raises(RecoveryError, match="config_hash"):
            store.load(expected_config_hash="other-deployment")


class TestSnapshotCorruption:
    def test_missing_snapshot(self, tmp_path):
        store = healthy_store(tmp_path)
        store.snapshot_path.unlink()
        with pytest.raises(RecoveryError, match="missing snapshot.json"):
            store.load()

    def test_empty_snapshot(self, tmp_path):
        store = healthy_store(tmp_path)
        store.snapshot_path.write_text("")
        with pytest.raises(RecoveryError, match="empty"):
            store.load()

    def test_snapshot_not_json(self, tmp_path):
        store = healthy_store(tmp_path)
        store.snapshot_path.write_text('{"schema": ')
        with pytest.raises(RecoveryError, match="not valid JSON"):
            store.load()

    def test_snapshot_state_bit_flip(self, tmp_path):
        """Edited state no longer matches the wrapper checksum."""
        store = healthy_store(tmp_path)
        wrapper = json.loads(store.snapshot_path.read_text())
        wrapper["state"]["optimizers"]["WH"]["x"] = 2
        store.snapshot_path.write_text(json.dumps(wrapper))
        with pytest.raises(RecoveryError, match="checksum mismatch"):
            store.load()

    def test_snapshot_missing_key(self, tmp_path):
        store = healthy_store(tmp_path)
        wrapper = json.loads(store.snapshot_path.read_text())
        del wrapper["checksum"]
        store.snapshot_path.write_text(json.dumps(wrapper))
        with pytest.raises(RecoveryError, match="missing 'checksum'"):
            store.load()


class TestJournalCorruption:
    def test_empty_journal(self, tmp_path):
        store = healthy_store(tmp_path)
        store.journal_path.write_bytes(b"")
        with pytest.raises(RecoveryError, match="no basis entry"):
            store.load()

    def test_first_entry_not_basis(self, tmp_path):
        store = healthy_store(tmp_path)
        store.journal_path.unlink()
        store.append({"seq": 0, "kind": "delta"})
        with pytest.raises(RecoveryError, match="basis"):
            store.load()

    def test_torn_tail_strict_refuses(self, tmp_path):
        store = healthy_store(tmp_path)
        store.inject_torn_write()
        with pytest.raises(RecoveryError, match="torn journal tail"):
            store.load(repair=False)

    def test_torn_tail_repair_recovers_and_records(self, tmp_path):
        store = healthy_store(tmp_path)
        store.inject_torn_write()
        load = store.load(repair=True)
        assert [e["seq"] for e in load.entries] == [1, 2, 3]
        assert len(load.repairs) == 1
        assert "torn journal tail" in load.repairs[0]

    def test_truncated_journal_refuses_even_with_repair_if_mid(self, tmp_path):
        """Dropping tail bytes tears the last line; strict mode refuses."""
        store = healthy_store(tmp_path)
        store.inject_truncated_journal()
        with pytest.raises(RecoveryError, match="torn journal tail"):
            store.load(repair=False)

    def test_stale_snapshot_always_fatal(self, tmp_path):
        store = healthy_store(tmp_path)
        store.inject_stale_snapshot()
        with pytest.raises(RecoveryError, match="stale snapshot"):
            store.load(repair=True)

    def test_basis_checksum_mismatch(self, tmp_path):
        store = healthy_store(tmp_path)
        store.journal_path.unlink()
        store.append({"seq": 0, "kind": "basis", "checksum": "deadbeef"})
        with pytest.raises(RecoveryError, match="basis checksum"):
            store.load()

    def test_seq_gap_after_snapshot(self, tmp_path):
        store = healthy_store(tmp_path)
        store.append({"seq": 5, "kind": "delta"})  # gap: expected 4
        with pytest.raises(RecoveryError):
            store.load()

    def test_verify_reports_corruption_without_raising(self, tmp_path):
        store = healthy_store(tmp_path)
        store.inject_truncated_journal()
        report = store.verify()
        assert report["ok"] is False
        assert report["errors"]
        assert "torn journal tail" in report["errors"][0]


class TestSchemaConstant:
    def test_artifacts_carry_schema(self, tmp_path):
        store = healthy_store(tmp_path)
        assert json.loads(store.manifest_path.read_text())["schema"] == SCHEMA
        assert json.loads(store.snapshot_path.read_text())["schema"] == SCHEMA
