"""Service-level restore semantics: all-or-nothing, config-guarded, exact.

The byte-identity of a full recovered *run* is property-tested in
``tests/props/test_durability_props.py``; these tests pin the restore
contract itself on a live service mid-scenario.
"""

import pytest

from repro.common.errors import ConfigurationError, RecoveryError
from repro.core.optimizer import KeeboService
from repro.durability.checkpoint import CheckpointStore
from repro.experiments.scenarios import smoke_scenario

CADENCE = 3600.0


def checkpointed_service(directory, live_ledger=False):
    """Run the smoke scenario a few checkpoint boundaries past onboarding."""
    scenario = smoke_scenario()
    if live_ledger:
        scenario.optimizer_config.live_ledger = True
    manifest = scenario.manifest()
    scenario.schedule()
    account = scenario.account
    account.run_until(scenario.keebo_start)
    service = KeeboService(account)
    service.onboard_warehouse(
        scenario.warehouse,
        slider=scenario.slider,
        constraints=scenario.constraints,
        config=scenario.optimizer_config,
    )
    service.enable_checkpoints(directory, CADENCE, config_hash=manifest.config_hash)
    account.run_until(scenario.keebo_start + 4 * CADENCE + 300.0)
    return scenario, manifest, service


class TestRestoreRoundtrip:
    def test_state_identical_after_crash_restore(self, tmp_path):
        scenario, manifest, service = checkpointed_service(tmp_path / "ckpt")
        service.checkpoint()  # capture the exact moment we crash at
        before = service._capture_state()
        service.crash()
        assert service.optimizers == {}
        service.restore(
            tmp_path / "ckpt",
            slider=scenario.slider,
            constraints=scenario.constraints,
            optimizer_config=scenario.optimizer_config,
            config_hash=manifest.config_hash,
        )
        assert service._capture_state() == before

    def test_live_ledger_survives_crash_restore_byte_identically(self, tmp_path):
        """The streaming ledger's state re-feeds from telemetry on restore
        and must round-trip byte-identically (checksum-verified), with the
        open period's projection answering exactly as before the crash."""
        scenario, manifest, service = checkpointed_service(
            tmp_path / "ckpt", live_ledger=True
        )
        optimizer = service.optimizer(scenario.warehouse)
        assert optimizer.live_ledger is not None
        original = optimizer.action_space.original
        projected_before = optimizer.live_ledger.projection(original).credits
        service.checkpoint()
        before = service._capture_state()
        assert before["optimizers"][scenario.warehouse]["live_ledger"] is not None
        service.crash()
        service.restore(
            tmp_path / "ckpt",
            slider=scenario.slider,
            constraints=scenario.constraints,
            optimizer_config=scenario.optimizer_config,
            config_hash=manifest.config_hash,
        )
        assert service._capture_state() == before
        restored = service.optimizer(scenario.warehouse).live_ledger
        assert restored.projection(original).credits == projected_before

    def test_restore_refuses_live_service(self, tmp_path):
        _, _, service = checkpointed_service(tmp_path / "ckpt")
        with pytest.raises(ConfigurationError, match="live service"):
            service.restore(tmp_path / "ckpt")

    def test_config_hash_mismatch_refused(self, tmp_path):
        scenario, _, service = checkpointed_service(tmp_path / "ckpt")
        service.crash()
        with pytest.raises(RecoveryError, match="config_hash"):
            service.restore(
                tmp_path / "ckpt",
                slider=scenario.slider,
                optimizer_config=scenario.optimizer_config,
                config_hash="a-different-deployment",
            )


class TestAllOrNothing:
    def test_corrupt_journal_leaves_service_empty(self, tmp_path):
        scenario, manifest, service = checkpointed_service(tmp_path / "ckpt")
        service.crash()
        store = CheckpointStore(tmp_path / "ckpt")
        store.inject_truncated_journal()
        with pytest.raises(RecoveryError):
            service.restore(
                tmp_path / "ckpt",
                slider=scenario.slider,
                optimizer_config=scenario.optimizer_config,
                config_hash=manifest.config_hash,
            )
        assert service.optimizers == {}
        assert not service.checkpoints_enabled

    def test_torn_tail_needs_explicit_repair(self, tmp_path):
        scenario, manifest, service = checkpointed_service(tmp_path / "ckpt")
        service.crash()
        CheckpointStore(tmp_path / "ckpt").inject_torn_write()
        kwargs = dict(
            slider=scenario.slider,
            optimizer_config=scenario.optimizer_config,
            config_hash=manifest.config_hash,
        )
        with pytest.raises(RecoveryError, match="torn journal tail"):
            service.restore(tmp_path / "ckpt", **kwargs)
        assert service.optimizers == {}
        load = service.restore(tmp_path / "ckpt", repair=True, **kwargs)
        assert len(load.repairs) == 1
        assert scenario.warehouse in service.optimizers

    def test_stale_snapshot_always_refused(self, tmp_path):
        scenario, manifest, service = checkpointed_service(tmp_path / "ckpt")
        service.crash()
        CheckpointStore(tmp_path / "ckpt").inject_stale_snapshot()
        with pytest.raises(RecoveryError, match="stale snapshot"):
            service.restore(
                tmp_path / "ckpt",
                slider=scenario.slider,
                optimizer_config=scenario.optimizer_config,
                config_hash=manifest.config_hash,
                repair=True,
            )
        assert service.optimizers == {}
