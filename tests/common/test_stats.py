"""Tests for statistics helpers."""

import math

import pytest

from repro.common.stats import StreamingStats, ewma, percentile, summarize


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0

    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_p99_close_to_max(self):
        values = list(range(1000))
        assert percentile(values, 99) == pytest.approx(989.01)


class TestEwma:
    def test_empty_is_zero(self):
        assert ewma([], 0.5) == 0.0

    def test_single_value_is_itself(self):
        assert ewma([42.0], 0.3) == 42.0

    def test_alpha_one_returns_last(self):
        assert ewma([1.0, 2.0, 3.0], 1.0) == 3.0

    def test_weighting(self):
        # out = 0.5*2 + 0.5*(0.5*1 + 0.5*... ) for [1, 2] with alpha .5
        assert ewma([1.0, 2.0], 0.5) == pytest.approx(1.5)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ewma([1.0], 0.0)
        with pytest.raises(ValueError):
            ewma([1.0], 1.5)


class TestStreamingStats:
    def test_mean_and_variance(self):
        stats = StreamingStats()
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            stats.add(v)
        assert stats.mean == pytest.approx(5.0)
        assert stats.std == pytest.approx(math.sqrt(32 / 8), rel=0.1)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_zscore_zero_for_constant_stream(self):
        stats = StreamingStats()
        for _ in range(10):
            stats.add(3.0)
        assert stats.zscore(100.0) == 0.0

    def test_zscore_detects_outlier(self):
        stats = StreamingStats()
        for v in range(20):
            stats.add(float(v % 3))
        assert stats.zscore(50.0) > 3.0

    def test_zscore_needs_two_samples(self):
        stats = StreamingStats()
        stats.add(1.0)
        assert stats.zscore(99.0) == 0.0


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s["count"] == 0
        assert s["p99"] == 0.0

    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["p50"] == pytest.approx(2.0)
        assert s["max"] == 3.0
