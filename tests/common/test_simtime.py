"""Tests for simulation time helpers."""

import pytest

from repro.common.simtime import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    Window,
    day_index,
    day_of_week,
    format_time,
    hour_index,
    hour_of_day,
    minute_of_day,
)


class TestTimeHelpers:
    def test_constants(self):
        assert MINUTE == 60
        assert HOUR == 3600
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY

    def test_epoch_is_monday_midnight(self):
        assert day_of_week(0.0) == 0
        assert hour_of_day(0.0) == 0.0

    def test_hour_of_day_fractional(self):
        assert hour_of_day(90 * MINUTE) == pytest.approx(1.5)

    def test_minute_of_day(self):
        assert minute_of_day(2 * HOUR) == pytest.approx(120.0)

    def test_day_of_week_wraps(self):
        assert day_of_week(6 * DAY) == 6  # Sunday
        assert day_of_week(7 * DAY) == 0  # Monday again

    def test_day_and_hour_index(self):
        assert day_index(3 * DAY + HOUR) == 3
        assert hour_index(3 * DAY + HOUR) == 73

    def test_format_time(self):
        text = format_time(3 * DAY + 14 * HOUR + 5 * MINUTE + 9)
        assert text == "day 3 (Thu) 14:05:09"


class TestWindow:
    def test_duration(self):
        assert Window(10, 30).duration == 20

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Window(5, 4)

    def test_contains_half_open(self):
        w = Window(10, 20)
        assert w.contains(10)
        assert w.contains(19.999)
        assert not w.contains(20)
        assert not w.contains(9.999)

    def test_overlap(self):
        assert Window(0, 10).overlap(Window(5, 20)) == 5
        assert Window(0, 10).overlap(Window(10, 20)) == 0
        assert Window(0, 10).overlap(Window(-5, 3)) == 3

    def test_clamp(self):
        w = Window(10, 20)
        assert w.clamp(5) == 10
        assert w.clamp(25) == 20
        assert w.clamp(15) == 15

    def test_split_hours_aligned(self):
        pieces = Window(0, 2 * HOUR).split_hours()
        assert len(pieces) == 2
        assert pieces[0] == Window(0, HOUR)
        assert pieces[1] == Window(HOUR, 2 * HOUR)

    def test_split_hours_unaligned(self):
        pieces = Window(HOUR / 2, 2.25 * HOUR).split_hours()
        assert [p.duration for p in pieces] == [HOUR / 2, HOUR, HOUR / 4]
        assert sum(p.duration for p in pieces) == pytest.approx(1.75 * HOUR)

    def test_split_hours_within_one_hour(self):
        pieces = Window(100, 200).split_hours()
        assert pieces == [Window(100, 200)]
