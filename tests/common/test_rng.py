"""Tests for the named random stream registry."""

import numpy as np
import pytest

from repro.common.rng import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream_values(self):
        a = RngRegistry(seed=7).stream("x").random(5)
        b = RngRegistry(seed=7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_are_independent(self):
        registry = RngRegistry(seed=7)
        a = registry.stream("a").random(5)
        b = registry.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random(5)
        b = RngRegistry(seed=2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        registry = RngRegistry(seed=0)
        assert registry.stream("x") is registry.stream("x")

    def test_creation_order_does_not_matter(self):
        r1 = RngRegistry(seed=3)
        r1.stream("a")  # consume nothing, just create
        v1 = r1.stream("b").random()
        r2 = RngRegistry(seed=3)
        v2 = r2.stream("b").random()
        assert v1 == v2

    def test_fork_derives_new_registry(self):
        root = RngRegistry(seed=5)
        child = root.fork("customer1")
        assert isinstance(child, RngRegistry)
        assert child.seed != root.seed
        # Forks are deterministic.
        assert RngRegistry(seed=5).fork("customer1").seed == child.seed

    def test_forks_with_different_names_differ(self):
        root = RngRegistry(seed=5)
        assert root.fork("a").seed != root.fork("b").seed

    def test_spawn_seed_deterministic(self):
        assert RngRegistry(9).spawn_seed("env") == RngRegistry(9).spawn_seed("env")
        assert RngRegistry(9).spawn_seed("env") != RngRegistry(9).spawn_seed("env2")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="abc")

    def test_repr_lists_streams(self):
        registry = RngRegistry(seed=0)
        registry.stream("zeta")
        assert "zeta" in repr(registry)
