"""Tests for the named random stream registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import RngRegistry, fallback_rng


class TestRngRegistry:
    def test_same_seed_same_stream_values(self):
        a = RngRegistry(seed=7).stream("x").random(5)
        b = RngRegistry(seed=7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_are_independent(self):
        registry = RngRegistry(seed=7)
        a = registry.stream("a").random(5)
        b = registry.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random(5)
        b = RngRegistry(seed=2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        registry = RngRegistry(seed=0)
        assert registry.stream("x") is registry.stream("x")

    def test_creation_order_does_not_matter(self):
        r1 = RngRegistry(seed=3)
        r1.stream("a")  # consume nothing, just create
        v1 = r1.stream("b").random()
        r2 = RngRegistry(seed=3)
        v2 = r2.stream("b").random()
        assert v1 == v2

    def test_fork_derives_new_registry(self):
        root = RngRegistry(seed=5)
        child = root.fork("customer1")
        assert isinstance(child, RngRegistry)
        assert child.seed != root.seed
        # Forks are deterministic.
        assert RngRegistry(seed=5).fork("customer1").seed == child.seed

    def test_forks_with_different_names_differ(self):
        root = RngRegistry(seed=5)
        assert root.fork("a").seed != root.fork("b").seed

    def test_spawn_seed_deterministic(self):
        assert RngRegistry(9).spawn_seed("env") == RngRegistry(9).spawn_seed("env")
        assert RngRegistry(9).spawn_seed("env") != RngRegistry(9).spawn_seed("env2")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="abc")

    def test_repr_lists_streams(self):
        registry = RngRegistry(seed=0)
        registry.stream("zeta")
        assert "zeta" in repr(registry)


class TestCreationOrderIndependence:
    """Property: stream values are a pure function of (seed, name).

    This is the guarantee the whole library leans on (lint rule R002/R003
    exist to protect it): touching streams in a different order — e.g. a
    refactor that constructs components earlier — must not perturb any
    stream's draws.
    """

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        names=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1,
                max_size=12,
            ),
            min_size=2,
            max_size=6,
            unique=True,
        ),
        data=st.data(),
    )
    def test_two_orders_yield_identical_streams(self, seed, names, data):
        shuffled = data.draw(st.permutations(names))
        a = RngRegistry(seed=seed)
        b = RngRegistry(seed=seed)
        draws_a = {name: a.stream(name).random(4) for name in names}
        draws_b = {name: b.stream(name).random(4) for name in shuffled}
        for name in names:
            assert np.array_equal(draws_a[name], draws_b[name]), name

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_interleaved_creation_matches_isolated(self, seed):
        # Creating (and drawing from) other streams in between must not
        # advance or reseed an existing stream.
        lone = RngRegistry(seed=seed)
        expected = lone.stream("target").random(8)
        busy = RngRegistry(seed=seed)
        first = busy.stream("target").random(4)
        busy.stream("noise.a").random(16)
        busy.fork("customer").stream("target").random(3)
        second = busy.stream("target").random(4)
        assert np.array_equal(np.concatenate([first, second]), expected)


class TestFallbackRng:
    def test_bit_identical_to_default_rng(self):
        # fallback_rng exists so components need not call default_rng
        # directly (lint R002); it must not change a single draw.
        assert np.array_equal(fallback_rng(7).random(16), np.random.default_rng(7).random(16))

    def test_fresh_generator_each_call(self):
        assert fallback_rng() is not fallback_rng()
        assert fallback_rng().random() == fallback_rng().random()
