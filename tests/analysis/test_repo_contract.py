"""The CI acceptance gate: the repo's own source is analysis-clean, and the
specific debts this PR paid down stay paid (remove a fix and the matching
rule fires again — see tests/analysis fixtures for the per-rule proofs)."""

import pathlib

from repro.analysis.engine import analyze_paths
from repro.analysis.project import Project

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def render(result):
    lines = [f.render() for f in result.findings]
    return "\n".join(lines + list(result.stale) + list(result.errors))


class TestSelfClean:
    def test_src_is_analysis_clean(self):
        result = analyze_paths([REPO_ROOT / "src"])
        assert result.clean, f"new analysis violations under src/:\n{render(result)}"
        # Guard against a vacuous pass from a discovery regression.
        assert result.modules >= 100

    def test_shipped_baseline_is_empty(self):
        # The committed baseline must never accumulate blessed debt: fix
        # findings, don't bless them (docs/ANALYSIS.md).
        import json

        payload = json.loads(
            (REPO_ROOT / "analysis-baseline.json").read_text(encoding="utf-8")
        )
        assert payload["entries"] == []


class TestActionsLayeringFix:
    """PR regression: the action vocabulary moved core -> learning to break
    the learning/core import cycle (R012)."""

    def test_learning_has_no_import_time_core_edge(self):
        project = Project.load([REPO_ROOT / "src" / "repro" / "learning"])
        offenders = [
            (info.name, edge.target, edge.line)
            for info in project.sorted_modules()
            for edge in info.edges
            if edge.target.startswith("repro.core")
            and not edge.lazy
            and not edge.typing_only
        ]
        assert not offenders, offenders

    def test_core_actions_shim_reexports_the_same_objects(self):
        import repro.core.actions as shim
        import repro.learning.actions as real

        assert shim.Action is real.Action
        assert shim.ActionSpace is real.ActionSpace
        assert shim.KEEP_SUSPEND == real.KEEP_SUSPEND
