"""Project model: module naming, import classification, resolution."""

from repro.analysis.project import Project, module_name_for


def edges_of(project, name):
    return project.modules[name].edges


class TestModuleNaming:
    def test_climbs_init_parents(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "sub").mkdir()
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "mod.py").write_text("x = 1\n")
        assert module_name_for(tmp_path / "pkg" / "sub" / "mod.py") == "pkg.sub.mod"
        assert module_name_for(tmp_path / "pkg" / "sub" / "__init__.py") == "pkg.sub"

    def test_bare_script_is_its_stem(self, tmp_path):
        (tmp_path / "tool.py").write_text("x = 1\n")
        assert module_name_for(tmp_path / "tool.py") == "tool"


class TestImportClassification:
    def test_top_level_import_is_solid(self):
        project = Project.from_sources({"pkg.a": "import pkg.b\n", "pkg.b": ""})
        (edge,) = edges_of(project, "pkg.a")
        assert (edge.target, edge.lazy, edge.typing_only) == ("pkg.b", False, False)
        assert (edge.line, edge.col) == (1, 0)

    def test_function_scoped_import_is_lazy(self):
        project = Project.from_sources(
            {
                "pkg.a": "def f():\n    from pkg.b import helper\n    return helper\n",
                "pkg.b": "def helper():\n    return 1\n",
            }
        )
        (edge,) = edges_of(project, "pkg.a")
        assert edge.lazy and not edge.typing_only
        assert edge.target == "pkg.b"

    def test_type_checking_import_is_typing_only(self):
        project = Project.from_sources(
            {
                "pkg.a": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from pkg.b import helper\n"
                ),
                "pkg.b": "helper = 1\n",
            }
        )
        edges = [e for e in edges_of(project, "pkg.a") if e.target == "pkg.b"]
        assert edges and edges[0].typing_only

    def test_class_body_import_stays_solid(self):
        project = Project.from_sources(
            {"pkg.a": "class C:\n    import pkg.b\n", "pkg.b": ""}
        )
        (edge,) = edges_of(project, "pkg.a")
        assert not edge.lazy

    def test_from_import_attribute_trims_to_known_module(self):
        # ``from pkg.b import helper``: helper is an attribute, not a module;
        # the edge must resolve to pkg.b.
        project = Project.from_sources(
            {"pkg.a": "from pkg.b import helper\n", "pkg.b": "helper = 1\n"}
        )
        (edge,) = edges_of(project, "pkg.a")
        assert edge.target == "pkg.b"

    def test_relative_import_from_module(self):
        # pkg/sub/mod.py doing ``from ..other import x`` -> pkg.other.
        project = Project.from_sources(
            {"pkg.sub.mod": "from ..other import x\n", "pkg.other": "x = 1\n"}
        )
        (edge,) = edges_of(project, "pkg.sub.mod")
        assert edge.target == "pkg.other"

    def test_relative_import_from_package_init(self, tmp_path):
        # A package *is* its own containing package: ``from .core import x``
        # in pkg/__init__.py resolves to pkg.core, not core.
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__init__.py").write_text("from .core import thing\n")
        (tmp_path / "pkg" / "core.py").write_text("thing = 1\n")
        project = Project.load([tmp_path / "pkg"])
        (edge,) = edges_of(project, "pkg")
        assert edge.target == "pkg.core"


class TestErrors:
    def test_syntax_error_is_recorded_not_raised(self):
        project = Project.from_sources({"bad": "def f(:\n", "good": "x = 1\n"})
        assert len(project.errors) == 1 and "bad.py" in project.errors[0]
        assert "good" in project.modules and "bad" not in project.modules

    def test_nonexistent_path_is_recorded(self, tmp_path):
        project = Project.load([tmp_path / "nope"])
        assert project.errors and "no such file" in project.errors[0]


class TestClassHierarchy:
    def test_bases_resolve_through_imports(self):
        project = Project.from_sources(
            {
                "pkg.errors": "class Root(Exception):\n    pass\n",
                "pkg.mod": (
                    "from pkg.errors import Root\n"
                    "class Leaf(Root):\n"
                    "    pass\n"
                ),
            }
        )
        leaf = project.classes["pkg.mod.Leaf"]
        assert leaf.bases == ("pkg.errors.Root",)
        assert project.resolve_class("pkg.mod", "Leaf").qualname == "pkg.mod.Leaf"
        assert project.resolve_class("pkg.mod", "pkg.errors.Root") is not None
