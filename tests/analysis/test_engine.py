"""The analysis driver: rule selection, suppressions, result plumbing."""

import pytest

from repro.analysis.engine import (
    RULE_IDS,
    analyze_paths,
    analyze_project,
)
from repro.analysis.project import Project

RNG_ALIAS = (
    "import numpy as np\n"
    "\n"
    "def sample():\n"
    "    mk = np.random.default_rng\n"
    "    rng = mk(7)\n"
    "    return rng.normal()\n"
)


class TestSelection:
    def test_rule_ids_are_the_r012_r017_band(self):
        assert RULE_IDS == ("R012", "R013", "R014", "R015", "R016", "R017")

    def test_select_restricts_passes(self):
        project = Project.from_sources({"mod": RNG_ALIAS})
        assert analyze_project(project, select=["R014"]) == []
        assert {f.rule_id for f in analyze_project(project, select=["R013"])} == {
            "R013"
        }

    def test_unknown_rule_id_raises(self):
        project = Project.from_sources({"mod": "x = 1\n"})
        with pytest.raises(KeyError, match="R999"):
            analyze_project(project, select=["R999"])

    def test_duplicate_findings_collapse(self):
        # One from-import with two aliases is one violation, not two.
        from repro.analysis.contract import LayerContract

        project = Project.from_sources(
            {"pkg.a": "from pkg.b import one, two\n", "pkg.b": "one = two = 1\n"}
        )
        contract = LayerContract(package="pkg", layers=(("a",), ("b",)))
        findings = analyze_project(project, select=["R012"], contract=contract)
        assert len(findings) == 1


class TestSuppressions:
    def write(self, tmp_path, source):
        target = tmp_path / "mod.py"
        target.write_text(source)
        return target

    def test_directive_silences_an_analysis_finding(self, tmp_path):
        target = self.write(
            tmp_path,
            "import numpy as np\n"
            "\n"
            "def sample():\n"
            "    mk = np.random.default_rng\n"
            "    rng = mk(7)  # repro-lint: disable=R013\n"
            "    return rng.normal()  # repro-lint: disable=R013\n",
        )
        result = analyze_paths([target])
        assert result.clean and result.suppressed == 2

    def test_unused_analysis_directive_is_flagged(self, tmp_path):
        target = self.write(tmp_path, "x = 1  # repro-lint: disable=R013\n")
        result = analyze_paths([target])
        (finding,) = result.findings
        assert finding.rule_id == "R000"
        assert "unused suppression for R013" in finding.message

    def test_lint_rule_directives_are_not_judged_here(self, tmp_path):
        # disable=R001 belongs to the per-file linter; the analyzer must not
        # call it unused just because R001 did not run in this tool.
        target = self.write(tmp_path, "x = 1  # repro-lint: disable=R001\n")
        result = analyze_paths([target])
        assert result.clean

    def test_disable_all_is_not_judged_here(self, tmp_path):
        target = self.write(tmp_path, "x = 1  # repro-lint: disable=all\n")
        result = analyze_paths([target])
        assert result.clean


class TestResultPlumbing:
    def test_exit_codes(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert analyze_paths([clean]).exit_code() == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text(RNG_ALIAS)
        assert analyze_paths([dirty]).exit_code() == 1
        assert analyze_paths([tmp_path / "nope"]).exit_code() == 2

    def test_module_and_file_counts(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        result = analyze_paths([tmp_path])
        assert result.files_scanned == 2 and result.modules == 2
