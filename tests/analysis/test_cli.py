"""Analyzer CLI: exit codes, byte-stable JSON/SARIF, graph artifacts,
the --update-baseline ratchet flow, and repro.cli wiring."""

import io
import json
import pathlib
import subprocess
import sys

from repro.analysis.cli import JSON_SCHEMA_VERSION, build_parser, run
from repro.lint.output import SARIF_VERSION

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

RNG_ALIAS = (
    "import numpy as np\n"
    "\n"
    "def sample():\n"
    "    mk = np.random.default_rng\n"
    "    rng = mk(7)\n"
    "    return rng.normal()\n"
)


def run_cli(argv):
    out = io.StringIO()
    args = build_parser().parse_args(argv)
    code = run(args, out=out)
    return code, out.getvalue()


def write_fixture(tmp_path, source=RNG_ALIAS, name="mod.py"):
    target = tmp_path / name
    target.write_text(source)
    return target


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        target = write_fixture(tmp_path, "x = 1\n")
        code, _ = run_cli([str(target), "--no-baseline"])
        assert code == 0

    def test_findings_exit_one(self, tmp_path):
        target = write_fixture(tmp_path)
        code, out = run_cli([str(target), "--no-baseline"])
        assert code == 1 and "R013" in out

    def test_nonexistent_path_exits_two(self, tmp_path):
        code, out = run_cli([str(tmp_path / "nope"), "--no-baseline"])
        assert code == 2 and "no such file" in out

    def test_unknown_rule_id_exits_two(self, tmp_path):
        target = write_fixture(tmp_path, "x = 1\n")
        code, _ = run_cli([str(target), "--select", "R999", "--no-baseline"])
        assert code == 2

    def test_list_rules_covers_the_catalogue(self):
        code, out = run_cli(["--list-rules"])
        assert code == 0
        for rid in ("R012", "R013", "R014", "R015", "R016", "R017"):
            assert rid in out


class TestJsonOutput:
    def test_schema_fields(self, tmp_path):
        target = write_fixture(tmp_path)
        code, out = run_cli([str(target), "--format", "json", "--no-baseline"])
        payload = json.loads(out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["exit_code"] == code == 1
        assert payload["files_scanned"] == 1 and payload["modules"] == 1
        assert {f["rule_id"] for f in payload["findings"]} == {"R013"}

    def test_two_runs_byte_identical(self, tmp_path):
        target = write_fixture(tmp_path)
        _, first = run_cli([str(target), "--format", "json", "--no-baseline"])
        _, second = run_cli([str(target), "--format", "json", "--no-baseline"])
        assert first == second


class TestSarifOutput:
    def test_two_runs_byte_identical(self, tmp_path):
        target = write_fixture(tmp_path)
        _, first = run_cli([str(target), "--format", "sarif", "--no-baseline"])
        _, second = run_cli([str(target), "--format", "sarif", "--no-baseline"])
        assert first == second

    def test_sarif_shape(self, tmp_path):
        target = write_fixture(tmp_path)
        _, out = run_cli([str(target), "--format", "sarif", "--no-baseline"])
        sarif = json.loads(out)
        assert sarif["version"] == SARIF_VERSION
        (sarif_run,) = sarif["runs"]
        driver = sarif_run["tool"]["driver"]
        assert driver["name"] == "repro-analyze"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == ["R012", "R013", "R014", "R015", "R016", "R017"]
        results = sarif_run["results"]
        assert results and all(r["ruleId"] == "R013" for r in results)
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == target.as_posix()


class TestGraphArtifact:
    def test_dot_artifact(self, tmp_path):
        target = write_fixture(tmp_path, "x = 1\n")
        graph = tmp_path / "imports.dot"
        code, _ = run_cli([str(target), "--graph", str(graph), "--no-baseline"])
        assert code == 0
        assert graph.read_text().startswith('digraph "repro" {')

    def test_markdown_artifact(self, tmp_path):
        graph = tmp_path / "imports.md"
        code, _ = run_cli(
            [str(REPO_ROOT / "src"), "--graph", str(graph), "--no-baseline"]
        )
        assert code == 0
        text = graph.read_text()
        assert text.startswith("# Import graph: `repro`")
        assert "| `core` |" in text


class TestBaselineRatchet:
    def test_full_ratchet_cycle(self, tmp_path):
        target = write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv = [str(target), "--baseline", str(baseline)]

        # 1. New findings against an absent baseline fail.
        code, _ = run_cli(argv)
        assert code == 1

        # 2. --update-baseline blesses them; the run is then green.
        code, out = run_cli(argv + ["--update-baseline"])
        assert code == 0 and "2 finding(s) blessed" in out
        code, out = run_cli(argv)
        assert code == 0 and "2 baselined" in out

        # 3. Fixing the file strands the blessed entries: stale, red.
        target.write_text("x = 1\n")
        code, out = run_cli(argv)
        assert code == 1 and "stale baseline entry" in out

        # 4. Re-blessing ratchets the baseline down to empty.
        code, _ = run_cli(argv + ["--update-baseline"])
        assert code == 0
        assert json.loads(baseline.read_text())["entries"] == []
        code, _ = run_cli(argv)
        assert code == 0

    def test_update_baseline_is_byte_stable(self, tmp_path):
        target = write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv = [str(target), "--baseline", str(baseline), "--update-baseline"]
        run_cli(argv)
        first = baseline.read_bytes()
        run_cli(argv)
        assert baseline.read_bytes() == first

    def test_new_finding_on_top_of_baseline_fails(self, tmp_path):
        target = write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        run_cli([str(target), "--baseline", str(baseline), "--update-baseline"])
        # A *new* violation in another file is new debt, not covered.
        write_fixture(tmp_path, RNG_ALIAS, name="other.py")
        code, out = run_cli([str(tmp_path), "--baseline", str(baseline)])
        assert code == 1 and "other.py" in out


class TestEntryPoints:
    def test_python_dash_m_repro_analysis(self, tmp_path):
        target = write_fixture(tmp_path)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(target), "--no-baseline"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "R013" in proc.stdout

    def test_repro_cli_analyze_subcommand(self, tmp_path):
        from repro.cli import main

        target = write_fixture(tmp_path, "x = 1\n")
        assert main(["analyze", str(target), "--no-baseline"]) == 0
