"""R016 spawn-safety: registered factories, protocols, and WorkerJob
payloads must be importable-by-name from a fresh interpreter."""

from repro.analysis.pickles import check_pickle_safety
from repro.analysis.project import Project


def findings_for(sources):
    if isinstance(sources, str):
        sources = {"mod": sources}
    return check_pickle_safety(Project.from_sources(sources))


class TestRegistrants:
    def test_module_level_def_is_clean(self):
        assert not findings_for(
            "from framework.scenarios import scenario_factory\n"
            "\n"
            '@scenario_factory("good")\n'
            "def make(spec):\n"
            "    return spec\n"
        )

    def test_nested_registrant_is_a_closure(self):
        findings = findings_for(
            "from framework.scenarios import scenario_factory\n"
            "\n"
            "def outer():\n"
            '    @scenario_factory("inner")\n'
            "    def make(spec):\n"
            "        return spec\n"
            "    return make\n"
        )
        (finding,) = findings
        assert (finding.rule_id, finding.file, finding.line) == ("R016", "mod.py", 5)
        assert "nested function (closure)" in finding.message

    def test_lambda_default_argument(self):
        findings = findings_for(
            "from framework.scenarios import scenario_factory\n"
            "\n"
            '@scenario_factory("bad")\n'
            "def make(spec, hook=lambda: 1):\n"
            "    return spec\n"
        )
        (finding,) = findings
        assert (finding.rule_id, finding.line) == ("R016", 4)
        assert "lambda default argument" in finding.message

    def test_inline_lambda_registration(self):
        findings = findings_for(
            "from framework.pool import register_protocol\n"
            "\n"
            'handler = register_protocol("bad")(lambda job: job)\n'
        )
        (finding,) = findings
        assert (finding.rule_id, finding.line) == ("R016", 3)
        assert "lambda registered via register_protocol" in finding.message


class TestWorkerJobPayloads:
    def test_lambda_anywhere_in_payload(self):
        findings = findings_for(
            "from framework.pool import WorkerJob\n"
            "\n"
            'job = WorkerJob(job_id=1, payload={"hook": lambda: 1})\n'
        )
        (finding,) = findings
        assert (finding.rule_id, finding.file, finding.line) == ("R016", "mod.py", 3)
        assert "WorkerJob payload" in finding.message

    def test_data_only_payload_is_clean(self):
        assert not findings_for(
            "from framework.pool import WorkerJob\n"
            "\n"
            'job = WorkerJob(job_id=1, payload={"seed": 7})\n'
        )


class TestRegistryPokes:
    def test_imported_registry_subscript_write(self):
        findings = findings_for(
            "import framework.scenarios\n"
            "\n"
            "def sneak(fn):\n"
            '    framework.scenarios.SCENARIO_FACTORIES["x"] = fn\n'
        )
        (finding,) = findings
        assert (finding.rule_id, finding.line) == ("R016", 4)
        assert "direct write into registry SCENARIO_FACTORIES" in finding.message

    def test_local_registry_write_is_the_registrar(self):
        # The defining module's own subscript write IS the sanctioned
        # registrar implementation.
        assert not findings_for(
            "SCENARIO_FACTORIES = {}\n"
            "\n"
            "def scenario_factory(name):\n"
            "    def wrap(fn):\n"
            "        SCENARIO_FACTORIES[name] = fn\n"
            "        return fn\n"
            "    return wrap\n"
        )
