"""Import graph: cycle detection and the rendered (byte-stable) artifacts."""

from repro.analysis.graph import find_cycles, module_graph, to_dot, to_markdown
from repro.analysis.project import Project


def fixture_project():
    return Project.from_sources(
        {
            "pkg.a": "def f():\n    import pkg.b\n",  # lazy a -> b
            "pkg.b": "import pkg.c\n",  # solid b -> c
            "pkg.c": "",
        }
    )


class TestFindCycles:
    def test_simple_two_cycle(self):
        graph = {"a": {"b"}, "b": {"a"}, "c": {"a"}}
        assert find_cycles(graph) == [["a", "b"]]

    def test_self_loop_is_a_cycle(self):
        assert find_cycles({"a": {"a"}, "b": set()}) == [["a"]]

    def test_acyclic_graph_is_clean(self):
        assert find_cycles({"a": {"b"}, "b": {"c"}, "c": set()}) == []

    def test_two_disjoint_cycles_sorted(self):
        graph = {"x": {"y"}, "y": {"x"}, "a": {"b"}, "b": {"a"}}
        assert find_cycles(graph) == [["a", "b"], ["x", "y"]]


class TestModuleGraph:
    def test_lazy_edges_excluded(self):
        graph = module_graph(fixture_project(), "pkg")
        assert graph["pkg.a"] == set()
        assert graph["pkg.b"] == {"pkg.c"}


class TestArtifacts:
    def test_dot_renders_lazy_edges_dashed(self):
        dot = to_dot(fixture_project(), "pkg")
        assert '"a" -> "b" [style=dashed, label="lazy"];' in dot
        assert '"b" -> "c";' in dot
        assert dot.startswith('digraph "pkg" {')

    def test_dot_layer_groups(self):
        dot = to_dot(fixture_project(), "pkg", layers=(("c",), ("a", "b")))
        assert '{ rank=same; "c" }  // layer 0' in dot
        assert '{ rank=same; "a"; "b" }  // layer 1' in dot

    def test_markdown_table(self):
        md = to_markdown(fixture_project(), "pkg")
        assert "| `a` | `b (lazy)` |" in md
        assert "| `b` | `c` |" in md

    def test_artifacts_byte_stable(self):
        project = fixture_project()
        assert to_dot(project, "pkg") == to_dot(fixture_project(), "pkg")
        assert to_markdown(project, "pkg") == to_markdown(fixture_project(), "pkg")
