"""R012 layering contract: upward imports, cycles, unknown subpackages."""

from repro.analysis.contract import REPRO_CONTRACT, LayerContract, check_layering
from repro.analysis.project import Project

CONTRACT = LayerContract(package="pkg", layers=(("a",), ("b",)))


def findings_for(sources, contract=CONTRACT):
    return check_layering(Project.from_sources(sources), contract)


class TestUpwardImports:
    def test_upward_import_is_flagged_at_the_import_line(self):
        findings = findings_for(
            {"pkg.a": "from pkg.b import helper\n", "pkg.b": "helper = 1\n"}
        )
        (finding,) = findings
        assert finding.rule_id == "R012"
        assert (finding.file, finding.line) == ("pkg/a.py", 1)
        assert "layering violation" in finding.message
        assert "'a' (layer 0) may not import 'b' (layer 1)" in finding.message

    def test_downward_import_is_clean(self):
        assert not findings_for(
            {"pkg.a": "VALUE = 1\n", "pkg.b": "from pkg.a import VALUE\n"}
        )

    def test_same_layer_import_is_clean(self):
        contract = LayerContract(package="pkg", layers=(("a", "b"),))
        assert not findings_for(
            {"pkg.a": "import pkg.b\n", "pkg.b": ""}, contract=contract
        )

    def test_lazy_import_is_exempt(self):
        assert not findings_for(
            {
                "pkg.a": "def f():\n    from pkg.b import helper\n    return helper\n",
                "pkg.b": "helper = 1\n",
            }
        )

    def test_type_checking_import_is_exempt(self):
        assert not findings_for(
            {
                "pkg.a": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from pkg.b import helper\n"
                ),
                "pkg.b": "helper = 1\n",
            }
        )

    def test_root_module_may_import_anything(self):
        # pkg/__init__ is the re-export surface; it sits above every layer.
        assert not findings_for(
            {"pkg": "from pkg.b import helper\n", "pkg.b": "helper = 1\n"}
        )


class TestCycles:
    def test_cycle_is_flagged_on_smallest_member(self):
        findings = findings_for(
            {"pkg.a": "VALUE = 1\nimport pkg.b\n", "pkg.b": "import pkg.a\n"},
            contract=LayerContract(package="pkg", layers=(("a", "b"),)),
        )
        (finding,) = findings
        assert finding.rule_id == "R012"
        # Anchored at pkg.a (lexicographically smallest) on its in-cycle edge.
        assert (finding.file, finding.line) == ("pkg/a.py", 2)
        assert "import cycle: pkg.a -> pkg.b -> pkg.a" in finding.message

    def test_cycle_and_upward_import_both_reported(self):
        findings = findings_for(
            {"pkg.a": "from pkg.b import helper\n", "pkg.b": "import pkg.a\n"}
        )
        messages = [f.message for f in findings]
        assert len(findings) == 2
        assert any("layering violation" in m for m in messages)
        assert any("import cycle" in m for m in messages)

    def test_lazy_edge_does_not_close_a_cycle(self):
        assert not findings_for(
            {
                "pkg.a": "def f():\n    import pkg.b\n",
                "pkg.b": "import pkg.a\n",
            },
            contract=LayerContract(package="pkg", layers=(("a", "b"),)),
        )


class TestUnknownSubpackage:
    def test_unassigned_subpackage_flagged_once(self):
        findings = findings_for(
            {"pkg.mystery.one": "X = 1\n", "pkg.mystery.two": "Y = 2\n"}
        )
        (finding,) = findings
        assert finding.rule_id == "R012" and finding.line == 1
        assert "'mystery' is not assigned to a layer" in finding.message


class TestShippedContract:
    def test_every_repro_layer_name_is_unique(self):
        seen = []
        for layer in REPRO_CONTRACT.layers:
            seen.extend(layer)
        assert len(seen) == len(set(seen))

    def test_common_is_the_bottom_and_cli_the_top(self):
        assert REPRO_CONTRACT.rank("common") == 0
        assert REPRO_CONTRACT.rank("cli") == len(REPRO_CONTRACT.layers) - 1
        assert REPRO_CONTRACT.rank("learning") < REPRO_CONTRACT.rank("core")
