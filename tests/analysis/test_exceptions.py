"""R017 exception contracts: the vendor surface raises typed errors only."""

from repro.analysis.exceptions import check_exception_contracts
from repro.analysis.project import Project

ERRORS = (
    "class PkgError(Exception):\n"
    "    pass\n"
    "\n"
    "class BadInputError(PkgError):\n"
    "    pass\n"
)


def findings_for(sources):
    return check_exception_contracts(Project.from_sources(sources))


class TestVendorSurface:
    def test_bare_exception_escaping_the_vendor_surface(self):
        findings = findings_for(
            {
                "pkg.common.errors": ERRORS,
                "pkg.core.engine": (
                    "from pkg.common.errors import BadInputError\n"
                    "\n"
                    "def run(x):\n"
                    "    if x < 0:\n"
                    '        raise Exception("negative")\n'
                    '    raise BadInputError("bad")\n'
                ),
            }
        )
        (finding,) = findings
        assert finding.rule_id == "R017"
        assert (finding.file, finding.line) == ("pkg/core/engine.py", 5)
        assert "untyped Exception" in finding.message
        assert "(core)" in finding.message
        assert "pkg.common.errors" in finding.message

    def test_builtin_valueerror_is_flagged(self):
        findings = findings_for(
            {
                "pkg.common.errors": ERRORS,
                "pkg.warehouse.api": (
                    "def connect(dsn):\n"
                    '    raise ValueError("bad dsn")\n'
                ),
            }
        )
        (finding,) = findings
        assert "untyped ValueError" in finding.message and "(warehouse)" in finding.message

    def test_typed_raise_is_clean(self):
        assert not findings_for(
            {
                "pkg.common.errors": ERRORS,
                "pkg.core.engine": (
                    "from pkg.common.errors import BadInputError\n"
                    "\n"
                    "def run(x):\n"
                    '    raise BadInputError("bad")\n'
                ),
            }
        )

    def test_local_subclass_of_typed_root_is_clean(self):
        # The hierarchy is resolved whole-program: a core-local subclass of
        # PkgError is still typed.
        assert not findings_for(
            {
                "pkg.common.errors": ERRORS,
                "pkg.core.local": (
                    "from pkg.common.errors import PkgError\n"
                    "\n"
                    "class EngineError(PkgError):\n"
                    "    pass\n"
                    "\n"
                    "def go():\n"
                    '    raise EngineError("x")\n'
                ),
            }
        )

    def test_notimplementederror_is_allowed(self):
        assert not findings_for(
            {
                "pkg.common.errors": ERRORS,
                "pkg.warehouse.api": (
                    "class Base:\n"
                    "    def op(self):\n"
                    "        raise NotImplementedError\n"
                    "    def op2(self):\n"
                    '        raise NotImplementedError("subclass me")\n'
                ),
            }
        )

    def test_reraise_of_a_variable_is_out_of_scope(self):
        assert not findings_for(
            {
                "pkg.common.errors": ERRORS,
                "pkg.core.engine": (
                    "def run(exc):\n"
                    "    raise exc\n"
                ),
            }
        )


class TestScoping:
    def test_non_vendor_packages_are_exempt(self):
        assert not findings_for(
            {
                "pkg.common.errors": ERRORS,
                "pkg.tools.script": 'raise ValueError("tools may be loose")\n',
            }
        )

    def test_no_errors_module_means_no_contract(self):
        assert not findings_for(
            {"pkg.core.engine": 'raise ValueError("no contract declared")\n'}
        )
