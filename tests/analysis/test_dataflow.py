"""Determinism dataflow: R013 RNG provenance, R014 wall-clock taint,
R015 unordered iteration.  Every positive fixture mirrors a pattern the
per-file rules (R001/R002/R008) structurally cannot see."""

from repro.analysis.dataflow import check_dataflow
from repro.analysis.project import Project


def findings_for(source, name="mod"):
    return check_dataflow(Project.from_sources({name: source}))


def only(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


class TestRngProvenance:
    def test_aliased_constructor_and_downstream_draw(self):
        findings = findings_for(
            "import numpy as np\n"
            "\n"
            "def sample():\n"
            "    mk = np.random.default_rng\n"
            "    rng = mk(7)\n"
            "    return rng.normal()\n"
        )
        assert [(f.rule_id, f.line) for f in findings] == [("R013", 5), ("R013", 6)]
        assert "alias 'mk'" in findings[0].message
        assert "aliased at line 4" in findings[0].message
        assert ".normal()" in findings[1].message

    def test_draw_on_directly_constructed_generator(self):
        findings = findings_for(
            "import numpy as np\n"
            "\n"
            "def sample():\n"
            "    rng = np.random.default_rng(7)\n"
            "    return rng.normal()\n"
        )
        (finding,) = findings
        assert (finding.rule_id, finding.file, finding.line) == ("R013", "mod.py", 5)
        assert "constructed at line 4" in finding.message

    def test_rng_registry_module_is_exempt(self):
        findings = findings_for(
            "import numpy as np\n"
            "\n"
            "def fallback_rng(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.normal()\n",
            name="repro.common.rng",
        )
        assert not findings

    def test_draw_on_untracked_receiver_is_clean(self):
        # Generators threaded in as parameters have legitimate provenance.
        assert not findings_for("def sample(rng):\n    return rng.normal()\n")


class TestWallClockTaint:
    def test_wall_value_returned_from_payload_function(self):
        findings = findings_for(
            "import time\n"
            "\n"
            "def snapshot():\n"
            "    started = time.time()\n"
            '    return {"started": started}\n'
        )
        (finding,) = only(findings, "R014")
        assert (finding.file, finding.line) == ("mod.py", 5)
        assert "read at line 4" in finding.message
        assert "payload function snapshot()" in finding.message

    def test_wall_value_reaching_json_dump(self):
        findings = findings_for(
            "import json\n"
            "import time\n"
            "\n"
            "def dump(out):\n"
            "    now = time.time()\n"
            '    json.dump({"t": now}, out)\n'
        )
        (finding,) = only(findings, "R014")
        assert finding.line == 6
        assert "json.dump" in finding.message

    def test_laundering_through_arithmetic_and_fstring(self):
        findings = findings_for(
            "import time\n"
            "\n"
            "def header(handle):\n"
            "    t = time.time() * 1000.0\n"
            '    handle.write(f"started {t}")\n'
        )
        (finding,) = only(findings, "R014")
        assert finding.line == 5 and ".write()" in finding.message

    def test_untainted_value_is_clean(self):
        assert not findings_for(
            "import json\n"
            "\n"
            "def dump(out, now):\n"
            '    json.dump({"t": now}, out)\n'
        )

    def test_wall_read_without_escape_is_clean(self):
        # R001 already bans the read inside src; the dataflow pass only
        # fires when the value escapes.
        assert not findings_for(
            "import time\n"
            "\n"
            "def check(log):\n"
            "    t = time.time()\n"
            "    local = t + 1.0\n"
            "    del local\n"
        )


class TestUnorderedIteration:
    def test_materializing_listdir(self):
        findings = findings_for(
            "import os\n"
            "\n"
            "def names(base):\n"
            "    return list(os.listdir(base))\n"
        )
        (finding,) = only(findings, "R015")
        assert (finding.file, finding.line) == ("mod.py", 4)
        assert "via list" in finding.message

    def test_sorted_listdir_is_clean(self):
        assert not findings_for(
            "import os\n"
            "\n"
            "def names(base):\n"
            "    return sorted(os.listdir(base))\n"
        )

    def test_loop_appending_glob_results(self):
        findings = findings_for(
            "def collect(base):\n"
            "    out = []\n"
            '    for path in base.glob("*.json"):\n'
            "        out.append(path)\n"
            "    return out\n"
        )
        (finding,) = only(findings, "R015")
        assert finding.line == 3
        assert "order-dependent effects" in finding.message

    def test_comprehension_over_iterdir(self):
        findings = findings_for(
            "def stems(base):\n"
            "    return [p.stem for p in base.iterdir()]\n"
        )
        (finding,) = only(findings, "R015")
        assert finding.line == 2 and "comprehension" in finding.message

    def test_sorted_comprehension_is_clean(self):
        assert not findings_for(
            "def stems(base):\n"
            "    return sorted(p.stem for p in base.iterdir())\n"
        )

    def test_set_valued_attribute_iterated_in_order(self):
        findings = findings_for(
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self.names = set()\n"
            "\n"
            "    def render(self):\n"
            "        out = []\n"
            "        for name in self.names:\n"
            "            out.append(name)\n"
            "        return out\n"
        )
        (finding,) = only(findings, "R015")
        assert finding.line == 7
        assert "self.names" in finding.message
        assert "assigned at line 3" in finding.message

    def test_sorted_attribute_iteration_is_clean(self):
        assert not findings_for(
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self.names = set()\n"
            "\n"
            "    def render(self):\n"
            "        out = []\n"
            "        for name in sorted(self.names):\n"
            "            out.append(name)\n"
            "        return out\n"
        )

    def test_order_insensitive_loop_body_is_clean(self):
        # Counting does not depend on enumeration order.
        assert not findings_for(
            "import os\n"
            "\n"
            "def count(base):\n"
            "    n = 0\n"
            "    for _name in os.listdir(base):\n"
            "        n = n + 1\n"
            "    return n\n"
        )
