"""The ratcheting baseline: blessing, new-debt failures, stale entries."""

import io

from repro.analysis.baseline import (
    BASELINE_VERSION,
    Baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.findings import Finding


def finding(file="pkg/mod.py", line=3, rule_id="R013", message="boom"):
    return Finding(
        file=file, line=line, col=0, rule_id=rule_id, severity="error", message=message
    )


class TestApply:
    def test_blessed_finding_is_absorbed(self):
        baseline = Baseline(entries={("pkg/mod.py", "R013", "boom"): 1})
        new, baselined, stale = baseline.apply([finding()])
        assert (new, baselined, stale) == ([], 1, [])

    def test_unblessed_finding_is_new_debt(self):
        new, baselined, stale = Baseline().apply([finding()])
        assert len(new) == 1 and baselined == 0 and not stale

    def test_count_is_a_ratchet_not_a_blanket(self):
        # Two identical findings against a count of 1: one absorbed, one new.
        baseline = Baseline(entries={("pkg/mod.py", "R013", "boom"): 1})
        new, baselined, _ = baseline.apply([finding(line=3), finding(line=9)])
        assert baselined == 1 and len(new) == 1

    def test_stale_entry_is_an_error(self):
        baseline = Baseline(entries={("pkg/gone.py", "R013", "boom"): 2})
        new, baselined, stale = baseline.apply([])
        assert not new and baselined == 0
        (entry,) = stale
        assert "stale baseline entry: pkg/gone.py: R013" in entry
        assert "--update-baseline" in entry

    def test_line_numbers_do_not_churn_the_key(self):
        # The key is (file, rule_id, message): moving a finding within its
        # file must not invalidate the baseline.
        baseline = Baseline(entries={("pkg/mod.py", "R013", "boom"): 1})
        new, baselined, stale = baseline.apply([finding(line=77)])
        assert (new, baselined, stale) == ([], 1, [])


class TestSerialization:
    def test_render_is_byte_stable(self):
        findings = [finding(line=9), finding(file="a.py", rule_id="R014")]
        first, second = io.StringIO(), io.StringIO()
        render_baseline(findings, first)
        render_baseline(list(reversed(findings)), second)
        assert first.getvalue() == second.getvalue()
        assert first.getvalue().endswith("\n")

    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([finding(), finding()], path)
        loaded = Baseline.load(path)
        assert not loaded.errors
        assert loaded.entries == {("pkg/mod.py", "R013", "boom"): 2}

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        loaded = Baseline.load(tmp_path / "nope.json")
        assert loaded.entries == {} and not loaded.errors

    def test_malformed_file_is_an_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        loaded = Baseline.load(path)
        assert loaded.errors and "unreadable baseline" in loaded.errors[0]

    def test_unsupported_version_is_an_error(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"version": 99, "entries": []}')
        loaded = Baseline.load(path)
        assert loaded.errors and "unsupported baseline version" in loaded.errors[0]

    def test_version_constant_matches_rendered_payload(self):
        out = io.StringIO()
        render_baseline([], out)
        assert f'"version": {BASELINE_VERSION}' in out.getvalue()
