"""Tests for the per-cluster partition cache."""

import pytest

from repro.common.errors import ConfigurationError
from repro.warehouse.cache import PARTITION_BYTES, PartitionCache


def cache_for(n_partitions: int) -> PartitionCache:
    return PartitionCache(capacity_bytes=n_partitions * PARTITION_BYTES)


class TestPartitionCache:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionCache(-1)

    def test_empty_access_is_warm(self):
        assert cache_for(4).access([]) == 1.0

    def test_first_access_misses(self):
        cache = cache_for(4)
        assert cache.access(["a", "b"]) == 0.0

    def test_second_access_hits(self):
        cache = cache_for(4)
        cache.access(["a", "b"])
        assert cache.access(["a", "b"]) == 1.0

    def test_partial_hit_ratio(self):
        cache = cache_for(4)
        cache.access(["a", "b"])
        assert cache.access(["a", "c"]) == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = cache_for(2)
        cache.access(["a"])
        cache.access(["b"])
        cache.access(["a"])  # refresh a; b is now least recent
        cache.access(["c"])  # evicts b
        assert "a" in cache
        assert "c" in cache
        assert "b" not in cache

    def test_capacity_respected(self):
        cache = cache_for(3)
        cache.access([f"p{i}" for i in range(10)])
        assert len(cache) == 3

    def test_zero_capacity_never_stores(self):
        cache = PartitionCache(0)
        cache.access(["a"])
        assert len(cache) == 0
        assert cache.access(["a"]) == 0.0

    def test_peek_does_not_mutate(self):
        cache = cache_for(4)
        cache.access(["a"])
        assert cache.peek_hit_ratio(["a", "b"]) == pytest.approx(0.5)
        assert "b" not in cache

    def test_peek_empty_is_warm(self):
        assert cache_for(4).peek_hit_ratio([]) == 1.0

    def test_clear_drops_everything(self):
        cache = cache_for(4)
        cache.access(["a", "b"])
        cache.clear()
        assert len(cache) == 0
        assert cache.access(["a"]) == 0.0

    def test_resize_shrinks_lru_first(self):
        cache = cache_for(3)
        cache.access(["a"])
        cache.access(["b"])
        cache.access(["c"])
        cache.resize(2 * PARTITION_BYTES)
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_hit_miss_counters(self):
        cache = cache_for(4)
        cache.access(["a", "b"])
        cache.access(["a", "c"])
        assert cache.hits == 1
        assert cache.misses == 3

    def test_used_bytes(self):
        cache = cache_for(4)
        cache.access(["a", "b"])
        assert cache.used_bytes == 2 * PARTITION_BYTES
