"""Tests for multi-cluster scale-out/in policies."""

import pytest

from repro.common.simtime import HOUR, MINUTE
from repro.warehouse.types import ScalingPolicy

from tests.conftest import drive, make_account, make_requests, make_template


def flood(account, wh, n_queries: int, work: float = 120.0, at: float = 1.0):
    template = make_template("flood", base_work_seconds=work, n_partitions=0)
    drive(account, wh, make_requests(template, [at] * n_queries), at + 1.0)
    return template


class TestStandardScaleOut:
    def test_scales_out_under_queueing(self):
        account, wh = make_account(
            max_clusters=3, max_concurrency=2, auto_suspend_seconds=0.0
        )
        flood(account, wh, 8)
        peak = 0
        warehouse = account.warehouse(wh)
        for _ in range(30):
            account.run_until(account.sim.now + 10.0)
            peak = max(peak, len(warehouse.active_clusters()))
        assert peak > 1

    def test_respects_max_clusters(self):
        account, wh = make_account(
            max_clusters=2, max_concurrency=1, auto_suspend_seconds=0.0
        )
        flood(account, wh, 20, work=500.0)
        account.run_until(10 * MINUTE)
        assert len(account.warehouse(wh).active_clusters()) <= 2

    def test_single_cluster_warehouse_never_scales(self):
        account, wh = make_account(
            max_clusters=1, max_concurrency=1, auto_suspend_seconds=0.0
        )
        flood(account, wh, 10)
        account.run_until(5 * MINUTE)
        assert len(account.warehouse(wh).active_clusters()) == 1

    def test_scale_in_after_load_drops(self):
        account, wh = make_account(
            max_clusters=3, max_concurrency=2, auto_suspend_seconds=0.0
        )
        flood(account, wh, 8, work=60.0)
        account.run_until(3 * MINUTE)
        assert len(account.warehouse(wh).active_clusters()) > 1
        # After the burst drains, extra clusters retire (policy checks).
        account.run_until(30 * MINUTE)
        assert len(account.warehouse(wh).active_clusters()) == 1

    def test_all_queries_complete_despite_queueing(self):
        account, wh = make_account(
            max_clusters=2, max_concurrency=2, auto_suspend_seconds=0.0
        )
        flood(account, wh, 15, work=30.0)
        account.run_until(2 * HOUR)
        assert len(account.telemetry.query_history(wh)) == 15

    def test_cluster_ordinals_within_bounds(self):
        account, wh = make_account(
            max_clusters=3, max_concurrency=2, auto_suspend_seconds=0.0
        )
        flood(account, wh, 12, work=90.0)
        account.run_until(HOUR)
        ordinals = {r.cluster_number for r in account.telemetry.query_history(wh)}
        assert ordinals <= {1, 2, 3}
        assert 1 in ordinals


class TestEconomyScaleOut:
    def test_economy_scales_later_than_standard(self):
        def peak_clusters(policy):
            account, wh = make_account(
                max_clusters=4,
                max_concurrency=2,
                auto_suspend_seconds=0.0,
                scaling_policy=policy,
            )
            template = make_template("burst", base_work_seconds=45.0, n_partitions=0)
            drive(account, wh, make_requests(template, [1.0] * 10), 2.0)
            peak = 0
            warehouse = account.warehouse(wh)
            for _ in range(60):
                account.run_until(account.sim.now + 10.0)
                peak = max(peak, len(warehouse.active_clusters()))
            return peak

        assert peak_clusters(ScalingPolicy.ECONOMY) <= peak_clusters(ScalingPolicy.STANDARD)

    def test_economy_still_scales_for_sustained_load(self):
        account, wh = make_account(
            max_clusters=3,
            max_concurrency=1,
            auto_suspend_seconds=0.0,
            scaling_policy=ScalingPolicy.ECONOMY,
        )
        # Long queries -> queued work estimate exceeds the 6-minute bar.
        flood(account, wh, 12, work=300.0)
        account.run_until(15 * MINUTE)
        assert len(account.warehouse(wh).active_clusters()) > 1


class TestMaximizedMode:
    def test_all_clusters_start_with_warehouse(self):
        account, wh = make_account(
            min_clusters=3, max_clusters=3, auto_suspend_seconds=0.0
        )
        drive(account, wh, make_requests(make_template(), [1.0]), MINUTE)
        assert len(account.warehouse(wh).active_clusters()) == 3

    def test_maximized_never_scales_in(self):
        account, wh = make_account(
            min_clusters=2, max_clusters=2, auto_suspend_seconds=0.0
        )
        drive(account, wh, make_requests(make_template(base_work_seconds=2.0), [1.0]), HOUR)
        assert len(account.warehouse(wh).active_clusters()) == 2
