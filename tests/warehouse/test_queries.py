"""Tests for query templates, requests and telemetry records."""

import pytest

from repro.common.errors import ConfigurationError
from repro.warehouse.queries import QueryRecord, QueryRequest, QueryTemplate, hash_text
from repro.warehouse.types import WarehouseSize


def template(**kw) -> QueryTemplate:
    defaults = dict(name="t", base_work_seconds=10.0)
    defaults.update(kw)
    return QueryTemplate(**defaults)


class TestQueryTemplate:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            template(base_work_seconds=0)
        with pytest.raises(ConfigurationError):
            template(scale_exponent=2.0)
        with pytest.raises(ConfigurationError):
            template(cold_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            template(bytes_scanned=-1)

    def test_warm_latency_scales_with_size(self):
        t = template(scale_exponent=1.0)
        assert t.warm_latency(WarehouseSize.XS) == pytest.approx(10.0)
        assert t.warm_latency(WarehouseSize.S) == pytest.approx(5.0)
        assert t.warm_latency(WarehouseSize.M) == pytest.approx(2.5)

    def test_zero_exponent_ignores_size(self):
        t = template(scale_exponent=0.0)
        assert t.warm_latency(WarehouseSize.XS) == t.warm_latency(WarehouseSize.SIZE_6XL)

    def test_template_hash_stable(self):
        assert template().template_hash == template().template_hash
        assert template(name="a").template_hash != template(name="b").template_hash


class TestQueryRequest:
    def test_text_hash_varies_with_instance_key(self):
        t = template()
        r1 = QueryRequest(t, 0.0, instance_key="1")
        r2 = QueryRequest(t, 0.0, instance_key="2")
        assert r1.text_hash != r2.text_hash
        assert r1.template_hash == r2.template_hash

    def test_same_instance_key_same_text_hash(self):
        t = template()
        assert (
            QueryRequest(t, 0.0, instance_key="d1").text_hash
            == QueryRequest(t, 5.0, instance_key="d1").text_hash
        )

    def test_no_query_text_in_hashes(self):
        # The hash is a fixed-width hex digest, not the text.
        t = template(name="SELECT secret FROM customers")
        request = QueryRequest(t, 0.0)
        assert "secret" not in request.text_hash
        assert len(request.text_hash) == 16


class TestQueryRecord:
    def test_total_seconds(self):
        record = QueryRecord(
            query_id=1,
            warehouse="WH",
            text_hash="x",
            template_hash="y",
            arrival_time=0.0,
            queued_seconds=2.0,
            execution_seconds=5.0,
        )
        assert record.total_seconds == 7.0


class TestHashText:
    def test_deterministic(self):
        assert hash_text("abc") == hash_text("abc")

    def test_distinct(self):
        assert hash_text("abc") != hash_text("abd")
