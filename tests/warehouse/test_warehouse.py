"""Behavioural tests for the virtual warehouse state machine."""

import pytest

from repro.common.simtime import HOUR, MINUTE, Window
from repro.warehouse.types import WarehouseSize, WarehouseState

from tests.conftest import drive, make_account, make_requests, make_template


class TestAutoSuspendResume:
    def test_starts_suspended(self):
        account, wh = make_account()
        assert account.warehouse(wh).state == WarehouseState.SUSPENDED

    def test_query_resumes_warehouse(self):
        account, wh = make_account()
        template = make_template()
        drive(account, wh, make_requests(template, [10.0]), 60.0)
        records = account.telemetry.query_history(wh)
        assert len(records) == 1
        # Resume delay means the query started after its arrival.
        assert records[0].start_time > records[0].arrival_time

    def test_suspends_after_idle_interval(self):
        account, wh = make_account(auto_suspend_seconds=120.0)
        drive(account, wh, make_requests(make_template(), [10.0]), 10 * MINUTE)
        assert account.warehouse(wh).state == WarehouseState.SUSPENDED
        events = account.telemetry.warehouse_events(wh, kind="suspend")
        assert len(events) == 1

    def test_suspension_is_lazy_but_bounded(self):
        account, wh = make_account(auto_suspend_seconds=120.0)
        drive(account, wh, make_requests(make_template(base_work_seconds=5.0), [10.0]), 10 * MINUTE)
        suspend = account.telemetry.warehouse_events(wh, kind="suspend")[0]
        records = account.telemetry.query_history(wh)
        idle_start = records[0].end_time
        lag = suspend.time - (idle_start + 120.0)
        assert 0.0 <= lag <= 60.0  # sweep granularity

    def test_stays_up_between_close_queries(self):
        account, wh = make_account(auto_suspend_seconds=300.0)
        template = make_template(base_work_seconds=2.0)
        drive(account, wh, make_requests(template, [10.0, 100.0, 200.0]), 200.0)
        assert account.telemetry.warehouse_events(wh, kind="suspend") == []
        # One resume for three queries: the warehouse stayed warm.
        resumes = account.telemetry.warehouse_events(wh, kind="resume")
        assert len(resumes) == 1

    def test_zero_auto_suspend_never_suspends(self):
        account, wh = make_account(auto_suspend_seconds=0.0)
        drive(account, wh, make_requests(make_template(), [10.0]), 4 * HOUR)
        assert account.warehouse(wh).state == WarehouseState.RUNNING

    def test_billing_stops_on_suspend(self):
        account, wh = make_account(auto_suspend_seconds=120.0)
        drive(account, wh, make_requests(make_template(base_work_seconds=5.0), [10.0]), 2 * HOUR)
        credits_at_2h = account.warehouse(wh).meter.total_credits(2 * HOUR)
        account.run_until(4 * HOUR)
        assert account.warehouse(wh).meter.total_credits(4 * HOUR) == credits_at_2h

    def test_cache_dropped_on_suspend(self):
        account, wh = make_account(auto_suspend_seconds=60.0)
        template = make_template(n_partitions=4)
        # Two queries far enough apart that the warehouse suspends between.
        drive(account, wh, make_requests(template, [10.0, HOUR]), 2 * HOUR)
        records = account.telemetry.query_history(wh)
        assert records[0].cache_hit_ratio == 0.0
        assert records[1].cache_hit_ratio == 0.0  # cold again after suspend

    def test_cache_warm_without_suspend(self):
        account, wh = make_account(auto_suspend_seconds=600.0)
        template = make_template(n_partitions=4)
        drive(account, wh, make_requests(template, [10.0, 120.0]), HOUR)
        records = account.telemetry.query_history(wh)
        assert records[1].cache_hit_ratio == 1.0

    def test_cold_query_slower_than_warm(self):
        account, wh = make_account(auto_suspend_seconds=600.0)
        template = make_template(n_partitions=8, cold_multiplier=3.0)
        drive(account, wh, make_requests(template, [10.0, 300.0]), HOUR)
        cold, warm = account.telemetry.query_history(wh)
        assert cold.execution_seconds > 1.5 * warm.execution_seconds

    def test_manual_suspend_and_resume(self):
        account, wh = make_account()
        warehouse = account.warehouse(wh)
        drive(account, wh, make_requests(make_template(base_work_seconds=2.0), [5.0]), 60.0)
        warehouse.suspend(initiator="customer")
        assert warehouse.state == WarehouseState.SUSPENDED
        warehouse.resume(initiator="customer")
        account.run_until(120.0)
        assert warehouse.state == WarehouseState.RUNNING

    def test_cannot_suspend_with_running_queries(self):
        from repro.common.errors import WarehouseError

        account, wh = make_account()
        drive(account, wh, make_requests(make_template(base_work_seconds=500.0), [5.0]), 30.0)
        warehouse = account.warehouse(wh)
        assert warehouse.running_query_count == 1
        with pytest.raises(WarehouseError):
            warehouse.suspend()


class TestResize:
    def test_resize_changes_new_query_latency(self):
        account, wh = make_account(size=WarehouseSize.XS, auto_suspend_seconds=0.0)
        template = make_template(base_work_seconds=16.0, scale_exponent=1.0, n_partitions=0)
        drive(account, wh, make_requests(template, [10.0]), 5 * MINUTE)
        account.warehouse(wh).alter(size=WarehouseSize.M)
        drive(account, wh, make_requests(template, [6 * MINUTE]), 10 * MINUTE)
        first, second = account.telemetry.query_history(wh)
        assert second.warehouse_size == WarehouseSize.M
        assert second.execution_seconds < 0.5 * first.execution_seconds

    def test_resize_drops_cache(self):
        account, wh = make_account(auto_suspend_seconds=0.0)
        template = make_template(n_partitions=4)
        drive(account, wh, make_requests(template, [10.0]), MINUTE)
        account.warehouse(wh).alter(size=WarehouseSize.M)
        drive(account, wh, make_requests(template, [2 * MINUTE]), 3 * MINUTE)
        records = account.telemetry.query_history(wh)
        assert records[1].cache_hit_ratio == 0.0

    def test_resize_reprices_billing(self):
        account, wh = make_account(size=WarehouseSize.XS, auto_suspend_seconds=0.0)
        drive(account, wh, make_requests(make_template(base_work_seconds=1.0), [1.0]), 10.0)
        t_resize = account.sim.now
        account.warehouse(wh).alter(size=WarehouseSize.M)
        account.run_until(t_resize + HOUR)
        window = Window(t_resize, t_resize + HOUR)
        credits = account.warehouse(wh).meter.credits_in_window(window, as_of=account.sim.now)
        assert credits == pytest.approx(4.0, rel=0.05)

    def test_resize_event_recorded_with_initiator(self):
        account, wh = make_account()
        account.warehouse(wh).alter(initiator="keebo", size=WarehouseSize.L)
        events = account.telemetry.warehouse_events(wh, kind="resize")
        assert events[0].initiator == "keebo"
        assert events[0].detail["size"] == "Large"

    def test_inflight_query_keeps_old_duration(self):
        account, wh = make_account(size=WarehouseSize.XS, auto_suspend_seconds=0.0)
        template = make_template(base_work_seconds=300.0, scale_exponent=1.0, n_partitions=0)
        drive(account, wh, make_requests(template, [5.0]), 30.0)
        account.warehouse(wh).alter(size=WarehouseSize.XL)
        account.run_until(HOUR)
        record = account.telemetry.query_history(wh)[0]
        # Started on XS; duration reflects XS speed even though XL arrived.
        assert record.warehouse_size == WarehouseSize.XS
        assert record.execution_seconds > 200.0

    def test_alter_noop_records_nothing(self):
        account, wh = make_account()
        before = len(account.telemetry.warehouse_events(wh))
        account.warehouse(wh).alter()  # no changes
        assert len(account.telemetry.warehouse_events(wh)) == before


class TestQueueingAndConcurrency:
    def test_queries_queue_beyond_slots(self):
        account, wh = make_account(max_concurrency=2, auto_suspend_seconds=0.0)
        template = make_template(base_work_seconds=100.0, n_partitions=0)
        drive(account, wh, make_requests(template, [1.0, 1.0, 1.0, 1.0]), 10.0)
        warehouse = account.warehouse(wh)
        assert warehouse.running_query_count == 2
        assert warehouse.queue_length == 2

    def test_queued_seconds_recorded(self):
        account, wh = make_account(max_concurrency=1, auto_suspend_seconds=0.0)
        template = make_template(base_work_seconds=30.0, n_partitions=0)
        drive(account, wh, make_requests(template, [1.0, 1.0]), HOUR)
        records = sorted(account.telemetry.query_history(wh), key=lambda r: r.start_time)
        assert records[0].queued_seconds < 10.0
        assert records[1].queued_seconds > 20.0

    def test_contention_slows_queries(self):
        account, wh = make_account(max_concurrency=8, auto_suspend_seconds=0.0)
        template = make_template(base_work_seconds=60.0, n_partitions=0)
        drive(account, wh, make_requests(template, [1.0] * 8), HOUR)
        crowded = [r.execution_seconds for r in account.telemetry.query_history(wh)]
        account2, wh2 = make_account(max_concurrency=8, auto_suspend_seconds=0.0)
        drive(account2, wh2, make_requests(template, [1.0]), HOUR)
        solo = account2.telemetry.query_history(wh2)[0].execution_seconds
        assert max(crowded) > solo
