"""Tests for sizes, policies and state enums."""

import pytest

from repro.common.errors import ConfigurationError
from repro.warehouse.types import ScalingPolicy, WarehouseSize


class TestWarehouseSize:
    def test_credit_rates_double(self):
        assert WarehouseSize.XS.credits_per_hour == 1.0
        assert WarehouseSize.S.credits_per_hour == 2.0
        assert WarehouseSize.M.credits_per_hour == 4.0
        assert WarehouseSize.SIZE_6XL.credits_per_hour == 512.0

    def test_speedup_matches_rate(self):
        for size in WarehouseSize:
            assert size.speedup == size.credits_per_hour

    def test_cache_capacity_doubles(self):
        assert WarehouseSize.S.cache_capacity_bytes == 2 * WarehouseSize.XS.cache_capacity_bytes

    def test_labels(self):
        assert WarehouseSize.XS.label == "X-Small"
        assert WarehouseSize.M.label == "Medium"
        assert WarehouseSize.SIZE_2XL.label == "2X-Large"
        assert WarehouseSize.SIZE_6XL.label == "6X-Large"

    def test_step_clamps_at_ends(self):
        assert WarehouseSize.XS.step(-1) == WarehouseSize.XS
        assert WarehouseSize.SIZE_6XL.step(5) == WarehouseSize.SIZE_6XL
        assert WarehouseSize.M.step(2) == WarehouseSize.XL
        assert WarehouseSize.M.step(-2) == WarehouseSize.XS

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("XS", WarehouseSize.XS),
            ("X-Small", WarehouseSize.XS),
            ("xsmall", WarehouseSize.XS),
            ("Medium", WarehouseSize.M),
            ("XL", WarehouseSize.XL),
            ("2X-Large", WarehouseSize.SIZE_2XL),
            ("4XL", WarehouseSize.SIZE_4XL),
            ("6xlarge", WarehouseSize.SIZE_6XL),
        ],
    )
    def test_parse(self, text, expected):
        assert WarehouseSize.parse(text) == expected

    def test_parse_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            WarehouseSize.parse("gigantic")

    def test_ordering(self):
        assert WarehouseSize.XS < WarehouseSize.S < WarehouseSize.SIZE_6XL


class TestScalingPolicy:
    def test_values(self):
        assert ScalingPolicy.STANDARD.value == "standard"
        assert ScalingPolicy.ECONOMY.value == "economy"
