"""Tests for WarehouseConfig validation and helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.warehouse.config import MAX_CLUSTER_COUNT, WarehouseConfig
from repro.warehouse.types import ScalingPolicy, WarehouseSize


class TestWarehouseConfig:
    def test_defaults_valid(self):
        config = WarehouseConfig()
        assert config.size == WarehouseSize.M
        assert config.min_clusters == config.max_clusters == 1

    def test_negative_suspend_rejected(self):
        with pytest.raises(ConfigurationError):
            WarehouseConfig(auto_suspend_seconds=-1)

    def test_zero_suspend_allowed(self):
        assert WarehouseConfig(auto_suspend_seconds=0).auto_suspend_seconds == 0

    def test_min_above_max_rejected(self):
        with pytest.raises(ConfigurationError):
            WarehouseConfig(min_clusters=3, max_clusters=2)

    def test_zero_min_clusters_rejected(self):
        with pytest.raises(ConfigurationError):
            WarehouseConfig(min_clusters=0, max_clusters=1)

    def test_cluster_cap(self):
        with pytest.raises(ConfigurationError):
            WarehouseConfig(min_clusters=1, max_clusters=MAX_CLUSTER_COUNT + 1)

    def test_max_concurrency_positive(self):
        with pytest.raises(ConfigurationError):
            WarehouseConfig(max_concurrency=0)

    def test_is_maximized(self):
        assert WarehouseConfig(min_clusters=3, max_clusters=3).is_maximized
        assert not WarehouseConfig(min_clusters=1, max_clusters=3).is_maximized

    def test_with_changes_returns_new_validated_copy(self):
        config = WarehouseConfig()
        changed = config.with_changes(size=WarehouseSize.L)
        assert changed.size == WarehouseSize.L
        assert config.size == WarehouseSize.M  # original untouched
        with pytest.raises(ConfigurationError):
            config.with_changes(min_clusters=5)  # max stays 1

    def test_describe_mentions_key_settings(self):
        text = WarehouseConfig(
            size=WarehouseSize.L,
            auto_suspend_seconds=300,
            min_clusters=2,
            max_clusters=4,
            scaling_policy=ScalingPolicy.ECONOMY,
        ).describe()
        assert "Large" in text
        assert "300" in text
        assert "2..4" in text
        assert "economy" in text

    def test_frozen(self):
        config = WarehouseConfig()
        with pytest.raises(AttributeError):
            config.size = WarehouseSize.L
