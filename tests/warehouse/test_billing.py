"""Tests for Snowflake-style billing semantics."""

import pytest

from repro.common.simtime import HOUR, Window
from repro.warehouse.billing import MINIMUM_BILLED_SECONDS, BillingMeter, UsageSegment
from repro.common.errors import WarehouseError
from repro.warehouse.types import WarehouseSize


class TestUsageSegment:
    def test_credits_pro_rated_per_second(self):
        seg = UsageSegment(1, WarehouseSize.XS, 0.0, 1800.0)  # 30 min at 1/hr
        assert seg.credits() == pytest.approx(0.5)

    def test_minimum_applies_to_fresh_start(self):
        seg = UsageSegment(1, WarehouseSize.XS, 0.0, 10.0, fresh_start=True)
        assert seg.billed_window().duration == MINIMUM_BILLED_SECONDS

    def test_minimum_skipped_for_continuation(self):
        seg = UsageSegment(1, WarehouseSize.XS, 0.0, 10.0, fresh_start=False)
        assert seg.billed_window().duration == 10.0

    def test_open_segment_has_no_billed_window(self):
        seg = UsageSegment(1, WarehouseSize.XS, 0.0)
        with pytest.raises(WarehouseError):
            seg.billed_window()

    def test_rate_scales_with_size(self):
        xs = UsageSegment(1, WarehouseSize.XS, 0.0, HOUR).credits()
        xl = UsageSegment(1, WarehouseSize.XL, 0.0, HOUR).credits()
        assert xl == 16 * xs


class TestBillingMeter:
    def test_open_close_cycle(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 0.0, WarehouseSize.S)
        assert meter.is_billing(1)
        seg = meter.close_segment(1, HOUR)
        assert not meter.is_billing(1)
        assert seg.credits() == pytest.approx(2.0)

    def test_double_open_rejected(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 0.0, WarehouseSize.S)
        with pytest.raises(WarehouseError):
            meter.open_segment(1, 10.0, WarehouseSize.S)

    def test_close_unopened_rejected(self):
        with pytest.raises(WarehouseError):
            BillingMeter("WH").close_segment(1, 10.0)

    def test_close_before_open_rejected(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 100.0, WarehouseSize.S)
        with pytest.raises(WarehouseError):
            meter.close_segment(1, 50.0)

    def test_total_includes_open_segments_as_of(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 0.0, WarehouseSize.XS)
        assert meter.total_credits(as_of=HOUR) == pytest.approx(1.0)
        # Without as_of, open segments are not counted.
        assert meter.total_credits() == 0.0

    def test_reprice_changes_rate_without_new_minimum(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 0.0, WarehouseSize.XS)
        meter.reprice_segment(1, HOUR, WarehouseSize.S)
        meter.close_segment(1, 2 * HOUR)
        # 1 hour at 1 + 1 hour at 2.
        assert meter.total_credits() == pytest.approx(3.0)

    def test_reprice_short_continuation_has_no_minimum(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 0.0, WarehouseSize.XS)
        meter.reprice_segment(1, 120.0, WarehouseSize.S)
        meter.close_segment(1, 130.0)  # 10s continuation: no 60s minimum
        expected = 120 / HOUR * 1 + 10 / HOUR * 2
        assert meter.total_credits() == pytest.approx(expected)

    def test_minimum_charge_on_short_run(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 0.0, WarehouseSize.XS)
        meter.close_segment(1, 5.0)
        assert meter.total_credits() == pytest.approx(MINIMUM_BILLED_SECONDS / HOUR)

    def test_credits_in_window_clips(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 0.0, WarehouseSize.XS)
        meter.close_segment(1, 2 * HOUR)
        assert meter.credits_in_window(Window(0, HOUR)) == pytest.approx(1.0)
        assert meter.credits_in_window(Window(HOUR, 2 * HOUR)) == pytest.approx(1.0)
        assert meter.credits_in_window(Window(2 * HOUR, 3 * HOUR)) == 0.0

    def test_hourly_rollup_sums_to_window_credits(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 600.0, WarehouseSize.M)
        meter.close_segment(1, 3 * HOUR + 500.0)
        meter.open_segment(2, HOUR, WarehouseSize.M)
        meter.close_segment(2, HOUR + 900)
        window = Window(0, 4 * HOUR)
        rollup = meter.hourly_rollup(window)
        assert sum(rollup.values()) == pytest.approx(meter.credits_in_window(window))
        assert set(rollup) == {0, 1, 2, 3}

    def test_multiple_clusters_bill_independently(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 0.0, WarehouseSize.XS)
        meter.open_segment(2, 0.0, WarehouseSize.XS)
        meter.close_segment(1, HOUR)
        meter.close_segment(2, HOUR / 2)
        assert meter.total_credits() == pytest.approx(1.5)

    def test_active_cluster_seconds(self):
        meter = BillingMeter("WH")
        meter.open_segment(1, 0.0, WarehouseSize.XS)
        meter.close_segment(1, 100.0)
        meter.open_segment(2, 50.0, WarehouseSize.XS)
        meter.close_segment(2, 150.0)
        assert meter.active_cluster_seconds(Window(0, 200)) == pytest.approx(200.0)

    def test_open_cluster_ids(self):
        meter = BillingMeter("WH")
        meter.open_segment(3, 0.0, WarehouseSize.XS)
        meter.open_segment(1, 0.0, WarehouseSize.XS)
        assert meter.open_cluster_ids == [1, 3]
