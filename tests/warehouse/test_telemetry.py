"""Tests for the telemetry store."""

import pytest

from repro.common.errors import TelemetryError
from repro.common.simtime import Window
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.telemetry import ConfigSnapshot, TelemetryStore, WarehouseEvent
from repro.warehouse.types import WarehouseSize


def record(arrival: float, warehouse="WH", overhead=False, **kw) -> QueryRecord:
    r = QueryRecord(
        query_id=int(arrival * 1000),
        warehouse=warehouse,
        text_hash="t",
        template_hash="tpl",
        arrival_time=arrival,
        start_time=arrival,
        end_time=arrival + 1,
        execution_seconds=1.0,
        is_overhead=overhead,
        completed=True,
    )
    for k, v in kw.items():
        setattr(r, k, v)
    return r


class TestQueryHistory:
    def test_incomplete_record_rejected(self):
        store = TelemetryStore()
        r = record(1.0)
        r.completed = False
        with pytest.raises(TelemetryError):
            store.record_query(r)

    def test_sorted_by_arrival_regardless_of_insert_order(self):
        store = TelemetryStore()
        store.record_query(record(5.0))
        store.record_query(record(1.0))
        store.record_query(record(3.0))
        arrivals = [r.arrival_time for r in store.query_history("WH")]
        assert arrivals == [1.0, 3.0, 5.0]

    def test_window_filtering(self):
        store = TelemetryStore()
        for t in [1.0, 2.0, 3.0, 4.0]:
            store.record_query(record(t))
        got = store.query_history("WH", Window(2.0, 4.0))
        assert [r.arrival_time for r in got] == [2.0, 3.0]

    def test_overhead_filtered_by_default(self):
        store = TelemetryStore()
        store.record_query(record(1.0))
        store.record_query(record(2.0, overhead=True))
        assert len(store.query_history("WH")) == 1
        assert len(store.query_history("WH", include_overhead=True)) == 2

    def test_unknown_warehouse_empty(self):
        assert TelemetryStore().query_history("NOPE") == []

    def test_warehouses_listing(self):
        store = TelemetryStore()
        store.record_query(record(1.0, warehouse="B"))
        store.record_event(WarehouseEvent(0.0, "A", "create", "customer"))
        assert store.warehouses() == ["A", "B"]


class TestEvents:
    def test_kind_filter(self):
        store = TelemetryStore()
        store.record_event(WarehouseEvent(1.0, "WH", "resize", "keebo"))
        store.record_event(WarehouseEvent(2.0, "WH", "suspend", "system"))
        assert len(store.warehouse_events("WH", kind="resize")) == 1

    def test_window_filter(self):
        store = TelemetryStore()
        store.record_event(WarehouseEvent(1.0, "WH", "resize", "keebo"))
        store.record_event(WarehouseEvent(10.0, "WH", "resize", "keebo"))
        assert len(store.warehouse_events("WH", Window(0, 5))) == 1


class TestConfigHistory:
    def _store_with_history(self) -> TelemetryStore:
        store = TelemetryStore()
        store.record_config(
            "WH", ConfigSnapshot(0.0, WarehouseConfig(size=WarehouseSize.L), "customer")
        )
        store.record_config(
            "WH", ConfigSnapshot(10.0, WarehouseConfig(size=WarehouseSize.M), "keebo")
        )
        store.record_config(
            "WH", ConfigSnapshot(20.0, WarehouseConfig(size=WarehouseSize.S), "keebo")
        )
        return store

    def test_config_at(self):
        store = self._store_with_history()
        assert store.config_at("WH", 5.0).size == WarehouseSize.L
        assert store.config_at("WH", 15.0).size == WarehouseSize.M
        assert store.config_at("WH", 100.0).size == WarehouseSize.S

    def test_config_before_creation_returns_first(self):
        store = self._store_with_history()
        assert store.config_at("WH", -5.0).size == WarehouseSize.L

    def test_original_config_skips_keebo_changes(self):
        store = self._store_with_history()
        assert store.original_config("WH").size == WarehouseSize.L

    def test_original_config_tracks_customer_changes(self):
        store = self._store_with_history()
        store.record_config(
            "WH", ConfigSnapshot(30.0, WarehouseConfig(size=WarehouseSize.XL), "customer")
        )
        assert store.original_config("WH").size == WarehouseSize.XL
        # Bounded lookups still see the earlier customer config.
        assert store.original_config("WH", before=25.0).size == WarehouseSize.L

    def test_out_of_order_snapshot_rejected(self):
        store = self._store_with_history()
        with pytest.raises(TelemetryError):
            store.record_config(
                "WH", ConfigSnapshot(5.0, WarehouseConfig(), "customer")
            )

    def test_missing_history_raises(self):
        with pytest.raises(TelemetryError):
            TelemetryStore().config_at("WH", 0.0)
        with pytest.raises(TelemetryError):
            TelemetryStore().original_config("WH")
