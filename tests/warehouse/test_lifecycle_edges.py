"""Edge-case tests for warehouse lifecycle transitions and cluster bounds."""

import pytest

from repro.common.simtime import HOUR, MINUTE
from repro.warehouse.cluster import ClusterState
from repro.warehouse.types import WarehouseSize, WarehouseState

from tests.conftest import drive, make_account, make_requests, make_template


class TestAlterWhileSuspended:
    def test_resize_while_suspended_applies_on_resume(self):
        account, wh = make_account(size=WarehouseSize.S)
        warehouse = account.warehouse(wh)
        assert warehouse.state == WarehouseState.SUSPENDED
        warehouse.alter(size=WarehouseSize.L)
        template = make_template("x", base_work_seconds=8.0, scale_exponent=1.0, n_partitions=0)
        drive(account, wh, make_requests(template, [10.0]), 5 * MINUTE)
        record = account.telemetry.query_history(wh)[0]
        assert record.warehouse_size == WarehouseSize.L

    def test_suspend_interval_change_while_suspended(self):
        account, wh = make_account(auto_suspend_seconds=600.0)
        account.warehouse(wh).alter(auto_suspend_seconds=60.0)
        template = make_template("x", base_work_seconds=2.0)
        drive(account, wh, make_requests(template, [10.0]), 10 * MINUTE)
        # With the new 60s interval, a 10-minute horizon sees a suspend.
        assert account.warehouse(wh).state == WarehouseState.SUSPENDED


class TestResumeEdges:
    def test_resume_while_resuming_is_noop(self):
        account, wh = make_account()
        warehouse = account.warehouse(wh)
        template = make_template("x", base_work_seconds=2.0)
        account.schedule_workload(wh, make_requests(template, [10.0]))
        account.run_until(10.5)  # mid provisioning
        assert warehouse.state == WarehouseState.RESUMING
        warehouse.resume()  # explicit resume during RESUMING
        account.run_until(MINUTE)
        assert warehouse.state == WarehouseState.RUNNING
        assert len(warehouse.active_clusters()) == warehouse.config.min_clusters

    def test_suspend_then_resume_drops_then_rebuilds(self):
        account, wh = make_account()
        warehouse = account.warehouse(wh)
        drive(account, wh, make_requests(make_template("x", base_work_seconds=2.0), [5.0]), MINUTE)
        warehouse.suspend()
        assert warehouse.clusters == {}
        warehouse.resume()
        account.run_until(2 * MINUTE)
        assert warehouse.state == WarehouseState.RUNNING

    def test_query_arriving_during_resume_waits_for_clusters(self):
        account, wh = make_account()
        template = make_template("x", base_work_seconds=2.0)
        account.schedule_workload(wh, make_requests(template, [10.0, 10.2]))
        account.run_until(5 * MINUTE)
        records = account.telemetry.query_history(wh)
        assert len(records) == 2
        # Both queries started at or after the warehouse finished resuming.
        resume = account.telemetry.warehouse_events(wh, kind="resume")[0]
        assert all(r.start_time >= resume.time for r in records)


class TestClusterBoundReconciliation:
    def test_raising_min_clusters_starts_clusters(self):
        account, wh = make_account(
            min_clusters=1, max_clusters=3, auto_suspend_seconds=0.0
        )
        warehouse = account.warehouse(wh)
        drive(account, wh, make_requests(make_template("x", base_work_seconds=2.0), [5.0]), MINUTE)
        assert len(warehouse.active_clusters()) == 1
        warehouse.alter(min_clusters=3)
        assert len(warehouse.active_clusters()) == 3

    def test_lowering_max_clusters_retires_idle_ones(self):
        account, wh = make_account(
            min_clusters=3, max_clusters=3, auto_suspend_seconds=0.0
        )
        warehouse = account.warehouse(wh)
        drive(account, wh, make_requests(make_template("x", base_work_seconds=2.0), [5.0]), MINUTE)
        assert len(warehouse.active_clusters()) == 3
        warehouse.alter(min_clusters=1, max_clusters=1)
        assert len(warehouse.active_clusters()) == 1

    def test_lowering_max_below_busy_clusters_drains(self):
        account, wh = make_account(
            min_clusters=2, max_clusters=2, max_concurrency=1, auto_suspend_seconds=0.0
        )
        warehouse = account.warehouse(wh)
        template = make_template("long", base_work_seconds=120.0, n_partitions=0)
        drive(account, wh, make_requests(template, [5.0, 5.0]), 30.0)
        assert len(warehouse.active_clusters()) == 2
        assert warehouse.running_query_count == 2
        warehouse.alter(min_clusters=1, max_clusters=1)
        # Both clusters busy: one is marked draining, none killed mid-query.
        assert warehouse.running_query_count == 2
        assert len(warehouse.draining) == 1
        account.run_until(HOUR)
        assert len(warehouse.active_clusters()) == 1

    def test_billing_stops_for_retired_clusters(self):
        account, wh = make_account(
            min_clusters=2, max_clusters=2, auto_suspend_seconds=0.0
        )
        warehouse = account.warehouse(wh)
        drive(account, wh, make_requests(make_template("x", base_work_seconds=2.0), [5.0]), MINUTE)
        warehouse.alter(min_clusters=1, max_clusters=1)
        t0 = account.sim.now
        credits_at_change = warehouse.meter.total_credits(t0)
        account.run_until(t0 + HOUR)
        delta = warehouse.meter.total_credits(account.sim.now) - credits_at_change
        # Exactly one Small cluster for one hour.
        assert delta == pytest.approx(2.0, rel=0.05)


class TestShutdown:
    def test_shutdown_stops_policy_controller(self):
        account, wh = make_account()
        warehouse = account.warehouse(wh)
        before = account.sim.pending_events
        warehouse.shutdown()
        account.run_until(2 * HOUR)
        # No policy ticks keep re-scheduling themselves.
        assert account.sim.pending_events < before
