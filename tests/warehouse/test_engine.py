"""Tests for the discrete-event engine."""

import pytest

from repro.warehouse.engine import Simulation, SimulationError


class TestSimulation:
    def test_events_fire_in_time_order(self):
        sim = Simulation()
        fired = []
        sim.schedule(20.0, lambda: fired.append("b"))
        sim.schedule(10.0, lambda: fired.append("a"))
        sim.run_until(30.0)
        assert fired == ["a", "b"]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulation()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run_until(10.0)
        assert fired == [1, 2]

    def test_now_advances_to_end_time(self):
        sim = Simulation()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_scheduling_in_past_rejected(self):
        sim = Simulation(start_time=100.0)
        with pytest.raises(SimulationError):
            sim.schedule(50.0, lambda: None)

    def test_run_until_backwards_rejected(self):
        sim = Simulation(start_time=100.0)
        with pytest.raises(SimulationError):
            sim.run_until(50.0)

    def test_schedule_in_delay(self):
        sim = Simulation(start_time=10.0)
        times = []
        sim.schedule_in(5.0, lambda: times.append(sim.now))
        sim.run_until(20.0)
        assert times == [15.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulation().schedule_in(-1.0, lambda: None)

    def test_cancellation(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(10.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run_until(20.0)
        assert fired == []
        assert handle.cancelled

    def test_events_can_schedule_events(self):
        sim = Simulation()
        fired = []

        def first():
            sim.schedule_in(5.0, lambda: fired.append(sim.now))

        sim.schedule(10.0, first)
        sim.run_until(20.0)
        assert fired == [15.0]

    def test_events_beyond_horizon_stay_pending(self):
        sim = Simulation()
        fired = []
        sim.schedule(100.0, lambda: fired.append("late"))
        sim.run_until(50.0)
        assert fired == []
        assert sim.pending_events == 1
        sim.run_until(150.0)
        assert fired == ["late"]

    def test_run_all_drains(self):
        sim = Simulation()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.schedule(30.0, lambda: fired.append(2))
        sim.run_all()
        assert fired == [1, 2]
        assert sim.now == 30.0

    def test_run_all_with_hard_stop(self):
        sim = Simulation()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.schedule(30.0, lambda: fired.append(2))
        sim.run_all(hard_stop=20.0)
        assert fired == [1]
        assert sim.now == 20.0

    def test_processed_event_count(self):
        sim = Simulation()
        for t in range(5):
            sim.schedule(float(t), lambda: None)
        sim.run_until(10.0)
        assert sim.processed_events == 5


class TestPeriodicController:
    def test_fires_every_interval(self):
        sim = Simulation()
        ticks = []
        sim.add_controller(10.0, ticks.append)
        sim.run_until(35.0)
        assert ticks == [0.0, 10.0, 20.0, 30.0]

    def test_custom_start(self):
        sim = Simulation()
        ticks = []
        sim.add_controller(10.0, ticks.append, start=5.0)
        sim.run_until(30.0)
        assert ticks == [5.0, 15.0, 25.0]

    def test_stop_halts_future_fires(self):
        sim = Simulation()
        ticks = []
        controller = sim.add_controller(10.0, ticks.append)
        sim.run_until(15.0)
        controller.stop()
        sim.run_until(100.0)
        assert ticks == [0.0, 10.0]

    def test_zero_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulation().add_controller(0.0, lambda t: None)


class TestFailureContext:
    """A failing event must surface *when* it was scheduled and *who*
    scheduled it (regression: SimulationError used to re-raise bare)."""

    def test_event_error_carries_scheduled_time_and_cause(self):
        sim = Simulation()

        def explode():
            raise ValueError("boom")

        sim.schedule(125.0, explode, label="telemetry-flush")
        with pytest.raises(SimulationError) as excinfo:
            sim.run_until(200.0)
        message = str(excinfo.value)
        assert "t=125.000" in message
        assert "'telemetry-flush'" in message
        assert "ValueError" in message
        assert "boom" in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_unlabelled_event_still_reports_time(self):
        sim = Simulation()
        sim.schedule(10.0, lambda: 1 / 0)
        with pytest.raises(SimulationError) as excinfo:
            sim.run_all()
        assert "t=10.000" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ZeroDivisionError)

    def test_controller_failure_names_the_controller(self):
        sim = Simulation()

        def tick(now):
            if now >= 20.0:
                raise RuntimeError("tick failed")

        sim.add_controller(10.0, tick, name="optimizer[BI_WH]")
        with pytest.raises(SimulationError) as excinfo:
            sim.run_until(100.0)
        message = str(excinfo.value)
        assert "'optimizer[BI_WH]'" in message
        assert "t=20.000" in message
        assert sim.now == 20.0  # stopped at the failing instant

    def test_simulation_error_passes_through_unwrapped(self):
        sim = Simulation()

        def bad(now):
            sim.add_controller(-1.0, lambda t: None)

        sim.add_controller(10.0, bad, name="meta")
        with pytest.raises(SimulationError) as excinfo:
            sim.run_until(10.0)
        # Wrapped exactly once: the inner SimulationError is the cause, not
        # a SimulationError-in-SimulationError-in-... chain.
        assert isinstance(excinfo.value.__cause__, SimulationError)
        assert excinfo.value.__cause__.__cause__ is None


class TestPendingCounter:
    """`pending_events` is a live counter now, not a heap scan — these lock
    the counter to the ground truth under every schedule/cancel/pop path."""

    @staticmethod
    def _scan(sim):
        """The old O(heap) definition: ground truth for the counter."""
        return sum(1 for e in sim._heap if not e.cancelled)

    def test_schedule_and_run_keep_counter_exact(self):
        sim = Simulation()
        for t in range(10):
            sim.schedule(float(t), lambda: None)
        assert sim.pending_events == self._scan(sim) == 10
        sim.run_until(4.0)
        assert sim.pending_events == self._scan(sim) == 5
        sim.run_all()
        assert sim.pending_events == self._scan(sim) == 0

    def test_cancel_decrements_once(self):
        sim = Simulation()
        handle = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == self._scan(sim) == 1
        handle.cancel()  # double-cancel must not decrement again
        assert sim.pending_events == self._scan(sim) == 1
        sim.run_all()
        assert sim.pending_events == self._scan(sim) == 0

    def test_cancel_after_dispatch_is_a_noop(self):
        # A callback cancelling its *own* handle (a controller stopping
        # itself mid-dispatch) touches an event that already left the heap.
        sim = Simulation()
        handles = []

        def self_cancel():
            handles[0].cancel()

        handles.append(sim.schedule(10.0, self_cancel))
        sim.schedule(20.0, lambda: None)
        sim.run_until(15.0)
        assert sim.pending_events == self._scan(sim) == 1
        sim.run_all()
        assert sim.pending_events == self._scan(sim) == 0

    def test_cancelled_events_skipped_by_run_all(self):
        sim = Simulation()
        keep = []
        first = sim.schedule(10.0, lambda: keep.append("a"))
        sim.schedule(30.0, lambda: keep.append("b"))
        first.cancel()
        sim.run_all(hard_stop=20.0)  # pops the cancelled head lazily
        assert keep == []
        assert sim.pending_events == self._scan(sim) == 1
        sim.run_all()
        assert keep == ["b"]
        assert sim.pending_events == self._scan(sim) == 0

    def test_random_interleaving_matches_scan(self):
        from repro.common.rng import RngRegistry

        rng = RngRegistry(seed=20260806).stream("test.pending")
        sim = Simulation()
        live = []
        for step in range(300):
            choice = rng.random()
            if choice < 0.5:
                live.append(sim.schedule(sim.now + float(rng.integers(1, 50)), lambda: None))
            elif choice < 0.75 and live:
                live.pop(int(rng.integers(0, len(live)))).cancel()
            else:
                sim.run_until(sim.now + float(rng.integers(0, 25)))
            assert sim.pending_events == self._scan(sim)
        sim.run_all()
        assert sim.pending_events == self._scan(sim) == 0
