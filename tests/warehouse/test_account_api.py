"""Tests for the account container and the vendor-style client API."""

import pytest

from repro.common.errors import UnknownWarehouseError, WarehouseError
from repro.common.simtime import HOUR, Window
from repro.warehouse.account import Account, OverheadMeter
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize, WarehouseState

from tests.conftest import drive, make_account, make_requests, make_template


class TestAccount:
    def test_duplicate_warehouse_rejected(self):
        account = Account()
        account.create_warehouse("WH")
        with pytest.raises(WarehouseError):
            account.create_warehouse("WH")

    def test_unknown_warehouse(self):
        with pytest.raises(UnknownWarehouseError):
            Account().warehouse("NOPE")

    def test_total_credits_across_warehouses(self):
        account = Account(seed=1)
        account.create_warehouse("A", WarehouseConfig(size=WarehouseSize.XS, auto_suspend_seconds=60))
        account.create_warehouse("B", WarehouseConfig(size=WarehouseSize.XS, auto_suspend_seconds=60))
        template = make_template(base_work_seconds=5.0)
        account.schedule_workload("A", make_requests(template, [1.0]))
        account.schedule_workload("B", make_requests(template, [1.0]))
        account.run_until(HOUR)
        total = account.total_credits(Window(0, HOUR))
        a = account.warehouse("A").meter.credits_in_window(Window(0, HOUR))
        b = account.warehouse("B").meter.credits_in_window(Window(0, HOUR))
        assert total == pytest.approx(a + b)

    def test_spend_dollars_uses_price(self):
        account = Account(price_per_credit=2.5)
        account.create_warehouse("WH")
        assert account.total_spend_dollars() == 0.0
        account.overhead.record(0.0, 4.0, "test")
        assert account.total_spend_dollars() == pytest.approx(10.0)


class TestOverheadMeter:
    def test_negative_credits_rejected(self):
        with pytest.raises(WarehouseError):
            OverheadMeter().record(0.0, -1.0, "x")

    def test_window_totals(self):
        meter = OverheadMeter()
        meter.record(10.0, 1.0, "a")
        meter.record(5000.0, 2.0, "b")
        assert meter.total_credits() == 3.0
        assert meter.total_credits(Window(0, 100)) == 1.0

    def test_hourly_rollup(self):
        meter = OverheadMeter()
        meter.record(10.0, 1.0, "a")
        meter.record(HOUR + 5, 2.0, "b")
        rollup = meter.hourly_rollup(Window(0, 2 * HOUR))
        assert rollup == {0: 1.0, 1: 2.0}


class TestCloudWarehouseClient:
    def test_keebo_actor_is_metered(self):
        account, wh = make_account()
        client = CloudWarehouseClient(account, actor="keebo")
        client.query_history(wh)
        client.show_warehouses()
        assert account.overhead.total_credits() > 0

    def test_customer_actor_is_free(self):
        account, wh = make_account()
        client = CloudWarehouseClient(account, actor="customer")
        client.query_history(wh)
        client.alter_warehouse(wh, size=WarehouseSize.L)
        assert account.overhead.total_credits() == 0.0

    def test_alter_warehouse_records_initiator(self):
        account, wh = make_account()
        CloudWarehouseClient(account, actor="keebo").alter_warehouse(
            wh, size=WarehouseSize.L
        )
        snaps = account.telemetry.config_history(wh)
        assert snaps[-1].initiator == "keebo"

    def test_show_warehouses_reports_state(self):
        account, wh = make_account()
        rows = CloudWarehouseClient(account).show_warehouses()
        assert rows[0].name == wh
        assert rows[0].state == WarehouseState.SUSPENDED

    def test_describe_reflects_live_queue(self):
        account, wh = make_account(max_concurrency=1, auto_suspend_seconds=0.0)
        template = make_template(base_work_seconds=100.0, n_partitions=0)
        drive(account, wh, make_requests(template, [1.0, 1.0, 1.0]), 30.0)
        info = CloudWarehouseClient(account).describe_warehouse(wh)
        assert info.running_queries == 1
        assert info.queue_length == 2

    def test_metering_history_matches_meter(self):
        account, wh = make_account()
        drive(account, wh, make_requests(make_template(), [1.0]), HOUR)
        client = CloudWarehouseClient(account)
        window = Window(0, HOUR)
        rollup = client.metering_history(wh, window)
        assert sum(rollup.values()) == pytest.approx(client.credits_in_window(wh, window))

    def test_suspend_resume_via_client(self):
        account, wh = make_account()
        client = CloudWarehouseClient(account)
        client.resume_warehouse(wh)
        account.run_until(30.0)
        assert account.warehouse(wh).state == WarehouseState.RUNNING
        client.suspend_warehouse(wh)
        assert account.warehouse(wh).state == WarehouseState.SUSPENDED
