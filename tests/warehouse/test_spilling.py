"""Tests for memory spilling (§5.2's super-linear downsizing behaviour)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import MINUTE
from repro.warehouse.queries import QueryTemplate
from repro.warehouse.types import WarehouseSize

from tests.conftest import drive, make_account, make_requests


def memory_bound_template(min_size=WarehouseSize.M, spill=2.5) -> QueryTemplate:
    return QueryTemplate(
        name="join-heavy",
        base_work_seconds=64.0,
        scale_exponent=1.0,
        partitions=(),
        min_memory_size=min_size,
        spill_multiplier=spill,
    )


class TestTemplateSpilling:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QueryTemplate(name="x", base_work_seconds=1.0, spill_multiplier=0.5)

    def test_no_spill_at_or_above_threshold(self):
        t = memory_bound_template()
        assert t.spill_steps(WarehouseSize.M) == 0
        assert t.spill_steps(WarehouseSize.XL) == 0
        assert t.spill_factor(WarehouseSize.L) == 1.0

    def test_spill_steps_below_threshold(self):
        t = memory_bound_template()
        assert t.spill_steps(WarehouseSize.S) == 1
        assert t.spill_steps(WarehouseSize.XS) == 2

    def test_super_linear_latency_below_threshold(self):
        """Above the knee latency halves per size step (gamma=1); below it
        each step *worsens* latency by spill_multiplier on top."""
        t = memory_bound_template(spill=2.5)
        at_m = t.warm_latency(WarehouseSize.M)  # 16s
        at_s = t.warm_latency(WarehouseSize.S)  # 32 * 2.5 = 80s
        at_xs = t.warm_latency(WarehouseSize.XS)  # 64 * 6.25 = 400s
        assert at_s / at_m == pytest.approx(2 * 2.5)
        assert at_xs / at_s == pytest.approx(2 * 2.5)
        # Super-linear: one downsize step more than doubles latency.
        assert at_s > 2 * at_m

    def test_default_templates_never_spill(self):
        t = QueryTemplate(name="x", base_work_seconds=10.0)
        assert t.spill_factor(WarehouseSize.XS) == 1.0


class TestSimulatorSpilling:
    def run_on(self, size: WarehouseSize):
        account, wh = make_account(seed=19, size=size, auto_suspend_seconds=0.0)
        template = memory_bound_template()
        drive(account, wh, make_requests(template, [10.0]), 30 * MINUTE)
        return account.telemetry.query_history(wh)[0]

    def test_spilled_bytes_recorded(self):
        record = self.run_on(WarehouseSize.S)
        assert record.bytes_spilled > 0

    def test_no_spill_recorded_above_threshold(self):
        record = self.run_on(WarehouseSize.M)
        assert record.bytes_spilled == 0.0

    def test_latency_blowup_observable(self):
        fits = self.run_on(WarehouseSize.M)
        spills = self.run_on(WarehouseSize.S)
        assert spills.execution_seconds > 3.5 * fits.execution_seconds
