"""Unit tests for the burn-rate SLO engine."""

import json

import pytest

from repro.obs import (
    ObservabilityError,
    SeriesRegistry,
    SLOSpec,
    default_slos,
    evaluate_all,
)
from repro.obs.slo import evaluate

WIDTH = 100.0


def registry_with(name, kind, samples, width=WIDTH):
    reg = SeriesRegistry(bucket_seconds=width)
    series = reg.series(name, kind)
    for t, v in samples:
        series.record(t, v)
    return reg


def spec(**overrides):
    base = dict(
        name="latency.test",
        metric="repro.monitor.wh.latency_ratio",
        threshold=1.5,
        op="le",
        aggregate="max",
        window_seconds=4 * WIDTH,
        short_window_seconds=2 * WIDTH,
        burn_threshold=0.5,
    )
    base.update(overrides)
    return SLOSpec(**base)


class TestSpecValidation:
    def test_bad_op_rejected(self):
        with pytest.raises(ObservabilityError):
            spec(op="eq")

    def test_bad_aggregate_rejected(self):
        with pytest.raises(ObservabilityError):
            spec(aggregate="p99")

    def test_short_window_may_not_exceed_long(self):
        with pytest.raises(ObservabilityError):
            spec(window_seconds=100.0, short_window_seconds=200.0)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_burn_threshold_range(self, bad):
        with pytest.raises(ObservabilityError):
            spec(burn_threshold=bad)

    def test_bucket_is_bad_semantics(self):
        le = spec(op="le", threshold=1.0)
        assert not le.bucket_is_bad(1.0)
        assert le.bucket_is_bad(1.1)
        ge = spec(op="ge", threshold=1.0)
        assert not ge.bucket_is_bad(1.0)
        assert ge.bucket_is_bad(0.9)


class TestEvaluate:
    def test_no_series_returns_none(self):
        assert evaluate(spec(), SeriesRegistry()) is None

    def test_healthy_series_is_compliant(self):
        reg = registry_with(
            spec().metric, "gauge", [(i * WIDTH, 1.0) for i in range(8)]
        )
        result = evaluate(spec(), reg)
        assert result.ok
        assert result.bad_buckets == 0
        assert result.compliance == 1.0

    def test_sustained_breach_fires_at_the_tipping_bucket(self):
        # 8 consecutive bad buckets: both windows saturate immediately, so
        # the violation stamps the end of the first bad bucket.
        reg = registry_with(
            spec().metric, "gauge", [(i * WIDTH, 9.0) for i in range(8)]
        )
        result = evaluate(spec(), reg)
        assert len(result.violations) == 1
        v = result.violations[0]
        assert v.fired_at == WIDTH  # bucket_end(0)
        assert v.resolved_at is None  # still burning at end of series
        assert v.peak_burn == 1.0
        assert result.bad_buckets == 8

    def test_single_noisy_bucket_does_not_fire(self):
        samples = [(i * WIDTH, 1.0) for i in range(8)]
        samples[4] = (4 * WIDTH, 9.0)  # one bad bucket in a healthy run
        reg = registry_with(spec().metric, "gauge", samples)
        result = evaluate(spec(), reg)
        assert result.ok
        assert result.bad_buckets == 1

    def test_violation_resolves_on_short_window_recovery(self):
        samples = [(i * WIDTH, 9.0) for i in range(4)] + [
            (i * WIDTH, 1.0) for i in range(4, 10)
        ]
        reg = registry_with(spec().metric, "gauge", samples)
        result = evaluate(spec(), reg)
        assert len(result.violations) == 1
        v = result.violations[0]
        assert v.fired_at == WIDTH
        # Short window (2 buckets) recovers at bucket 5: both of {4, 5}
        # are good, even though the 4-bucket long window is still half bad.
        assert v.resolved_at == 6 * WIDTH
        assert result.ok is False

    def test_isolated_breach_in_sparse_series_fires(self):
        # In a sparse series an isolated bad bucket is 100% of the evidence
        # inside its windows, so it fires — and resolves once good buckets
        # resume and push it out of the short window.
        samples = [(i * WIDTH, 1.0) for i in range(4)] + [
            (14 * WIDTH, 9.0),
            (15 * WIDTH, 1.0),
            (16 * WIDTH, 1.0),
        ]
        reg = registry_with(spec().metric, "gauge", samples)
        result = evaluate(spec(), reg)
        assert len(result.violations) == 1
        v = result.violations[0]
        assert v.fired_at == 15 * WIDTH  # bucket_end(14)
        assert v.resolved_at == 17 * WIDTH  # bucket_end(16)

    def test_rate_aggregate_uses_bucket_sum_per_second(self):
        reg = registry_with(
            "repro.billing.wh.credits",
            "counter",
            [(i * WIDTH, 200.0) for i in range(4)],
        )
        burning = spec(
            metric="repro.billing.wh.credits", aggregate="rate", threshold=1.0
        )
        result = evaluate(burning, reg)  # 200 credits / 100 s = 2.0/s > 1.0
        assert result.bad_buckets == 4
        assert not result.ok


class TestReport:
    def test_evaluate_all_partitions_results_and_skips(self):
        reg = registry_with(spec().metric, "gauge", [(0.0, 1.0)])
        missing = spec(name="other.slo", metric="repro.monitor.wh.spill_fraction")
        report = evaluate_all([spec(), missing], reg)
        assert [r.spec.name for r in report.results] == ["latency.test"]
        assert report.skipped == ["other.slo"]
        assert report.ok

    def test_to_json_is_byte_stable_and_name_sorted(self):
        def build():
            reg = registry_with(spec().metric, "gauge", [(0.0, 9.0)])
            return evaluate_all(
                [spec(name="z.slo"), spec(name="a.slo")], reg
            ).to_json()

        a, b = build(), build()
        assert a == b
        names = [r["spec"]["name"] for r in json.loads(a)["results"]]
        assert names == sorted(names)


class TestDefaultSLOs:
    def test_inferred_from_recorded_series(self):
        reg = SeriesRegistry()
        reg.series("repro.monitor.etl_wh.latency_ratio", "gauge")
        reg.series("repro.monitor.etl_wh.spill_fraction", "gauge")
        reg.series("repro.billing.etl_wh.credits", "counter")
        reg.series("repro.engine.events", "counter")  # no SLO for this one
        specs = default_slos(reg, spend_budget_per_hour=36.0)
        assert [s.name for s in specs] == [
            "latency-ratio.etl_wh",
            "spend-rate.etl_wh",
            "spill-fraction.etl_wh",
        ]
        spend = next(s for s in specs if s.name == "spend-rate.etl_wh")
        assert spend.aggregate == "rate"
        assert spend.threshold == pytest.approx(0.01)  # 36 credits/h per second

    def test_empty_registry_yields_no_specs(self):
        assert default_slos(SeriesRegistry()) == []
