"""Exit-code and output contract of the `repro.cli obs` subcommands."""

import argparse
import io
import json
import pathlib

import pytest

from repro.obs import Recorder, RunManifest
from repro.obs.cli import (
    alerts,
    attribution,
    campaign,
    decisions,
    diff,
    profile,
    report,
    slo,
    store_run,
    summarize,
    watch,
    watchtower,
)


def _write_trace(path, n_spans=2, n_events=1, extra_attr=None):
    rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
    for i in range(n_spans):
        with rec.span("work", float(i)) as sp:
            if extra_attr:
                sp.set(**extra_attr)
    for i in range(n_events):
        rec.emit("ping", float(i))
    rec.sink.dump(path)
    return path


class TestSummarize:
    def test_trace_with_spans_exits_zero(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        text = out.getvalue()
        assert "scenario=t" in text
        assert "2 spans" in text
        assert "work" in text

    def test_zero_spans_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", n_spans=0)
        assert summarize(str(path), io.StringIO()) == 1

    def test_missing_file_exits_two(self, tmp_path):
        assert summarize(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2

    def test_garbage_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        assert summarize(str(path), io.StringIO()) == 2

    def test_non_record_json_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_type_key": 1}\n')
        assert summarize(str(path), io.StringIO()) == 2


def _write_observed_run(tmp_path, degraded=False):
    """A tiny run with sidecars, like `obs smoke` writes them."""
    rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
    gauge = rec.gauge("repro.monitor.wh.latency_ratio")
    for i in range(8):
        with rec.span("tick", float(i * 300)):
            gauge.set(9.0 if degraded else 1.0, time=float(i * 300))
    if degraded:
        rec.alerts.fire("optimizer.backoff.wh", 300.0, reason="latency")
        rec.alerts.resolve("optimizer.backoff.wh", 900.0)
    path = tmp_path / "t.jsonl"
    rec.sink.dump(path)
    (tmp_path / "t.jsonl.metrics.json").write_text(rec.metrics.to_json())
    (tmp_path / "t.jsonl.series.json").write_text(rec.series.to_json())
    return path


class TestSummarizeMetricsSidecar:
    def test_metrics_snapshot_rendered_when_sidecar_present(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        text = out.getvalue()
        assert "metrics snapshot:" in text
        assert "gauge extremes:" in text
        assert "repro.monitor.wh.latency_ratio" in text
        assert "min=1" in text

    def test_no_sidecar_keeps_summary_quiet(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "metrics snapshot" not in out.getvalue()

    def test_corrupt_sidecar_does_not_break_summary(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        (tmp_path / "t.jsonl.metrics.json").write_text("not json")
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "metrics snapshot" not in out.getvalue()

    def test_v1_sidecar_without_gauge_extremes_tolerated(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        snapshot = {"repro.test.depth": {"kind": "gauge", "value": 3.0, "updates": 1}}
        (tmp_path / "t.jsonl.metrics.json").write_text(json.dumps(snapshot))
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "min=3 max=3" in out.getvalue()


class TestDiff:
    def test_identical_exits_zero(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl")
        b = _write_trace(tmp_path / "b.jsonl")
        out = io.StringIO()
        assert diff(str(a), str(b), out) == 0
        assert "identical" in out.getvalue()

    def test_count_difference_reported(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", n_spans=2)
        b = _write_trace(tmp_path / "b.jsonl", n_spans=3)
        out = io.StringIO()
        assert diff(str(a), str(b), out) == 1
        assert "span 'work': 2 vs 3" in out.getvalue()

    def test_attr_difference_pinpoints_first_record(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", extra_attr={"x": 1})
        b = _write_trace(tmp_path / "b.jsonl", extra_attr={"x": 2})
        out = io.StringIO()
        assert diff(str(a), str(b), out) == 1
        assert "first differing record: line 2" in out.getvalue()

    def test_missing_file_exits_two(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl")
        assert diff(str(a), str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestProfile:
    def test_profiles_spans_and_critical_path(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert profile(str(path), out) == 0
        text = out.getvalue()
        assert "profile: 8 spans" in text
        assert "tick" in text
        assert "critical path" in text

    def test_diff_against_second_trace(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", n_spans=2)
        b = _write_trace(tmp_path / "b.jsonl", n_spans=3)
        out = io.StringIO()
        assert profile(str(a), out, diff_path=str(b)) == 0
        assert "count      2 -> 3" in out.getvalue()

    def test_zero_spans_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", n_spans=0)
        assert profile(str(path), io.StringIO()) == 1

    def test_missing_file_exits_two(self, tmp_path):
        assert profile(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestSlo:
    def test_healthy_run_evaluates_and_exits_zero(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert slo(str(path), out) == 0
        text = out.getvalue()
        assert "latency-ratio.wh" in text
        assert "compliance=100.0%" in text
        assert "ok=True" in text

    def test_violations_reported_but_still_exit_zero(self, tmp_path):
        path = _write_observed_run(tmp_path, degraded=True)
        out = io.StringIO()
        assert slo(str(path), out) == 0
        text = out.getvalue()
        assert "violation" in text
        assert "ok=False" in text

    def test_no_series_sidecar_exits_two(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        assert slo(str(path), io.StringIO()) == 2

    def test_no_evaluable_slo_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        snapshot = {
            "repro.engine.events": {
                "kind": "counter",
                "bucket_seconds": 300.0,
                "buckets": [[0, 1.0, 1.0, 1.0, 1.0, 1]],
            }
        }
        (tmp_path / "t.jsonl.series.json").write_text(json.dumps(snapshot))
        assert slo(str(path), io.StringIO()) == 1


class TestAlerts:
    def test_timeline_rendered(self, tmp_path):
        path = _write_observed_run(tmp_path, degraded=True)
        out = io.StringIO()
        assert alerts(str(path), out) == 0
        text = out.getvalue()
        assert "FIRE" in text
        assert "RESOLVE" in text
        assert "optimizer.backoff.wh" in text
        assert "0 still active" in text

    def test_quiet_run_exits_zero(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert alerts(str(path), out) == 0
        assert "no alert events" in out.getvalue()

    def test_missing_file_exits_two(self, tmp_path):
        assert alerts(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestReport:
    def test_renders_markdown_with_all_sections(self, tmp_path):
        path = _write_observed_run(tmp_path, degraded=True)
        out = io.StringIO()
        assert report(str(path), out) == 0
        markdown = (tmp_path / "t.jsonl.report.md").read_text()
        assert markdown.startswith("# Run report")
        assert "## Alert timeline" in markdown
        assert "## SLOs" in markdown
        assert "## Span profile" in markdown
        assert "`optimizer.backoff.wh`" in markdown

    def test_without_series_sidecar_omits_slo_section(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        target = tmp_path / "custom.md"
        assert report(str(path), io.StringIO(), out_path=str(target)) == 0
        markdown = target.read_text()
        assert "## SLOs" not in markdown
        assert "## Span profile" in markdown

    def test_missing_trace_exits_two(self, tmp_path):
        assert report(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestSummarizeAlertsSidecar:
    def test_alerts_sidecar_rendered_when_present(self, tmp_path):
        path = _write_observed_run(tmp_path, degraded=True)
        rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
        rec.alerts.fire("optimizer.backoff.wh", 300.0, reason="latency")
        rec.alerts.resolve("optimizer.backoff.wh", 900.0)
        rec.alerts.fire("monitor.slo_breach.wh", 1200.0, severity="critical")
        (tmp_path / "t.jsonl.alerts.json").write_text(rec.alerts.to_json())
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        text = out.getvalue()
        assert "alerts sidecar: 3 lifecycle events (2 fires, 1 resolves)" in text
        assert "top alerts by fires:" in text
        assert "still active at end of run: monitor.slo_breach.wh (critical)" in text

    def test_no_sidecar_keeps_summary_quiet(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "alerts sidecar" not in out.getvalue()

    def test_corrupt_sidecar_does_not_break_summary(self, tmp_path):
        path = _write_observed_run(tmp_path)
        (tmp_path / "t.jsonl.alerts.json").write_text("not json")
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "alerts sidecar" not in out.getvalue()


def _write_provenance_trace(path, conserve=True, warehouse="WH"):
    """A trace with provenance events; optionally break conservation."""
    savings = 0.1 + 0.2
    rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
    rec.emit(
        "provenance.decision", 600.0, warehouse=warehouse, seq=0, kind="learned",
        reason_code="learned.apply", target="cfg-a", interval=600.0,
    )
    rec.emit(
        "provenance.outcome", 1200.0, warehouse=warehouse, seq=0,
        window_start=600.0, window_end=1200.0, realized_credits=0.6,
        predicted_credits=0.5, error_credits=0.1, realized_p99=4.0,
        realized_queries=3, applied=True, apply_error="",
    )
    share = savings if conserve else savings / 2
    rec.emit(
        "provenance.attribution", 1800.0, warehouse=warehouse,
        window_start=0.0, window_end=1800.0, savings_credits=savings,
        shares=[{"decision_seq": 0, "overlap_seconds": 600.0, "credits": share}],
    )
    rec.emit(
        "optimizer.savings_report", 1800.0, warehouse=warehouse,
        savings_fraction=0.1, savings_credits=savings,
        window_start=0.0, window_end=1800.0,
    )
    rec.sink.dump(path)
    return path


class TestDecisions:
    def test_timeline_and_reason_codes_rendered(self, tmp_path):
        path = _write_provenance_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert decisions(str(path), out) == 0
        text = out.getvalue()
        assert "learned.apply" in text
        assert "cfg-a" in text
        assert "realized=0.6000cr" in text

    def test_no_provenance_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        assert decisions(str(path), io.StringIO()) == 1

    def test_missing_file_exits_two(self, tmp_path):
        assert decisions(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestAttribution:
    def test_conserved_trace_exits_zero(self, tmp_path):
        path = _write_provenance_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert attribution(str(path), out) == 0
        text = out.getvalue()
        assert "conserved" in text
        assert "VIOLATED" not in text

    def test_tampered_shares_exit_one(self, tmp_path):
        path = _write_provenance_trace(tmp_path / "t.jsonl", conserve=False)
        out = io.StringIO()
        assert attribution(str(path), out) == 1
        assert "VIOLATED" in out.getvalue()

    def test_no_attribution_events_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        assert attribution(str(path), io.StringIO()) == 1

    def test_out_writes_byte_stable_report(self, tmp_path):
        path = _write_provenance_trace(tmp_path / "t.jsonl")
        target = tmp_path / "attribution.json"
        assert attribution(str(path), io.StringIO(), out_path=str(target)) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == 1
        assert payload["warehouses"]["WH"]["conserved"] is True
        assert target.read_text().endswith("\n")


class TestStoreSubcommands:
    def _ingest(self, tmp_path):
        trace = _write_provenance_trace(tmp_path / "t.jsonl")
        store_path = tmp_path / "store.jsonl"
        args = argparse.Namespace(
            store_command="ingest", traces=[str(trace)], out=str(store_path)
        )
        out = io.StringIO()
        assert store_run(args, out) == 0
        return store_path, out.getvalue()

    def test_ingest_writes_store(self, tmp_path):
        store_path, text = self._ingest(tmp_path)
        assert "ingested" in text
        assert "run 't'" in text
        rows = [json.loads(line) for line in store_path.read_text().splitlines()]
        assert {row["kind"] for row in rows} >= {"manifest", "decision"}

    def test_query_filters_and_counts(self, tmp_path):
        store_path, _ = self._ingest(tmp_path)
        args = argparse.Namespace(
            store_command="query", store=str(store_path), warehouse=None,
            kind="decision", run=None, since=None, until=None,
            during_alerts=None, limit=50,
        )
        out = io.StringIO()
        assert store_run(args, out) == 0
        text = out.getvalue()
        assert "learned.apply" in text
        assert "1 row" in text

    def test_rollup_renders_table(self, tmp_path):
        store_path, _ = self._ingest(tmp_path)
        args = argparse.Namespace(
            store_command="rollup", store=str(store_path), bucket=3600.0
        )
        out = io.StringIO()
        assert store_run(args, out) == 0
        assert "WH" in out.getvalue()

    def test_top_renders_both_rankings(self, tmp_path):
        store_path, _ = self._ingest(tmp_path)
        args = argparse.Namespace(store_command="top", store=str(store_path), k=5)
        out = io.StringIO()
        assert store_run(args, out) == 0
        text = out.getvalue()
        assert "savings" in text
        assert "regret" in text


class TestMainCliWiring:
    def test_obs_subcommand_routes(self, tmp_path, capsys):
        from repro.cli import main

        path = _write_trace(tmp_path / "t.jsonl")
        assert main(["obs", "summarize", str(path)]) == 0
        assert "2 spans" in capsys.readouterr().out

    def test_obs_requires_subcommand(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["obs"])


class TestSummarizeJson:
    def test_json_format_is_byte_stable_and_machine_readable(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        out_a, out_b = io.StringIO(), io.StringIO()
        assert summarize(str(path), out_a, fmt="json") == 0
        assert summarize(str(path), out_b, fmt="json") == 0
        assert out_a.getvalue() == out_b.getvalue()
        payload = json.loads(out_a.getvalue())
        assert payload["schema"] == 1
        assert payload["n_spans"] == 2
        assert payload["spans_by_name"] == {"work": 2}
        assert payload["manifests"][0]["scenario"] == "t"
        assert payload["sidecars"]["metrics"] is False
        # The shared serializer's shape: indented, sorted, trailing newline.
        assert out_a.getvalue().endswith("}\n")
        assert '"events_by_name"' in out_a.getvalue()

    def test_json_format_sees_sidecars(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert summarize(str(path), out, fmt="json") == 0
        assert json.loads(out.getvalue())["sidecars"]["metrics"] is True

    def test_json_zero_spans_still_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", n_spans=0)
        out = io.StringIO()
        assert summarize(str(path), out, fmt="json") == 1
        assert json.loads(out.getvalue())["n_spans"] == 0


class TestProfileFolded:
    DATA = pathlib.Path(__file__).parent / "data"

    def test_golden_folded_output(self):
        out = io.StringIO()
        assert profile(str(self.DATA / "golden_trace.jsonl"), out, folded=True) == 0
        golden = (self.DATA / "golden_profile.folded").read_text(encoding="utf-8")
        assert out.getvalue() == golden

    def test_folded_zero_spans_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", n_spans=0)
        assert profile(str(path), io.StringIO(), folded=True) == 1

    def test_folded_lines_are_stack_weight_pairs(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert profile(str(path), out, folded=True) == 0
        for line in out.getvalue().splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert stack
            assert int(weight) >= 0


class TestWatchtowerCli:
    def _store_path(self, tmp_path):
        trace = _write_provenance_trace(tmp_path / "t.jsonl")
        store_path = tmp_path / "store.jsonl"
        args = argparse.Namespace(
            store_command="ingest", traces=[str(trace)], out=str(store_path)
        )
        assert store_run(args, io.StringIO()) == 0
        return store_path

    def _args(self, store_path, **overrides):
        from repro.obs.watchtower import WatchtowerThresholds

        defaults = dict(
            store=str(store_path),
            baseline=None,
            update_baseline=False,
            fmt="text",
            out=None,
            savings_drop_tolerance=WatchtowerThresholds.savings_drop_tolerance,
            alert_storm_fires=WatchtowerThresholds.alert_storm_fires,
            calibration_drift_tolerance=(
                WatchtowerThresholds.calibration_drift_tolerance
            ),
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_bless_then_gate_ok(self, tmp_path):
        store_path = self._store_path(tmp_path)
        out = io.StringIO()
        assert watchtower(self._args(store_path, update_baseline=True), out) == 0
        assert "blessed" in out.getvalue()
        assert (tmp_path / "store.jsonl.baseline.json").is_file()
        out = io.StringIO()
        assert watchtower(self._args(store_path), out) == 0
        assert "verdict: OK" in out.getvalue()

    def test_regressed_store_exits_one(self, tmp_path):
        good = self._store_path(tmp_path)
        baseline = tmp_path / "blessed.json"
        assert watchtower(
            self._args(good, update_baseline=True, baseline=str(baseline)),
            io.StringIO(),
        ) == 0
        # A differently-named warehouse regresses (missing from the store).
        bad_trace = _write_provenance_trace(
            tmp_path / "bad.jsonl", warehouse="OTHER_WH"
        )
        bad_store = tmp_path / "bad_store.jsonl"
        args = argparse.Namespace(
            store_command="ingest", traces=[str(bad_trace)], out=str(bad_store)
        )
        assert store_run(args, io.StringIO()) == 0
        out = io.StringIO()
        assert watchtower(
            self._args(bad_store, baseline=str(baseline)), out
        ) == 1
        assert "missing_warehouse" in out.getvalue()

    def test_json_and_markdown_renders(self, tmp_path):
        store_path = self._store_path(tmp_path)
        out = io.StringIO()
        assert watchtower(self._args(store_path, fmt="json"), out) == 0
        assert json.loads(out.getvalue())["ok"] is True
        report_path = tmp_path / "tower.md"
        out = io.StringIO()
        assert watchtower(
            self._args(store_path, fmt="markdown", out=str(report_path)), out
        ) == 0
        assert report_path.read_text(encoding="utf-8").startswith(
            "# Fleet watchtower"
        )

    def test_missing_store_exits_two(self, tmp_path):
        assert watchtower(
            self._args(tmp_path / "absent.jsonl"), io.StringIO()
        ) == 2

    def test_missing_explicit_baseline_exits_two(self, tmp_path):
        store_path = self._store_path(tmp_path)
        assert watchtower(
            self._args(store_path, baseline=str(tmp_path / "nope.json")),
            io.StringIO(),
        ) == 2


class TestWatchCli:
    def _args(self, directory, **overrides):
        defaults = dict(
            dir=str(directory), follow=False, interval=0.01,
            max_polls=3, summary=None,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def _beats(self, progress, complete=True):
        from repro.obs.stream import write_heartbeat

        write_heartbeat(progress, 0, status="start", scenario="s", protocol="p")
        write_heartbeat(
            progress, 0, status="chunk", seq=0, records=5, spans=4,
            events=1, sim_time=60.0,
        )
        if complete:
            write_heartbeat(
                progress, 0, status="done", chunks=1, records=5, spans=4,
                events=1, sim_time=60.0,
            )

    def test_renders_progress_table(self, tmp_path):
        progress = tmp_path / "progress"
        self._beats(progress)
        out = io.StringIO()
        assert watch(self._args(tmp_path), out) == 0
        text = out.getvalue()
        assert "done" in text
        assert "campaign complete" in text
        # Two renders of the same heartbeats are byte-identical.
        out2 = io.StringIO()
        assert watch(self._args(tmp_path), out2) == 0
        assert out2.getvalue() == text

    def test_accepts_progress_dir_directly_and_writes_summary(self, tmp_path):
        progress = tmp_path / "progress"
        self._beats(progress)
        summary_path = tmp_path / "summary.json"
        out = io.StringIO()
        assert watch(
            self._args(progress, summary=str(summary_path)), out
        ) == 0
        assert json.loads(summary_path.read_text())["complete"] is True

    def test_follow_terminates_on_incomplete_campaign(self, tmp_path):
        progress = tmp_path / "progress"
        self._beats(progress, complete=False)
        out = io.StringIO()
        assert watch(self._args(tmp_path, follow=True, max_polls=2), out) == 0
        assert "in flight" in out.getvalue()

    def test_missing_dir_exits_two(self, tmp_path):
        assert watch(self._args(tmp_path / "absent"), io.StringIO()) == 2

    def test_empty_dir_exits_one(self, tmp_path):
        assert watch(self._args(tmp_path), io.StringIO()) == 1


class TestCampaignCli:
    def test_streamed_campaign_writes_all_sidecars(self, tmp_path):
        args = argparse.Namespace(
            scenarios=1, seed=123, workers=0,
            out=str(tmp_path / "c.jsonl"), dir=None,
            chunk_events=200, spill_records=300,
        )
        out = io.StringIO()
        assert campaign(args, out) == 0
        assert "campaign: 1 scenario(s)" in out.getvalue()
        for suffix in (
            "", ".metrics.json", ".series.json", ".alerts.json",
            ".campaign.json", ".resources.json",
        ):
            assert (tmp_path / f"c.jsonl{suffix}").is_file(), suffix
        summary = json.loads((tmp_path / "c.jsonl.campaign.json").read_text())
        assert summary["complete"] is True
        resources = json.loads((tmp_path / "c.jsonl.resources.json").read_text())
        assert resources["schema"] == 1
        # The watch view over the finished campaign renders and exits 0.
        watch_args = argparse.Namespace(
            dir=str(tmp_path / "c.jsonl.stream"), follow=False,
            interval=0.01, max_polls=1, summary=None,
        )
        assert watch(watch_args, io.StringIO()) == 0
