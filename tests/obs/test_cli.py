"""Exit-code and output contract of the `repro.cli obs` subcommands."""

import argparse
import io
import json

import pytest

from repro.obs import Recorder, RunManifest
from repro.obs.cli import (
    alerts,
    attribution,
    decisions,
    diff,
    profile,
    report,
    slo,
    store_run,
    summarize,
)


def _write_trace(path, n_spans=2, n_events=1, extra_attr=None):
    rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
    for i in range(n_spans):
        with rec.span("work", float(i)) as sp:
            if extra_attr:
                sp.set(**extra_attr)
    for i in range(n_events):
        rec.emit("ping", float(i))
    rec.sink.dump(path)
    return path


class TestSummarize:
    def test_trace_with_spans_exits_zero(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        text = out.getvalue()
        assert "scenario=t" in text
        assert "2 spans" in text
        assert "work" in text

    def test_zero_spans_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", n_spans=0)
        assert summarize(str(path), io.StringIO()) == 1

    def test_missing_file_exits_two(self, tmp_path):
        assert summarize(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2

    def test_garbage_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        assert summarize(str(path), io.StringIO()) == 2

    def test_non_record_json_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_type_key": 1}\n')
        assert summarize(str(path), io.StringIO()) == 2


def _write_observed_run(tmp_path, degraded=False):
    """A tiny run with sidecars, like `obs smoke` writes them."""
    rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
    gauge = rec.gauge("repro.monitor.wh.latency_ratio")
    for i in range(8):
        with rec.span("tick", float(i * 300)):
            gauge.set(9.0 if degraded else 1.0, time=float(i * 300))
    if degraded:
        rec.alerts.fire("optimizer.backoff.wh", 300.0, reason="latency")
        rec.alerts.resolve("optimizer.backoff.wh", 900.0)
    path = tmp_path / "t.jsonl"
    rec.sink.dump(path)
    (tmp_path / "t.jsonl.metrics.json").write_text(rec.metrics.to_json())
    (tmp_path / "t.jsonl.series.json").write_text(rec.series.to_json())
    return path


class TestSummarizeMetricsSidecar:
    def test_metrics_snapshot_rendered_when_sidecar_present(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        text = out.getvalue()
        assert "metrics snapshot:" in text
        assert "gauge extremes:" in text
        assert "repro.monitor.wh.latency_ratio" in text
        assert "min=1" in text

    def test_no_sidecar_keeps_summary_quiet(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "metrics snapshot" not in out.getvalue()

    def test_corrupt_sidecar_does_not_break_summary(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        (tmp_path / "t.jsonl.metrics.json").write_text("not json")
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "metrics snapshot" not in out.getvalue()

    def test_v1_sidecar_without_gauge_extremes_tolerated(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        snapshot = {"repro.test.depth": {"kind": "gauge", "value": 3.0, "updates": 1}}
        (tmp_path / "t.jsonl.metrics.json").write_text(json.dumps(snapshot))
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "min=3 max=3" in out.getvalue()


class TestDiff:
    def test_identical_exits_zero(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl")
        b = _write_trace(tmp_path / "b.jsonl")
        out = io.StringIO()
        assert diff(str(a), str(b), out) == 0
        assert "identical" in out.getvalue()

    def test_count_difference_reported(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", n_spans=2)
        b = _write_trace(tmp_path / "b.jsonl", n_spans=3)
        out = io.StringIO()
        assert diff(str(a), str(b), out) == 1
        assert "span 'work': 2 vs 3" in out.getvalue()

    def test_attr_difference_pinpoints_first_record(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", extra_attr={"x": 1})
        b = _write_trace(tmp_path / "b.jsonl", extra_attr={"x": 2})
        out = io.StringIO()
        assert diff(str(a), str(b), out) == 1
        assert "first differing record: line 2" in out.getvalue()

    def test_missing_file_exits_two(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl")
        assert diff(str(a), str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestProfile:
    def test_profiles_spans_and_critical_path(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert profile(str(path), out) == 0
        text = out.getvalue()
        assert "profile: 8 spans" in text
        assert "tick" in text
        assert "critical path" in text

    def test_diff_against_second_trace(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", n_spans=2)
        b = _write_trace(tmp_path / "b.jsonl", n_spans=3)
        out = io.StringIO()
        assert profile(str(a), out, diff_path=str(b)) == 0
        assert "count      2 -> 3" in out.getvalue()

    def test_zero_spans_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", n_spans=0)
        assert profile(str(path), io.StringIO()) == 1

    def test_missing_file_exits_two(self, tmp_path):
        assert profile(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestSlo:
    def test_healthy_run_evaluates_and_exits_zero(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert slo(str(path), out) == 0
        text = out.getvalue()
        assert "latency-ratio.wh" in text
        assert "compliance=100.0%" in text
        assert "ok=True" in text

    def test_violations_reported_but_still_exit_zero(self, tmp_path):
        path = _write_observed_run(tmp_path, degraded=True)
        out = io.StringIO()
        assert slo(str(path), out) == 0
        text = out.getvalue()
        assert "violation" in text
        assert "ok=False" in text

    def test_no_series_sidecar_exits_two(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        assert slo(str(path), io.StringIO()) == 2

    def test_no_evaluable_slo_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        snapshot = {
            "repro.engine.events": {
                "kind": "counter",
                "bucket_seconds": 300.0,
                "buckets": [[0, 1.0, 1.0, 1.0, 1.0, 1]],
            }
        }
        (tmp_path / "t.jsonl.series.json").write_text(json.dumps(snapshot))
        assert slo(str(path), io.StringIO()) == 1


class TestAlerts:
    def test_timeline_rendered(self, tmp_path):
        path = _write_observed_run(tmp_path, degraded=True)
        out = io.StringIO()
        assert alerts(str(path), out) == 0
        text = out.getvalue()
        assert "FIRE" in text
        assert "RESOLVE" in text
        assert "optimizer.backoff.wh" in text
        assert "0 still active" in text

    def test_quiet_run_exits_zero(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert alerts(str(path), out) == 0
        assert "no alert events" in out.getvalue()

    def test_missing_file_exits_two(self, tmp_path):
        assert alerts(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestReport:
    def test_renders_markdown_with_all_sections(self, tmp_path):
        path = _write_observed_run(tmp_path, degraded=True)
        out = io.StringIO()
        assert report(str(path), out) == 0
        markdown = (tmp_path / "t.jsonl.report.md").read_text()
        assert markdown.startswith("# Run report")
        assert "## Alert timeline" in markdown
        assert "## SLOs" in markdown
        assert "## Span profile" in markdown
        assert "`optimizer.backoff.wh`" in markdown

    def test_without_series_sidecar_omits_slo_section(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        target = tmp_path / "custom.md"
        assert report(str(path), io.StringIO(), out_path=str(target)) == 0
        markdown = target.read_text()
        assert "## SLOs" not in markdown
        assert "## Span profile" in markdown

    def test_missing_trace_exits_two(self, tmp_path):
        assert report(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestSummarizeAlertsSidecar:
    def test_alerts_sidecar_rendered_when_present(self, tmp_path):
        path = _write_observed_run(tmp_path, degraded=True)
        rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
        rec.alerts.fire("optimizer.backoff.wh", 300.0, reason="latency")
        rec.alerts.resolve("optimizer.backoff.wh", 900.0)
        rec.alerts.fire("monitor.slo_breach.wh", 1200.0, severity="critical")
        (tmp_path / "t.jsonl.alerts.json").write_text(rec.alerts.to_json())
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        text = out.getvalue()
        assert "alerts sidecar: 3 lifecycle events (2 fires, 1 resolves)" in text
        assert "top alerts by fires:" in text
        assert "still active at end of run: monitor.slo_breach.wh (critical)" in text

    def test_no_sidecar_keeps_summary_quiet(self, tmp_path):
        path = _write_observed_run(tmp_path)
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "alerts sidecar" not in out.getvalue()

    def test_corrupt_sidecar_does_not_break_summary(self, tmp_path):
        path = _write_observed_run(tmp_path)
        (tmp_path / "t.jsonl.alerts.json").write_text("not json")
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        assert "alerts sidecar" not in out.getvalue()


def _write_provenance_trace(path, conserve=True):
    """A trace with provenance events; optionally break conservation."""
    savings = 0.1 + 0.2
    rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
    rec.emit(
        "provenance.decision", 600.0, warehouse="WH", seq=0, kind="learned",
        reason_code="learned.apply", target="cfg-a", interval=600.0,
    )
    rec.emit(
        "provenance.outcome", 1200.0, warehouse="WH", seq=0,
        window_start=600.0, window_end=1200.0, realized_credits=0.6,
        predicted_credits=0.5, error_credits=0.1, realized_p99=4.0,
        realized_queries=3, applied=True, apply_error="",
    )
    share = savings if conserve else savings / 2
    rec.emit(
        "provenance.attribution", 1800.0, warehouse="WH",
        window_start=0.0, window_end=1800.0, savings_credits=savings,
        shares=[{"decision_seq": 0, "overlap_seconds": 600.0, "credits": share}],
    )
    rec.emit(
        "optimizer.savings_report", 1800.0, warehouse="WH",
        savings_fraction=0.1, savings_credits=savings,
        window_start=0.0, window_end=1800.0,
    )
    rec.sink.dump(path)
    return path


class TestDecisions:
    def test_timeline_and_reason_codes_rendered(self, tmp_path):
        path = _write_provenance_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert decisions(str(path), out) == 0
        text = out.getvalue()
        assert "learned.apply" in text
        assert "cfg-a" in text
        assert "realized=0.6000cr" in text

    def test_no_provenance_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        assert decisions(str(path), io.StringIO()) == 1

    def test_missing_file_exits_two(self, tmp_path):
        assert decisions(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestAttribution:
    def test_conserved_trace_exits_zero(self, tmp_path):
        path = _write_provenance_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert attribution(str(path), out) == 0
        text = out.getvalue()
        assert "conserved" in text
        assert "VIOLATED" not in text

    def test_tampered_shares_exit_one(self, tmp_path):
        path = _write_provenance_trace(tmp_path / "t.jsonl", conserve=False)
        out = io.StringIO()
        assert attribution(str(path), out) == 1
        assert "VIOLATED" in out.getvalue()

    def test_no_attribution_events_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        assert attribution(str(path), io.StringIO()) == 1

    def test_out_writes_byte_stable_report(self, tmp_path):
        path = _write_provenance_trace(tmp_path / "t.jsonl")
        target = tmp_path / "attribution.json"
        assert attribution(str(path), io.StringIO(), out_path=str(target)) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == 1
        assert payload["warehouses"]["WH"]["conserved"] is True
        assert target.read_text().endswith("\n")


class TestStoreSubcommands:
    def _ingest(self, tmp_path):
        trace = _write_provenance_trace(tmp_path / "t.jsonl")
        store_path = tmp_path / "store.jsonl"
        args = argparse.Namespace(
            store_command="ingest", traces=[str(trace)], out=str(store_path)
        )
        out = io.StringIO()
        assert store_run(args, out) == 0
        return store_path, out.getvalue()

    def test_ingest_writes_store(self, tmp_path):
        store_path, text = self._ingest(tmp_path)
        assert "ingested" in text
        assert "run 't'" in text
        rows = [json.loads(line) for line in store_path.read_text().splitlines()]
        assert {row["kind"] for row in rows} >= {"manifest", "decision"}

    def test_query_filters_and_counts(self, tmp_path):
        store_path, _ = self._ingest(tmp_path)
        args = argparse.Namespace(
            store_command="query", store=str(store_path), warehouse=None,
            kind="decision", run=None, since=None, until=None,
            during_alerts=None, limit=50,
        )
        out = io.StringIO()
        assert store_run(args, out) == 0
        text = out.getvalue()
        assert "learned.apply" in text
        assert "1 row" in text

    def test_rollup_renders_table(self, tmp_path):
        store_path, _ = self._ingest(tmp_path)
        args = argparse.Namespace(
            store_command="rollup", store=str(store_path), bucket=3600.0
        )
        out = io.StringIO()
        assert store_run(args, out) == 0
        assert "WH" in out.getvalue()

    def test_top_renders_both_rankings(self, tmp_path):
        store_path, _ = self._ingest(tmp_path)
        args = argparse.Namespace(store_command="top", store=str(store_path), k=5)
        out = io.StringIO()
        assert store_run(args, out) == 0
        text = out.getvalue()
        assert "savings" in text
        assert "regret" in text


class TestMainCliWiring:
    def test_obs_subcommand_routes(self, tmp_path, capsys):
        from repro.cli import main

        path = _write_trace(tmp_path / "t.jsonl")
        assert main(["obs", "summarize", str(path)]) == 0
        assert "2 spans" in capsys.readouterr().out

    def test_obs_requires_subcommand(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["obs"])
