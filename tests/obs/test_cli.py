"""Exit-code and output contract of `repro.cli obs summarize|diff`."""

import io

import pytest

from repro.obs import Recorder, RunManifest
from repro.obs.cli import diff, summarize


def _write_trace(path, n_spans=2, n_events=1, extra_attr=None):
    rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
    for i in range(n_spans):
        with rec.span("work", float(i)) as sp:
            if extra_attr:
                sp.set(**extra_attr)
    for i in range(n_events):
        rec.emit("ping", float(i))
    rec.sink.dump(path)
    return path


class TestSummarize:
    def test_trace_with_spans_exits_zero(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        out = io.StringIO()
        assert summarize(str(path), out) == 0
        text = out.getvalue()
        assert "scenario=t" in text
        assert "2 spans" in text
        assert "work" in text

    def test_zero_spans_exits_one(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", n_spans=0)
        assert summarize(str(path), io.StringIO()) == 1

    def test_missing_file_exits_two(self, tmp_path):
        assert summarize(str(tmp_path / "absent.jsonl"), io.StringIO()) == 2

    def test_garbage_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        assert summarize(str(path), io.StringIO()) == 2

    def test_non_record_json_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_type_key": 1}\n')
        assert summarize(str(path), io.StringIO()) == 2


class TestDiff:
    def test_identical_exits_zero(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl")
        b = _write_trace(tmp_path / "b.jsonl")
        out = io.StringIO()
        assert diff(str(a), str(b), out) == 0
        assert "identical" in out.getvalue()

    def test_count_difference_reported(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", n_spans=2)
        b = _write_trace(tmp_path / "b.jsonl", n_spans=3)
        out = io.StringIO()
        assert diff(str(a), str(b), out) == 1
        assert "span 'work': 2 vs 3" in out.getvalue()

    def test_attr_difference_pinpoints_first_record(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", extra_attr={"x": 1})
        b = _write_trace(tmp_path / "b.jsonl", extra_attr={"x": 2})
        out = io.StringIO()
        assert diff(str(a), str(b), out) == 1
        assert "first differing record: line 2" in out.getvalue()

    def test_missing_file_exits_two(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl")
        assert diff(str(a), str(tmp_path / "absent.jsonl"), io.StringIO()) == 2


class TestMainCliWiring:
    def test_obs_subcommand_routes(self, tmp_path, capsys):
        from repro.cli import main

        path = _write_trace(tmp_path / "t.jsonl")
        assert main(["obs", "summarize", str(path)]) == 0
        assert "2 spans" in capsys.readouterr().out

    def test_obs_requires_subcommand(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["obs"])
