"""Unit tests for the trace layer: spans, events, sessions, exports."""

import json

import pytest

from repro import obs
from repro.obs import ObservabilityError, Recorder, RunManifest, TraceSink
from repro.obs import trace as trace_mod


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test must leave the global session disabled."""
    assert obs.recorder() is None
    yield
    if obs.enabled():  # a failed test mustn't poison the rest of the suite
        obs.stop()
    assert obs.recorder() is None


class TestRecorder:
    def test_span_ids_are_sequential_and_nested(self):
        rec = Recorder()
        with rec.span("outer", 10.0) as outer:
            with rec.span("inner", 10.0) as inner:
                pass
        assert outer.span_id == 1
        assert inner.span_id == 2
        assert inner.parent_id == 1
        assert outer.parent_id is None
        # Children close (and are written) before their parents.
        assert [r["name"] for r in rec.sink.records] == ["inner", "outer"]

    def test_event_links_to_innermost_open_span(self):
        rec = Recorder()
        with rec.span("outer", 5.0):
            rec.emit("hello", 5.0, detail="x")
        rec.emit("goodbye", 6.0)
        events = [r for r in rec.sink.records if r["type"] == "event"]
        assert events[0]["span"] == 1
        assert events[0]["attrs"] == {"detail": "x"}
        assert events[1]["span"] is None

    def test_span_set_adds_attrs_while_open(self):
        rec = Recorder()
        with rec.span("work", 1.0) as sp:
            sp.set(result=42)
            sp.set_end(3.0)
        record = rec.sink.records[0]
        assert record["attrs"]["result"] == 42
        assert record["time"] == 1.0
        assert record["time_end"] == 3.0

    def test_exception_recorded_and_reraised(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            with rec.span("work", 1.0):
                raise ValueError("boom")
        assert rec.sink.records[0]["attrs"]["error"] == "ValueError"

    def test_out_of_order_close_rejected(self):
        rec = Recorder()
        outer = rec.span("outer", 1.0)
        rec.span("inner", 1.0)  # opened, still on the stack
        with pytest.raises(ObservabilityError):
            outer.__exit__(None, None, None)

    def test_manifest_is_first_record(self):
        manifest = RunManifest(scenario="t", seed=1, config_hash="ab")
        rec = Recorder(manifest=manifest)
        rec.emit("e", 0.0)
        first = rec.sink.records[0]
        assert first["type"] == "manifest"
        assert first["schema"] == obs.TRACE_SCHEMA_VERSION
        assert first["scenario"] == "t"

    def test_attrs_coerced_to_json_types(self):
        import numpy as np

        rec = Recorder()
        rec.emit(
            "e",
            0.0,
            n=np.int64(3),
            xs=(1, 2),
            nested={"b": np.float64(0.5), "a": None},
        )
        attrs = rec.sink.records[0]["attrs"]
        assert attrs == {"n": 3, "xs": [1, 2], "nested": {"a": None, "b": 0.5}}
        json.dumps(attrs)  # plain JSON types only


class TestSinkExport:
    def test_jsonl_one_sorted_compact_line_per_record(self):
        rec = Recorder()
        with rec.span("w", 1.0):
            rec.emit("e", 1.0, z=1, a=2)
        lines = rec.sink.to_jsonl().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert line == json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))

    def test_dump_writes_jsonl(self, tmp_path):
        rec = Recorder()
        rec.emit("e", 1.0)
        path = tmp_path / "trace.jsonl"
        rec.sink.dump(path)
        assert path.read_text() == rec.sink.to_jsonl()


class TestGlobalSession:
    def test_module_api_is_noop_when_disabled(self):
        # Must not raise, must not record anywhere.
        obs.emit("e", 0.0)
        with obs.span("s", 0.0) as sp:
            sp.set(x=1)
        obs.counter("repro.t.c").inc()
        obs.gauge("repro.t.g").set(1.0)
        obs.histogram("repro.t.h").observe(1.0)
        assert sp is trace_mod.NULL_SPAN

    def test_observed_installs_and_removes_recorder(self):
        with obs.observed() as rec:
            assert obs.recorder() is rec
            obs.emit("e", 1.0)
            obs.counter("repro.t.c").inc()
        assert obs.recorder() is None
        assert len(rec.sink) == 1
        assert rec.metrics.counter("repro.t.c").value == 1.0

    def test_observed_tears_down_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.observed():
                raise RuntimeError("boom")
        assert obs.recorder() is None

    def test_double_start_rejected(self):
        obs.start()
        try:
            with pytest.raises(ObservabilityError):
                obs.start()
        finally:
            obs.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(ObservabilityError):
            obs.stop()

    def test_custom_sink_is_used(self):
        sink = TraceSink()
        with obs.observed(sink=sink):
            obs.emit("e", 2.0)
        assert len(sink) == 1
