"""The streaming obs pipeline: spilling sinks, payload chunks, heartbeats,
and the resource probe (docs/OBSERVABILITY.md §v4)."""

import json

import pytest

from repro.obs import Recorder, RunManifest
from repro.obs.metrics import ObservabilityError
from repro.obs.stream import (
    CHUNK_SCHEMA_VERSION,
    NULL_PROBE,
    PayloadChunkMerger,
    ResourceProbe,
    SpillingTraceSink,
    campaign_progress,
    campaign_summary,
    payload_chunks,
    peak_rss_kb,
    read_heartbeats,
    write_heartbeat,
)


def _session(seed=1, n=10, sink=None):
    rec = Recorder(
        manifest=RunManifest(scenario="s", seed=seed, config_hash="ab"), sink=sink
    )
    for i in range(n):
        with rec.span("outer", float(i)) as sp:
            sp.set(i=i)
            with rec.span("inner", float(i) + 0.25):
                rec.emit("ping", float(i) + 0.5, i=i)
    return rec


class TestSpillingTraceSink:
    def test_rejects_nonpositive_bound(self, tmp_path):
        with pytest.raises(ObservabilityError):
            SpillingTraceSink(tmp_path, max_records=0)

    def test_spills_beyond_bound_and_preserves_bytes(self, tmp_path):
        plain = _session(sink=None)
        spilled = _session(sink=SpillingTraceSink(tmp_path / "sp", max_records=7))
        assert spilled.sink.spilled_segments > 0
        # In-memory tail stays bounded by the spill threshold.
        assert len(spilled.sink._tail) <= 7
        assert spilled.sink.to_jsonl() == plain.sink.to_jsonl()
        assert len(spilled.sink) == len(plain.sink)
        assert spilled.sink.span_count == sum(
            1 for r in plain.sink.records if r["type"] == "span"
        )

    def test_iter_records_matches_materialized(self, tmp_path):
        rec = _session(sink=SpillingTraceSink(tmp_path / "sp", max_records=5))
        assert list(rec.sink.iter_records()) == rec.sink.records

    def test_dump_streams_same_bytes(self, tmp_path):
        rec = _session(sink=SpillingTraceSink(tmp_path / "sp", max_records=5))
        target = tmp_path / "t.jsonl"
        rec.sink.dump(target)
        assert target.read_text(encoding="utf-8") == rec.sink.to_jsonl()

    def test_cleanup_removes_segments(self, tmp_path):
        rec = _session(sink=SpillingTraceSink(tmp_path / "sp", max_records=5))
        assert list((tmp_path / "sp").glob("segment-*.jsonl"))
        rec.sink.cleanup()
        assert not list((tmp_path / "sp").glob("segment-*.jsonl"))
        assert len(rec.sink) == 0


class TestPayloadChunks:
    def test_chunked_merge_equals_monolithic(self, tmp_path):
        mono, chunked = Recorder(), Recorder()
        source_a, source_b = _session(seed=1), _session(seed=2, n=7)
        mono.merge_payload(source_a.to_payload())
        mono.merge_payload(source_b.to_payload())
        for source in (source_a, source_b):
            for chunk in source.to_payload_chunks(max_events=5):
                chunked.merge_payload_chunk(chunk)
        assert chunked.sink.to_jsonl() == mono.sink.to_jsonl()
        assert chunked.metrics.to_json() == mono.metrics.to_json()

    def test_spilled_source_chunks_identically(self, tmp_path):
        plain = _session(seed=3)
        spilled = _session(seed=3, sink=SpillingTraceSink(tmp_path, max_records=4))
        a = [c for c in payload_chunks(plain, max_events=6)]
        b = [c for c in payload_chunks(spilled, max_events=6)]
        assert a == b

    def test_rejects_nonpositive_chunk_size(self):
        rec = _session()
        with pytest.raises(ObservabilityError):
            list(payload_chunks(rec, max_events=0))

    def test_rejects_open_spans(self):
        rec = Recorder()
        rec.span("open", 0.0).__enter__()
        with pytest.raises(ObservabilityError):
            list(payload_chunks(rec))

    def test_empty_recorder_yields_single_final_chunk(self):
        chunks = list(payload_chunks(Recorder(), max_events=4))
        assert len(chunks) == 1
        assert chunks[0]["final"] is True
        assert chunks[0]["schema"] == CHUNK_SCHEMA_VERSION
        assert chunks[0]["records"] == []

    def test_merger_rejects_out_of_order_and_double_finish(self):
        source = _session()
        chunks = list(source.to_payload_chunks(max_events=5))
        assert len(chunks) > 2
        target = Recorder()
        merger = PayloadChunkMerger(target)
        merger.merge(chunks[0])
        with pytest.raises(ObservabilityError):
            merger.merge(chunks[2])  # skipped seq 1
        finished = Recorder()
        for chunk in source.to_payload_chunks(max_events=5):
            finished.merge_payload_chunk(chunk)
        done = PayloadChunkMerger(finished)
        done.finished = True
        with pytest.raises(ObservabilityError):
            done.merge(chunks[0])

    def test_monolithic_merge_refused_mid_stream(self):
        source = _session()
        chunks = list(source.to_payload_chunks(max_events=5))
        target = Recorder()
        target.merge_payload_chunk(chunks[0])
        with pytest.raises(ObservabilityError):
            target.merge_payload(_session(seed=9).to_payload())


class TestHeartbeats:
    def test_roundtrip_and_summary(self, tmp_path):
        progress = tmp_path / "progress"
        for job in (1, 0):
            write_heartbeat(
                progress, job, status="start", scenario=f"s{job}", protocol="p"
            )
            write_heartbeat(
                progress, job, status="chunk", seq=0,
                records=10, spans=9, events=1, sim_time=5.0,
            )
            write_heartbeat(
                progress, job, status="done", chunks=1,
                records=10, spans=9, events=1, sim_time=5.0,
            )
        beats = read_heartbeats(progress)
        assert sorted(beats) == [0, 1]
        rows = campaign_progress(progress)
        assert [r["job"] for r in rows] == [0, 1]
        assert all(r["status"] == "done" for r in rows)
        summary = campaign_summary(progress)
        assert summary["complete"] is True
        assert summary["n_jobs"] == 2
        assert summary["totals"]["records"] == 20

    def test_incomplete_job_flips_complete(self, tmp_path):
        progress = tmp_path / "progress"
        write_heartbeat(progress, 0, status="start", scenario="s", protocol="p")
        summary = campaign_summary(progress)
        assert summary["complete"] is False
        assert summary["jobs"][0]["status"] == "running"

    def test_empty_dir_is_not_complete(self, tmp_path):
        summary = campaign_summary(tmp_path)
        assert summary["jobs"] == []
        assert summary["complete"] is False

    def test_torn_lines_are_tolerated(self, tmp_path):
        progress = tmp_path / "progress"
        write_heartbeat(progress, 0, status="start", scenario="s", protocol="p")
        path = progress / "job-00000.jsonl"
        path.write_text(path.read_text(encoding="utf-8") + '{"torn', encoding="utf-8")
        assert len(read_heartbeats(progress)[0]) == 1


class TestResourceProbe:
    def test_report_shape_and_quarantine(self, tmp_path):
        probe = ResourceProbe()
        with probe.stage("merge"):
            pass
        probe.add_bytes("chunk_bytes", 128)
        probe.add_count("chunks", 3)
        probe.sample_rss("parent")
        probe.add_worker({"job": 0, "peak_rss_kb": 10})
        report = probe.report()
        assert report["schema"] == 1
        assert report["stages"]["merge"]["calls"] == 1
        assert report["bytes"]["chunk_bytes"] == 128
        assert report["counts"]["chunks"] == 3
        target = tmp_path / "r.resources.json"
        probe.dump(target)
        data = json.loads(target.read_text(encoding="utf-8"))
        # Wall-clock lives here and ONLY here (R018): the key must exist so
        # the quarantine is real, not vacuous.
        assert "wall_seconds" in data["stages"]["merge"]

    def test_null_probe_is_inert(self):
        with NULL_PROBE.stage("x"):
            NULL_PROBE.add_bytes("b", 1)
            NULL_PROBE.add_count("c")
            NULL_PROBE.sample_rss("p")
            NULL_PROBE.add_worker({})
        assert NULL_PROBE.report() == {}

    def test_peak_rss_is_positive_on_linux(self):
        rss = peak_rss_kb()
        assert rss is None or rss > 0
