"""Unit tests for the metrics registry: counters, gauges, histograms."""

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    ObservabilityError,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("repro.test.events")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("repro.test.events")
        with pytest.raises(ObservabilityError):
            c.inc(-1.0)

    def test_snapshot(self):
        c = MetricsRegistry().counter("repro.test.events")
        c.inc(4)
        assert c.snapshot() == {"kind": "counter", "value": 4.0}


class TestGauge:
    def test_set_tracks_last_value_and_update_count(self):
        g = MetricsRegistry().gauge("repro.test.depth")
        g.set(3.0)
        g.set(1.0)
        assert g.snapshot() == {
            "kind": "gauge",
            "value": 1.0,
            "updates": 2,
            "min": 1.0,
            "max": 3.0,
        }

    def test_min_max_track_extremes_not_order(self):
        g = MetricsRegistry().gauge("repro.test.depth")
        for value in (5.0, -2.0, 3.0, 7.0, 0.0):
            g.set(value)
        assert g.min == -2.0
        assert g.max == 7.0
        assert g.value == 0.0

    def test_first_set_initializes_both_extremes(self):
        g = MetricsRegistry().gauge("repro.test.depth")
        g.set(-4.0)
        assert g.min == g.max == -4.0

    def test_untouched_gauge_snapshot_is_all_zero(self):
        g = MetricsRegistry().gauge("repro.test.depth")
        assert g.snapshot() == {
            "kind": "gauge",
            "value": 0.0,
            "updates": 0,
            "min": 0.0,
            "max": 0.0,
        }


class TestHistogramBucketing:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus `le` semantics: observe(1.0) with a 1.0 bound counts
        # in the 1.0 bucket, not the next one up.
        h = MetricsRegistry().histogram("repro.test.lat", (1.0, 5.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_below_first_bound(self):
        h = MetricsRegistry().histogram("repro.test.lat", (1.0, 5.0))
        h.observe(0.0)
        h.observe(-3.0)
        assert h.counts == [2, 0, 0]

    def test_above_last_bound_overflows_to_inf(self):
        h = MetricsRegistry().histogram("repro.test.lat", (1.0, 5.0))
        h.observe(5.0000001)
        h.observe(1e12)
        assert h.counts == [0, 0, 2]

    def test_interior_value(self):
        h = MetricsRegistry().histogram("repro.test.lat", (1.0, 5.0, 60.0))
        h.observe(4.99)
        h.observe(5.0)  # boundary: the 5.0 bucket
        h.observe(5.01)
        assert h.counts == [0, 2, 1, 0]

    def test_sum_and_count(self):
        h = MetricsRegistry().histogram("repro.test.lat", (1.0,))
        h.observe(0.5)
        h.observe(2.5)
        assert h.count == 2
        assert h.total == pytest.approx(3.0)

    def test_nan_rejected(self):
        h = MetricsRegistry().histogram("repro.test.lat", (1.0,))
        with pytest.raises(ObservabilityError):
            h.observe(float("nan"))

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    @pytest.mark.parametrize("bad", [(), (1.0, 1.0), (5.0, 1.0), (1.0, float("inf"))])
    def test_bad_bucket_specs_rejected(self, bad):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().histogram("repro.test.lat", bad)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("repro.test.a") is reg.counter("repro.test.a")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro.test.a")
        with pytest.raises(ObservabilityError):
            reg.gauge("repro.test.a")

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("repro.test.h", (1.0, 2.0))
        with pytest.raises(ObservabilityError):
            reg.histogram("repro.test.h", (1.0, 3.0))

    @pytest.mark.parametrize("bad", ["flat", "Has.Upper", "trailing.", ".leading", "a b.c"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter(bad)

    def test_snapshot_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("repro.z.last").inc()
        reg.counter("repro.a.first").inc()
        assert list(reg.snapshot()) == ["repro.a.first", "repro.z.last"]

    def test_to_json_is_byte_stable(self):
        def build():
            reg = MetricsRegistry()
            reg.gauge("repro.test.depth").set(2.0)
            reg.counter("repro.test.events").inc(7)
            reg.histogram("repro.test.lat", (1.0, 5.0)).observe(3.0)
            return reg

        a, b = build().to_json(), build().to_json()
        assert a == b
        assert json.loads(a)  # valid JSON
