"""The fleet watchtower: baselines, anomaly findings, and renders."""

import pytest

from repro.obs import Recorder, RunManifest
from repro.obs.store import FleetStore
from repro.obs.watchtower import (
    WATCHTOWER_SCHEMA_VERSION,
    WatchtowerThresholds,
    fleet_baseline,
    run_watchtower,
    render_text,
)
from repro.portal.reports import render_watchtower


def _trace_records(warehouse="WH", savings=1.5, error=0.1, alert_fires=1):
    """A miniature provenance trace with tunable watchtower inputs."""
    rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
    rec.emit(
        "provenance.decision", 600.0, warehouse=warehouse, seq=0,
        kind="learned", reason_code="learned.apply", target="cfg-a",
        interval=600.0,
    )
    for i in range(alert_fires):
        rec.emit(
            "alert.fire", 700.0 + i, alert="optimizer.backoff.wh",
            severity="warning", warehouse=warehouse,
        )
    rec.emit(
        "provenance.outcome", 1200.0, warehouse=warehouse, seq=0,
        window_start=600.0, window_end=1200.0,
        realized_credits=0.5 + error, predicted_credits=0.5,
        error_credits=error, realized_p99=4.0, realized_queries=3,
        applied=True, apply_error="",
    )
    rec.emit(
        "provenance.attribution", 1800.0, warehouse=warehouse,
        window_start=0.0, window_end=1800.0, savings_credits=savings,
        shares=[{"decision_seq": 0, "overlap_seconds": 600.0, "credits": savings}],
    )
    return rec.sink.records


def _store(run="r1", **kw):
    store = FleetStore()
    store.ingest_trace_records(_trace_records(**kw), run=run)
    return store


class TestFleetBaseline:
    def test_shape_and_determinism(self):
        baseline = fleet_baseline(_store())
        assert baseline["schema"] == WATCHTOWER_SCHEMA_VERSION
        assert baseline["runs"] == 1
        assert baseline["warehouses"]["WH"]["attributed_credits"] == pytest.approx(1.5)
        assert baseline["warehouses"]["WH"]["n_decisions"] == 1
        assert baseline["alert_max_fires"]["optimizer.backoff.wh"] == 1
        assert baseline == fleet_baseline(_store())

    def test_manifest_rows_do_not_invent_warehouses(self):
        assert "" not in fleet_baseline(_store())["warehouses"]


class TestRunWatchtower:
    def test_healthy_store_is_ok_against_own_baseline(self):
        store = _store()
        report = run_watchtower(store, baseline=fleet_baseline(store))
        assert report["ok"] is True
        assert report["findings"] == []
        assert report["baseline_runs"] == 1

    def test_no_baseline_runs_absolute_checks_only(self):
        report = run_watchtower(_store())
        assert report["ok"] is True
        assert report["baseline_runs"] is None

    def test_savings_regression_fires(self):
        baseline = fleet_baseline(_store(savings=2.0))
        report = run_watchtower(_store(savings=1.0), baseline=baseline)
        assert report["ok"] is False
        [finding] = [
            f for f in report["findings"] if f["kind"] == "savings_regression"
        ]
        assert finding["severity"] == "error"
        assert finding["subject"] == "WH"
        assert finding["current_credits"] == pytest.approx(1.0)

    def test_small_dip_within_tolerance_passes(self):
        baseline = fleet_baseline(_store(savings=2.0))
        report = run_watchtower(
            _store(savings=1.95), baseline=baseline,
            thresholds=WatchtowerThresholds(savings_drop_tolerance=0.05),
        )
        assert report["ok"] is True

    def test_alert_storm_fires_without_baseline(self):
        report = run_watchtower(
            _store(alert_fires=8),
            thresholds=WatchtowerThresholds(alert_storm_fires=8),
        )
        assert report["ok"] is False
        [finding] = [f for f in report["findings"] if f["kind"] == "alert_storm"]
        assert finding["fires"] == 8
        assert "optimizer.backoff.wh" in finding["subject"]

    def test_calibration_drift_fires(self):
        baseline = fleet_baseline(_store(error=0.01))
        report = run_watchtower(
            _store(error=0.5), baseline=baseline,
            thresholds=WatchtowerThresholds(
                calibration_drift_tolerance=0.25, calibration_floor_credits=0.005
            ),
        )
        [finding] = [
            f for f in report["findings"] if f["kind"] == "calibration_drift"
        ]
        assert finding["severity"] == "error"

    def test_missing_warehouse_is_an_error(self):
        baseline = fleet_baseline(_store(warehouse="GONE_WH"))
        report = run_watchtower(_store(warehouse="WH"), baseline=baseline)
        kinds = {f["kind"]: f["severity"] for f in report["findings"]}
        assert kinds["missing_warehouse"] == "error"
        assert kinds["new_warehouse"] == "note"
        # Notes alone must not fail the gate; the missing warehouse does.
        assert report["ok"] is False

    def test_new_warehouse_alone_is_ok(self):
        baseline = fleet_baseline(_store(warehouse="WH"))
        both = FleetStore()
        both.ingest_trace_records(_trace_records(warehouse="WH"), run="r1")
        both.ingest_trace_records(_trace_records(warehouse="NEW_WH"), run="r2")
        report = run_watchtower(both, baseline=baseline)
        assert [f["kind"] for f in report["findings"]] == ["new_warehouse"]
        assert report["ok"] is True


class TestRenders:
    def test_text_render_carries_verdict(self):
        store = _store()
        ok = render_text(run_watchtower(store, baseline=fleet_baseline(store)))
        assert "verdict: OK" in ok
        bad = render_text(
            run_watchtower(
                _store(savings=0.1), baseline=fleet_baseline(_store(savings=2.0))
            )
        )
        assert "verdict: REGRESSION" in bad
        assert "[savings_regression]" in bad

    def test_markdown_render_is_deterministic_markdown(self):
        store = _store()
        report = run_watchtower(store, baseline=fleet_baseline(store))
        text = render_watchtower(report)
        assert text == render_watchtower(report)
        assert text.startswith("# Fleet watchtower")
        assert "| WH |" in text
        assert "**Verdict: OK**" in text
