"""Decision provenance, savings attribution, and the conservation invariant.

The load-bearing promise (docs/OBSERVABILITY.md §v3): per-decision
attributed credits sum **exactly** — bit for bit, no epsilon — to
``SavingsLedger.total_savings_credits()``.  These tests exercise the float
machinery adversarially and then check the invariant on a real run.
"""

import math

import pytest

from repro.common.simtime import HOUR, Window
from repro.experiments.runner import run_before_after
from repro.experiments.scenarios import chaos_smoke_scenario, smoke_scenario
from repro.obs.provenance import (
    UNATTRIBUTED,
    AttributionLedger,
    CalibrationReport,
    CandidateEvaluation,
    DecisionContext,
    DecisionOutcome,
    DecisionRecord,
    ProvenanceLog,
    split_exact,
)


class TestSplitExact:
    def test_empty_and_single(self):
        assert split_exact(5.0, []) == []
        assert split_exact(5.0, [3.0]) == [5.0]

    def test_proportionality(self):
        shares = split_exact(10.0, [1.0, 2.0, 3.0, 4.0])
        assert shares[0] == pytest.approx(1.0)
        assert shares[3] == pytest.approx(4.0)

    def test_zero_weights_fall_back_to_equal(self):
        shares = split_exact(9.0, [0.0, 0.0, 0.0])
        assert shares[0] == pytest.approx(3.0)

    @pytest.mark.parametrize(
        "total",
        [
            0.1 + 0.2,  # the classic non-representable sum
            -0.07318895758905697,  # a real negative ledger entry
            1e-17,
            -1e300,
            123456.789,
            0.0,
        ],
    )
    @pytest.mark.parametrize(
        "weights",
        [
            [600.0] * 7,
            [1e-9, 1e9, 3.0],
            [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
            [7.0, 11.0],
        ],
    )
    def test_left_to_right_sum_is_exactly_total(self, total, weights):
        shares = split_exact(total, weights)
        assert len(shares) == len(weights)
        acc = 0.0
        for share in shares:
            acc += share
        assert acc == total  # exact float equality, on purpose

    def test_shares_stay_finite(self):
        for share in split_exact(1e308, [1.0, 1.0, 1.0]):
            assert math.isfinite(share)


def _record(seq, time, interval=1800.0, rate=None, **kw):
    defaults = dict(
        seq=seq,
        warehouse="WH",
        time=time,
        kind="learned",
        reason="r",
        reason_code="learned.keep",
        target="cfg",
        feedback_hash="ab",
        feedback={},
        admissible_actions=3,
        candidates=(),
        action_index=1,
        q_value=0.5,
        predicted_credits_per_hour=rate,
        predicted_avg_latency=None,
        safe_mode=False,
        breaker_state="closed",
        breaker_consecutive_failures=0,
        retries_scheduled=0,
        interval=interval,
    )
    defaults.update(kw)
    return DecisionRecord(**defaults)


class TestDecisionRecord:
    def test_window_uses_nominal_interval_until_sealed(self):
        record = _record(0, 100.0, interval=600.0)
        assert record.window == Window(100.0, 700.0)
        record.sealed = True
        record.sealed_until = 400.0
        assert record.window == Window(100.0, 400.0)

    def test_predicted_credits_scale_with_window(self):
        record = _record(0, 0.0, interval=1800.0, rate=2.0)
        assert record.predicted_credits == pytest.approx(1.0)  # 2 cr/h × 0.5h

    def test_prediction_error_requires_seal_and_prediction(self):
        record = _record(0, 0.0, rate=None)
        assert record.prediction_error_credits is None
        record = _record(0, 0.0, interval=3600.0, rate=2.0)
        assert record.prediction_error_credits is None  # not sealed yet
        record.sealed = True
        record.sealed_until = 3600.0
        record.realized_credits = 2.5
        assert record.prediction_error_credits == pytest.approx(0.5)

    def test_to_dict_is_json_shaped(self):
        record = _record(
            0, 0.0, candidates=(CandidateEvaluation(1, "a", 0.2, "chosen"),)
        )
        payload = record.to_dict()
        assert payload["schema"] == 1
        assert payload["candidates"][0]["verdict"] == "chosen"
        # Sealed fields never leak into the decision event payload.
        assert "realized_credits" not in payload


class TestProvenanceLogLifecycle:
    def _log(self):
        return ProvenanceLog("WH", decision_interval=1800.0)

    def _record_one(self, log, time, rate=None):
        context = DecisionContext(
            admissible_actions=2, predicted_credits_per_hour=rate
        )
        return log.record(
            time,
            kind="learned",
            reason="r",
            reason_code="learned.apply",
            target="cfg",
            feedback={"latency_ratio": 1.0},
            context=context,
            action_index=3,
            q_value=0.9,
            safe_mode=False,
            breaker_state="closed",
            breaker_consecutive_failures=0,
            retries_scheduled=0,
        )

    def test_seal_until_is_strict_and_incremental(self):
        log = self._log()
        self._record_one(log, 0.0, rate=2.0)
        self._record_one(log, 1800.0)
        outcomes = []

        def outcome_fn(window):
            outcomes.append(window)
            return DecisionOutcome(credits=1.5, p99_latency=4.0, n_queries=7)

        assert log.seal_until(1800.0, outcome_fn) == 1  # strict <, not <=
        assert outcomes == [Window(0.0, 1800.0)]
        first = log.records[0]
        assert first.sealed and first.realized_credits == 1.5
        assert first.realized_queries == 7
        assert not log.records[1].sealed
        # Sealing again does not re-seal already-sealed records.
        assert log.seal_until(2000.0, outcome_fn) == 1
        assert outcomes[-1] == Window(1800.0, 2000.0)  # truncated at `now`

    def test_note_apply_lands_on_latest_record(self):
        log = self._log()
        self._record_one(log, 0.0)
        self._record_one(log, 1800.0)
        log.note_apply(False, "boom")
        assert log.records[0].applied is None
        assert log.records[1].applied is False
        assert log.records[1].apply_error == "boom"

    def test_summary_reports_conservation(self):
        log = self._log()
        self._record_one(log, 0.0)
        log.attribution.attribute(Window(0.0, 1800.0), 2.5, log.records)
        summary = log.summary(ledger_credits=2.5)
        assert summary.conserved
        assert summary.n_decisions == 1
        assert summary.decision_kinds == {"learned": 1}


class TestAttributionLedger:
    def test_overlap_weighted_split_conserves(self):
        ledger = AttributionLedger("WH")
        records = [_record(0, 0.0, interval=600.0), _record(1, 600.0, interval=600.0)]
        entry = ledger.attribute(Window(0.0, 900.0), 0.1 + 0.2, records)
        # Decision 0 overlaps 600s, decision 1 overlaps 300s.
        assert [s.decision_seq for s in entry.shares] == [0, 1]
        assert entry.shares[0].overlap_seconds == 600.0
        assert entry.shares[1].overlap_seconds == 300.0
        assert entry.attributed_total() == 0.1 + 0.2

    def test_no_overlap_yields_unattributed_share(self):
        ledger = AttributionLedger("WH")
        entry = ledger.attribute(Window(0.0, 600.0), 1.25, [_record(0, 9000.0)])
        assert [s.decision_seq for s in entry.shares] == [UNATTRIBUTED]
        assert entry.attributed_total() == 1.25

    def test_total_matches_ledger_accumulation_order(self):
        ledger = AttributionLedger("WH")
        credits = [0.1, 0.2, -0.07318895758905697, 1e-17]
        for i, c in enumerate(credits):
            ledger.attribute(
                Window(i * 600.0, (i + 1) * 600.0),
                c,
                [_record(i, i * 600.0, interval=600.0)],
            )
        expected = 0.0
        for c in credits:
            expected += c
        assert ledger.total_attributed_credits() == expected

    def test_per_decision_credits_cover_all_shares(self):
        ledger = AttributionLedger("WH")
        records = [_record(0, 0.0, interval=600.0), _record(1, 600.0, interval=600.0)]
        ledger.attribute(Window(0.0, 1200.0), 3.0, records)
        ledger.attribute(Window(1200.0, 1800.0), 1.0, records)  # no overlap
        totals = ledger.per_decision_credits()
        assert set(totals) == {0, 1, UNATTRIBUTED}
        assert totals[UNATTRIBUTED] == 1.0


class TestCalibrationReport:
    def test_empty(self):
        report = CalibrationReport.from_records([])
        assert report.n_sealed == 0
        assert report.mean_abs_error_credits == 0.0

    def test_means_over_predicted_records_only(self):
        sealed_predicted = _record(0, 0.0, interval=3600.0, rate=1.0)
        sealed_predicted.sealed = True
        sealed_predicted.sealed_until = 3600.0
        sealed_predicted.realized_credits = 1.5
        sealed_blind = _record(1, 3600.0)
        sealed_blind.sealed = True
        sealed_blind.sealed_until = 7200.0
        sealed_blind.realized_credits = 9.0
        open_record = _record(2, 7200.0)
        report = CalibrationReport.from_records(
            [sealed_predicted, sealed_blind, open_record]
        )
        assert report.n_decisions == 3
        assert report.n_sealed == 2
        assert report.n_with_prediction == 1
        assert report.mean_error_credits == pytest.approx(0.5)
        assert report.total_realized_credits == pytest.approx(10.5)


class TestConservationOnRealRuns:
    def test_smoke_run_conserves_and_records_every_tick(self):
        result, optimizer = run_before_after(smoke_scenario(seed=11))
        log = optimizer.provenance
        assert len(log.records) == len(optimizer.decisions)
        # The conservation invariant: exact float equality, no approx.
        assert (
            log.attribution.total_attributed_credits()
            == optimizer.ledger.total_savings_credits()
        )
        assert result.attribution is not None
        assert result.attribution.conserved
        # Every record carries a typed reason code.
        assert all(r.reason_code for r in log.records)
        # Shutdown sealed everything except (at most) the final tick.
        assert len(log.sealed_records) >= len(log.records) - 1

    def test_chaos_run_conserves_and_calibrates(self):
        result, optimizer = run_before_after(chaos_smoke_scenario(seed=5))
        log = optimizer.provenance
        assert (
            log.attribution.total_attributed_credits()
            == optimizer.ledger.total_savings_credits()
        )
        report = log.calibration()
        assert report.n_with_prediction > 0  # what-ifs were checked vs reality
        codes = sorted({r.reason_code for r in log.records})
        assert any(c.startswith("learned.") for c in codes)
