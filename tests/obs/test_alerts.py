"""Unit tests for the alert lifecycle manager."""

import json

import pytest

from repro.obs import (
    NULL_ALERTS,
    ObservabilityError,
    Recorder,
)


def events(rec, name):
    return [r for r in rec.sink.records if r.get("type") == "event" and r["name"] == name]


class TestLifecycle:
    def test_fire_emits_event_and_counter(self):
        rec = Recorder()
        assert rec.alerts.fire("optimizer.backoff.wh", 100.0, severity="warning") is True
        assert rec.alerts.is_active("optimizer.backoff.wh")
        (fire,) = events(rec, "alert.fire")
        assert fire["time"] == 100.0
        assert fire["attrs"]["alert"] == "optimizer.backoff.wh"
        assert fire["attrs"]["severity"] == "warning"
        assert rec.metrics.counter("repro.alerts.fired").value == 1.0

    def test_refire_deduplicates(self):
        rec = Recorder()
        rec.alerts.fire("optimizer.backoff.wh", 100.0)
        assert rec.alerts.fire("optimizer.backoff.wh", 200.0) is False
        assert len(events(rec, "alert.fire")) == 1  # no event spam
        rec.alerts.resolve("optimizer.backoff.wh", 300.0)
        (resolve,) = events(rec, "alert.resolve")
        assert resolve["attrs"]["refires"] == 1
        assert resolve["attrs"]["duration"] == 200.0

    def test_resolve_without_fire_is_a_noop(self):
        rec = Recorder()
        assert rec.alerts.resolve("optimizer.backoff.wh", 100.0) is False
        assert events(rec, "alert.resolve") == []

    def test_set_state_tracks_condition_edges(self):
        rec = Recorder()
        for t, firing in [(0.0, False), (10.0, True), (20.0, True), (30.0, False)]:
            rec.alerts.set_state("optimizer.spike.wh", firing, t, severity="info")
        assert len(events(rec, "alert.fire")) == 1
        assert len(events(rec, "alert.resolve")) == 1
        assert not rec.alerts.is_active("optimizer.spike.wh")

    def test_invalid_name_rejected(self):
        with pytest.raises(ObservabilityError):
            Recorder().alerts.fire("NotDotted", 0.0)

    def test_unknown_severity_rejected(self):
        with pytest.raises(ObservabilityError):
            Recorder().alerts.fire("a.b", 0.0, severity="page")


class TestQueriesAndExport:
    def test_active_is_name_sorted(self):
        rec = Recorder()
        rec.alerts.fire("z.alert", 1.0)
        rec.alerts.fire("a.alert", 2.0)
        assert [a.name for a in rec.alerts.active()] == ["a.alert", "z.alert"]

    def test_len_counts_lifecycle_transitions(self):
        rec = Recorder()
        rec.alerts.fire("a.alert", 1.0)
        rec.alerts.fire("a.alert", 2.0)  # dedup: not a transition
        rec.alerts.resolve("a.alert", 3.0)
        assert len(rec.alerts) == 2

    def test_snapshot_and_byte_stable_export(self):
        def build():
            rec = Recorder()
            rec.alerts.fire("b.alert", 1.0, severity="critical")
            rec.alerts.fire("a.alert", 2.0)
            rec.alerts.resolve("b.alert", 3.0)
            return rec.alerts

        alerts = build()
        snap = alerts.snapshot()
        assert [a["alert"] for a in snap["active"]] == ["a.alert"]
        assert [h["state"] for h in snap["history"]] == ["fire", "fire", "resolve"]
        assert build().to_json() == alerts.to_json()
        assert json.loads(alerts.to_json())


class TestNullPath:
    def test_null_manager_absorbs_everything(self):
        assert NULL_ALERTS.fire("a.b", 0.0) is False
        assert NULL_ALERTS.resolve("a.b", 0.0) is False
        NULL_ALERTS.set_state("a.b", True, 0.0)
        assert NULL_ALERTS.is_active("a.b") is False

    def test_module_level_accessor_returns_null_when_disabled(self):
        from repro.obs import trace

        assert trace.alerts() is NULL_ALERTS
