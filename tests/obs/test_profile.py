"""Unit tests for the trace profiler and critical-path extraction."""

import json

from repro.obs import Recorder, critical_path, diff_profiles, profile_records


def span_row(sid, name, start, end, parent=None):
    return {
        "type": "span",
        "id": sid,
        "name": name,
        "time": float(start),
        "time_end": float(end),
        "parent": parent,
        "attrs": {},
    }


def event_row(name, t):
    return {"type": "event", "name": name, "time": float(t), "attrs": {}}


class TestProfileRecords:
    def test_empty_trace(self):
        prof = profile_records([])
        assert prof.n_spans == 0
        assert prof.total_time == 0.0
        assert prof.top() == []

    def test_counts_totals_and_extremes(self):
        records = [
            span_row(1, "work", 0.0, 10.0),
            span_row(2, "work", 20.0, 24.0),
            span_row(3, "other", 0.0, 1.0),
            event_row("ping", 5.0),
        ]
        prof = profile_records(records)
        assert prof.n_spans == 3
        assert prof.n_events == 1
        assert prof.total_time == 15.0
        work = prof.spans["work"]
        assert (work.count, work.total_time) == (2, 14.0)
        assert (work.min_time, work.max_time) == (4.0, 10.0)
        assert prof.events == {"ping": 1}

    def test_self_time_subtracts_direct_children_only(self):
        records = [
            span_row(1, "root", 0.0, 10.0),
            span_row(2, "child", 1.0, 7.0, parent=1),
            span_row(3, "grandchild", 2.0, 5.0, parent=2),
        ]
        prof = profile_records(records)
        assert prof.spans["root"].self_time == 4.0  # 10 - child's 6
        assert prof.spans["child"].self_time == 3.0  # 6 - grandchild's 3
        assert prof.spans["grandchild"].self_time == 3.0

    def test_self_time_clamped_at_zero(self):
        # A child reported longer than its parent must not go negative.
        records = [
            span_row(1, "root", 0.0, 1.0),
            span_row(2, "child", 0.0, 5.0, parent=1),
        ]
        assert profile_records(records).spans["root"].self_time == 0.0

    def test_top_ranks_by_total_time_then_count_then_name(self):
        records = [
            span_row(1, "b_small", 0.0, 1.0),
            span_row(2, "a_busy", 0.0, 1.0),
            span_row(3, "a_busy", 1.0, 2.0),
            span_row(4, "c_heavy", 0.0, 9.0),
        ]
        names = [s.name for s in profile_records(records).top()]
        assert names == ["c_heavy", "a_busy", "b_small"]

    def test_to_json_is_byte_stable(self):
        records = [span_row(1, "work", 0.0, 3.0), event_row("ping", 1.0)]
        a = profile_records(records).to_json()
        b = profile_records(list(records)).to_json()
        assert a == b
        assert json.loads(a)["n_spans"] == 1


class TestCriticalPath:
    def test_empty_trace_has_empty_path(self):
        assert critical_path([]) == []

    def test_follows_heaviest_subtree(self):
        records = [
            span_row(1, "root", 0.0, 10.0),
            span_row(2, "light", 0.0, 1.0, parent=1),
            span_row(3, "heavy", 1.0, 9.0, parent=1),
            span_row(4, "leaf", 2.0, 8.0, parent=3),
        ]
        path = critical_path(records)
        assert [row["name"] for row in path] == ["root", "heavy", "leaf"]
        assert path[0]["subtree_time"] == 25.0  # 10 + 1 + 8 + 6
        assert path[0]["subtree_spans"] == 4

    def test_instantaneous_ties_break_by_span_count_then_id(self):
        # All durations zero: the subtree with more spans wins, and equal
        # subtrees prefer the smallest id — the path is deterministic.
        records = [
            span_row(1, "root_a", 0.0, 0.0),
            span_row(2, "root_b", 0.0, 0.0),
            span_row(3, "kid", 0.0, 0.0, parent=2),
        ]
        path = critical_path(records)
        assert [row["name"] for row in path] == ["root_b", "kid"]
        only_roots = critical_path(records[:2])
        assert [row["name"] for row in only_roots] == ["root_a"]

    def test_from_recorder_spans(self):
        rec = Recorder()
        with rec.span("outer", 0.0):
            with rec.span("inner", 0.0):
                pass
        path = critical_path(list(rec.sink.records))
        assert [row["name"] for row in path] == ["outer", "inner"]


class TestDiffProfiles:
    def test_reports_per_name_deltas_and_one_sided_spans(self):
        before = profile_records([span_row(1, "work", 0.0, 2.0)])
        after = profile_records(
            [span_row(1, "work", 0.0, 5.0), span_row(2, "new", 0.0, 1.0)]
        )
        delta = diff_profiles(before, after)
        rows = {row["name"]: row for row in delta["spans"]}
        assert rows["work"]["time_delta"] == 3.0
        assert rows["work"]["count_delta"] == 0
        assert rows["new"]["count_before"] == 0
        assert rows["new"]["count_after"] == 1
        assert delta["n_spans_before"] == 1
        assert delta["n_spans_after"] == 2
        assert [row["name"] for row in delta["spans"]] == ["new", "work"]
