"""Session merge primitives: payload capture, renumbering, composition.

The parallel experiment layer's determinism rests on one identity: running
scenario A then scenario B in one session produces the same exports as
running each in an isolated session and merging the payloads in order.
These tests state that identity directly on synthetic recordings.
"""

import pytest

from repro.obs import ObservabilityError, Recorder
from repro.obs.trace import resume, start, stop


def record_block(rec: Recorder, base: float, label: str) -> None:
    """A deterministic little recording: nested spans, events, metrics."""
    with rec.span("outer", base, label=label):
        rec.emit("tick", base + 1.0, label=label)
        with rec.span("inner", base + 2.0):
            rec.counter("repro.test.events").inc(3, time=base + 2.0)
        rec.gauge("repro.test.depth").set(base, time=base + 3.0)
        rec.histogram("repro.test.lat").observe(base / 10.0, time=base + 4.0)


def exports(rec: Recorder) -> tuple[str, str, str]:
    return rec.sink.to_jsonl(), rec.metrics.to_json(), rec.series.to_json()


class TestSessionMerge:
    def test_merge_equals_serial_session(self):
        serial = Recorder()
        record_block(serial, 100.0, "a")
        record_block(serial, 700.0, "b")

        parent = Recorder()
        record_block(parent, 100.0, "a")
        worker = Recorder()
        record_block(worker, 700.0, "b")
        parent.merge_payload(worker.to_payload())

        assert exports(parent) == exports(serial)

    def test_merge_renumbers_span_references(self):
        parent = Recorder()
        record_block(parent, 0.0, "a")  # consumes span ids 1..2
        worker = Recorder()
        record_block(worker, 50.0, "b")
        parent.merge_payload(worker.to_payload())
        span_ids = [r["id"] for r in parent.sink.records if r["type"] == "span"]
        assert sorted(span_ids) == [1, 2, 3, 4]
        # The merged event points at the renumbered enclosing span.
        merged_events = [
            r for r in parent.sink.records if r["type"] == "event" and r["time"] == 51.0
        ]
        assert merged_events[0]["span"] in (3, 4)

    def test_merge_order_sensitive_fields(self):
        parent = Recorder()
        parent.gauge("repro.test.level").set(5.0, time=10.0)
        worker = Recorder()
        worker.gauge("repro.test.level").set(2.0, time=20.0)
        parent.merge_payload(worker.to_payload())
        snap = parent.metrics.snapshot()["repro.test.level"]
        assert snap == {"kind": "gauge", "value": 2.0, "updates": 2, "min": 2.0, "max": 5.0}

    def test_capture_with_open_span_rejected(self):
        rec = Recorder()
        span = rec.span("open", 1.0)
        with pytest.raises(ObservabilityError):
            rec.to_payload()
        span.__exit__(None, None, None)
        assert rec.to_payload()["span_ids"] == 1

    def test_resume_restores_stopped_session(self):
        rec = start()
        try:
            stopped = stop()
            assert resume(stopped) is stopped
            with pytest.raises(ObservabilityError):
                resume(Recorder())
        finally:
            stop()

    def test_empty_payload_merge_is_noop(self):
        parent = Recorder()
        record_block(parent, 0.0, "a")
        before = exports(parent)
        parent.merge_payload(Recorder().to_payload())
        assert exports(parent) == before
