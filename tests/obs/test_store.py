"""FleetStore: ingestion, indexed queries, rollups, and byte-stable merge."""

import pytest

from repro.obs import Recorder, RunManifest
from repro.obs.metrics import ObservabilityError
from repro.obs.store import FleetStore


def _trace_records(warehouse="WH", base=0.0, savings=1.5):
    """A miniature trace: two decisions, one sealed, one attribution."""
    rec = Recorder(manifest=RunManifest(scenario="t", seed=1, config_hash="ab"))
    rec.emit(
        "provenance.decision",
        base + 600.0,
        warehouse=warehouse,
        seq=0,
        kind="learned",
        reason_code="learned.apply",
        target="cfg-a",
        interval=600.0,
    )
    rec.emit(
        "alert.fire", base + 700.0, alert="optimizer.backoff.wh",
        severity="warning", warehouse=warehouse,
    )
    rec.emit(
        "provenance.decision",
        base + 1200.0,
        warehouse=warehouse,
        seq=1,
        kind="hold",
        reason_code="hold.cooldown",
        target="cfg-a",
        interval=600.0,
    )
    rec.emit(
        "provenance.outcome",
        base + 1200.0,
        warehouse=warehouse,
        seq=0,
        window_start=base + 600.0,
        window_end=base + 1200.0,
        realized_credits=0.6,
        predicted_credits=0.5,
        error_credits=0.1,
        realized_p99=4.0,
        realized_queries=3,
        applied=True,
        apply_error="",
    )
    rec.emit(
        "alert.resolve", base + 1300.0, alert="optimizer.backoff.wh",
        duration=600.0, warehouse=warehouse,
    )
    rec.emit(
        "provenance.attribution",
        base + 1800.0,
        warehouse=warehouse,
        window_start=base,
        window_end=base + 1800.0,
        savings_credits=savings,
        shares=[
            {"decision_seq": 0, "overlap_seconds": 600.0, "credits": savings / 3},
            {"decision_seq": 1, "overlap_seconds": 600.0,
             "credits": savings - savings / 3},
        ],
    )
    rec.emit(
        "optimizer.savings_report", base + 1800.0, warehouse=warehouse,
        savings_fraction=0.1, savings_credits=savings,
        window_start=base, window_end=base + 1800.0,
    )
    rec.emit("optimizer.tick_noise", base + 1800.0, warehouse=warehouse)  # skipped
    return rec.sink.records


def _store(**kw):
    store = FleetStore()
    store.ingest_trace_records(_trace_records(**kw), run="r1")
    return store


class TestIngestion:
    def test_counts_and_kinds(self):
        store = _store()
        # manifest + 2 decisions + outcome + 2 alerts + attribution + report;
        # the unknown event is skipped.
        assert len(store) == 8
        kinds = {row["kind"] for row in store.rows}
        assert kinds == {
            "manifest", "decision", "outcome", "alert_fire",
            "alert_resolve", "attribution", "savings_report",
        }

    def test_manifest_row_carries_run_identity(self):
        store = _store()
        [manifest] = store.query(kind="manifest")
        assert manifest["data"]["scenario"] == "t"
        assert manifest["data"]["seed"] == 1

    def test_append_validates_row_shape(self):
        with pytest.raises(ObservabilityError, match="missing 'warehouse'"):
            FleetStore().append({"run": "r", "kind": "decision", "time": 0.0})


class TestQueries:
    def test_filters_compose(self):
        store = _store()
        store.ingest_trace_records(
            _trace_records(warehouse="OTHER", base=36000.0), run="r2"
        )
        assert len(store.query(kind="decision")) == 4
        assert len(store.query(kind="decision", warehouse="WH")) == 2
        assert len(store.query(kind="decision", run="r2")) == 2
        assert len(store.query(kind="decision", since=36000.0)) == 2
        assert len(store.query(kind="decision", until=36000.0)) == 2
        assert store.runs() == ["r1", "r2"]
        assert store.warehouses() == ["OTHER", "WH"]

    def test_decisions_join_their_outcome(self):
        rows = _store().decisions()
        assert [r["seq"] for r in rows] == [0, 1]
        assert rows[0]["outcome"]["realized_credits"] == 0.6
        assert rows[1]["outcome"] is None
        [held] = _store().decisions(decision_kind="hold")
        assert held["reason_code"] == "hold.cooldown"

    def test_alert_windows_pair_within_runs(self):
        store = _store()
        [window] = store.alert_windows()
        assert window["alert"] == "optimizer.backoff.wh"
        assert (window["start"], window["end"]) == (700.0, 1300.0)
        assert store.alert_windows(prefix="monitor.") == []

    def test_decisions_during_alerts_overlap_join(self):
        hits = _store().decisions_during_alerts()
        # Decision 0 governs [600, 1200) ∩ alert [700, 1300) — overlaps.
        # Decision 1 governs [1200, 1800) ∩ [700, 1300) — overlaps too.
        assert [h["seq"] for h in hits] == [0, 1]
        assert hits[0]["alerts"] == ["optimizer.backoff.wh"]


class TestRollupsAndTopK:
    def test_rollup_sums_by_bucket(self):
        rows = _store().rollup(bucket_seconds=3600.0)
        [bucket] = rows
        assert bucket["decisions"] == {"hold": 1, "learned": 1}
        assert bucket["realized_credits"] == pytest.approx(0.6)
        assert bucket["abs_error_credits"] == pytest.approx(0.1)
        assert bucket["savings_credits"] == pytest.approx(1.5)

    def test_rollup_rejects_bad_bucket(self):
        with pytest.raises(ObservabilityError, match="positive"):
            _store().rollup(bucket_seconds=0.0)

    def test_top_savings_ranks_and_joins(self):
        rows = _store().top_savings(k=5)
        assert [r["seq"] for r in rows] == [1, 0]  # 1.0cr beats 0.5cr
        assert rows[0]["decision"]["kind"] == "hold"

    def test_top_regret_from_outcomes(self):
        [row] = _store().top_regret(k=1)
        assert row["seq"] == 0
        assert row["error_credits"] == pytest.approx(0.1)
        assert row["decision"]["reason_code"] == "learned.apply"


class TestPersistenceAndMerge:
    def test_jsonl_roundtrip_is_byte_stable(self, tmp_path):
        store = _store()
        path = tmp_path / "store.jsonl"
        store.dump(path)
        loaded = FleetStore.load(path)
        assert loaded.to_jsonl() == store.to_jsonl()
        assert loaded.rows == store.rows

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ObservabilityError, match="not JSON"):
            FleetStore.load(path)

    def test_merge_preserves_submission_order(self):
        a = FleetStore()
        a.ingest_trace_records(_trace_records(), run="r1")
        b = FleetStore()
        b.ingest_trace_records(_trace_records(base=36000.0), run="r2")
        merged = FleetStore()
        merged.merge(a)
        merged.merge(b)
        sequential = FleetStore()
        sequential.ingest_trace_records(_trace_records(), run="r1")
        sequential.ingest_trace_records(_trace_records(base=36000.0), run="r2")
        assert merged.to_jsonl() == sequential.to_jsonl()
        # Indexes survive the merge path, not just the rows.
        assert merged.decisions() == sequential.decisions()
