"""Unit tests for run manifests and config hashing."""

import enum
import json
from dataclasses import dataclass

import pytest

from repro.obs import ObservabilityError, RunManifest, config_hash


class Policy(enum.Enum):
    STANDARD = "standard"
    ECONOMY = "economy"


@dataclass
class Inner:
    threshold: float
    policy: Policy


@dataclass
class Config:
    name: str
    inner: Inner
    limits: dict


def _config() -> Config:
    return Config("wh", Inner(0.5, Policy.ECONOMY), {"b": 2, "a": 1})


class TestConfigHash:
    def test_stable_across_calls(self):
        assert config_hash(_config()) == config_hash(_config())

    def test_dict_key_order_irrelevant(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_enum_hashes_as_value(self):
        assert config_hash(Policy.ECONOMY) == config_hash("economy")

    def test_value_change_changes_hash(self):
        other = _config()
        other.inner.threshold = 0.6
        assert config_hash(other) != config_hash(_config())

    def test_short_hex(self):
        digest = config_hash(_config())
        assert len(digest) == 16
        int(digest, 16)  # hex

    def test_default_object_repr_rejected(self):
        # `<object object at 0x...>` embeds a memory address — hashing it
        # would silently break byte-stable manifests across processes.
        with pytest.raises(ObservabilityError):
            config_hash({"handle": object()})


class TestRunManifest:
    def test_create_stamps_version_and_hash(self):
        from repro import __version__

        manifest = RunManifest.create(
            scenario="fig6", seed=600, config=_config(), slider=3
        )
        assert manifest.version == __version__
        assert manifest.seed == 600
        assert manifest.slider == 3
        assert manifest.config_hash == config_hash(_config())

    def test_equal_inputs_equal_manifests(self):
        a = RunManifest.create("fig6", 600, _config(), slider=3)
        b = RunManifest.create("fig6", 600, _config(), slider=3)
        assert a == b

    def test_to_json_round_trips(self):
        manifest = RunManifest.create("fig6", 600, _config())
        payload = json.loads(manifest.to_json())
        assert payload["scenario"] == "fig6"
        assert payload["slider"] is None
        assert sorted(payload) == ["config_hash", "scenario", "seed", "slider", "version"]
