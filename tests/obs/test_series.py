"""Unit tests for sim-time metric series: buckets, aggregates, export."""

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKET_SECONDS,
    MetricSeries,
    MetricsRegistry,
    ObservabilityError,
    SeriesRegistry,
)


class TestBucketing:
    def test_values_land_in_their_time_bucket(self):
        s = MetricSeries("repro.test.depth", "gauge", bucket_seconds=100.0)
        s.record(0.0, 1.0)
        s.record(99.9, 2.0)
        s.record(100.0, 3.0)
        assert s.points("count") == [(0, 2.0), (1, 1.0)]

    def test_bucket_boundaries(self):
        s = MetricSeries("repro.test.depth", "gauge", bucket_seconds=300.0)
        assert s.bucket_start(2) == 600.0
        assert s.bucket_end(2) == 900.0

    def test_default_bucket_width(self):
        s = MetricSeries("repro.test.depth", "gauge")
        assert s.bucket_seconds == DEFAULT_BUCKET_SECONDS == 300.0

    def test_nan_rejected(self):
        s = MetricSeries("repro.test.depth", "gauge")
        with pytest.raises(ObservabilityError):
            s.record(0.0, float("nan"))
        with pytest.raises(ObservabilityError):
            s.record(float("nan"), 1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_bucket_width_rejected(self, bad):
        with pytest.raises(ObservabilityError):
            MetricSeries("repro.test.depth", "gauge", bucket_seconds=bad)


class TestAggregates:
    def build(self):
        s = MetricSeries("repro.test.depth", "gauge", bucket_seconds=100.0)
        for t, v in [(0.0, 4.0), (50.0, 2.0), (99.0, 6.0)]:
            s.record(t, v)
        return s

    def test_last_min_max(self):
        s = self.build()
        assert s.points("last") == [(0, 6.0)]
        assert s.points("min") == [(0, 2.0)]
        assert s.points("max") == [(0, 6.0)]

    def test_sum_count_mean_rate(self):
        s = self.build()
        assert s.points("sum") == [(0, 12.0)]
        assert s.points("count") == [(0, 3.0)]
        assert s.points("mean") == [(0, 4.0)]
        assert s.points("rate") == [(0, 0.12)]

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ObservabilityError):
            self.build().points("p99")

    def test_points_are_index_sorted_regardless_of_emission_order(self):
        s = MetricSeries("repro.test.depth", "gauge", bucket_seconds=100.0)
        s.record(500.0, 1.0)
        s.record(0.0, 2.0)
        assert [i for i, _ in s.points()] == [0, 5]


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = SeriesRegistry()
        assert reg.series("repro.test.a", "counter") is reg.series("repro.test.a", "counter")

    def test_kind_mismatch_rejected(self):
        reg = SeriesRegistry()
        reg.series("repro.test.a", "counter")
        with pytest.raises(ObservabilityError):
            reg.series("repro.test.a", "gauge")

    def test_invalid_name_rejected(self):
        with pytest.raises(ObservabilityError):
            SeriesRegistry().series("NotDotted", "gauge")

    def test_empty_series_excluded_from_snapshot(self):
        reg = SeriesRegistry()
        reg.series("repro.test.empty", "gauge")
        reg.series("repro.test.full", "gauge").record(0.0, 1.0)
        assert list(reg.snapshot()) == ["repro.test.full"]

    def test_snapshot_round_trips_through_from_snapshot(self):
        reg = SeriesRegistry(bucket_seconds=60.0)
        reg.series("repro.test.a", "counter").record(10.0, 2.0)
        reg.series("repro.test.a", "counter").record(70.0, 3.0)
        reg.series("repro.test.b", "gauge").record(5.0, -1.0)
        rebuilt = SeriesRegistry.from_snapshot(json.loads(reg.to_json()))
        assert rebuilt.to_json() == reg.to_json()
        assert rebuilt.get("repro.test.a").points("sum") == [(0, 2.0), (1, 3.0)]

    def test_from_empty_snapshot(self):
        assert len(SeriesRegistry.from_snapshot({})) == 0

    def test_to_json_is_byte_stable(self):
        def build():
            reg = SeriesRegistry()
            reg.series("repro.test.b", "gauge").record(301.0, 1.5)
            reg.series("repro.test.a", "counter").record(0.0, 1.0)
            return reg.to_json()

        assert build() == build()


class TestMetricsIntegration:
    """Metrics recorded with a `time=` ride into the attached series."""

    def build(self):
        series = SeriesRegistry(bucket_seconds=100.0)
        return MetricsRegistry(series=series), series

    def test_counter_increments_feed_bucket_sums(self):
        metrics, series = self.build()
        c = metrics.counter("repro.test.events")
        c.inc(2.0, time=10.0)
        c.inc(3.0, time=150.0)
        assert series.get("repro.test.events").points("sum") == [(0, 2.0), (1, 3.0)]

    def test_untimed_recordings_skip_the_series(self):
        metrics, series = self.build()
        metrics.counter("repro.test.events").inc(5.0)
        assert len(series.get("repro.test.events")) == 0

    def test_gauge_and_histogram_record_levels(self):
        metrics, series = self.build()
        metrics.gauge("repro.test.depth").set(7.0, time=10.0)
        metrics.histogram("repro.test.lat", (1.0,)).observe(0.5, time=20.0)
        assert series.get("repro.test.depth").points("last") == [(0, 7.0)]
        assert series.get("repro.test.lat").points("count") == [(0, 1.0)]

    def test_registry_without_series_still_works(self):
        c = MetricsRegistry().counter("repro.test.events")
        c.inc(1.0, time=5.0)  # no series attached: silently a plain inc
        assert c.value == 1.0
