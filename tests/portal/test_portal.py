"""Tests for KPI computation, dashboards and text rendering."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR, Window
from repro.portal.dashboards import SavingsDashboard, savings_dashboard
from repro.portal.kpis import daily_credits, daily_p99_latency, kpi_series, total_spend
from repro.portal.reports import render_actions, render_savings
from repro.warehouse.api import CloudWarehouseClient

from tests.conftest import drive, make_account, make_requests, make_template


def two_day_account():
    account, wh = make_account(seed=4)
    template = make_template("kpi", base_work_seconds=10.0)
    times = [i * 1800.0 for i in range(96)]  # every 30 min for 2 days
    drive(account, wh, make_requests(template, times), 2 * DAY)
    return account, wh, CloudWarehouseClient(account)


class TestKpis:
    def test_invalid_granularity(self):
        account, wh, client = two_day_account()
        with pytest.raises(ConfigurationError):
            kpi_series(client, wh, Window(0, DAY), "minutely")

    def test_daily_bucket_count(self):
        account, wh, client = two_day_account()
        buckets = kpi_series(client, wh, Window(0, 2 * DAY), "daily")
        assert len(buckets) == 2
        assert all(b.n_queries == 48 for b in buckets)

    def test_hourly_bucket_count(self):
        account, wh, client = two_day_account()
        buckets = kpi_series(client, wh, Window(0, DAY), "hourly")
        assert len(buckets) == 24

    def test_bucket_credits_sum_to_total(self):
        account, wh, client = two_day_account()
        window = Window(0, 2 * DAY)
        buckets = kpi_series(client, wh, window, "daily")
        assert sum(b.credits for b in buckets) == pytest.approx(
            total_spend(client, wh, window), rel=0.01
        )

    def test_cost_per_query(self):
        account, wh, client = two_day_account()
        bucket = kpi_series(client, wh, Window(0, DAY), "daily")[0]
        assert bucket.cost_per_query == pytest.approx(bucket.credits / bucket.n_queries)

    def test_latency_stats_populated(self):
        account, wh, client = two_day_account()
        bucket = kpi_series(client, wh, Window(0, DAY), "daily")[0]
        assert bucket.avg_latency > 0
        assert bucket.p99_latency >= bucket.avg_latency

    def test_daily_series_helpers(self):
        account, wh, client = two_day_account()
        window = Window(0, 2 * DAY)
        assert len(daily_credits(client, wh, window)) == 2
        assert len(daily_p99_latency(client, wh, window)) == 2


class TestSavingsDashboard:
    def test_split_by_keebo_start(self):
        account, wh, client = two_day_account()
        dashboard = savings_dashboard(client, wh, Window(0, 2 * DAY), keebo_enabled_at=DAY)
        assert dashboard.keebo_active == [False, True]
        assert dashboard.pre_keebo_daily_mean > 0
        assert dashboard.with_keebo_daily_mean > 0

    def test_savings_fraction(self):
        dashboard = SavingsDashboard(
            warehouse="WH",
            days=[0, 1],
            daily_credits=[10.0, 6.0],
            daily_p99=[5.0, 5.0],
            keebo_active=[False, True],
        )
        assert dashboard.savings_fraction == pytest.approx(0.4)

    def test_render_savings_text(self):
        dashboard = SavingsDashboard(
            warehouse="WH",
            days=[0, 1],
            daily_credits=[10.0, 6.0],
            daily_p99=[5.0, 4.0],
            keebo_active=[False, True],
        )
        text = render_savings(dashboard)
        assert "WH" in text
        assert "savings=40.0%" in text
        assert "#" in text and "=" in text  # pre vs keebo bars


class TestActionsRendering:
    def test_render_actions_empty(self):
        from repro.portal.dashboards import ActionsDashboard

        text = render_actions(ActionsDashboard(warehouse="WH", actions=[]))
        assert "no configuration changes" in text
