"""Tests for KPI computation, dashboards and text rendering."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR, Window
from repro.obs.provenance import UNATTRIBUTED, CalibrationReport
from repro.portal.dashboards import (
    AttributionDashboard,
    SavingsDashboard,
    attribution_dashboard,
    savings_dashboard,
)
from repro.portal.export import attribution_to_dict, to_json
from repro.portal.kpis import daily_credits, daily_p99_latency, kpi_series, total_spend
from repro.portal.reports import render_actions, render_attribution, render_savings
from repro.warehouse.api import CloudWarehouseClient

from tests.conftest import drive, make_account, make_requests, make_template


def two_day_account():
    account, wh = make_account(seed=4)
    template = make_template("kpi", base_work_seconds=10.0)
    times = [i * 1800.0 for i in range(96)]  # every 30 min for 2 days
    drive(account, wh, make_requests(template, times), 2 * DAY)
    return account, wh, CloudWarehouseClient(account)


class TestKpis:
    def test_invalid_granularity(self):
        account, wh, client = two_day_account()
        with pytest.raises(ConfigurationError):
            kpi_series(client, wh, Window(0, DAY), "minutely")

    def test_daily_bucket_count(self):
        account, wh, client = two_day_account()
        buckets = kpi_series(client, wh, Window(0, 2 * DAY), "daily")
        assert len(buckets) == 2
        assert all(b.n_queries == 48 for b in buckets)

    def test_hourly_bucket_count(self):
        account, wh, client = two_day_account()
        buckets = kpi_series(client, wh, Window(0, DAY), "hourly")
        assert len(buckets) == 24

    def test_bucket_credits_sum_to_total(self):
        account, wh, client = two_day_account()
        window = Window(0, 2 * DAY)
        buckets = kpi_series(client, wh, window, "daily")
        assert sum(b.credits for b in buckets) == pytest.approx(
            total_spend(client, wh, window), rel=0.01
        )

    def test_cost_per_query(self):
        account, wh, client = two_day_account()
        bucket = kpi_series(client, wh, Window(0, DAY), "daily")[0]
        assert bucket.cost_per_query == pytest.approx(bucket.credits / bucket.n_queries)

    def test_latency_stats_populated(self):
        account, wh, client = two_day_account()
        bucket = kpi_series(client, wh, Window(0, DAY), "daily")[0]
        assert bucket.avg_latency > 0
        assert bucket.p99_latency >= bucket.avg_latency

    def test_daily_series_helpers(self):
        account, wh, client = two_day_account()
        window = Window(0, 2 * DAY)
        assert len(daily_credits(client, wh, window)) == 2
        assert len(daily_p99_latency(client, wh, window)) == 2


class TestKpiEdgeCases:
    def test_empty_window_yields_no_buckets(self):
        account, wh, client = two_day_account()
        assert kpi_series(client, wh, Window(0, 0), "daily") == []
        assert total_spend(client, wh, Window(0, 0)) == 0.0

    def test_quiet_window_yields_zero_credit_buckets(self):
        account, wh, client = two_day_account()
        # The drive covers [0, 2 days); the third day saw no traffic at all.
        [bucket] = kpi_series(client, wh, Window(2 * DAY, 3 * DAY), "daily")
        assert bucket.n_queries == 0
        assert bucket.credits == 0.0
        assert bucket.cost_per_query == 0.0  # no division by zero
        assert bucket.avg_latency == 0.0
        assert bucket.p99_latency == 0.0

    def test_partial_trailing_bucket_is_truncated(self):
        account, wh, client = two_day_account()
        buckets = kpi_series(client, wh, Window(0, DAY + HOUR), "daily")
        assert len(buckets) == 2
        assert buckets[-1].window == Window(DAY, DAY + HOUR)


def _attribution_fixture(conserved=True):
    return AttributionDashboard(
        warehouse="WH",
        n_decisions=3,
        n_sealed=2,
        n_entries=2,
        attributed_credits=0.30000000000000004,
        ledger_credits=0.30000000000000004 if conserved else 0.3,
        conserved=conserved,
        per_decision={0: 0.2, 1: 0.10000000000000004, UNATTRIBUTED: 0.0},
        calibration=CalibrationReport(
            rows=(),
            n_decisions=3,
            n_sealed=2,
            n_with_prediction=2,
            mean_abs_error_credits=0.05,
            mean_error_credits=-0.01,
            total_predicted_credits=0.4,
            total_realized_credits=0.35,
        ),
    )


class TestAttributionDashboard:
    def test_from_real_run_conserves(self):
        from repro.experiments.runner import run_before_after
        from repro.experiments.scenarios import smoke_scenario

        result, optimizer = run_before_after(smoke_scenario(seed=11))
        # Half-open windows exclude a decision landing exactly at `now`.
        dashboard = attribution_dashboard(
            optimizer, Window(0.0, optimizer.account.sim.now + 1.0)
        )
        assert dashboard.conserved
        assert dashboard.attributed_credits == dashboard.ledger_credits
        assert dashboard.n_decisions == len(optimizer.provenance.records)

    def test_export_keeps_credits_unrounded(self):
        payload = attribution_to_dict(_attribution_fixture())
        assert payload["attributed_credits"] == 0.30000000000000004
        assert payload["per_decision"]["1"] == 0.10000000000000004
        assert payload["per_decision"][str(UNATTRIBUTED)] == 0.0
        assert payload["calibration"]["mean_abs_error_credits"] == 0.05

    def test_export_roundtrips_through_to_json(self):
        text = to_json(attribution_to_dict(_attribution_fixture()))
        assert text.endswith("\n")
        payload = json.loads(text)
        # Exact float survival through the serializer — the whole point.
        assert payload["attributed_credits"] == 0.30000000000000004

    def test_render_flags_violations(self):
        text = render_attribution(_attribution_fixture())
        assert "[conserved]" in text
        assert "decision 0" in text
        assert "unattributed" in text
        assert "calibration: mean |err|=" in text
        violated = render_attribution(_attribution_fixture(conserved=False))
        assert "CONSERVATION VIOLATED" in violated


class TestSavingsDashboard:
    def test_split_by_keebo_start(self):
        account, wh, client = two_day_account()
        dashboard = savings_dashboard(client, wh, Window(0, 2 * DAY), keebo_enabled_at=DAY)
        assert dashboard.keebo_active == [False, True]
        assert dashboard.pre_keebo_daily_mean > 0
        assert dashboard.with_keebo_daily_mean > 0

    def test_savings_fraction(self):
        dashboard = SavingsDashboard(
            warehouse="WH",
            days=[0, 1],
            daily_credits=[10.0, 6.0],
            daily_p99=[5.0, 5.0],
            keebo_active=[False, True],
        )
        assert dashboard.savings_fraction == pytest.approx(0.4)

    def test_render_savings_text(self):
        dashboard = SavingsDashboard(
            warehouse="WH",
            days=[0, 1],
            daily_credits=[10.0, 6.0],
            daily_p99=[5.0, 4.0],
            keebo_active=[False, True],
        )
        text = render_savings(dashboard)
        assert "WH" in text
        assert "savings=40.0%" in text
        assert "#" in text and "=" in text  # pre vs keebo bars


class TestActionsRendering:
    def test_render_actions_empty(self):
        from repro.portal.dashboards import ActionsDashboard

        text = render_actions(ActionsDashboard(warehouse="WH", actions=[]))
        assert "no configuration changes" in text


class TestRecoveryReportRendering:
    RECOVERED = {
        "scenario": "smoke",
        "seed": 123,
        "kind": "crash_at_tick",
        "cadence_seconds": 7200.0,
        "crash_boundary": 3,
        "crashes": 1,
        "recovered": True,
        "recovery_error": "",
        "repairs": 0,
        "restore_events": 1,
        "ok": True,
        "byte_identical": True,
        "identical": {"ledger": True, "trace": True},
    }

    def test_recovered_run_renders_export_table(self):
        from repro.portal.reports import render_recovery

        text = render_recovery(self.RECOVERED)
        assert "Verdict: OK" in text
        assert "| ledger | yes |" in text
        assert "refusal" not in text

    def test_refused_run_renders_refusal_not_table(self):
        from repro.portal.reports import render_recovery

        refused = {
            **self.RECOVERED,
            "kind": "stale_snapshot",
            "recovered": False,
            "restore_events": 0,
            "recovery_error": "stale snapshot: basis ahead",
            "byte_identical": False,
            "identical": {},
        }
        text = render_recovery(refused)
        assert "Verdict: OK" in text  # refusing IS the pass for detection kinds
        assert "stale snapshot: basis ahead" in text
        assert "| ledger |" not in text

    def test_rendering_is_pure(self):
        from repro.portal.reports import render_recovery

        assert render_recovery(self.RECOVERED) == render_recovery(dict(self.RECOVERED))
