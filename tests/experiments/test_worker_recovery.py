"""Worker-crash resilience: the pool survives process deaths (v2 contract).

``chaos.kill_worker`` is the registered protocol that kills its hosting
worker via ``os._exit`` — no exception, no cleanup, exactly what an OOM
kill looks like to the parent pool.  The contract under test
(docs/ROBUSTNESS.md §Worker-crash-resilient fleets):

* a job whose worker dies once is retried on a rebuilt pool and succeeds;
* a job that kills its worker ``WORKER_DEATH_RETRY_LIMIT`` times is
  quarantined as poison with a typed :class:`ParallelExecutionError`;
* results still merge in submission order, so serial/parallel
  byte-equality holds even across a worker death.
"""

import pytest

from repro import obs
from repro.experiments.scenarios import ScenarioSpec
from repro.parallel import ParallelExecutionError, WorkerJob, run_jobs
from repro.parallel.pool import WORKER_DEATH_RETRY_LIMIT

SMOKE_SPEC = ScenarioSpec(factory="smoke", kwargs=(("seed", 123),))


def kill_job(marker) -> WorkerJob:
    """A job that dies once (marker given) or every time (marker='')."""
    kwargs = (("marker", str(marker)),) if marker else ()
    return WorkerJob(protocol="chaos.kill_worker", spec=SMOKE_SPEC, kwargs=kwargs)


def smoke_job(seed: int) -> WorkerJob:
    return WorkerJob(
        protocol="before_after.row",
        spec=ScenarioSpec(factory="smoke", kwargs=(("seed", seed),)),
    )


class TestDieOnceRecovery:
    def test_job_lost_to_worker_death_is_retried(self, tmp_path):
        marker = tmp_path / "died-once"
        results = run_jobs([kill_job(marker)], workers=1)
        assert results == ["smoke"]
        assert marker.exists()  # first attempt really did run and die

    def test_sibling_jobs_survive_the_death(self, tmp_path):
        marker = tmp_path / "died-once"
        jobs = [smoke_job(123), kill_job(marker), smoke_job(321)]
        results = run_jobs(jobs, workers=2)
        assert results[1] == "smoke"
        assert [r.manifest.seed for r in (results[0], results[2])] == [123, 321]

    def test_exports_identical_to_serial_despite_death(self, tmp_path):
        """The headline merge invariant holds across a pool rebuild."""
        marker = tmp_path / "died-once"
        serial_marker = tmp_path / "pre-existing"
        serial_marker.write_text("already died", encoding="utf-8")

        def fleet(marker_path):
            return [smoke_job(123), kill_job(marker_path), smoke_job(321)]

        with obs.observed() as rec:
            serial = run_jobs(fleet(serial_marker), workers=0)
            serial_exports = (rec.sink.to_jsonl(), rec.metrics.to_json())
        with obs.observed() as rec:
            parallel = run_jobs(fleet(marker), workers=2)
            parallel_exports = (rec.sink.to_jsonl(), rec.metrics.to_json())
        assert parallel == serial
        assert parallel_exports == serial_exports


class TestPoisonQuarantine:
    def test_poison_job_raises_typed_error(self):
        with pytest.raises(ParallelExecutionError, match="quarantining"):
            run_jobs([kill_job(None)], workers=1)

    def test_poison_error_names_the_scenario(self):
        with pytest.raises(ParallelExecutionError, match=r"smoke\(seed=123\)"):
            run_jobs([kill_job(None)], workers=1)

    def test_poison_error_counts_the_deaths(self):
        with pytest.raises(
            ParallelExecutionError,
            match=rf"died {WORKER_DEATH_RETRY_LIMIT} times",
        ):
            run_jobs([kill_job(None)], workers=1)
