"""Tests for experiment scenarios and runner protocols (fast variants).

The full protocols live in benchmarks/; these tests shrink horizons so the
suite stays quick while still exercising every code path end-to-end.
"""

import pytest

from repro.common.simtime import DAY, HOUR
from repro.core.optimizer import OptimizerConfig
from repro.core.sliders import SliderPosition
from repro.experiments.runner import (
    OnboardingCurve,
    run_before_after,
    run_cost_model_accuracy,
    run_overhead,
)
from repro.experiments.scenarios import (
    fig4a_scenario,
    fig4b_scenario,
    fig5_scenarios,
    fig6_scenario,
    fig7_scenario,
    fleet_scenarios,
    onboarding_scenario,
)


def shrink(scenario, total_days=4, keebo_day=2):
    """Make a scenario cheap enough for unit testing."""
    scenario.total_days = total_days
    scenario.keebo_day = keebo_day
    scenario.optimizer_config = OptimizerConfig(
        training_window=1 * DAY,
        onboarding_episodes=2,
        episode_length=12 * HOUR,
        retrain_interval=2 * DAY,
        retrain_episodes=0,
        confidence_tau=0.0,
    )
    return scenario


class TestScenarioBuilders:
    @pytest.mark.parametrize(
        "builder", [fig4a_scenario, fig4b_scenario, fig6_scenario, onboarding_scenario]
    )
    def test_builders_wire_accounts(self, builder):
        scenario = builder()
        assert scenario.warehouse in scenario.account.warehouses
        assert scenario.keebo_day is not None
        assert scenario.keebo_day < scenario.total_days

    def test_fig5_has_four_warehouses(self):
        scenarios = fig5_scenarios()
        assert len(scenarios) == 4
        assert all(s.keebo_day is None for s in scenarios)

    def test_fig7_scenarios_share_workload_shape(self):
        a = fig7_scenario(SliderPosition.LOWEST_COST)
        b = fig7_scenario(SliderPosition.BEST_PERFORMANCE)
        reqs_a = a.workload.generate.__self__.generate  # noqa: just sanity
        assert a.warehouse == b.warehouse
        assert a.slider != b.slider

    def test_fleet_scenarios_distinct_accounts(self):
        fleet = fleet_scenarios(n_customers=3)
        assert len({id(s.account) for s in fleet}) == 3

    def test_schedule_returns_request_count(self):
        scenario = shrink(fig4a_scenario())
        n = scenario.schedule()
        assert n > 100


class TestProtocols:
    def test_before_after_protocol(self):
        scenario = shrink(fig4a_scenario(seed=1401))
        result, optimizer = run_before_after(scenario)
        assert result.pre_daily > 0
        assert result.post_daily > 0
        assert len(result.dashboard.days) == 4
        assert result.dashboard.keebo_active == [False, False, True, True]
        assert sum(result.decision_counts.values()) > 0

    def test_before_after_needs_keebo_day(self):
        scenario = fig5_scenarios()[0]
        with pytest.raises(ValueError):
            run_before_after(scenario)

    def test_cost_model_accuracy_protocol(self):
        scenarios = fig5_scenarios(seed=1500)
        for s in scenarios:
            s.total_days = 3
        rows = run_cost_model_accuracy(scenarios, train_days=1.5)
        assert len(rows) == 4
        busy = [r for r in rows if r.warehouse != "Warehouse3"]
        assert all(r.relative_error < 0.35 for r in busy)
        assert all(r.actual_credits > 0 for r in rows)

    def test_overhead_protocol(self):
        scenario = shrink(fig6_scenario(seed=1600), total_days=4, keebo_day=2)
        result = run_overhead(scenario)
        assert 0.0 < result.overhead_fraction < 0.2
        assert len(result.dashboard.hours) == 24


class TestOnboardingCurve:
    def test_hours_to_reach(self):
        curve = OnboardingCurve(
            hours=[4, 8, 12, 16, 20, 24, 28, 32],
            savings_rate=[0.0, 0.1, 0.2, 0.3, 0.38, 0.4, 0.41, 0.40],
        )
        assert curve.eventual_rate == pytest.approx(0.405, abs=0.01)
        # 50% of 0.405 = 0.2025: first sustained crossing is at hour 16.
        assert curve.hours_to_reach(0.5) == 16
        assert curve.hours_to_reach(0.95) == 24

    def test_no_savings_returns_none(self):
        curve = OnboardingCurve(hours=[4, 8], savings_rate=[0.0, -0.1])
        assert curve.hours_to_reach(0.5) is None

    def test_requires_sustained_crossing(self):
        # A one-bucket blip above target does not count.
        curve = OnboardingCurve(
            hours=[4, 8, 12, 16],
            savings_rate=[0.5, 0.05, 0.45, 0.5],
        )
        assert curve.hours_to_reach(0.9) == 12
