"""Tests for the configuration what-if sweep helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import HOUR, Window
from repro.costmodel.model import WarehouseCostModel
from repro.experiments.sweeps import (
    SweepPoint,
    cheapest_within_latency,
    pareto_frontier,
    sweep_configs,
)
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize

from tests.conftest import drive, make_account, make_requests, make_template


@pytest.fixture(scope="module")
def fitted():
    account, wh = make_account(seed=28, size=WarehouseSize.M, auto_suspend_seconds=300.0)
    template = make_template("sw", base_work_seconds=20.0, n_partitions=2)
    drive(account, wh, make_requests(template, [10.0 + i * 600.0 for i in range(72)]), 12 * HOUR)
    client = CloudWarehouseClient(account, actor="keebo")
    window = Window(0, 12 * HOUR)
    model = WarehouseCostModel(client, wh).fit(window)
    return model, window, client.current_config(wh)


class TestSweepConfigs:
    def test_grid_size(self, fitted):
        model, window, reference = fitted
        points = sweep_configs(
            model,
            window,
            reference,
            sizes=(WarehouseSize.S, WarehouseSize.M),
            suspends=(60.0, 300.0),
        )
        # 4 grid points, one of which coincides with the reference.
        assert len(points) == 4
        assert points[0].config == reference
        assert points[0].latency_factor == 1.0

    def test_empty_grid_rejected(self, fitted):
        model, window, reference = fitted
        with pytest.raises(ConfigurationError):
            sweep_configs(model, window, reference, sizes=())

    def test_latency_factors_ordered_by_size(self, fitted):
        model, window, reference = fitted
        points = sweep_configs(
            model, window, reference, sizes=(WarehouseSize.XS, WarehouseSize.L), suspends=(300.0,)
        )
        by_size = {p.config.size: p for p in points if p.config.auto_suspend_seconds == 300.0}
        assert by_size[WarehouseSize.XS].latency_factor > 1.0
        assert by_size[WarehouseSize.L].latency_factor < 1.0

    def test_cluster_grid(self, fitted):
        model, window, reference = fitted
        points = sweep_configs(
            model,
            window,
            reference,
            sizes=(WarehouseSize.M,),
            suspends=(300.0,),
            max_clusters=[1, 2],
        )
        assert {p.config.max_clusters for p in points} >= {1, 2}


class TestSelectionHelpers:
    def test_cheapest_within_latency(self, fitted):
        model, window, reference = fitted
        points = sweep_configs(model, window, reference)
        pick = cheapest_within_latency(points, max_latency_factor=1.2)
        assert pick.latency_factor <= 1.2
        cheaper = [p for p in points if p.credits < pick.credits]
        assert all(p.latency_factor > 1.2 for p in cheaper)

    def test_impossible_budget_raises(self, fitted):
        model, window, reference = fitted
        points = sweep_configs(model, window, reference)
        with pytest.raises(ConfigurationError):
            cheapest_within_latency(points, max_latency_factor=0.0)

    def test_pareto_frontier_is_nondominated(self, fitted):
        model, window, reference = fitted
        points = sweep_configs(model, window, reference)
        frontier = pareto_frontier(points)
        assert frontier
        credits = [p.credits for p in frontier]
        latencies = [p.latency_factor for p in frontier]
        # Sorted by credits; latency strictly improves along the frontier.
        assert credits == sorted(credits)
        assert latencies == sorted(latencies, reverse=True)
        # No point in the full set dominates a frontier point.
        for f in frontier:
            for p in points:
                dominates = (
                    p.credits <= f.credits
                    and p.latency_factor <= f.latency_factor
                    and (p.credits < f.credits or p.latency_factor < f.latency_factor)
                )
                assert not dominates

    def test_pareto_frontier_synthetic(self):
        def pt(credits, factor):
            result = type("R", (), {"credits": credits, "avg_latency": 0.0})()
            return SweepPoint(WarehouseConfig(), result, factor)

        points = [pt(10, 1.0), pt(5, 2.0), pt(7, 1.5), pt(6, 3.0)]
        frontier = pareto_frontier(points)
        assert [(p.credits, p.latency_factor) for p in frontier] == [
            (5, 2.0),
            (7, 1.5),
            (10, 1.0),
        ]
