"""Process-parallel experiment execution: determinism and failure surfacing.

The contract under test (docs/PERFORMANCE.md): ``run_fleet(workers=N)`` is
byte-identical to ``run_fleet(workers=0)`` — same result rows, same
manifests, and, under an active observation session, the same trace,
metrics and series exports.  Failures in a worker must come back as
:class:`ParallelExecutionError` naming the rebuildable scenario spec.
"""

import pytest

from repro import obs
from repro.experiments.runner import run_fleet
from repro.experiments.scenarios import fig5_scenarios, smoke_scenario
from repro.parallel import ParallelExecutionError

#: More jobs than workers, so the pool must queue and still preserve order.
SEEDS = (123, 321, 555)
WORKERS = 2


def smoke_fleet():
    return [smoke_scenario(seed=seed) for seed in SEEDS]


def observed_fleet(workers: int):
    with obs.observed() as rec:
        result = run_fleet(smoke_fleet(), workers=workers)
    return result, rec.sink.to_jsonl(), rec.metrics.to_json(), rec.series.to_json()


class TestParallelDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = observed_fleet(workers=0)
        parallel = observed_fleet(workers=WORKERS)
        # Result rows (dashboards, decision counts, manifests) are equal...
        assert parallel[0] == serial[0]
        # ...and so are all three observability exports, byte for byte.
        assert parallel[1] == serial[1]
        assert parallel[2] == serial[2]
        assert parallel[3] == serial[3]

    def test_parallel_without_observation(self):
        serial = run_fleet(smoke_fleet(), workers=0)
        parallel = run_fleet(smoke_fleet(), workers=WORKERS)
        assert parallel == serial
        assert [r.scenario for r in parallel.rows] == ["smoke"] * len(SEEDS)
        assert [r.manifest.seed for r in parallel.rows] == list(SEEDS)
        assert not obs.enabled()


class TestWorkerFailure:
    def test_worker_exception_names_the_scenario_spec(self):
        # fig5 scenarios have no keebo_day, so the §7.1 protocol raises.
        with pytest.raises(ParallelExecutionError, match=r"fig5\(seed=\d+\)\[0\]"):
            run_fleet([fig5_scenarios()[0]], workers=1)

    def test_unshippable_scenario_is_rejected(self):
        scenario = smoke_scenario()
        scenario.spec = None  # as if hand-built, with no registered recipe
        with pytest.raises(ParallelExecutionError, match="no ScenarioSpec"):
            run_fleet([scenario], workers=1)

    def test_serial_path_raises_the_original_error(self):
        with pytest.raises(ValueError, match="keebo_day"):
            run_fleet([fig5_scenarios()[0]], workers=0)

    def test_parent_session_survives_serial_failure(self):
        with obs.observed() as rec:
            with pytest.raises(ValueError, match="keebo_day"):
                run_fleet([fig5_scenarios()[0]], workers=0)
            assert obs.recorder() is rec
