"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import RngRegistry
from repro.common.simtime import HOUR, Window
from repro.warehouse.account import Account
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRequest, QueryTemplate
from repro.warehouse.types import WarehouseSize


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(seed=1234)


def make_template(
    name: str = "q",
    base_work_seconds: float = 10.0,
    scale_exponent: float = 0.8,
    n_partitions: int = 4,
    cold_multiplier: float = 2.0,
) -> QueryTemplate:
    """A small query template with a deterministic partition footprint."""
    from repro.warehouse.cache import PARTITION_BYTES

    partitions = tuple(f"{name}.p{i}" for i in range(n_partitions))
    return QueryTemplate(
        name=name,
        base_work_seconds=base_work_seconds,
        scale_exponent=scale_exponent,
        bytes_scanned=n_partitions * PARTITION_BYTES,
        partitions=partitions,
        cold_multiplier=cold_multiplier,
    )


def make_requests(
    template: QueryTemplate,
    times: list[float],
    chained: bool = False,
    distinct_text: bool = True,
) -> list[QueryRequest]:
    return [
        QueryRequest(
            template=template,
            arrival_time=t,
            instance_key=str(i) if distinct_text else "fixed",
            chained=chained,
        )
        for i, t in enumerate(times)
    ]


def make_account(seed: int = 7, **config_kwargs) -> tuple[Account, str]:
    """Account with one warehouse 'WH' (Small, 120 s suspend by default)."""
    defaults = dict(size=WarehouseSize.S, auto_suspend_seconds=120.0)
    defaults.update(config_kwargs)
    account = Account(seed=seed)
    account.create_warehouse("WH", WarehouseConfig(**defaults))
    return account, "WH"


def drive(account: Account, warehouse: str, requests, until: float) -> None:
    """Schedule requests and run the simulation to ``until``."""
    account.schedule_workload(warehouse, requests)
    account.run_until(until)


@pytest.fixture
def busy_account() -> tuple[Account, str]:
    """An account that already processed an hour of queries."""
    account, wh = make_account()
    template = make_template("steady", base_work_seconds=5.0)
    requests = make_requests(template, [60.0 * i for i in range(30)])
    drive(account, wh, requests, 2 * HOUR)
    return account, wh


def window(start: float, end: float) -> Window:
    return Window(start, end)
