"""The ``# repro-lint: disable=...`` suppression mechanism."""

import textwrap

from repro.lint import lint_source
from repro.lint.engine import lint_context
from repro.lint.context import FileContext
from repro.lint.rules import get_rules


def lint(source: str, path: str = "snippet.py"):
    return lint_source(textwrap.dedent(source), path=path)


class TestSuppression:
    def test_same_line_directive_suppresses(self):
        assert (
            lint(
                """\
                import time
                t = time.time()  # repro-lint: disable=R001
                """
            )
            == []
        )

    def test_directive_only_covers_its_rule(self):
        found = lint(
            """\
            import time
            t = time.time()  # repro-lint: disable=R002
            """
        )
        # The R001 violation still fires, and the R002 directive (which
        # silenced nothing) is itself reported as an unused suppression.
        assert [f.rule_id for f in found] == ["R001", "R000"]
        assert "unused suppression" in found[1].message

    def test_multiple_ids_in_one_directive(self):
        found = lint(
            """\
            def f(rngs, start_time, end_time):
                return rngs.stream(start_time), start_time == end_time  # repro-lint: disable=R003,R004
            """
        )
        assert found == []

    def test_disable_all(self):
        assert (
            lint(
                """\
                import time
                t = time.time()  # repro-lint: disable=all
                """
            )
            == []
        )

    def test_directive_on_other_line_does_not_suppress(self):
        found = lint(
            """\
            import time
            # repro-lint: disable=R001
            t = time.time()
            """
        )
        # The misplaced directive suppresses nothing (R001 fires on line 3)
        # and is flagged as unused on its own line.
        assert [f.rule_id for f in found] == ["R000", "R001"]
        assert found[0].line == 2 and "unused suppression" in found[0].message

    def test_directive_inside_string_is_inert(self):
        found = lint(
            """\
            import time
            doc = "# repro-lint: disable=R001"
            t = time.time()
            """
        )
        assert [f.rule_id for f in found] == ["R001"]

    def test_malformed_directive_reported_as_r000(self):
        found = lint("x = 1  # repro-lint: disable R001\n")
        assert [f.rule_id for f in found] == ["R000"]
        assert "malformed" in found[0].message

    def test_suppressed_count_reported(self):
        source = "import time\nt = time.time()  # repro-lint: disable=R001\n"
        ctx = FileContext.from_source(source, "snippet.py")
        kept, suppressed = lint_context(ctx, get_rules())
        assert kept == []
        assert suppressed == 1


class TestUnusedSuppressions:
    def test_used_directive_is_not_flagged(self):
        assert lint("import time\nt = time.time()  # repro-lint: disable=R001\n") == []

    def test_unused_specific_id_is_flagged(self):
        found = lint("x = 1  # repro-lint: disable=R005\n")
        assert [f.rule_id for f in found] == ["R000"]
        assert "unused suppression for R005" in found[0].message

    def test_unused_disable_all_is_flagged_on_full_run(self):
        found = lint("x = 1  # repro-lint: disable=all\n")
        assert [f.rule_id for f in found] == ["R000"]
        assert "unused suppression for all" in found[0].message

    def test_unused_check_scoped_to_selected_rules(self):
        # Under --select R002 an idle R001 directive cannot be judged: R001
        # never ran, so the pass must not call it unused.
        source = "import time\nt = time.time()  # repro-lint: disable=R001\n"
        assert lint_source(source, path="snippet.py", select=["R002"]) == []

    def test_disable_all_not_judged_on_partial_run(self):
        source = "x = 1  # repro-lint: disable=all\n"
        assert lint_source(source, path="snippet.py", select=["R002"]) == []

    def test_partially_unused_directive_reports_only_stale_ids(self):
        found = lint("import time\nt = time.time()  # repro-lint: disable=R001,R005\n")
        assert [f.rule_id for f in found] == ["R000"]
        assert "unused suppression for R005" in found[0].message
        assert "R001" not in found[0].message
