"""Per-rule fixtures: one violating snippet and one clean idiom per rule.

Each positive test asserts the rule id *and* the reported line so findings
stay actionable; each negative locks in that the blessed idiom passes.
"""

import textwrap

from repro.lint import lint_source


def findings_for(source: str, rule_id: str, path: str = "snippet.py"):
    return [
        f for f in lint_source(textwrap.dedent(source), path=path) if f.rule_id == rule_id
    ]


class TestR001WallClock:
    def test_time_time_flagged(self):
        found = findings_for(
            """\
            import time

            def stamp():
                return time.time()
            """,
            "R001",
        )
        assert [f.line for f in found] == [4]
        assert "wall clock" in found[0].message

    def test_aliased_import_flagged(self):
        found = findings_for(
            """\
            import time as _clock
            t = _clock.monotonic()
            """,
            "R001",
        )
        assert [f.line for f in found] == [2]

    def test_from_import_datetime_now_flagged(self):
        found = findings_for(
            """\
            from datetime import datetime
            stamp = datetime.now()
            """,
            "R001",
        )
        assert [f.line for f in found] == [2]

    def test_simtime_usage_clean(self):
        found = findings_for(
            """\
            from repro.common.simtime import HOUR

            def later(now: float) -> float:
                return now + HOUR
            """,
            "R001",
        )
        assert found == []

    def test_unrelated_time_attribute_clean(self):
        # A domain object's own `.time` attribute is not the stdlib call.
        found = findings_for(
            """\
            def f(event):
                return event.time()
            """,
            "R001",
        )
        assert found == []


class TestR002RngSource:
    def test_import_random_flagged(self):
        found = findings_for("import random\n", "R002")
        assert [f.line for f in found] == [1]

    def test_default_rng_flagged(self):
        found = findings_for(
            """\
            import numpy as np
            rng = np.random.default_rng(0)
            """,
            "R002",
        )
        assert [f.line for f in found] == [2]

    def test_np_random_seed_flagged(self):
        found = findings_for(
            """\
            import numpy as np
            np.random.seed(42)
            """,
            "R002",
        )
        assert [f.line for f in found] == [2]

    def test_registry_stream_clean(self):
        found = findings_for(
            """\
            from repro.common.rng import RngRegistry
            rng = RngRegistry(7).stream("component.noise")
            x = rng.random()
            """,
            "R002",
        )
        assert found == []

    def test_generator_annotation_clean(self):
        found = findings_for(
            """\
            import numpy as np

            def f(rng: np.random.Generator) -> float:
                return float(rng.random())
            """,
            "R002",
        )
        assert found == []

    def test_rng_module_itself_exempt(self):
        found = findings_for(
            """\
            import numpy as np
            rng = np.random.default_rng(0)
            """,
            "R002",
            path="src/repro/common/rng.py",
        )
        assert found == []


class TestR003StreamNames:
    def test_fstring_name_flagged(self):
        found = findings_for(
            """\
            def build(rngs, name):
                return rngs.stream(f"workload.{name}")
            """,
            "R003",
        )
        assert [f.line for f in found] == [2]
        assert "f-string" in found[0].message

    def test_variable_name_flagged(self):
        found = findings_for(
            """\
            def build(rngs, name):
                return rngs.stream(name)
            """,
            "R003",
        )
        assert [f.line for f in found] == [2]

    def test_duplicate_name_flagged_at_second_site(self):
        found = findings_for(
            """\
            def one(rngs):
                return rngs.stream("workload.bi")

            def two(rngs):
                return rngs.stream("workload.bi")
            """,
            "R003",
        )
        assert [f.line for f in found] == [5]
        assert "line 2" in found[0].message

    def test_unique_literals_clean(self):
        found = findings_for(
            """\
            def build(rngs):
                a = rngs.stream("workload.etl")
                b = rngs.stream("workload.bi")
                return a, b
            """,
            "R003",
        )
        assert found == []


class TestR004SimtimeEquality:
    def test_time_local_equality_flagged(self):
        found = findings_for(
            """\
            def same(arrival_time, finish_time):
                return arrival_time == finish_time
            """,
            "R004",
        )
        assert [f.line for f in found] == [2]
        assert found[0].severity == "warning"

    def test_simtime_constant_equality_flagged(self):
        found = findings_for(
            """\
            from repro.common.simtime import HOUR

            def at_hour_boundary(t):
                return t == 3 * HOUR
            """,
            "R004",
        )
        assert [f.line for f in found] == [4]

    def test_tolerance_comparison_clean(self):
        found = findings_for(
            """\
            def same(arrival_time, finish_time):
                return abs(arrival_time - finish_time) <= 1e-9
            """,
            "R004",
        )
        assert found == []

    def test_none_sentinel_clean(self):
        found = findings_for(
            """\
            def unset(start_time):
                return start_time == None  # noqa: E711 (sentinel, not float eq)
            """,
            "R004",
        )
        assert found == []


class TestR005MutableDefaults:
    def test_list_default_flagged(self):
        found = findings_for(
            """\
            def collect(item, acc=[]):
                acc.append(item)
                return acc
            """,
            "R005",
        )
        assert [f.line for f in found] == [1]

    def test_set_call_default_flagged(self):
        found = findings_for(
            """\
            def collect(item, seen=set(), *, tags={}):
                return item
            """,
            "R005",
        )
        assert len(found) == 2

    def test_none_default_clean(self):
        found = findings_for(
            """\
            def collect(item, acc=None):
                acc = [] if acc is None else acc
                acc.append(item)
                return acc
            """,
            "R005",
        )
        assert found == []


class TestR006SilentExcept:
    def test_bare_except_flagged(self):
        found = findings_for(
            """\
            def apply(actuator):
                try:
                    actuator.resize()
                except:
                    pass
            """,
            "R006",
        )
        assert [f.line for f in found] == [4]

    def test_blanket_swallow_flagged(self):
        found = findings_for(
            """\
            def apply(actuator):
                try:
                    actuator.resize()
                except Exception:
                    pass
            """,
            "R006",
        )
        assert [f.line for f in found] == [4]

    def test_specific_handler_clean(self):
        found = findings_for(
            """\
            def apply(actuator, ledger):
                try:
                    actuator.resize()
                except TimeoutError as exc:
                    ledger.record_failure(exc)
            """,
            "R006",
        )
        assert found == []

    def test_blanket_with_real_handling_clean(self):
        found = findings_for(
            """\
            def apply(actuator, ledger):
                try:
                    actuator.resize()
                except Exception as exc:
                    ledger.record_failure(exc)
                    raise
            """,
            "R006",
        )
        assert found == []


class TestR007PublicAnnotations:
    def test_missing_annotations_flagged_in_core(self):
        found = findings_for(
            """\
            def estimate(credits, horizon) -> float:
                return credits * horizon

            class Model:
                def fit(self, records):
                    return self
            """,
            "R007",
            path="src/repro/core/model.py",
        )
        assert [(f.line, f.rule_id) for f in found] == [(1, "R007"), (5, "R007")]
        assert "credits" in found[0].message
        assert "return" in found[1].message

    def test_fully_annotated_clean(self):
        found = findings_for(
            """\
            def estimate(credits: float, horizon: float) -> float:
                return credits * horizon

            class Model:
                def __init__(self, alpha: float = 0.5):
                    self.alpha = alpha

                def fit(self, records: list) -> "Model":
                    return self

                def _helper(self, x):
                    return x
            """,
            "R007",
            path="src/repro/costmodel/model.py",
        )
        assert found == []

    def test_out_of_scope_package_ignored(self):
        found = findings_for(
            "def estimate(credits, horizon):\n    return credits * horizon\n",
            "R007",
            path="src/repro/portal/reports.py",
        )
        assert found == []


class TestR008SetIteration:
    def test_for_over_set_call_flagged(self):
        found = findings_for(
            """\
            def render(warehouses):
                for name in set(warehouses):
                    print(name)
            """,
            "R008",
        )
        assert [f.line for f in found] == [2]

    def test_for_over_set_union_variable_flagged(self):
        found = findings_for(
            """\
            def render(a, b):
                names = set(a) | set(b)
                rows = []
                for name in names:
                    rows.append(name)
                return rows
            """,
            "R008",
        )
        assert [f.line for f in found] == [4]

    def test_list_of_set_flagged(self):
        found = findings_for(
            "def order(xs):\n    return list(set(xs))\n",
            "R008",
        )
        assert [f.line for f in found] == [2]

    def test_sorted_set_clean(self):
        found = findings_for(
            """\
            def render(a, b):
                names = set(a) | set(b)
                return sorted(names)
            """,
            "R008",
        )
        assert found == []

    def test_membership_use_clean(self):
        found = findings_for(
            """\
            def keep(records, wanted):
                allowed = set(wanted)
                return [r for r in records if r in allowed]
            """,
            "R008",
        )
        assert found == []


class TestR009PrintInLibrary:
    def test_print_in_library_module_flagged(self):
        found = findings_for(
            """\
            def report(savings: float) -> None:
                print(f"saved {savings:.1%}")
            """,
            "R009",
            path="src/repro/core/ledger.py",
        )
        assert [f.line for f in found] == [2]
        assert "repro.obs" in found[0].message

    def test_cli_frontends_exempt(self):
        source = 'print("usage: ...")\n'
        for path in (
            "src/repro/cli.py",
            "src/repro/obs/cli.py",
            "src/repro/lint/__main__.py",
        ):
            assert findings_for(source, "R009", path=path) == []

    def test_lint_package_exempt(self):
        found = findings_for(
            'print("3 finding(s)")\n', "R009", path="src/repro/lint/findings.py"
        )
        assert found == []

    def test_outside_repro_tree_ignored(self):
        found = findings_for('print("hi")\n', "R009", path="examples/quickstart.py")
        assert found == []

    def test_shadowed_print_method_clean(self):
        found = findings_for(
            """\
            class Table:
                def render(self, printer) -> str:
                    return printer.print("x")
            """,
            "R009",
            path="src/repro/portal/reports.py",
        )
        assert found == []


class TestR010BoundedRetries:
    def test_escapeless_while_true_flagged(self):
        found = findings_for(
            """\
            def keep_trying(client):
                while True:
                    try:
                        client.alter()
                    except ValueError:
                        continue
            """,
            "R010",
        )
        assert [f.line for f in found] == [2]
        assert "unbounded" in found[0].message

    def test_while_one_flagged(self):
        found = findings_for(
            """\
            while 1:
                poll()
            """,
            "R010",
        )
        assert [f.line for f in found] == [1]

    def test_break_escapes(self):
        found = findings_for(
            """\
            def drain(queue):
                while True:
                    if queue.empty():
                        break
                    queue.pop()
            """,
            "R010",
        )
        assert found == []

    def test_return_escapes_even_inside_try(self):
        found = findings_for(
            """\
            def retry(client, attempts: int):
                while True:
                    try:
                        return client.alter()
                    except ValueError:
                        attempts -= 1
            """,
            "R010",
        )
        assert found == []

    def test_break_in_nested_loop_does_not_escape_outer(self):
        found = findings_for(
            """\
            while True:
                for item in batch():
                    if item is None:
                        break
                process(batch)
            """,
            "R010",
        )
        assert [f.line for f in found] == [1]

    def test_nested_def_return_does_not_escape(self):
        found = findings_for(
            """\
            while True:
                def helper():
                    return 1
                helper()
            """,
            "R010",
        )
        assert [f.line for f in found] == [1]

    def test_bounded_while_clean(self):
        found = findings_for(
            """\
            attempts = 0
            while attempts < 3:
                attempts += 1
            """,
            "R010",
        )
        assert found == []

    def test_working_blanket_handler_flagged(self):
        found = findings_for(
            """\
            def tick(monitor):
                try:
                    monitor.poll()
                except Exception as exc:
                    log(exc)
            """,
            "R010",
        )
        assert [f.line for f in found] == [4]
        assert "re-raise" in found[0].message

    def test_reraising_blanket_handler_clean(self):
        found = findings_for(
            """\
            def tick(monitor):
                try:
                    monitor.poll()
                except Exception as exc:
                    raise RuntimeError("poll failed") from exc
            """,
            "R010",
        )
        assert found == []

    def test_trivial_swallow_left_to_r006(self):
        # `except Exception: pass` is R006's finding; R010 must not duplicate.
        source = """\
            try:
                poll()
            except Exception:
                pass
            """
        assert findings_for(source, "R010") == []
        assert len(findings_for(source, "R006")) == 1

    def test_bare_except_left_to_r006(self):
        source = """\
            try:
                poll()
            except:
                log("?")
            """
        assert findings_for(source, "R010") == []
        assert len(findings_for(source, "R006")) == 1

    def test_specific_handler_clean(self):
        found = findings_for(
            """\
            def tick(monitor):
                try:
                    monitor.poll()
                except ValueError as exc:
                    log(exc)
            """,
            "R010",
        )
        assert found == []


class TestR011ProcessPoolConfinement:
    def test_multiprocessing_import_flagged(self):
        found = findings_for(
            """\
            import multiprocessing

            def fan_out(jobs):
                with multiprocessing.Pool(4) as pool:
                    return pool.map(run, jobs)
            """,
            "R011",
            path="src/repro/experiments/runner.py",
        )
        assert [f.line for f in found] == [1]
        assert "repro.parallel.run_jobs" in found[0].message

    def test_concurrent_futures_from_import_flagged(self):
        found = findings_for(
            "from concurrent.futures import ProcessPoolExecutor\n",
            "R011",
            path="src/repro/core/optimizer.py",
        )
        assert [f.line for f in found] == [1]

    def test_parallel_package_exempt(self):
        found = findings_for(
            """\
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            """,
            "R011",
            path="src/repro/parallel/pool.py",
        )
        assert found == []

    def test_outside_repro_tree_ignored(self):
        found = findings_for(
            "import multiprocessing\n", "R011", path="scripts/load_test.py"
        )
        assert found == []

    def test_relative_import_not_confused(self):
        # `from .concurrent import x` is a local module, not the stdlib.
        found = findings_for(
            "from .concurrent import helpers\n",
            "R011",
            path="src/repro/costmodel/model.py",
        )
        assert found == []


class TestR018ResourceQuarantine:
    def test_getrusage_outside_quarantine_flagged(self):
        found = findings_for(
            """\
            import resource

            def peak_kb() -> int:
                return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            """,
            "R018",
            path="src/repro/experiments/runner.py",
        )
        assert [f.line for f in found] == [4]
        assert "ResourceProbe" in found[0].message

    def test_tracemalloc_outside_quarantine_flagged(self):
        found = findings_for(
            """\
            import tracemalloc

            def measure():
                tracemalloc.start()
                return tracemalloc.get_traced_memory()
            """,
            "R018",
            path="src/repro/obs/metrics.py",
        )
        assert [f.line for f in found] == [4, 5]

    def test_quarantine_module_exempt(self):
        found = findings_for(
            """\
            import resource as _resource

            def peak_rss_kb() -> int:
                return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
            """,
            "R018",
            path="src/repro/obs/stream.py",
        )
        assert found == []

    def test_benchmarks_out_of_scope(self):
        found = findings_for(
            "import tracemalloc\ntracemalloc.start()\n",
            "R018",
            path="benchmarks/bench_stream_merge.py",
        )
        assert found == []

    def test_aliased_import_resolved(self):
        found = findings_for(
            """\
            import os as _os

            def load():
                return _os.getloadavg()
            """,
            "R018",
            path="src/repro/portal/reports.py",
        )
        assert [f.line for f in found] == [4]


class TestR019DurableWriteDiscipline:
    def test_open_write_mode_flagged(self):
        found = findings_for(
            """\
            def publish(path):
                with open(path, "w") as handle:
                    handle.write("state")
            """,
            "R019",
            path="src/repro/core/registry.py",
        )
        assert [f.line for f in found] == [2]
        assert "atomic helpers" in found[0].message

    def test_open_mode_keyword_flagged(self):
        found = findings_for(
            'handle = open("journal.jsonl", mode="ab")\n',
            "R019",
            path="src/repro/durability/checkpoint.py",
        )
        assert [f.line for f in found] == [1]

    def test_open_dynamic_mode_flagged(self):
        # A mode the linter can't prove is a read is flagged, not trusted.
        found = findings_for(
            """\
            def touch(path, mode):
                return open(path, mode)
            """,
            "R019",
            path="src/repro/durability/checkpoint.py",
        )
        assert [f.line for f in found] == [2]

    def test_write_text_and_savez_flagged(self):
        found = findings_for(
            """\
            import numpy as np

            def save(path, meta_path, arrays, text):
                np.savez(path, *arrays)
                meta_path.write_text(text)
            """,
            "R019",
            path="src/repro/core/registry.py",
        )
        assert [f.line for f in found] == [4, 5]
        assert "atomic_savez" in found[0].message

    def test_open_read_clean(self):
        found = findings_for(
            """\
            def load(path):
                with open(path) as handle:
                    return handle.read()

            def load_binary(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """,
            "R019",
            path="src/repro/durability/checkpoint.py",
        )
        assert found == []

    def test_io_module_exempt(self):
        found = findings_for(
            """\
            def atomic_write_text(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            "R019",
            path="src/repro/durability/io.py",
        )
        assert found == []

    def test_export_surface_out_of_scope(self):
        found = findings_for(
            'open("report.html", "w").write("<html/>")\n',
            "R019",
            path="src/repro/portal/reports.py",
        )
        assert found == []
