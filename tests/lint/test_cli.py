"""CLI surface: exit codes, JSON stability, rule selection, repro.cli wiring."""

import io
import json
import pathlib
import subprocess
import sys

from repro.lint.cli import JSON_SCHEMA_VERSION, build_parser, run

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

DIRTY = "import time\nt = time.time()\n"


def run_cli(argv, cwd=None):
    out = io.StringIO()
    args = build_parser().parse_args(argv)
    code = run(args, out=out)
    return code, out.getvalue()


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        code, _ = run_cli([str(target)])
        assert code == 0

    def test_findings_exit_one(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY)
        code, out = run_cli([str(target)])
        assert code == 1
        assert "R001" in out

    def test_unparseable_file_exits_two(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        code, out = run_cli([str(target)])
        assert code == 2
        assert "broken.py" in out

    def test_unknown_rule_id_exits_two(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        code, _ = run_cli([str(target), "--select", "R999"])
        assert code == 2

    def test_nonexistent_path_exits_two(self, tmp_path):
        # A typo'd path must not be a vacuous clean pass (CI would lie).
        code, out = run_cli([str(tmp_path / "nope")])
        assert code == 2
        assert "no such file" in out


class TestHumanOutput:
    def test_findings_carry_file_line_rule(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY)
        _, out = run_cli([str(target)])
        assert f"{target.as_posix()}:2:" in out
        assert "[error]" in out

    def test_list_rules_covers_all_eight(self):
        code, out = run_cli(["--list-rules"])
        assert code == 0
        for rid in ("R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008"):
            assert rid in out


class TestJsonOutput:
    def test_schema_and_ordering_stable(self, tmp_path):
        # Two violations in two files: output must be sorted by path/line.
        (tmp_path / "b.py").write_text(DIRTY)
        (tmp_path / "a.py").write_text("import random\n")
        code, out = run_cli([str(tmp_path), "--format", "json"])
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_scanned"] == 2
        assert payload["exit_code"] == 1
        files = [f["file"] for f in payload["findings"]]
        assert files == sorted(files)
        assert set(payload["findings"][0]) == {
            "file",
            "line",
            "col",
            "rule_id",
            "severity",
            "message",
        }

    def test_json_roundtrips_byte_identical(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY)
        _, first = run_cli([str(target), "--format", "json"])
        _, second = run_cli([str(target), "--format", "json"])
        assert first == second


class TestSarifOutput:
    def test_two_runs_byte_identical(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY)
        _, first = run_cli([str(target), "--format", "sarif"])
        _, second = run_cli([str(target), "--format", "sarif"])
        assert first == second

    def test_sarif_shape(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY)
        code, out = run_cli([str(target), "--format", "sarif"])
        assert code == 1
        sarif = json.loads(out)
        assert sarif["version"] == "2.1.0"
        (sarif_run,) = sarif["runs"]
        driver = sarif_run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert any(rule["id"] == "R001" for rule in driver["rules"])
        results = sarif_run["results"]
        assert any(r["ruleId"] == "R001" for r in results)
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        # SARIF columns are 1-based; Finding.col is 0-based.
        assert region["startLine"] == 2 and region["startColumn"] >= 1

    def test_file_errors_surface_as_notifications(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        code, out = run_cli([str(target), "--format", "sarif"])
        assert code == 2
        sarif = json.loads(out)
        notes = sarif["runs"][0]["invocations"][0]["toolExecutionNotifications"]
        assert notes and "broken.py" in notes[0]["message"]["text"]


class TestSelection:
    def test_select_restricts_rules(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("import random\nimport time\nt = time.time()\n")
        _, out = run_cli([str(target), "--select", "R002"])
        assert "R002" in out and "R001" not in out

    def test_min_severity_drops_warnings(self, tmp_path):
        target = tmp_path / "warn.py"
        target.write_text("def f(start_time, end_time):\n    return start_time == end_time\n")
        code, _ = run_cli([str(target), "--min-severity", "error"])
        assert code == 0
        code, _ = run_cli([str(target)])
        assert code == 1


class TestEntryPoints:
    def test_python_dash_m_repro_lint(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(DIRTY)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(target)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "R001" in proc.stdout

    def test_repro_cli_lint_subcommand(self, tmp_path):
        from repro.cli import main

        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0
