"""The CI gate: the repo itself must stay lint-clean.

The linter's value is the frozen clean state — every determinism invariant
in docs/INVARIANTS.md is machine-checked here on every test run.  If this
test fails, either fix the violation or add a *justified*
``# repro-lint: disable=Rxxx`` suppression (see docs/INVARIANTS.md).
"""

import pathlib

from repro.lint import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def render(result):
    return "\n".join(f.render() for f in result.findings) + "\n" + "\n".join(result.errors)


class TestSelfClean:
    def test_src_is_lint_clean(self):
        result = lint_paths([REPO_ROOT / "src"])
        assert result.clean, f"new lint violations under src/:\n{render(result)}"
        # The whole library really was scanned (guards against a silent
        # file-discovery regression making this gate vacuous).
        assert result.files_scanned >= 70

    def test_benchmarks_and_examples_are_lint_clean(self):
        result = lint_paths([REPO_ROOT / "benchmarks", REPO_ROOT / "examples"])
        assert result.clean, f"new lint violations:\n{render(result)}"
        assert result.files_scanned >= 15

    def test_exit_code_contract(self):
        assert lint_paths([REPO_ROOT / "src"]).exit_code() == 0

    def test_tests_and_benchmarks_pass_hygiene_rules(self):
        # tests/ and benchmarks/ are exempt from the simulation-purity rules
        # (they may seed ad-hoc RNGs, compare exact times, etc.) but not from
        # the hygiene rules: shared mutable defaults, swallowed exceptions,
        # hash-order iteration, unbounded retries.
        result = lint_paths(
            [REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            select=["R005", "R006", "R008", "R010"],
        )
        assert result.clean, f"hygiene violations in tests/benchmarks:\n{render(result)}"
        assert result.files_scanned >= 100
