"""The observability determinism contract, end to end.

docs/OBSERVABILITY.md promises that two runs of the same ``(scenario,
seed)`` produce **byte-identical** trace JSONL and metrics exports.  This
is the whole value of `obs diff` as a regression tool, so it gets an
end-to-end check on a real (small) scenario, not just unit tests.
"""

import pytest

from repro import obs
from repro.experiments.runner import run_before_after
from repro.experiments.scenarios import smoke_scenario


def _traced_run(seed):
    scenario = smoke_scenario(seed=seed)
    with obs.observed(manifest=scenario.manifest()) as rec:
        result, _ = run_before_after(scenario)
    return rec, result


def test_same_seed_runs_export_identical_bytes():
    rec_a, result_a = _traced_run(seed=123)
    rec_b, result_b = _traced_run(seed=123)

    assert rec_a.sink.to_jsonl() == rec_b.sink.to_jsonl()
    assert rec_a.metrics.to_json() == rec_b.metrics.to_json()
    # The trace is not vacuous: real spans from every instrumented layer.
    names = {r["name"] for r in rec_a.sink.records if r["type"] == "span"}
    assert {"engine.controller.fire", "optimizer.tick", "costmodel.replay"} <= names
    # And the runs themselves agreed, manifest included.
    assert result_a.manifest == result_b.manifest
    assert result_a.savings_fraction == pytest.approx(result_b.savings_fraction)


def test_different_seed_changes_trace_but_not_shape():
    rec_a, _ = _traced_run(seed=123)
    rec_b, _ = _traced_run(seed=124)
    assert rec_a.sink.to_jsonl() != rec_b.sink.to_jsonl()
    # Same instrumentation points fire either way.
    names = lambda rec: {r["name"] for r in rec.sink.records if r["type"] == "span"}
    assert names(rec_a) == names(rec_b)
