"""Determinism of the v2 observability exports: series, SLOs, alerts, profile.

Extends ``test_obs_determinism.py`` to the analysis layer added on top of
the trace: two runs of the same ``(scenario, seed)`` must export
byte-identical series buckets, SLO reports, alert histories and span
profiles — so every one of them is usable as a regression oracle, not
just the raw trace.
"""

from repro import obs
from repro.experiments.runner import run_before_after
from repro.experiments.scenarios import smoke_scenario
from repro.obs import default_slos, evaluate_all, profile_records


def _traced_run(seed=123):
    scenario = smoke_scenario(seed=seed)
    with obs.observed(manifest=scenario.manifest()) as rec:
        run_before_after(scenario)
    return rec


def test_same_seed_runs_export_identical_series_slo_alert_bytes():
    rec_a = _traced_run()
    rec_b = _traced_run()

    assert rec_a.series.to_json() == rec_b.series.to_json()
    assert rec_a.alerts.to_json() == rec_b.alerts.to_json()

    report_a = evaluate_all(default_slos(rec_a.series), rec_a.series)
    report_b = evaluate_all(default_slos(rec_b.series), rec_b.series)
    assert report_a.to_json() == report_b.to_json()

    prof_a = profile_records(list(rec_a.sink.records))
    prof_b = profile_records(list(rec_b.sink.records))
    assert prof_a.to_json() == prof_b.to_json()


def test_smoke_run_produces_usable_analysis_artifacts():
    rec = _traced_run()

    # Non-empty series export with monitor and billing histories.
    snapshot = rec.series.snapshot()
    assert snapshot
    assert any(name.startswith("repro.monitor.") for name in snapshot)
    assert any(name.startswith("repro.billing.") for name in snapshot)

    # At least one SLO is inferable and evaluable from what was recorded.
    report = evaluate_all(default_slos(rec.series), rec.series)
    assert len(report.results) >= 1
    for result in report.results:
        assert result.buckets_evaluated > 0

    # Profile totals agree with the trace they came from.
    records = list(rec.sink.records)
    prof = profile_records(records)
    spans = [r for r in records if r["type"] == "span"]
    assert prof.n_spans == len(spans)
    assert prof.total_time == sum(r["time_end"] - r["time"] for r in spans)
    assert sum(s.count for s in prof.spans.values()) == prof.n_spans


def test_series_buckets_reflect_sim_time_not_emission_count():
    rec = _traced_run()
    events = rec.series.get("repro.engine.events")
    assert events is not None
    indices = [index for index, _ in events.points("count")]
    # The smoke scenario simulates 2 days = 576 five-minute buckets; the
    # recorded history must stay inside that range and cover a real spread.
    assert 0 <= indices[0] and indices[-1] <= (2 * 24 * 12)
    assert len(indices) > 10
