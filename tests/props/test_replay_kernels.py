"""Vectorized-vs-scalar equivalence for the replay kernels (docs/PERFORMANCE.md).

The NumPy kernels in :mod:`repro.costmodel.kernels` (and the batched
classify/rescale paths in gaps/latency) promise *bit-identical* results to
the scalar reference loops they replaced — the ``*_scalar`` implementations
kept next to their call sites.  These properties drive both paths over
random telemetry and the edge cases the kernels special-case (empty
windows, zero-suspend, sub-60-second bursts) and assert exact equality of
every :class:`ReplayResult` field.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.simtime import HOUR, Window
from repro.costmodel import kernels
from repro.costmodel.clusters import (
    MINI_WINDOW_SECONDS,
    ClusterCountPredictor,
    concurrency_profile,
    concurrency_profile_scalar,
)
from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import LatencyScalingModel
from repro.costmodel.replay import QueryReplay, _merge_intervals
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

HORIZON = 6 * HOUR

#: Random telemetry rows: (arrival, duration, template id, size, cache hit,
#: chained flag).  Mixed templates/sizes exercise the per-template gamma
#: lookups and the unique-exponent pow cache in ``rescale_batch``; low cache
#: hit ratios exercise the cold-cache damping branch.
record_rows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=HORIZON - 120.0),
        st.floats(min_value=0.2, max_value=900.0),
        st.integers(min_value=0, max_value=3),
        st.sampled_from([WarehouseSize.S, WarehouseSize.M, WarehouseSize.L]),
        st.floats(min_value=0.0, max_value=1.0),
        st.booleans(),
    ),
    min_size=0,
    max_size=60,
)

suspends = st.sampled_from([0.0, 45.0, 60.0, 300.0, 1800.0])
sizes = st.sampled_from([WarehouseSize.XS, WarehouseSize.S, WarehouseSize.L])

#: Random busy spans for the kernel-level properties (may overlap).
span_lists = st.lists(
    st.tuples(
        st.floats(min_value=-500.0, max_value=HORIZON),
        st.floats(min_value=0.0, max_value=2000.0),
    ),
    min_size=0,
    max_size=50,
)


def to_records(rows) -> list[QueryRecord]:
    return [
        QueryRecord(
            query_id=i,
            warehouse="WH",
            text_hash=f"x{i}",
            template_hash=f"t{template}",
            arrival_time=arrival,
            start_time=arrival,
            end_time=arrival + duration,
            execution_seconds=duration,
            warehouse_size=size,
            cache_hit_ratio=cache_hit,
            cluster_number=1,
            chained=chained,
            completed=True,
        )
        for i, (arrival, duration, template, size, cache_hit, chained) in enumerate(
            sorted(rows)
        )
    ]


def replay_pair(records) -> tuple[QueryReplay, QueryReplay]:
    """Vectorized and scalar replays sharing *fitted* component models."""
    latency = LatencyScalingModel().fit(records)
    gaps = GapModel().fit(records)
    clusters = ClusterCountPredictor()
    return (
        QueryReplay(latency, gaps, clusters, vectorized=True),
        QueryReplay(latency, gaps, clusters, vectorized=False),
    )


def assert_results_identical(fast, slow):
    assert fast.credits == slow.credits
    assert fast.active_seconds == slow.active_seconds
    assert fast.cluster_seconds == slow.cluster_seconds
    assert fast.n_queries == slow.n_queries
    assert fast.n_bursts == slow.n_bursts
    assert fast.avg_latency == slow.avg_latency
    assert fast.p99_latency == slow.p99_latency
    assert fast.hourly_credits == slow.hourly_credits


class TestReplayEquivalence:
    @given(record_rows, suspends, sizes)
    @settings(max_examples=120, deadline=None)
    def test_replay_results_bit_identical(self, rows, suspend, size):
        records = to_records(rows)
        fast, slow = replay_pair(records)
        config = WarehouseConfig(size=size, auto_suspend_seconds=suspend)
        window = Window(0.0, HORIZON)
        assert_results_identical(
            fast.replay(records, config, window), slow.replay(records, config, window)
        )

    @given(record_rows)
    @settings(max_examples=40, deadline=None)
    def test_empty_window_equivalence(self, rows):
        """A window past every arrival clips all intervals to nothing."""
        records = to_records(rows)
        fast, slow = replay_pair(records)
        config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=300.0)
        window = Window(HORIZON + DAY_PAD, HORIZON + DAY_PAD + HOUR)
        assert_results_identical(
            fast.replay(records, config, window), slow.replay(records, config, window)
        )

    def test_zero_suspend_never_suspends_path(self):
        """auto_suspend=0 means "never suspends": one burst to window end."""
        records = to_records([(100.0, 60.0, 0, WarehouseSize.S, 1.0, False)])
        fast, slow = replay_pair(records)
        config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=0.0)
        window = Window(0.0, HORIZON)
        fast_result = fast.replay(records, config, window)
        assert_results_identical(fast_result, slow.replay(records, config, window))
        assert fast_result.n_bursts == 1
        assert fast_result.active_seconds == HORIZON - 100.0

    def test_sub_minimum_burst_equivalence(self):
        """Bursts under 60 s bill the 60 s minimum in both paths."""
        rows = [(10.0, 2.0, 0, WarehouseSize.S, 1.0, False)]
        records = to_records(rows)
        fast, slow = replay_pair(records)
        config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=30.0)
        window = Window(0.0, HOUR)
        fast_result = fast.replay(records, config, window)
        assert_results_identical(fast_result, slow.replay(records, config, window))
        assert fast_result.credits > 0.0

    @given(record_rows, suspends)
    @settings(max_examples=40, deadline=None)
    def test_unfitted_models_equivalence(self, rows, suspend):
        """Unfitted gap/latency models (the onboarding state) agree too."""
        records = to_records(rows)
        fast = QueryReplay(
            LatencyScalingModel(), GapModel(), ClusterCountPredictor(), vectorized=True
        )
        slow = QueryReplay(
            LatencyScalingModel(), GapModel(), ClusterCountPredictor(), vectorized=False
        )
        config = WarehouseConfig(size=WarehouseSize.M, auto_suspend_seconds=suspend)
        window = Window(0.0, HORIZON)
        assert_results_identical(
            fast.replay(records, config, window), slow.replay(records, config, window)
        )


DAY_PAD = 3 * HOUR


class TestKernelEquivalence:
    @given(span_lists)
    @settings(max_examples=100, deadline=None)
    def test_bucketed_overlap_matches_coverage_scalar(self, raw):
        spans = sorted((s, s + d) for s, d in raw)
        window = Window(0.0, HORIZON)
        n_windows = max(1, int(math.ceil(window.duration / MINI_WINDOW_SECONDS)))
        scalar = QueryReplay._coverage_scalar(spans, window, n_windows)
        starts, ends = kernels.as_interval_arrays(spans)
        vectorized = kernels.bucketed_overlap(
            starts, ends, window.start, MINI_WINDOW_SECONDS, n_windows
        )
        assert np.array_equal(scalar, vectorized)

    @given(span_lists)
    @settings(max_examples=100, deadline=None)
    def test_concurrency_profile_matches_scalar(self, raw):
        spans = sorted((s, s + d) for s, d in raw)
        scalar = concurrency_profile_scalar(spans, 0.0, HORIZON, MINI_WINDOW_SECONDS)
        vectorized = concurrency_profile(spans, 0.0, HORIZON, MINI_WINDOW_SECONDS)
        assert np.array_equal(scalar, vectorized)

    @given(span_lists)
    @settings(max_examples=100, deadline=None)
    def test_merge_intervals_matches_scalar(self, raw):
        # The replay feeds intervals sorted by (start, end) — mirror that.
        spans = sorted((s, s + d) for s, d in raw)
        expected = _merge_intervals(spans)
        starts, ends = kernels.merge_intervals(*kernels.as_interval_arrays(spans))
        assert list(zip(starts.tolist(), ends.tolist())) == expected

    @given(span_lists, suspends)
    @settings(max_examples=100, deadline=None)
    def test_activation_bursts_match_scalar(self, raw, suspend):
        if suspend <= 0:
            suspend = 45.0  # kernel contract: caller handles suspend <= 0
        spans = sorted((s, s + d) for s, d in raw if d > 0)
        if not spans:
            return
        window = Window(0.0, HORIZON)
        config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=suspend)
        expected = QueryReplay._activation_bursts_scalar(spans, config, window)
        starts, ends = kernels.activation_bursts(
            *kernels.as_interval_arrays(spans), suspend, window.end
        )
        assert list(zip(starts.tolist(), ends.tolist())) == expected

    @given(
        st.lists(st.floats(min_value=0.0, max_value=4000.0), min_size=0, max_size=80),
        st.sampled_from([0.0, 12.25 * HOUR]),
    )
    @settings(max_examples=100, deadline=None)
    def test_hourly_credit_sums_match_scalar(self, seconds, offset):
        per_window = np.asarray(seconds, dtype=np.float64)
        window = Window(offset, offset + per_window.size * MINI_WINDOW_SECONDS + 1.0)
        rate = 4.0
        scalar = QueryReplay._hourly_credits_scalar(per_window, window, rate)
        vectorized = kernels.hourly_credit_sums(
            per_window, window.start, MINI_WINDOW_SECONDS, HOUR, rate
        )
        assert scalar == vectorized
