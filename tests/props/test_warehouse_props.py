"""Property-based tests on the whole warehouse simulator.

Random small workloads against a random configuration must preserve the
global invariants the rest of the system builds on: no query is ever lost,
telemetry is internally consistent, billing matches its own rollups, and
billed time covers execution time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.simtime import HOUR, Window
from repro.warehouse.account import Account
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRequest, QueryTemplate
from repro.warehouse.types import WarehouseSize

workload_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2 * HOUR),  # arrival
        st.floats(min_value=0.5, max_value=300.0),  # base work
        st.integers(min_value=0, max_value=4),  # template id
    ),
    min_size=1,
    max_size=25,
)
config_strategy = st.builds(
    WarehouseConfig,
    size=st.sampled_from([WarehouseSize.XS, WarehouseSize.S, WarehouseSize.M]),
    auto_suspend_seconds=st.sampled_from([0.0, 60.0, 300.0, 900.0]),
    max_clusters=st.integers(min_value=1, max_value=3),
    max_concurrency=st.integers(min_value=1, max_value=4),
)


def run_workload(config: WarehouseConfig, workload) -> Account:
    account = Account(seed=5)
    account.create_warehouse("WH", config)
    templates = {
        i: QueryTemplate(
            name=f"t{i}",
            base_work_seconds=10.0 + 5 * i,
            partitions=tuple(f"t{i}.p{j}" for j in range(3)),
        )
        for i in range(5)
    }
    requests = []
    for arrival, base_work, tpl in workload:
        template = QueryTemplate(
            name=f"t{tpl}",
            base_work_seconds=base_work,
            partitions=templates[tpl].partitions,
        )
        requests.append(QueryRequest(template, arrival, instance_key=str(arrival)))
    account.schedule_workload("WH", requests)
    # Generous horizon: every query must complete.
    account.run_until(8 * HOUR)
    account.sim.run_all(hard_stop=24 * HOUR)
    return account


class TestWarehouseInvariants:
    @given(config_strategy, workload_strategy)
    @settings(max_examples=60, deadline=None)
    def test_no_query_is_lost(self, config, workload):
        account = run_workload(config, workload)
        records = account.telemetry.query_history("WH")
        assert len(records) == len(workload)
        warehouse = account.warehouse("WH")
        assert warehouse.queue_length == 0
        assert warehouse.running_query_count == 0

    @given(config_strategy, workload_strategy)
    @settings(max_examples=60, deadline=None)
    def test_telemetry_time_consistency(self, config, workload):
        account = run_workload(config, workload)
        for r in account.telemetry.query_history("WH"):
            assert r.start_time >= r.arrival_time
            assert r.end_time > r.start_time
            assert r.queued_seconds == pytest.approx(r.start_time - r.arrival_time)
            assert r.execution_seconds == pytest.approx(r.end_time - r.start_time)
            assert 0.0 <= r.cache_hit_ratio <= 1.0
            assert 1 <= r.cluster_number <= config.max_clusters

    @given(config_strategy, workload_strategy)
    @settings(max_examples=60, deadline=None)
    def test_billing_covers_busy_wall_time(self, config, workload):
        """Billed cluster-seconds must cover the *union* of execution spans
        (queries only run on billing clusters; summed execution seconds can
        exceed billed time because one cluster runs several queries at
        once)."""
        account = run_workload(config, workload)
        spans = sorted(
            (r.start_time, r.end_time) for r in account.telemetry.query_history("WH")
        )
        busy, merged_end = 0.0, 0.0
        for start, end in spans:
            start = max(start, merged_end)
            if end > start:
                busy += end - start
                merged_end = end
        window = Window(0, 30 * HOUR)
        billed = account.warehouse("WH").meter.active_cluster_seconds(
            window, as_of=account.sim.now
        )
        assert billed >= busy - 1e-6

    @given(config_strategy, workload_strategy)
    @settings(max_examples=60, deadline=None)
    def test_rollup_matches_window_credits(self, config, workload):
        account = run_workload(config, workload)
        window = Window(0, 30 * HOUR)
        meter = account.warehouse("WH").meter
        rollup = meter.hourly_rollup(window, as_of=account.sim.now)
        assert sum(rollup.values()) == pytest.approx(
            meter.credits_in_window(window, as_of=account.sim.now), rel=1e-9, abs=1e-12
        )

    @given(config_strategy, workload_strategy)
    @settings(max_examples=40, deadline=None)
    def test_deterministic_replay(self, config, workload):
        a = run_workload(config, workload)
        b = run_workload(config, workload)
        credits_a = a.warehouse("WH").meter.total_credits(a.sim.now)
        credits_b = b.warehouse("WH").meter.total_credits(b.sim.now)
        assert credits_a == credits_b
