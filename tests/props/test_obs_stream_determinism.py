"""ISSUE 8's acceptance bar: streamed observability is byte-identical.

A fleet run whose workers stream their observability out as bounded
payload chunks — through spill-bounded sinks and on-disk chunk spools —
must export **exactly** the bytes of a serial run that merged monolithic
payloads: trace JSONL, metrics, series, and the ingested fleet store.
Chunk/spill bounds are set small enough here that both the spill and the
multi-chunk paths actually execute (the stats assert it), so the identity
is proved over the real streaming machinery, not a degenerate single
chunk.
"""

import pytest

from repro import obs
from repro.experiments.runner import run_fleet
from repro.experiments.scenarios import smoke_scenario
from repro.obs.store import FleetStore
from repro.obs.stream import ResourceProbe, campaign_summary
from repro.parallel import StreamConfig

SEED = 123
WIDTH = 2  # scenarios per fleet
WORKERS = 2


def _scenarios():
    return [smoke_scenario(seed=SEED + i) for i in range(WIDTH)]


def _exports(rec):
    store = FleetStore()
    store.ingest_trace_records(rec.sink.records, run="fleet")
    return {
        "trace": rec.sink.to_jsonl(),
        "metrics": rec.metrics.to_json(),
        "series": rec.series.to_json(),
        "store": store.to_jsonl(),
    }


def _serial_monolithic():
    with obs.observed() as rec:
        result = run_fleet(_scenarios(), workers=0)
    return _exports(rec), result


def _streamed(tmp_path, workers):
    probe = ResourceProbe()
    cfg = StreamConfig(
        dir=tmp_path / f"stream-w{workers}",
        max_chunk_events=100,  # well below a smoke run's record count
        spill_records=150,  # forces worker sinks to spill segments
        probe=probe,
    )
    with obs.observed() as rec:
        result = run_fleet(_scenarios(), workers=workers, stream=cfg)
    return _exports(rec), result, probe.report(), cfg


class TestStreamedByteIdentity:
    """The tentpole acceptance test (one fleet run per mode, compared)."""

    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("stream")
        serial, serial_result = _serial_monolithic()
        streamed0, result0, report0, _ = _streamed(tmp_path, workers=0)
        streamed2, result2, report2, cfg2 = _streamed(tmp_path, workers=WORKERS)
        return {
            "serial": serial,
            "streamed0": streamed0,
            "streamed2": streamed2,
            "results": (serial_result, result0, result2),
            "reports": (report0, report2),
            "cfg2": cfg2,
        }

    def test_workers2_streamed_equals_serial_monolithic(self, runs):
        assert runs["streamed2"] == runs["serial"]

    def test_serial_streamed_equals_serial_monolithic(self, runs):
        assert runs["streamed0"] == runs["serial"]

    def test_results_agree_across_modes(self, runs):
        serial, s0, s2 = runs["results"]
        fractions = [r.savings_fractions for r in (serial, s0, s2)]
        assert fractions[0] == fractions[1] == fractions[2]

    def test_streaming_machinery_actually_engaged(self, runs):
        _, report2 = runs["reports"]
        assert report2["counts"]["chunks_merged"] > WIDTH  # multi-chunk streams
        spilled = sum(w.get("spilled_segments", 0) for w in report2["workers"])
        assert spilled > 0  # worker sinks really spilled to disk
        assert report2["bytes"]["chunk_bytes_merged"] > 0

    def test_campaign_summary_complete_and_deterministic(self, runs):
        summary = campaign_summary(runs["cfg2"].base() / "progress")
        assert summary["complete"] is True
        assert summary["n_jobs"] == WIDTH
        assert summary["totals"]["spans"] > 0
