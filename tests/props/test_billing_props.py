"""Property-based tests for billing invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.simtime import HOUR, Window
from repro.warehouse.billing import MINIMUM_BILLED_SECONDS, BillingMeter
from repro.warehouse.types import WarehouseSize

sizes = st.sampled_from(list(WarehouseSize))
# (start, duration) pairs for sequential segments on one cluster.
segment_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.1, max_value=5000.0),
        sizes,
    ),
    min_size=1,
    max_size=20,
)


def build_meter(segments) -> tuple[BillingMeter, float]:
    """Sequential open/close cycles; returns the meter and the end time."""
    meter = BillingMeter("WH")
    t = 0.0
    for gap, duration, size in segments:
        t += gap
        meter.open_segment(1, t, size)
        t += duration
        meter.close_segment(1, t)
    return meter, t


class TestBillingProperties:
    @given(segment_lists)
    @settings(max_examples=100, deadline=None)
    def test_credits_non_negative(self, segments):
        meter, _ = build_meter(segments)
        assert meter.total_credits() >= 0.0

    @given(segment_lists)
    @settings(max_examples=100, deadline=None)
    def test_minimum_charge_floor(self, segments):
        """Every fresh start bills at least the 60 s minimum."""
        meter, _ = build_meter(segments)
        floor = sum(
            MINIMUM_BILLED_SECONDS / HOUR * size.credits_per_hour
            for _, __, size in segments
        )
        assert meter.total_credits() >= floor - 1e-9

    @given(segment_lists)
    @settings(max_examples=100, deadline=None)
    def test_hourly_rollup_conserves_credits(self, segments):
        """Rolling up hourly must neither create nor destroy credits."""
        meter, end = build_meter(segments)
        window = Window(0.0, end + MINIMUM_BILLED_SECONDS + 1.0)
        rollup = meter.hourly_rollup(window)
        assert sum(rollup.values()) == pytest.approx(meter.total_credits(), rel=1e-9)

    @given(segment_lists, st.floats(min_value=1.0, max_value=20000.0))
    @settings(max_examples=100, deadline=None)
    def test_window_split_conserves_credits(self, segments, split):
        """Credits split across adjacent windows sum to the whole."""
        meter, end = build_meter(segments)
        horizon = end + MINIMUM_BILLED_SECONDS + 1.0
        split = min(split, horizon - 0.5)
        left = meter.credits_in_window(Window(0.0, split))
        right = meter.credits_in_window(Window(split, horizon))
        whole = meter.credits_in_window(Window(0.0, horizon))
        assert left + right == pytest.approx(whole, rel=1e-9, abs=1e-12)

    @given(segment_lists)
    @settings(max_examples=50, deadline=None)
    def test_bigger_sizes_cost_more(self, segments):
        """Re-running the same schedule one size up at least doubles cost
        for every non-maxed size (rates double, minimums double)."""
        meter, _ = build_meter(segments)
        upsized = [
            (gap, dur, WarehouseSize(min(size.value + 1, WarehouseSize.SIZE_6XL.value)))
            for gap, dur, size in segments
        ]
        meter_up, _ = build_meter(upsized)
        if all(size != WarehouseSize.SIZE_6XL for _, __, size in segments):
            assert meter_up.total_credits() == pytest.approx(2 * meter.total_credits())
