"""Property-based tests for the partition cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.warehouse.cache import PARTITION_BYTES, PartitionCache

partition_names = st.text(alphabet="abcdef", min_size=1, max_size=3)
access_sequences = st.lists(
    st.lists(partition_names, min_size=0, max_size=8), min_size=1, max_size=30
)
capacities = st.integers(min_value=0, max_value=12)


class TestCacheProperties:
    @given(capacities, access_sequences)
    @settings(max_examples=200, deadline=None)
    def test_never_exceeds_capacity(self, capacity, accesses):
        cache = PartitionCache(capacity * PARTITION_BYTES)
        for access in accesses:
            cache.access(access)
            assert len(cache) <= capacity

    @given(capacities, access_sequences)
    @settings(max_examples=200, deadline=None)
    def test_hit_ratio_bounds(self, capacity, accesses):
        cache = PartitionCache(capacity * PARTITION_BYTES)
        for access in accesses:
            ratio = cache.access(access)
            assert 0.0 <= ratio <= 1.0

    @given(access_sequences)
    @settings(max_examples=100, deadline=None)
    def test_unbounded_cache_repeated_access_warm(self, accesses):
        """With enough capacity, re-touching any previous access set hits."""
        cache = PartitionCache(10**15)
        for access in accesses:
            cache.access(access)
        for access in accesses:
            assert cache.access(access) == 1.0

    @given(capacities, access_sequences)
    @settings(max_examples=100, deadline=None)
    def test_peek_matches_access_ratio(self, capacity, accesses):
        cache = PartitionCache(capacity * PARTITION_BYTES)
        for access in accesses:
            predicted = cache.peek_hit_ratio(access)
            actual = cache.access(access)
            assert predicted == actual

    @given(capacities, access_sequences)
    @settings(max_examples=100, deadline=None)
    def test_hits_plus_misses_equals_touches(self, capacity, accesses):
        cache = PartitionCache(capacity * PARTITION_BYTES)
        touches = 0
        for access in accesses:
            cache.access(access)
            # A query's footprint is a set: duplicates collapse.
            touches += len(set(access))
        assert cache.hits + cache.misses == touches

    @given(capacities, access_sequences)
    @settings(max_examples=100, deadline=None)
    def test_clear_resets_contents(self, capacity, accesses):
        cache = PartitionCache(capacity * PARTITION_BYTES)
        for access in accesses:
            cache.access(access)
        cache.clear()
        assert len(cache) == 0
