"""Exactness and error-bound properties of the incremental what-if ledger.

:mod:`repro.costmodel.incremental` promises:

* **exact mode** — after any interleaving of appends (any arrival order),
  window-start evictions and config changes, ``result(config)`` is
  *bit-identical* to a fresh full :class:`QueryReplay` over the retained
  rows and current window, every :class:`ReplayResult` field;
* **sketch mode** — ``credits_lo <= exact <= credits_hi`` up to 1e-9
  relative IEEE slack, and the interval width stays within the documented
  closed-form ceiling (:meth:`SketchResult.stated_bound`);
* **durability** — the canonical ``state_dict`` round-trips byte-identically
  through a checkpoint + re-feed restore.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, RecoveryError
from repro.common.simtime import HOUR, Window
from repro.costmodel.clusters import MINI_WINDOW_SECONDS, ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.incremental import IncrementalReplay
from repro.costmodel.latency import LatencyScalingModel
from repro.durability.codec import state_checksum
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

HORIZON = 4 * HOUR

#: (arrival, duration, template id, size, cache hit, chained flag) rows.
#: Arrivals are drawn on a 0.1 s lattice and deduplicated: equal-arrival tie
#: order between a full replay's stable sort and streaming insertion is
#: unspecified, and real telemetry timestamps are effectively distinct.
record_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=int((HORIZON - 120.0) * 10)),
        st.floats(min_value=0.2, max_value=900.0),
        st.integers(min_value=0, max_value=3),
        st.sampled_from([WarehouseSize.S, WarehouseSize.M, WarehouseSize.L]),
        st.floats(min_value=0.0, max_value=1.0),
        st.booleans(),
    ),
    min_size=0,
    max_size=50,
    unique_by=lambda row: row[0],
)

CONFIGS = [
    WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=120.0),
    WarehouseConfig(
        size=WarehouseSize.M,
        auto_suspend_seconds=600.0,
        max_clusters=4,
        max_concurrency=4,
    ),
    WarehouseConfig(size=WarehouseSize.XS, auto_suspend_seconds=0.0),
    WarehouseConfig(
        size=WarehouseSize.L,
        auto_suspend_seconds=45.0,
        min_clusters=2,
        max_clusters=6,
    ),
]


def to_records(rows) -> list[QueryRecord]:
    return [
        QueryRecord(
            query_id=i,
            warehouse="WH",
            text_hash=f"x{i}",
            template_hash=f"t{template}",
            arrival_time=arrival_tenths / 10.0,
            start_time=arrival_tenths / 10.0,
            end_time=arrival_tenths / 10.0 + duration,
            execution_seconds=duration,
            warehouse_size=size,
            cache_hit_ratio=cache_hit,
            cluster_number=1,
            chained=chained,
            completed=True,
        )
        for i, (arrival_tenths, duration, template, size, cache_hit, chained) in (
            enumerate(rows)
        )
    ]


def fitted_models(records):
    return (
        LatencyScalingModel().fit(records),
        GapModel().fit(records),
        ClusterCountPredictor(),
    )


def assert_results_identical(inc, full):
    assert inc.credits == full.credits
    assert inc.active_seconds == full.active_seconds
    assert inc.cluster_seconds == full.cluster_seconds
    assert inc.n_queries == full.n_queries
    assert inc.n_bursts == full.n_bursts
    assert inc.avg_latency == full.avg_latency
    assert inc.p99_latency == full.p99_latency
    assert inc.hourly_credits == full.hourly_credits


class TestExactMode:
    @given(record_rows, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_streaming_appends_bit_identical(self, rows, seed):
        """Rows fed in arbitrary order, checked against a fresh full replay
        under several configs at every step boundary."""
        records = to_records(rows)
        latency, gaps, clusters = fitted_models(records)
        inc = IncrementalReplay(latency, gaps, clusters, Window(0.0, HORIZON))
        rng = random.Random(seed)
        feed = records[:]
        rng.shuffle(feed)
        for i, record in enumerate(feed):
            inc.observe(record)
            if i % 7 == 6 or i == len(feed) - 1:
                config = rng.choice(CONFIGS)
                assert_results_identical(inc.result(config), inc.full_replay(config))
        if not records:
            config = rng.choice(CONFIGS)
            assert_results_identical(inc.result(config), inc.full_replay(config))

    @given(record_rows, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_eviction_and_config_interleaving(self, rows, seed):
        """Appends, window-start slides and config switches interleaved."""
        records = to_records(rows)
        latency, gaps, clusters = fitted_models(records)
        inc = IncrementalReplay(latency, gaps, clusters, Window(0.0, HORIZON))
        rng = random.Random(seed)
        feed = sorted(records, key=lambda r: r.end_time)
        for i, record in enumerate(feed):
            if record.arrival_time < inc.window.start:
                continue
            inc.observe(record)
            roll = rng.random()
            if roll < 0.2:
                # Slide forward by up to a quarter of the remaining window.
                span = inc.window.end - inc.window.start
                inc.advance_start(inc.window.start + rng.random() * 0.25 * span)
            if roll < 0.5 or i == len(feed) - 1:
                config = rng.choice(CONFIGS)
                assert_results_identical(inc.result(config), inc.full_replay(config))

    @given(record_rows)
    @settings(max_examples=20, deadline=None)
    def test_refit_invalidation(self, rows):
        """Refitting the gap/latency models mid-stream stays exact."""
        records = to_records(rows)
        latency, gaps, clusters = fitted_models(records)
        inc = IncrementalReplay(latency, gaps, clusters, Window(0.0, HORIZON))
        half = len(records) // 2
        for record in records[:half]:
            inc.observe(record)
        config = CONFIGS[0]
        assert_results_identical(inc.result(config), inc.full_replay(config))
        # Refit on the half-window history: fit_generation bumps, the
        # incremental ledger must re-derive lags/gammas before answering.
        latency.fit(records[:half] or records)
        gaps.fit(records[:half] or records)
        for record in records[half:]:
            inc.observe(record)
        assert_results_identical(inc.result(config), inc.full_replay(config))

    def test_out_of_window_arrival_rejected(self):
        latency, gaps, clusters = fitted_models([])
        inc = IncrementalReplay(latency, gaps, clusters, Window(100.0, 200.0))
        record = to_records([(0, 5.0, 0, WarehouseSize.S, 1.0, False)])[0]
        try:
            inc.observe(record)
        except ConfigurationError:
            pass
        else:
            raise AssertionError("arrival before window start must be rejected")


class TestSketchMode:
    @given(record_rows, st.integers(min_value=0, max_value=2**32 - 1),
           st.sampled_from([60.0, 30.0, 20.0]))
    @settings(max_examples=60, deadline=None)
    def test_enclosure_and_stated_bound(self, rows, seed, resolution):
        """exact ∈ [lo - ε, hi + ε] and hi - lo <= the documented ceiling,
        through appends and mini-window-aligned evictions."""
        records = to_records(rows)
        latency, gaps, clusters = fitted_models(records)
        inc = IncrementalReplay(
            latency, gaps, clusters, Window(0.0, HORIZON),
            mode="sketch", resolution=resolution,
        )
        rng = random.Random(seed)
        feed = records[:]
        rng.shuffle(feed)
        for i, record in enumerate(feed):
            if record.arrival_time < inc.window.start:
                continue
            inc.observe(record)
            roll = rng.random()
            if roll < 0.15 and inc.window.end - inc.window.start > 2 * MINI_WINDOW_SECONDS:
                inc.advance_start(inc.window.start + MINI_WINDOW_SECONDS)
            if roll < 0.5 or i == len(feed) - 1:
                config = rng.choice(CONFIGS)
                sketch = inc.sketch(config)
                exact = inc.full_replay(config)
                slack = 1e-9 * max(1.0, abs(sketch.credits_hi))
                assert sketch.credits_lo - slack <= exact.credits, (
                    f"lower hull exceeded exact: {sketch.credits_lo} > "
                    f"{exact.credits}"
                )
                assert exact.credits <= sketch.credits_hi + slack, (
                    f"upper hull below exact: {sketch.credits_hi} < "
                    f"{exact.credits}"
                )
                width = sketch.credits_hi - sketch.credits_lo
                stated = sketch.stated_bound(
                    config, inc.resolution, inc.window.duration
                )
                assert width <= stated + slack
                assert sketch.credits_lo - slack <= sketch.credits <= (
                    sketch.credits_hi + slack
                )
                assert sketch.error_bound >= -slack

    def test_resolution_must_divide_mini_window(self):
        latency, gaps, clusters = fitted_models([])
        try:
            IncrementalReplay(
                latency, gaps, clusters, Window(0.0, HORIZON),
                mode="sketch", resolution=70.0,
            )
        except ConfigurationError:
            pass
        else:
            raise AssertionError("resolution not dividing 300 s must be rejected")


class TestDurability:
    @given(record_rows, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_state_dict_roundtrip_byte_identical(self, rows, seed):
        """checkpoint → fresh ledger → load + re-feed → identical bytes."""
        records = to_records(rows)
        latency, gaps, clusters = fitted_models(records)
        inc = IncrementalReplay(latency, gaps, clusters, Window(0.0, HORIZON))
        rng = random.Random(seed)
        feed = records[:]
        rng.shuffle(feed)
        for record in feed:
            if record.arrival_time >= inc.window.start:
                inc.observe(record)
        if records:
            inc.advance_start(records[0].arrival_time)
        state = inc.state_dict()
        restored = IncrementalReplay(
            latency, gaps, clusters, Window(0.0, 1.0)
        )
        restored.load_state_dict(state)
        for record in inc.records:
            restored.observe(record)
        restored.verify_restored()
        assert restored.state_dict() == state
        assert state_checksum(restored.state_dict()) == state_checksum(state)
        # And the restored ledger answers identically.
        config = CONFIGS[0]
        assert_results_identical(restored.result(config), inc.result(config))

    def test_restore_mismatch_detected(self):
        records = to_records(
            [(100, 5.0, 0, WarehouseSize.S, 1.0, False),
             (900, 7.0, 1, WarehouseSize.M, 0.8, False)]
        )
        latency, gaps, clusters = fitted_models(records)
        inc = IncrementalReplay(latency, gaps, clusters, Window(0.0, HORIZON))
        for record in records:
            inc.observe(record)
        state = inc.state_dict()
        restored = IncrementalReplay(latency, gaps, clusters, Window(0.0, 1.0))
        restored.load_state_dict(state)
        restored.observe(records[0])  # one row short
        try:
            restored.verify_restored()
        except RecoveryError:
            pass
        else:
            raise AssertionError("short re-feed must fail verification")
