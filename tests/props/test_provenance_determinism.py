"""Byte-identity of provenance, store and attribution exports.

ISSUE 7's acceptance bar: two same-seed runs produce byte-identical
provenance events, ``FleetStore`` JSONL and attribution reports, and a
store fed by ``run_fleet(workers=N)`` holds exactly the same bytes as one
fed by the serial run.  Provenance rides the ordinary trace stream, so
this is what makes the audit trail trustworthy as a regression artifact.
"""

from repro import obs
from repro.experiments.runner import run_before_after, run_fleet
from repro.experiments.scenarios import smoke_scenario
from repro.obs.cli import _attribution_report
from repro.obs.store import FleetStore
from repro.portal.export import to_json

SEEDS = (123, 321, 555)
WORKERS = 2

PROVENANCE_EVENTS = {
    "provenance.decision",
    "provenance.outcome",
    "provenance.attribution",
}


def _traced_run(seed):
    scenario = smoke_scenario(seed=seed)
    with obs.observed(manifest=scenario.manifest()) as rec:
        run_before_after(scenario)
    return rec.sink.records


def _provenance_lines(records):
    import json

    return [
        json.dumps(r, sort_keys=True, separators=(",", ":"))
        for r in records
        if r.get("type") == "event" and r.get("name") in PROVENANCE_EVENTS
    ]


def _store_for(records, run="run"):
    store = FleetStore()
    store.ingest_trace_records(records, run=run)
    return store


class TestSameSeedByteIdentity:
    def test_provenance_events_identical(self):
        lines_a = _provenance_lines(_traced_run(seed=123))
        lines_b = _provenance_lines(_traced_run(seed=123))
        assert lines_a  # the trace actually carries provenance
        assert lines_a == lines_b

    def test_store_and_attribution_report_identical(self):
        records_a = _traced_run(seed=123)
        records_b = _traced_run(seed=123)
        store_a = _store_for(records_a)
        store_b = _store_for(records_b)
        assert store_a.to_jsonl() == store_b.to_jsonl()
        report_a = to_json(_attribution_report(store_a))
        report_b = to_json(_attribution_report(store_b))
        assert report_a == report_b
        assert '"conserved": true' in report_a


class TestParallelStoreIdentity:
    def test_workers_n_store_matches_serial_byte_for_byte(self):
        def fleet_store(workers):
            scenarios = [smoke_scenario(seed=seed) for seed in SEEDS]
            with obs.observed() as rec:
                result = run_fleet(scenarios, workers=workers)
            store = FleetStore()
            store.ingest_trace_records(rec.sink.records, run="fleet")
            return result, store

        serial_result, serial_store = fleet_store(workers=0)
        parallel_result, parallel_store = fleet_store(workers=WORKERS)
        assert parallel_store.to_jsonl() == serial_store.to_jsonl()
        # The attribution rollup derived from either run agrees too.
        assert (
            parallel_result.attribution_rollup() == serial_result.attribution_rollup()
        )
        assert parallel_result.attribution_rollup()["conserved"]
