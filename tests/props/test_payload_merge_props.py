"""Algebra of ``Recorder.merge_payload`` / ``to_payload_chunks``.

The session-merge machinery is what lets worker observability re-enter the
parent recorder in any packaging (one monolithic payload, or a stream of
bounded chunks) without changing a byte of the export.  These properties
pin the algebra that makes that safe:

* merging an **empty** payload is a no-op, span-id counter included;
* merge is **associative** over sessions — folding (A, B) then C equals
  folding A then (B ⊕ C re-exported), record for record;
* ``reserve_span_ids`` interleaved with merges keeps offsets exact: the
  id counter advances by exactly (reserved + merged spans) and merged
  span ids never collide.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Recorder


def _session(seed, n):
    """A deterministic little session shaped by (seed, n)."""
    rec = Recorder()
    for i in range(n):
        t = float(i)
        with rec.span("outer", t) as sp:
            sp.set(seed=seed, i=i)
            if (seed + i) % 2:
                with rec.span("inner", t + 0.25):
                    rec.emit("ping", t + 0.5, seed=seed)
            rec.counter("repro.test.work").inc()
    return rec


def _next_span_id(rec):
    """Probe (and consume) the recorder's next span id."""
    return rec.reserve_span_ids(1)


session_shapes = st.tuples(st.integers(0, 7), st.integers(0, 5))


@given(shape=st.tuples(st.integers(0, 7), st.integers(1, 5)))
@settings(max_examples=25, deadline=None)
def test_empty_payload_merge_is_a_noop(shape):
    seed, n = shape
    target = _session(seed, n)
    control = _session(seed, n)
    target.merge_payload(Recorder().to_payload())
    assert target.sink.to_jsonl() == control.sink.to_jsonl()
    assert target.metrics.to_json() == control.metrics.to_json()
    assert target.series.to_json() == control.series.to_json()
    # The span-id counter did not move either.
    assert _next_span_id(target) == _next_span_id(control)


@given(shapes=st.lists(session_shapes, min_size=3, max_size=3))
@settings(max_examples=25, deadline=None)
def test_merge_is_associative_over_sessions(shapes):
    payloads = [_session(seed, n).to_payload() for seed, n in shapes]

    left = Recorder()  # (A ⊕ B) ⊕ C
    for payload in payloads:
        left.merge_payload(payload)

    # A ⊕ (B ⊕ C): fold B and C into an intermediate recorder first, then
    # merge its re-exported payload after A.
    inner = Recorder()
    inner.merge_payload(payloads[1])
    inner.merge_payload(payloads[2])
    right = Recorder()
    right.merge_payload(payloads[0])
    right.merge_payload(inner.to_payload())

    assert left.sink.to_jsonl() == right.sink.to_jsonl()
    assert left.metrics.to_json() == right.metrics.to_json()
    assert left.series.to_json() == right.series.to_json()


@given(
    steps=st.lists(
        st.one_of(session_shapes, st.integers(1, 9).map(lambda k: ("reserve", k))),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=25, deadline=None)
def test_interleaved_reservations_keep_offsets_exact(steps):
    target = Recorder()
    consumed = 0  # span ids handed out so far, by reservation or merge
    for step in steps:
        if step[0] == "reserve":
            k = step[1]
            first = target.reserve_span_ids(k)
            assert first == consumed + 1  # ids start at 1
            consumed += k
        else:
            seed, n = step
            payload = _session(seed, n).to_payload()
            spans_in = sum(1 for r in payload["records"] if r["type"] == "span")
            target.merge_payload(payload)
            consumed += spans_in
    assert _next_span_id(target) == consumed + 1
    merged_ids = [r["id"] for r in target.sink.records if r["type"] == "span"]
    assert len(merged_ids) == len(set(merged_ids))
    assert all(0 < i <= consumed for i in merged_ids)


@given(shape=session_shapes, max_events=st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_chunked_merge_equals_monolithic_merge(shape, max_events):
    seed, n = shape
    mono, chunked = Recorder(), Recorder()
    mono.merge_payload(_session(seed, n).to_payload())
    for chunk in _session(seed, n).to_payload_chunks(max_events=max_events):
        chunked.merge_payload_chunk(chunk)
    assert chunked.sink.to_jsonl() == mono.sink.to_jsonl()
    assert chunked.metrics.to_json() == mono.metrics.to_json()
    assert chunked.series.to_json() == mono.series.to_json()
    assert _next_span_id(chunked) == _next_span_id(mono)
