"""Property-based tests for the latency scaling model and gap model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import GAMMA_BOUNDS, LatencyScalingModel
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

sizes = st.sampled_from(
    [WarehouseSize.XS, WarehouseSize.S, WarehouseSize.M, WarehouseSize.L, WarehouseSize.XL]
)


def rec(template, size, latency, arrival=0.0, hit=1.0, chained=False, end=None):
    return QueryRecord(
        query_id=int(arrival * 7 + latency),
        warehouse="WH",
        text_hash=f"{template}:{arrival}",
        template_hash=template,
        arrival_time=arrival,
        start_time=arrival,
        end_time=end if end is not None else arrival + latency,
        execution_seconds=latency,
        warehouse_size=size,
        cache_hit_ratio=hit,
        chained=chained,
        completed=True,
    )


# Observations: (size, latency) pairs for one template.
observations = st.lists(
    st.tuples(sizes, st.floats(min_value=0.01, max_value=1000.0)),
    min_size=1,
    max_size=30,
)


class TestLatencyModelProperties:
    @given(observations)
    @settings(max_examples=150, deadline=None)
    def test_gamma_always_in_bounds(self, obs):
        records = [rec("t", size, latency) for size, latency in obs]
        model = LatencyScalingModel().fit(records)
        assert GAMMA_BOUNDS[0] <= model.gamma("t") <= GAMMA_BOUNDS[1]
        assert GAMMA_BOUNDS[0] <= model.warehouse_gamma <= GAMMA_BOUNDS[1]

    @given(observations, sizes, sizes)
    @settings(max_examples=150, deadline=None)
    def test_rescale_monotone_in_size(self, obs, from_size, to_size):
        """Rescaling to a strictly bigger size never predicts more latency."""
        records = [rec("t", size, latency) for size, latency in obs]
        model = LatencyScalingModel().fit(records)
        record = rec("t", from_size, 10.0)
        small = model.rescale(record, to_size)
        bigger = model.rescale(record, to_size.step(1))
        assert bigger <= small + 1e-9

    @given(observations)
    @settings(max_examples=100, deadline=None)
    def test_rescale_identity_at_same_size(self, obs):
        records = [rec("t", size, latency) for size, latency in obs]
        model = LatencyScalingModel().fit(records)
        record = rec("t", WarehouseSize.M, 7.0)
        assert model.rescale(record, WarehouseSize.M) == pytest.approx(7.0)

    @given(observations)
    @settings(max_examples=100, deadline=None)
    def test_rescale_always_positive_and_finite(self, obs):
        records = [rec("t", size, latency) for size, latency in obs]
        model = LatencyScalingModel().fit(records)
        for target in (WarehouseSize.XS, WarehouseSize.SIZE_6XL):
            out = model.rescale(rec("t", WarehouseSize.M, 5.0), target)
            assert np.isfinite(out) and out > 0

    @given(
        st.floats(min_value=0.2, max_value=1.0),
        st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_recovers_planted_gamma(self, gamma, base):
        """Noise-free scaling laws are recovered exactly."""
        records = [
            rec("t", size, base / size.speedup**gamma)
            for size in (WarehouseSize.XS, WarehouseSize.S, WarehouseSize.M)
            for _ in range(2)
        ]
        model = LatencyScalingModel().fit(records)
        assert model.gamma("t") == pytest.approx(gamma, abs=0.02)


chain_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),  # gap after previous end
        st.floats(min_value=1.0, max_value=100.0),  # duration
        st.booleans(),  # chained flag
    ),
    min_size=1,
    max_size=25,
)


class TestGapModelProperties:
    @given(chain_lists)
    @settings(max_examples=150, deadline=None)
    def test_classification_is_total_and_ordered(self, chain):
        records = []
        t = 0.0
        for i, (gap, duration, chained) in enumerate(chain):
            t += gap
            records.append(rec(f"tpl{i % 3}", WarehouseSize.S, duration, arrival=t, chained=chained))
            t += duration
        model = GapModel().fit(records)
        observations = model.classify(records)
        assert len(observations) == len(records)
        arrivals = [o.record.arrival_time for o in observations]
        assert arrivals == sorted(arrivals)
        # Lags are never negative and the first record is never chained.
        assert all(o.lag_after_predecessor >= 0 for o in observations)
        assert not observations[0].chained

    @given(chain_lists)
    @settings(max_examples=100, deadline=None)
    def test_no_flags_no_support_means_no_chains(self, chain):
        """With flags disabled, chains need repeated statistical support."""
        records = []
        t = 0.0
        for i, (gap, duration, chained) in enumerate(chain):
            t += gap + 200.0  # gaps too wide for the detector window
            records.append(rec(f"tpl{i}", WarehouseSize.S, duration, arrival=t))
            t += duration
        model = GapModel(use_flags=False).fit(records)
        observations = model.classify(records)
        assert not any(o.chained for o in observations)


class TestClassifyEquivalence:
    """``classify``, ``classify_arrays`` and ``classify_step`` are three
    views of the same classification and must agree bit for bit."""

    @staticmethod
    def _history(chain):
        records = []
        t = 0.0
        for i, (gap, duration, chained) in enumerate(chain):
            t += gap
            records.append(
                rec(f"tpl{i % 4}", WarehouseSize.S, duration, arrival=t, chained=chained)
            )
            t += duration * 0.25  # overlapping arrivals: negative observed lags
        return records

    @given(chain_lists, st.booleans(), st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_classify_arrays_bit_identical_to_classify(self, chain, use_flags, fit):
        records = self._history(chain)
        model = GapModel(use_flags=use_flags)
        if fit:
            model.fit(records)
        observations = model.classify(records)
        ordered = sorted(records, key=lambda r: r.arrival_time)
        arrivals = np.asarray([r.arrival_time for r in ordered])
        end_times = np.asarray([r.end_time for r in ordered])
        templates = [r.template_hash for r in ordered]
        flags = np.asarray([r.chained for r in ordered], dtype=bool)
        chained_arr, lags_arr = model.classify_arrays(
            arrivals, end_times, templates, flags
        )
        assert [bool(c) for c in chained_arr] == [o.chained for o in observations]
        # Bit-identical, not approx: the replay's chain recurrence consumes
        # these lags and its exactness contract is bitwise.
        assert [float(l) for l in lags_arr] == [
            o.lag_after_predecessor for o in observations
        ]

    @given(chain_lists, st.booleans(), st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_classify_step_matches_classify_arrays(self, chain, use_flags, fit):
        records = self._history(chain)
        model = GapModel(use_flags=use_flags)
        if fit:
            model.fit(records)
        ordered = sorted(records, key=lambda r: r.arrival_time)
        arrivals = np.asarray([r.arrival_time for r in ordered])
        end_times = np.asarray([r.end_time for r in ordered])
        templates = [r.template_hash for r in ordered]
        flags = np.asarray([r.chained for r in ordered], dtype=bool)
        chained_arr, lags_arr = model.classify_arrays(
            arrivals, end_times, templates, flags
        )
        for i in range(1, len(ordered)):
            chained_i, lag_i = model.classify_step(
                float(end_times[i - 1]),
                float(arrivals[i]),
                templates[i - 1],
                templates[i],
                bool(flags[i]),
            )
            assert chained_i == bool(chained_arr[i])
            assert lag_i == float(lags_arr[i])
