"""Property-based tests for the event engine and the constraint engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.simtime import DAY, HOUR
from repro.core.actions import ActionSpace
from repro.core.constraints import ConstraintRule, ConstraintSet
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.engine import Simulation
from repro.warehouse.types import WarehouseSize


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_events_always_fire_in_order(self, times):
        sim = Simulation()
        fired = []
        for t in times:
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run_until(1e6 + 1)
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=50),
        st.sets(st.integers(min_value=0, max_value=49)),
    )
    @settings(max_examples=100, deadline=None)
    def test_cancelled_events_never_fire(self, times, cancel_idx):
        sim = Simulation()
        fired = []
        handles = [sim.schedule(t, lambda i=i: fired.append(i)) for i, t in enumerate(times)]
        for i in cancel_idx:
            if i < len(handles):
                handles[i].cancel()
        sim.run_until(1e5 + 1)
        cancelled = {i for i in cancel_idx if i < len(times)}
        assert set(fired) == set(range(len(times))) - cancelled


rule_strategy = st.builds(
    ConstraintRule,
    name=st.just("r"),
    weekdays=st.sets(st.integers(0, 6), min_size=1, max_size=7).map(tuple),
    start_hour=st.floats(min_value=0.0, max_value=24.0),
    end_hour=st.floats(min_value=0.0, max_value=24.0),
    min_size=st.one_of(st.none(), st.sampled_from(list(WarehouseSize))),
    min_clusters=st.one_of(st.none(), st.integers(1, 6)),
    allow_downsize=st.booleans(),
    allow_upsize=st.booleans(),
    allow_cluster_changes=st.booleans(),
    min_auto_suspend=st.one_of(st.none(), st.floats(min_value=0.0, max_value=900.0)),
)


class TestConstraintProperties:
    @given(st.lists(rule_strategy, max_size=4), st.floats(min_value=0.0, max_value=56 * DAY))
    @settings(max_examples=150, deadline=None)
    def test_masked_actions_are_exactly_the_permitted_ones(self, rules, t):
        """The action mask and permits() must agree on every action."""
        constraints = ConstraintSet(rules)
        original = WarehouseConfig(size=WarehouseSize.M, max_clusters=4)
        space = ActionSpace(original)
        mask = constraints.action_mask(t, original, space)
        for i, target in enumerate(space.resulting_configs(original)):
            assert mask[i] == constraints.permits(t, original, target)

    @given(st.lists(rule_strategy, max_size=4), st.floats(min_value=0.0, max_value=56 * DAY))
    @settings(max_examples=150, deadline=None)
    def test_staying_put_is_always_compliant(self, rules, t):
        """No rule can make the current configuration illegal to keep —
        permits() only restricts *transitions* and resource floors are the
        separate enforce_floor path."""
        constraints = ConstraintSet(rules)
        config = WarehouseConfig(size=WarehouseSize.M, max_clusters=4)
        floored = constraints.enforce_floor(t, config)
        assert constraints.permits(t, floored, floored)

    @given(st.lists(rule_strategy, max_size=4), st.floats(min_value=0.0, max_value=56 * DAY))
    @settings(max_examples=150, deadline=None)
    def test_enforce_floor_idempotent(self, rules, t):
        constraints = ConstraintSet(rules)
        config = WarehouseConfig(size=WarehouseSize.M, max_clusters=4)
        once = constraints.enforce_floor(t, config)
        twice = constraints.enforce_floor(t, once)
        assert once == twice


class TestActionSpaceProperties:
    @given(
        st.sampled_from(list(WarehouseSize)),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=2),
        st.lists(st.integers(min_value=0, max_value=35), min_size=1, max_size=30),
    )
    @settings(max_examples=150, deadline=None)
    def test_any_action_sequence_stays_in_bounds(self, size, max_clusters, headroom, seq):
        original = WarehouseConfig(size=size, max_clusters=max_clusters)
        space = ActionSpace(original, max_size_headroom=headroom)
        config = original
        for idx in seq:
            config = space.apply(config, space.actions[idx % len(space)])
            assert WarehouseSize.XS <= config.size <= original.size.step(headroom)
            assert 1 <= config.max_clusters <= max_clusters
            assert config.min_clusters <= config.max_clusters
