"""The headline durability invariant: crash anywhere, restore, byte-identity.

For any seeded scenario and any crash boundary, crash → restore →
continue produces byte-identical ledger/provenance/attribution/store/
trace/metrics/series/alert exports versus the uninterrupted run — the
trace may differ only by the explicit ``service.restore`` event (the
harness strips it before comparing and counts it separately).  The two
detection kinds invert the claim: restore must *refuse* with a typed
:class:`RecoveryError`, never continue from damaged artifacts.
"""

import pytest

from repro.experiments.crash import EXPORT_NAMES, run_with_recovery
from repro.experiments.scenarios import chaos_smoke_scenario, smoke_scenario
from repro.faults.plan import FaultKind


def assert_byte_identical(result):
    assert result.crashes == 1
    assert result.recovered, result.recovery_error
    assert result.restore_events == 1
    failed = [name for name in EXPORT_NAMES if not result.identical[name]]
    assert not failed, f"exports diverged after restore: {failed}"
    assert result.ok


class TestCrashAnywhere:
    @pytest.mark.parametrize("boundary", [1, 2, 4])
    def test_smoke_byte_identical_at_any_boundary(self, boundary):
        result = run_with_recovery(smoke_scenario, crash_boundary=boundary)
        assert_byte_identical(result)

    def test_crash_under_client_faults(self):
        """A process death *during* injected vendor chaos still recovers
        exactly: the faults.client RNG stream and the injection counters
        are part of the journaled state."""
        result = run_with_recovery(chaos_smoke_scenario, crash_boundary=2)
        assert_byte_identical(result)


class TestTornWriteRepair:
    def test_torn_tail_repaired_then_byte_identical(self):
        result = run_with_recovery(
            smoke_scenario, kind=FaultKind.TORN_WRITE, crash_boundary=2
        )
        assert result.repairs == 1
        assert_byte_identical(result)


class TestDetectionKinds:
    @pytest.mark.parametrize(
        "kind", [FaultKind.TRUNCATED_JOURNAL, FaultKind.STALE_SNAPSHOT]
    )
    def test_corruption_is_refused_not_replayed(self, kind):
        result = run_with_recovery(smoke_scenario, kind=kind, crash_boundary=2)
        assert result.crashes == 1
        assert not result.recovered
        assert result.recovery_error  # the typed refusal, stringified
        assert result.ok  # for detection kinds, refusing IS the pass

    def test_report_shape(self):
        result = run_with_recovery(
            smoke_scenario, kind=FaultKind.TRUNCATED_JOURNAL, crash_boundary=2
        )
        report = result.report()
        assert report["ok"] is True
        assert report["recovered"] is False
        assert "journal" in report["recovery_error"]
