"""Property-based tests for the query replay's cost-model invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.simtime import HOUR, Window
from repro.costmodel.clusters import ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import LatencyScalingModel
from repro.costmodel.replay import QueryReplay
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

HORIZON = 8 * HOUR

# Random telemetry: (arrival, duration) pairs.
record_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=HORIZON - 600.0),
        st.floats(min_value=0.5, max_value=500.0),
    ),
    min_size=1,
    max_size=40,
)
suspend_choices = st.sampled_from([60.0, 300.0, 600.0, 1800.0])


def to_records(pairs) -> list[QueryRecord]:
    return [
        QueryRecord(
            query_id=i,
            warehouse="WH",
            text_hash=f"x{i}",
            template_hash="t",
            arrival_time=arrival,
            start_time=arrival,
            end_time=arrival + duration,
            execution_seconds=duration,
            warehouse_size=WarehouseSize.S,
            cache_hit_ratio=1.0,
            cluster_number=1,
            completed=True,
        )
        for i, (arrival, duration) in enumerate(sorted(pairs))
    ]


def fresh_replay() -> QueryReplay:
    return QueryReplay(LatencyScalingModel(), GapModel(), ClusterCountPredictor())


class TestReplayProperties:
    @given(record_lists, suspend_choices)
    @settings(max_examples=80, deadline=None)
    def test_credits_non_negative_and_finite(self, pairs, suspend):
        replay = fresh_replay()
        config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=suspend)
        result = replay.replay(to_records(pairs), config, Window(0, HORIZON))
        assert result.credits >= 0.0
        assert result.active_seconds <= HORIZON + 1e-6

    @given(record_lists)
    @settings(max_examples=80, deadline=None)
    def test_longer_suspend_never_cheaper(self, pairs):
        """Keeping the warehouse up longer can only add billed time (at the
        same size, with independent arrivals)."""
        replay = fresh_replay()
        records = to_records(pairs)
        window = Window(0, HORIZON)
        short = replay.replay(
            records, WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=60.0), window
        )
        long = replay.replay(
            records, WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=1800.0), window
        )
        assert long.credits >= short.credits - 1e-6

    @given(record_lists, suspend_choices)
    @settings(max_examples=80, deadline=None)
    def test_active_time_covers_busy_time(self, pairs, suspend):
        """The warehouse must be active at least as long as the union of
        query executions (clipped to the window)."""
        replay = fresh_replay()
        records = to_records(pairs)
        config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=suspend)
        result = replay.replay(records, config, Window(0, HORIZON))
        spans = sorted((r.arrival_time, min(r.end_time, HORIZON)) for r in records)
        merged_end, busy = 0.0, 0.0
        for start, end in spans:
            start = max(start, merged_end)
            if end > start:
                busy += end - start
                merged_end = end
        assert result.active_seconds >= busy - 1e-6

    @given(record_lists)
    @settings(max_examples=60, deadline=None)
    def test_burst_count_monotone_in_suspend(self, pairs):
        """A longer suspend interval merges bursts, never splits them."""
        replay = fresh_replay()
        records = to_records(pairs)
        window = Window(0, HORIZON)
        short = replay.replay(
            records, WarehouseConfig(auto_suspend_seconds=60.0), window
        )
        long = replay.replay(
            records, WarehouseConfig(auto_suspend_seconds=1800.0), window
        )
        assert long.n_bursts <= short.n_bursts

    @given(record_lists, suspend_choices)
    @settings(max_examples=60, deadline=None)
    def test_hourly_rollup_never_exceeds_total(self, pairs, suspend):
        replay = fresh_replay()
        config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=suspend)
        result = replay.replay(to_records(pairs), config, Window(0, HORIZON))
        assert sum(result.hourly_credits.values()) <= result.credits + 1e-6
