"""Tests for FaultingWarehouseClient: per-kind behaviour and determinism."""

import pytest

from repro.common.errors import (
    ConfigRejectedError,
    InjectedFaultError,
    TelemetryError,
    WarehouseTimeoutError,
)
from repro.common.rng import fallback_rng
from repro.common.simtime import HOUR, Window
from repro.faults import FaultingWarehouseClient, FaultKind, FaultPlan, FaultSpec
from repro.warehouse.api import CloudWarehouseClient
from tests.conftest import drive, make_account, make_requests, make_template


def build(specs, seed=11, rng=None):
    account, wh = make_account(seed=seed)
    client = FaultingWarehouseClient(account, FaultPlan(specs=tuple(specs)), rng=rng)
    return account, wh, client


class TestFailureKinds:
    def test_api_error_raises_and_counts(self):
        account, wh, client = build(
            [FaultSpec(FaultKind.API_ERROR, operation="alter_warehouse", detail="boom")]
        )
        before = client.current_config(wh)
        with pytest.raises(InjectedFaultError, match="boom"):
            client.alter_warehouse(wh, auto_suspend_seconds=30.0)
        assert client.current_config(wh) == before  # nothing landed
        assert client.injected == {"api_error": 1}
        assert client.injected_by_operation == {("alter_warehouse", "api_error"): 1}
        assert client.total_injected() == 1

    def test_api_timeout_on_write_lands_then_raises(self):
        account, wh, client = build(
            [FaultSpec(FaultKind.API_TIMEOUT, operation="alter_warehouse")]
        )
        with pytest.raises(WarehouseTimeoutError):
            client.alter_warehouse(wh, auto_suspend_seconds=30.0)
        # The ambiguous timeout: the write landed even though the call failed.
        assert account.warehouse(wh).config.auto_suspend_seconds == 30.0

    def test_config_reject_leaves_config_untouched(self):
        account, wh, client = build(
            [FaultSpec(FaultKind.CONFIG_REJECT, operation="alter_warehouse")]
        )
        before = account.warehouse(wh).config
        with pytest.raises(ConfigRejectedError):
            client.alter_warehouse(wh, auto_suspend_seconds=30.0)
        assert account.warehouse(wh).config == before

    def test_partial_write_applies_first_sorted_key_only(self):
        account, wh, client = build(
            [FaultSpec(FaultKind.PARTIAL_WRITE, operation="alter_warehouse")]
        )
        with pytest.raises(WarehouseTimeoutError):
            client.alter_warehouse(wh, max_clusters=3, auto_suspend_seconds=30.0)
        after = account.warehouse(wh).config
        # sorted(changes)[0] == "auto_suspend_seconds": only that key landed.
        assert after.auto_suspend_seconds == 30.0
        assert after.max_clusters == 1

    def test_stuck_suspend_times_out_without_state_change(self):
        account, wh, client = build(
            [FaultSpec(FaultKind.STUCK_SUSPEND, operation="suspend_warehouse")]
        )
        before = account.warehouse(wh).state
        with pytest.raises(WarehouseTimeoutError):
            client.suspend_warehouse(wh)
        assert account.warehouse(wh).state is before

    def test_telemetry_gap_raises_telemetry_error(self):
        account, wh, client = build([FaultSpec(FaultKind.TELEMETRY_GAP)])
        with pytest.raises(TelemetryError):
            client.query_history(wh)
        with pytest.raises(TelemetryError):
            client.warehouse_events(wh)


class TestTelemetryTransforms:
    @staticmethod
    def driven(specs, until=HOUR):
        account, wh, client = build(specs)
        template = make_template("t", base_work_seconds=2.0)
        requests = make_requests(template, [60.0 * i for i in range(30)])
        drive(account, wh, requests, until)
        return account, wh, client

    def test_telemetry_delay_hides_recent_rows(self):
        # now = 1800s, horizon = 900s: arrivals at 60s intervals straddle it.
        account, wh, client = self.driven(
            [FaultSpec(FaultKind.TELEMETRY_DELAY, magnitude=900.0)], until=HOUR / 2
        )
        base = CloudWarehouseClient(account, "keebo").query_history(wh)
        delayed = client.query_history(wh)
        horizon = account.sim.now - 900.0
        assert delayed == [r for r in base if r.arrival_time <= horizon]
        assert 0 < len(delayed) < len(base)

    def test_telemetry_duplicate_repeats_last_row(self):
        account, wh, client = self.driven([FaultSpec(FaultKind.TELEMETRY_DUPLICATE)])
        base = CloudWarehouseClient(account, "keebo").query_history(wh)
        duplicated = client.query_history(wh)
        assert duplicated == base + [base[-1]]

    def test_billing_stale_reads_as_of_the_past(self):
        # Stop mid-workload so a billing segment is still open: staleness
        # clips how much of the open segment the metering view has seen.
        account, wh, client = self.driven(
            [FaultSpec(FaultKind.BILLING_STALE, magnitude=600.0)], until=HOUR / 2
        )
        window = Window(0.0, account.sim.now)
        fresh = CloudWarehouseClient(account, "keebo").credits_in_window(wh, window)
        stale = client.credits_in_window(wh, window)
        assert stale < fresh  # the last ten minutes of spend are invisible
        assert client.injected == {"billing_stale": 1}


class TestDeterminism:
    SPECS = (
        FaultSpec(FaultKind.API_ERROR, operation="alter_warehouse", probability=0.4),
        FaultSpec(FaultKind.CONFIG_REJECT, operation="alter_warehouse", probability=0.3),
    )

    @staticmethod
    def outcomes(client, wh, n=30):
        out = []
        for i in range(n):
            try:
                client.alter_warehouse(wh, auto_suspend_seconds=60.0 + i)
                out.append("ok")
            except InjectedFaultError:
                out.append("api_error")
            except ConfigRejectedError:
                out.append("config_reject")
        return out

    def test_same_seed_same_injection_sequence(self):
        _, wh_a, a = build(self.SPECS, seed=23)
        _, wh_b, b = build(self.SPECS, seed=23)
        seq_a = self.outcomes(a, wh_a)
        seq_b = self.outcomes(b, wh_b)
        assert seq_a == seq_b
        assert a.injected == b.injected
        assert "api_error" in seq_a and "config_reject" in seq_a and "ok" in seq_a

    def test_different_seed_differs(self):
        _, wh_a, a = build(self.SPECS, seed=23)
        _, wh_b, b = build(self.SPECS, seed=24)
        assert self.outcomes(a, wh_a) != self.outcomes(b, wh_b)

    def test_probability_one_consumes_no_randomness(self):
        _, wh, client = build(
            [FaultSpec(FaultKind.API_ERROR, operation="alter_warehouse")],
            rng=fallback_rng(123),
        )
        with pytest.raises(InjectedFaultError):
            client.alter_warehouse(wh, auto_suspend_seconds=30.0)
        # The certain spec triggered without touching the stream: the next
        # draw matches a fresh generator's first draw bit-for-bit.
        assert client.rng.random() == fallback_rng(123).random()

    def test_evaluation_stops_at_first_trigger(self):
        _, wh, client = build(
            [
                FaultSpec(FaultKind.API_ERROR, operation="alter_warehouse"),
                FaultSpec(FaultKind.CONFIG_REJECT, operation="alter_warehouse"),
            ]
        )
        with pytest.raises(InjectedFaultError):
            client.alter_warehouse(wh, auto_suspend_seconds=30.0)
        assert client.injected == {"api_error": 1}

    def test_window_arms_and_disarms_injection(self):
        account, wh, client = build(
            [
                FaultSpec(
                    FaultKind.API_ERROR,
                    operation="alter_warehouse",
                    window=Window(HOUR, 2 * HOUR),
                )
            ]
        )
        client.alter_warehouse(wh, auto_suspend_seconds=45.0)  # before: clean
        account.run_until(1.5 * HOUR)
        with pytest.raises(InjectedFaultError):
            client.alter_warehouse(wh, auto_suspend_seconds=50.0)
        account.run_until(3 * HOUR)
        client.alter_warehouse(wh, auto_suspend_seconds=55.0)  # after: clean
        assert client.total_injected() == 1
