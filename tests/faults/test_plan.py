"""Tests for FaultSpec/FaultPlan validation and arming semantics."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import HOUR, Window
from repro.faults import FaultKind, FaultPlan, FaultSpec, TELEMETRY_OPERATIONS


class TestFaultSpecValidation:
    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.API_ERROR, probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.API_ERROR, probability=-0.1)

    def test_illegal_operation_for_kind_rejected(self):
        # A config rejection can only happen on a config write.
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.CONFIG_REJECT, operation="query_history")

    def test_timed_kind_needs_magnitude(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.TELEMETRY_DELAY)  # no magnitude
        spec = FaultSpec(FaultKind.TELEMETRY_DELAY, magnitude=600.0)
        assert spec.magnitude == 600.0

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.API_ERROR, magnitude=-1.0)

    def test_legal_spec_accepted(self):
        spec = FaultSpec(
            FaultKind.STUCK_SUSPEND, operation="suspend_warehouse", probability=0.5
        )
        assert spec.targets("suspend_warehouse")
        assert not spec.targets("alter_warehouse")


class TestTargetingAndArming:
    def test_wildcard_expands_to_kind_operations(self):
        spec = FaultSpec(FaultKind.TELEMETRY_GAP)
        for op in TELEMETRY_OPERATIONS:
            assert spec.targets(op)
        assert not spec.targets("alter_warehouse")

    def test_window_arms_and_disarms(self):
        spec = FaultSpec(FaultKind.API_ERROR, window=Window(HOUR, 2 * HOUR))
        assert not spec.armed(0.0)
        assert spec.armed(HOUR)  # inclusive start
        assert spec.armed(1.5 * HOUR)
        assert not spec.armed(2.5 * HOUR)

    def test_no_window_always_armed(self):
        assert FaultSpec(FaultKind.API_ERROR).armed(0.0)
        assert FaultSpec(FaultKind.API_ERROR).armed(1e9)


class TestFaultPlan:
    def test_specs_coerced_to_tuple(self):
        plan = FaultPlan(specs=[FaultSpec(FaultKind.API_ERROR)])
        assert isinstance(plan.specs, tuple)
        assert len(plan) == 1

    def test_armed_specs_preserve_plan_order(self):
        a = FaultSpec(FaultKind.API_ERROR, detail="first")
        b = FaultSpec(FaultKind.API_TIMEOUT, detail="second")
        plan = FaultPlan(specs=(a, b))
        armed = plan.armed_specs("alter_warehouse", 0.0)
        assert [s.detail for s in armed] == ["first", "second"]

    def test_armed_specs_filter_by_operation_and_time(self):
        gap = FaultSpec(FaultKind.TELEMETRY_GAP, window=Window(HOUR, 2 * HOUR))
        reject = FaultSpec(FaultKind.CONFIG_REJECT, operation="alter_warehouse")
        plan = FaultPlan(specs=(gap, reject))
        assert plan.armed_specs("query_history", 0.0) == []
        assert plan.armed_specs("query_history", 1.5 * HOUR) == [gap]
        assert plan.armed_specs("alter_warehouse", 0.0) == [reject]

    def test_describe_mentions_every_spec(self):
        plan = FaultPlan(
            name="demo",
            specs=(
                FaultSpec(FaultKind.API_ERROR, probability=0.25),
                FaultSpec(FaultKind.BILLING_STALE, magnitude=3600.0),
            ),
        )
        text = plan.describe()
        assert "demo" in text
        assert "api_error" in text and "p=0.25" in text
        assert "billing_stale" in text and "magnitude=3600s" in text
