"""Tests for the hardened actuator: retries, circuit breaker, read-back.

The flaky vendor is played by :class:`FaultingWarehouseClient` with
probability-1.0 specs, so every test is deterministic without any RNG
stubbing (docs/ROBUSTNESS.md).
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import fallback_rng
from repro.common.simtime import HOUR, Window
from repro.core.actuator import (
    Actuator,
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)
from repro.core.monitoring import Monitor
from repro.faults import FaultingWarehouseClient, FaultKind, FaultPlan, FaultSpec
from repro.learning.features import WorkloadBaseline
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.types import WarehouseSize

from tests.conftest import make_account


def build(specs=(), retry_policy=None, breaker=None):
    account, wh = make_account()
    client = FaultingWarehouseClient(account, FaultPlan(specs=tuple(specs)))
    monitor = Monitor(client, wh, WorkloadBaseline())
    actuator = Actuator(
        client, wh, monitor,
        retry_policy=retry_policy, breaker=breaker, rng=fallback_rng(3),
    )
    return account, wh, client, actuator, monitor


def bigger(client, wh, size=WarehouseSize.L):
    return client.current_config(wh).with_changes(size=size)


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_delay_seconds=10.0, multiplier=2.0,
            max_delay_seconds=35.0, jitter_fraction=0.0,
        )
        rng = fallback_rng(0)
        assert policy.delay_seconds(1, rng) == 10.0
        assert policy.delay_seconds(2, rng) == 20.0
        assert policy.delay_seconds(3, rng) == 35.0  # capped

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay_seconds=10.0, jitter_fraction=0.2)
        first = policy.delay_seconds(1, fallback_rng(9))
        again = policy.delay_seconds(1, fallback_rng(9))
        assert first == again  # same stream, same delay
        assert 8.0 <= first <= 12.0


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=60.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert not breaker.is_open
        breaker.record_failure(2.0)
        assert breaker.is_open and breaker.opens == 1
        assert breaker.blocking(10.0)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        breaker.record_failure(2.0)
        assert not breaker.is_open

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=60.0)
        breaker.record_failure(0.0)
        assert not breaker.begin_attempt(30.0)  # still cooling down
        assert breaker.begin_attempt(61.0)  # probe allowed
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(61.0)
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=60.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.begin_attempt(62.0)
        breaker.record_failure(62.0)  # one failure re-opens a half-open breaker
        assert breaker.is_open and breaker.opens == 2
        assert breaker.blocking(100.0)

    def test_threshold_must_be_positive(self):
        # Regression for analyzer rule R017: the vendor surface raises the
        # typed ConfigurationError, not a bare ValueError.
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)


class TestRetries:
    def test_failed_write_retries_and_recovers(self):
        # The fault window covers only the first attempt; the scheduled
        # retry (~5 s of backoff) lands after it and succeeds.
        account, wh, client, actuator, _ = build(
            [
                FaultSpec(
                    FaultKind.API_ERROR,
                    operation="alter_warehouse",
                    window=Window(0.0, 2.0),
                )
            ]
        )
        target = bigger(client, wh)
        entry = actuator.apply(target, reason="grow")
        assert not entry.succeeded and actuator.retries_scheduled == 1
        account.run_until(60.0)
        assert client.current_config(wh) == target
        assert [(e.attempt, e.succeeded) for e in actuator.log] == [
            (1, False),
            (2, True),
        ]

    def test_attempts_are_bounded_by_the_policy(self):
        account, wh, client, actuator, _ = build(
            [FaultSpec(FaultKind.API_ERROR, operation="alter_warehouse")],
            retry_policy=RetryPolicy(max_attempts=3),
            breaker=CircuitBreaker(failure_threshold=10),
        )
        actuator.apply(bigger(client, wh), reason="grow")
        account.run_until(HOUR)
        assert [e.attempt for e in actuator.log] == [1, 2, 3]
        assert actuator.retries_scheduled == 2
        assert actuator.errors == 3

    def test_newer_apply_supersedes_pending_retry(self):
        account, wh, client, actuator, _ = build(
            [
                FaultSpec(
                    FaultKind.API_ERROR,
                    operation="alter_warehouse",
                    window=Window(0.0, 2.0),
                )
            ]
        )
        stale = bigger(client, wh, WarehouseSize.L)
        fresh = bigger(client, wh, WarehouseSize.XL)
        actuator.apply(stale, reason="first")  # fails, schedules a retry
        actuator.apply(fresh, reason="second")  # fails, supersedes it
        account.run_until(60.0)
        assert client.current_config(wh) == fresh
        # The stale target's retry aborted: no entry ever reached it.
        assert all(e.to_config != stale for e in actuator.log if e.succeeded)


class TestBreakerIntegration:
    def plan(self, window=None):
        return [
            FaultSpec(FaultKind.API_ERROR, operation="alter_warehouse", window=window)
        ]

    def test_breaker_opens_and_skips_writes(self):
        account, wh, client, actuator, _ = build(
            self.plan(),
            retry_policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_seconds=HOUR),
        )
        target = bigger(client, wh)
        actuator.apply(target, reason="one")
        actuator.apply(target, reason="two")
        assert actuator.breaker.is_open
        injected_before = client.total_injected()
        entry = actuator.apply(target, reason="three")
        assert not entry.succeeded and entry.error == "circuit breaker open"
        assert client.total_injected() == injected_before  # vendor never called

    def test_half_open_probe_recovers_after_cooldown(self):
        account, wh, client, actuator, _ = build(
            self.plan(window=Window(0.0, 10.0)),
            retry_policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_seconds=300.0),
        )
        target = bigger(client, wh)
        actuator.apply(target, reason="one")
        actuator.apply(target, reason="two")
        assert actuator.breaker.is_open
        account.run_until(400.0)  # cool-down elapsed, fault window over
        entry = actuator.apply(target, reason="probe")
        assert entry.succeeded
        assert actuator.breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens_the_breaker(self):
        account, wh, client, actuator, _ = build(
            self.plan(),
            retry_policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_seconds=300.0),
        )
        target = bigger(client, wh)
        actuator.apply(target, reason="one")
        actuator.apply(target, reason="two")
        account.run_until(400.0)
        actuator.apply(target, reason="probe")  # fault still active
        assert actuator.breaker.is_open and actuator.breaker.opens == 2


class TestReadBackVerification:
    def test_timeout_whose_write_landed_is_reconciled(self):
        account, wh, client, actuator, monitor = build(
            [FaultSpec(FaultKind.API_TIMEOUT, operation="alter_warehouse")]
        )
        target = bigger(client, wh)
        entry = actuator.apply(target, reason="grow")
        # The vendor timed out but the write landed; read-back catches it.
        assert entry.succeeded
        assert entry.error.startswith("reconciled by read-back after:")
        assert monitor._expected_config == target
        assert not actuator.breaker.is_open

    def test_partial_write_leaves_monitor_expecting_live_config(self):
        account, wh, client, actuator, monitor = build(
            [FaultSpec(FaultKind.PARTIAL_WRITE, operation="alter_warehouse")],
            retry_policy=RetryPolicy(max_attempts=1),
        )
        before = client.current_config(wh)
        # The actuator writes all knobs; the injected partial write applies
        # only the first sorted one (auto_suspend_seconds), dropping size.
        target = before.with_changes(size=WarehouseSize.L, auto_suspend_seconds=90.0)
        entry = actuator.apply(target, reason="grow")
        live = client.current_config(wh)
        assert not entry.succeeded
        assert live != target and live != before  # genuinely partial
        assert entry.to_config == live
        assert monitor._expected_config == live  # no silent divergence

    def test_failing_pre_read_is_recorded_not_raised(self):
        # Satellite fix: the pre-write config read used to be unguarded.
        account, wh, client, actuator, _ = build(
            [FaultSpec(FaultKind.API_ERROR, operation="current_config")]
        )
        target = bigger(
            CloudWarehouseClient(account, "keebo"), wh
        )  # read via a clean client
        entry = actuator.apply(target, reason="grow")
        assert not entry.succeeded
        assert entry.error.startswith("config read failed:")
        assert entry.read_back_error != ""
        assert actuator.errors == 1
        assert actuator.retries_scheduled == 1

    def test_failing_read_back_trusts_the_write_outcome(self):
        account, wh = make_account()

        class FlakyReadBack(CloudWarehouseClient):
            """Pre-read works; every later current_config read fails."""

            def __init__(self, account):
                super().__init__(account, "keebo")
                self.reads = 0

            def current_config(self, name):
                self.reads += 1
                if self.reads > 1:
                    from repro.common.errors import WarehouseTimeoutError

                    raise WarehouseTimeoutError("injected: read-back lost")
                return super().current_config(name)

        client = FlakyReadBack(account)
        monitor = Monitor(client, wh, WorkloadBaseline())
        actuator = Actuator(client, wh, monitor, rng=fallback_rng(3))
        target = bigger(CloudWarehouseClient(account, "keebo"), wh)
        entry = actuator.apply(target, reason="grow")
        assert entry.succeeded  # the write itself worked
        assert entry.read_back_error == "injected: read-back lost"
        assert monitor._expected_config == target
