"""Tests for the smart-model checkpoint registry."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, RecoveryError
from repro.core.registry import CheckpointInfo, ModelRegistry
from repro.learning.agent import DQNAgent, DQNConfig
from repro.learning.buffer import Transition


def make_agent(state_dim=6, n_actions=4, seed=0) -> DQNAgent:
    return DQNAgent(
        state_dim,
        n_actions,
        DQNConfig(warmup=4, batch_size=4),
        np.random.default_rng(seed),
    )


def train_a_little(agent: DQNAgent, steps: int = 20) -> None:
    for _ in range(steps):
        agent.observe(
            Transition(
                state=np.ones(agent.online.input_dim),
                action=0,
                reward=1.0,
                next_state=np.ones(agent.online.input_dim),
                done=True,
                next_mask=np.ones(agent.n_actions, dtype=bool),
            )
        )


class TestModelRegistry:
    def test_save_load_roundtrip(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        agent = make_agent()
        train_a_little(agent)
        registry.save("acme", "WH", agent, slider_position=4)
        fresh = make_agent(seed=99)
        info = registry.load_into("acme", "WH", fresh)
        x = np.linspace(-1, 1, 6)
        assert np.allclose(agent.q_values(x), fresh.q_values(x))
        assert info.slider_position == 4
        assert info.train_steps == agent.train_steps

    def test_target_network_also_restored(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        agent = make_agent()
        train_a_little(agent)
        registry.save("acme", "WH", agent)
        fresh = make_agent(seed=99)
        registry.load_into("acme", "WH", fresh)
        x = np.ones(6)
        assert np.allclose(fresh.target.forward(x), fresh.online.forward(x))

    def test_missing_checkpoint_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ConfigurationError):
            registry.load_into("acme", "WH", make_agent())

    def test_info_none_when_absent(self, tmp_path):
        assert ModelRegistry(tmp_path).info("acme", "WH") is None

    def test_shape_mismatch_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("acme", "WH", make_agent(state_dim=6, n_actions=4))
        with pytest.raises(ConfigurationError):
            registry.load_into("acme", "WH", make_agent(state_dim=8, n_actions=4))
        with pytest.raises(ConfigurationError):
            registry.load_into("acme", "WH", make_agent(state_dim=6, n_actions=9))

    def test_account_isolation(self, tmp_path):
        """Models are never shared across customers (paper §4.2)."""
        registry = ModelRegistry(tmp_path)
        registry.save("acme", "WH", make_agent())
        assert registry.warehouses("acme") == ["WH"]
        assert registry.warehouses("globex") == []
        with pytest.raises(ConfigurationError):
            registry.load_into("globex", "WH", make_agent())

    def test_listing_multiple_warehouses(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("acme", "ETL_WH", make_agent())
        registry.save("acme", "BI_WH", make_agent())
        assert registry.warehouses("acme") == ["BI_WH", "ETL_WH"]

    def test_delete(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("acme", "WH", make_agent())
        assert registry.delete("acme", "WH")
        assert registry.info("acme", "WH") is None
        assert not registry.delete("acme", "WH")

    def test_overwrite_updates_metadata(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        agent = make_agent()
        registry.save("acme", "WH", agent, slider_position=1)
        train_a_little(agent)
        registry.save("acme", "WH", agent, slider_position=5)
        info = registry.info("acme", "WH")
        assert info.slider_position == 5
        assert info.train_steps > 0

    def test_weird_names_slugged(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("acme corp!", "MY WH/1", make_agent())
        assert registry.info("acme corp!", "MY WH/1") is not None

    def test_many_layers_order_preserved(self, tmp_path):
        """More than 10 arrays: 'arr_10' must not sort before 'arr_2'."""
        registry = ModelRegistry(tmp_path)
        agent = DQNAgent(
            6, 4, DQNConfig(hidden=(8, 8, 8, 8, 8)), np.random.default_rng(1)
        )
        registry.save("acme", "WH", agent)
        fresh = DQNAgent(6, 4, DQNConfig(hidden=(8, 8, 8, 8, 8)), np.random.default_rng(9))
        registry.load_into("acme", "WH", fresh)
        x = np.linspace(0, 1, 6)
        assert np.allclose(agent.q_values(x), fresh.q_values(x))

    def test_checkpoint_info_json_roundtrip(self):
        info = CheckpointInfo("a", "w", 6, 4, 100, 3, 123.0)
        assert CheckpointInfo.from_json(info.to_json()) == info

    def test_metadata_carries_weights_hash(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        info = registry.save("acme", "WH", make_agent())
        assert info.weights_sha256 is not None
        assert len(info.weights_sha256) == 64

    def test_torn_pair_rejected(self, tmp_path):
        """New weights + old metadata (the crash window) must not load."""
        registry = ModelRegistry(tmp_path)
        agent = make_agent()
        registry.save("acme", "WH", agent)
        stale_meta = (tmp_path / "acme" / "WH.json").read_bytes()
        train_a_little(agent)
        registry.save("acme", "WH", agent)
        (tmp_path / "acme" / "WH.json").write_bytes(stale_meta)
        with pytest.raises(RecoveryError, match="pair mismatch"):
            registry.load_into("acme", "WH", make_agent(seed=99))

    def test_corrupted_archive_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("acme", "WH", make_agent())
        weights = tmp_path / "acme" / "WH.npz"
        raw = bytearray(weights.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        weights.write_bytes(bytes(raw))
        with pytest.raises(RecoveryError, match="pair mismatch"):
            registry.load_into("acme", "WH", make_agent(seed=99))

    def test_legacy_metadata_without_hash_loads(self, tmp_path):
        """Pairs written before the hash existed skip the pairing check."""
        registry = ModelRegistry(tmp_path)
        agent = make_agent()
        train_a_little(agent)
        info = registry.save("acme", "WH", agent)
        legacy = CheckpointInfo(**{**info.__dict__, "weights_sha256": None})
        (tmp_path / "acme" / "WH.json").write_text(legacy.to_json())
        fresh = make_agent(seed=99)
        registry.load_into("acme", "WH", fresh)
        x = np.linspace(-1, 1, 6)
        assert np.allclose(agent.q_values(x), fresh.q_values(x))
