"""Tests for the STANDARD/ECONOMY scaling policy advisor."""

import pytest

from repro.core.monitoring import RealTimeFeedback
from repro.core.policy_advisor import (
    POLICY_DWELL_SECONDS,
    QUIET_STREAK_REQUIRED,
    ScalingPolicyAdvisor,
)
from repro.core.sliders import SliderPosition, slider_params
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import ScalingPolicy


def feedback(queue_length=0, mean_queue=0.0) -> RealTimeFeedback:
    return RealTimeFeedback(
        time=0.0,
        queue_length=queue_length,
        running_queries=0,
        recent_queries=10,
        recent_p99=5.0,
        latency_ratio=1.0,
        mean_queue_seconds=mean_queue,
        arrival_zscore=0.0,
        unseen_template_fraction=0.0,
        external_change=False,
    )


def config(policy=ScalingPolicy.STANDARD, max_clusters=4) -> WarehouseConfig:
    return WarehouseConfig(max_clusters=max_clusters, scaling_policy=policy)


def quiet_advisor(slider=SliderPosition.BALANCED) -> ScalingPolicyAdvisor:
    return ScalingPolicyAdvisor(slider_params(slider))


class TestScalingPolicyAdvisor:
    def test_single_cluster_left_alone(self):
        advisor = quiet_advisor()
        for _ in range(50):
            assert advisor.recommend(0.0, config(max_clusters=1), feedback()) is None

    def test_economy_after_sustained_quiet(self):
        advisor = quiet_advisor()
        result = None
        for i in range(QUIET_STREAK_REQUIRED + 1):
            result = advisor.recommend(i * 600.0, config(), feedback())
            if result is not None:
                break
        assert result == ScalingPolicy.ECONOMY

    def test_no_economy_before_streak(self):
        advisor = quiet_advisor()
        for i in range(QUIET_STREAK_REQUIRED - 1):
            assert advisor.recommend(i * 600.0, config(), feedback()) is None

    def test_queueing_resets_streak(self):
        advisor = quiet_advisor()
        t = 0.0
        for _ in range(QUIET_STREAK_REQUIRED - 1):
            advisor.recommend(t, config(), feedback())
            t += 600.0
        advisor.recommend(t, config(), feedback(queue_length=3))  # reset
        t += 600.0
        for _ in range(QUIET_STREAK_REQUIRED - 1):
            assert advisor.recommend(t, config(), feedback()) is None
            t += 600.0

    def test_snap_back_to_standard_on_queueing(self):
        advisor = quiet_advisor()
        economy = config(policy=ScalingPolicy.ECONOMY)
        result = advisor.recommend(0.0, economy, feedback(queue_length=2, mean_queue=3.0))
        assert result == ScalingPolicy.STANDARD

    def test_snap_back_ignores_dwell(self):
        advisor = quiet_advisor()
        # Flip to ECONOMY just happened...
        advisor._last_flip = 1000.0
        economy = config(policy=ScalingPolicy.ECONOMY)
        # ...but queueing appears immediately: must still revert.
        result = advisor.recommend(1600.0, economy, feedback(mean_queue=5.0))
        assert result == ScalingPolicy.STANDARD

    def test_dwell_blocks_rapid_economy_flips(self):
        advisor = quiet_advisor()
        advisor._last_flip = 0.0
        advisor._quiet_streak = QUIET_STREAK_REQUIRED
        assert advisor.recommend(POLICY_DWELL_SECONDS / 2, config(), feedback()) is None

    def test_performance_sliders_force_standard(self):
        for slider in (SliderPosition.GOOD_PERFORMANCE, SliderPosition.BEST_PERFORMANCE):
            advisor = quiet_advisor(slider)
            economy = config(policy=ScalingPolicy.ECONOMY)
            assert advisor.recommend(0.0, economy, feedback()) == ScalingPolicy.STANDARD
            # Already standard: nothing to do, ever.
            for i in range(30):
                assert advisor.recommend(i * 600.0, config(), feedback()) is None

    def test_set_slider_resets_state(self):
        advisor = quiet_advisor()
        advisor._quiet_streak = QUIET_STREAK_REQUIRED
        advisor.set_slider(slider_params(SliderPosition.LOWEST_COST))
        assert advisor._quiet_streak == 0
