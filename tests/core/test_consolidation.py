"""Tests for the warehouse consolidation advisor."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR, Window
from repro.core.consolidation import ConsolidationAdvisor
from repro.warehouse.account import Account
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize

from tests.conftest import make_requests, make_template


def build_account(rate_a_minutes=6.0, rate_b_minutes=6.0, size=WarehouseSize.M):
    """Two same-size warehouses, each with queries every ~6 minutes.

    Individually each warehouse idles just past its 5-minute auto-suspend
    between queries (paying a full suspend tail per query); interleaved on
    one warehouse the 3-minute gaps keep it continuously warm — the classic
    consolidation win.
    """
    account = Account(seed=13)
    for name in ("TEAM_A", "TEAM_B"):
        account.create_warehouse(
            name, WarehouseConfig(size=size, auto_suspend_seconds=300.0, max_clusters=2)
        )
    tpl_a = make_template("a", base_work_seconds=20.0, n_partitions=2)
    tpl_b = make_template("b", base_work_seconds=15.0, n_partitions=2)
    times_a = [10.0 + i * rate_a_minutes * 60 for i in range(int(2 * DAY / (rate_a_minutes * 60)))]
    # Offset B's arrivals so the workloads interleave rather than collide.
    times_b = [
        rate_b_minutes * 30 + i * rate_b_minutes * 60
        for i in range(int(2 * DAY / (rate_b_minutes * 60)))
    ]
    account.schedule_workload("TEAM_A", make_requests(tpl_a, times_a))
    account.schedule_workload("TEAM_B", make_requests(tpl_b, times_b))
    account.run_until(2 * DAY + HOUR)
    return account, CloudWarehouseClient(account, actor="keebo")


class TestConsolidationAdvisor:
    def test_needs_two_warehouses(self):
        account, client = build_account()
        with pytest.raises(ConfigurationError):
            ConsolidationAdvisor(client).analyze(["TEAM_A"], Window(0, DAY))

    def test_sparse_same_size_warehouses_are_merge_candidates(self):
        account, client = build_account()
        advisor = ConsolidationAdvisor(client, max_latency_factor=1.3)
        recommendations = advisor.analyze(["TEAM_A", "TEAM_B"], Window(0, 2 * DAY))
        assert len(recommendations) == 1
        rec = recommendations[0]
        assert set(rec.warehouses) == {"TEAM_A", "TEAM_B"}
        assert rec.savings_credits > 0
        assert rec.savings_fraction > 0.1  # two sets of idle tails collapse to one
        assert rec.worst_latency_factor <= 1.3

    def test_description_readable(self):
        account, client = build_account()
        advisor = ConsolidationAdvisor(client, max_latency_factor=1.3)
        rec = advisor.analyze(["TEAM_A", "TEAM_B"], Window(0, 2 * DAY))[0]
        text = rec.describe()
        assert "TEAM_A" in text and "TEAM_B" in text
        assert "credits" in text

    def test_latency_tolerance_filters(self):
        account, client = build_account()
        strict = ConsolidationAdvisor(client, max_latency_factor=1.0001)
        loose = ConsolidationAdvisor(client, max_latency_factor=2.0)
        strict_recs = strict.analyze(["TEAM_A", "TEAM_B"], Window(0, 2 * DAY))
        loose_recs = loose.analyze(["TEAM_A", "TEAM_B"], Window(0, 2 * DAY))
        assert len(loose_recs) >= len(strict_recs)

    def test_empty_warehouse_not_recommended(self):
        account = Account(seed=14)
        account.create_warehouse("BUSY", WarehouseConfig())
        account.create_warehouse("EMPTY", WarehouseConfig())
        tpl = make_template("x", base_work_seconds=10.0)
        account.schedule_workload("BUSY", make_requests(tpl, [i * 600.0 for i in range(100)]))
        account.run_until(DAY)
        client = CloudWarehouseClient(account)
        advisor = ConsolidationAdvisor(client)
        assert advisor.analyze(["BUSY", "EMPTY"], Window(0, DAY)) == []

    def test_min_savings_threshold(self):
        account, client = build_account()
        greedy = ConsolidationAdvisor(client, max_latency_factor=1.3, min_savings_fraction=0.99)
        assert greedy.analyze(["TEAM_A", "TEAM_B"], Window(0, 2 * DAY)) == []

    def test_three_way_returns_sorted_pairs(self):
        account, client = build_account()
        account2 = account  # add a third warehouse to the same account
        account2.create_warehouse(
            "TEAM_C", WarehouseConfig(size=WarehouseSize.M, auto_suspend_seconds=300.0)
        )
        tpl_c = make_template("c", base_work_seconds=10.0, n_partitions=1)
        start = account2.sim.now
        account2.schedule_workload(
            "TEAM_C", make_requests(tpl_c, [start + 600.0 + i * 1800.0 for i in range(50)])
        )
        account2.run_until(start + DAY)
        advisor = ConsolidationAdvisor(client, max_latency_factor=1.5)
        recommendations = advisor.analyze(
            ["TEAM_A", "TEAM_B", "TEAM_C"], Window(start, start + DAY)
        )
        savings = [r.savings_credits for r in recommendations]
        assert savings == sorted(savings, reverse=True)
