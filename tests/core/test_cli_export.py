"""Tests for the CLI and the portal JSON export."""

import json

import pytest

from repro.cli import build_parser, main
from repro.common.simtime import DAY, Window
from repro.portal.dashboards import ActionsDashboard, SavingsDashboard
from repro.portal.export import (
    actions_to_dict,
    kpi_bucket_to_dict,
    optimizer_status_to_dict,
    overhead_to_dict,
    savings_to_dict,
    to_json,
)
from repro.portal.kpis import KpiBucket


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig4a", "fig4b", "fig5", "fig6", "fig7", "onboarding", "fleet"):
            assert name in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Warehouse3" in out
        assert "rel.err" in out

    def test_seed_flag_parsed(self):
        args = build_parser().parse_args(["fig5", "--seed", "123"])
        assert args.seed == 123


class TestExport:
    def test_savings_roundtrips_json(self):
        dashboard = SavingsDashboard(
            warehouse="WH",
            days=[0, 1],
            daily_credits=[10.0, 6.0],
            daily_p99=[5.0, 4.0],
            keebo_active=[False, True],
        )
        payload = savings_to_dict(dashboard)
        parsed = json.loads(to_json(payload))
        assert parsed["warehouse"] == "WH"
        assert parsed["savings_fraction"] == pytest.approx(0.4)
        assert parsed["keebo_active"] == [False, True]

    def test_actions_export_only_changes(self):
        from repro.core.actuator import AppliedAction
        from repro.warehouse.config import WarehouseConfig
        from repro.warehouse.types import WarehouseSize

        base = WarehouseConfig()
        changed = AppliedAction(1.0, "WH", base, base.with_changes(size=WarehouseSize.L), "up", True)
        noop = AppliedAction(2.0, "WH", base, base, "noop", True)
        payload = actions_to_dict(ActionsDashboard("WH", [changed, noop]))
        assert payload["n_changes"] == 1
        assert len(payload["actions"]) == 1
        json.loads(to_json(payload))

    def test_kpi_bucket_export(self):
        bucket = KpiBucket(
            window=Window(0, DAY),
            credits=12.0,
            n_queries=4,
            avg_latency=2.0,
            p99_latency=5.0,
            avg_queue_seconds=0.1,
            p99_queue_seconds=0.5,
        )
        payload = kpi_bucket_to_dict(bucket)
        assert payload["cost_per_query"] == pytest.approx(3.0)
        json.loads(to_json(payload))

    def test_optimizer_status_export(self):
        from repro.core.optimizer import OptimizerConfig, WarehouseOptimizer
        from tests.conftest import drive, make_account, make_requests, make_template
        from repro.common.simtime import HOUR

        account, wh = make_account(seed=61)
        drive(
            account,
            wh,
            make_requests(make_template("s", base_work_seconds=5.0), [i * 400.0 for i in range(60)]),
            8 * HOUR,
        )
        optimizer = WarehouseOptimizer(
            account,
            wh,
            config=OptimizerConfig(
                training_window=8 * HOUR,
                onboarding_episodes=1,
                episode_length=4 * HOUR,
                retrain_episodes=0,
                confidence_tau=0.0,
            ),
        )
        optimizer.onboard()
        payload = optimizer_status_to_dict(optimizer)
        assert payload["onboarded"] is True
        assert payload["slider"] == "Balanced"
        json.loads(to_json(payload))
