"""Tests for degraded-mode operation: dark telemetry and SAFE_MODE.

The telemetry blackout is injected with a windowed FaultPlan, so every
scenario here is a pure function of the seed (docs/ROBUSTNESS.md).
"""

from repro import obs
from repro.common.simtime import HOUR, Window
from repro.core.monitoring import Monitor
from repro.core.optimizer import WarehouseOptimizer
from repro.core.smart_model import DecisionKind
from repro.faults import FaultingWarehouseClient, FaultKind, FaultPlan, FaultSpec
from repro.learning.features import WorkloadBaseline

from tests.conftest import make_account
from tests.core.test_optimizer import seeded_account, small_config


def faulting_optimizer(specs, **config_kw):
    """An onboarded optimizer whose every vendor call goes through a plan."""
    account, wh = seeded_account()
    client = FaultingWarehouseClient(account, FaultPlan(specs=tuple(specs)))
    optimizer = WarehouseOptimizer(
        account, wh, config=small_config(**config_kw), client=client
    )
    optimizer.onboard()
    return account, wh, optimizer


class TestMonitorDegradedSnapshot:
    def test_blackout_yields_stale_flagged_feedback(self):
        account, wh = make_account()
        client = FaultingWarehouseClient(
            account, FaultPlan(specs=(FaultSpec(FaultKind.TELEMETRY_GAP),))
        )
        monitor = Monitor(client, wh, WorkloadBaseline())
        account.run_until(600.0)
        feedback = monitor.snapshot(600.0)
        assert not feedback.telemetry_ok
        assert feedback.telemetry_age_seconds == 600.0
        assert feedback.recent_queries == 0 and not feedback.external_change
        assert monitor.telemetry_failures == 1

    def test_age_resets_when_telemetry_recovers(self):
        account, wh = make_account()
        client = FaultingWarehouseClient(
            account,
            FaultPlan(
                specs=(FaultSpec(FaultKind.TELEMETRY_GAP, window=Window(0.0, 900.0)),)
            ),
        )
        monitor = Monitor(client, wh, WorkloadBaseline())
        account.run_until(600.0)
        assert not monitor.snapshot(600.0).telemetry_ok
        account.run_until(1200.0)
        feedback = monitor.snapshot(1200.0)
        assert feedback.telemetry_ok
        assert monitor.last_good_fetch == 1200.0
        assert monitor.telemetry_age(1500.0) == 300.0


class TestSafeModeLifecycle:
    # small_config ticks every 900 s; the default staleness threshold (1800 s)
    # means the second consecutive dark tick crosses into SAFE_MODE.
    BLACKOUT = Window(12 * HOUR + 1200.0, 14 * HOUR)

    def build(self):
        return faulting_optimizer(
            [FaultSpec(FaultKind.TELEMETRY_GAP, window=self.BLACKOUT)]
        )

    def test_blackout_enters_and_exits_safe_mode(self):
        account, wh, optimizer = self.build()
        with obs.observed() as rec:
            account.run_until(16 * HOUR)
        assert optimizer.safe_mode_entries == 1
        assert not optimizer.safe_mode  # recovered by the end
        assert optimizer.decision_counts()["safe_mode"] >= 1
        events = account.telemetry.warehouse_events(wh, kind="keebo_safe_mode")
        assert len(events) == 1
        name = f"optimizer.safe_mode.{wh.lower()}"
        lifecycle = [
            r
            for r in rec.sink.records
            if r.get("type") == "event"
            and r.get("name") in ("alert.fire", "alert.resolve")
            and r["attrs"].get("alert") == name
        ]
        assert [r["name"] for r in lifecycle] == ["alert.fire", "alert.resolve"]
        fire, resolve = lifecycle
        assert self.BLACKOUT.contains(fire["time"])
        assert resolve["time"] >= self.BLACKOUT.end
        assert not rec.alerts.is_active(name)

    def test_safe_mode_freezes_at_original_config(self):
        account, wh, optimizer = self.build()
        account.run_until(13.5 * HOUR)  # mid-blackout, past the threshold
        assert optimizer.safe_mode
        live = optimizer.client.account.warehouse(wh).config
        assert live == optimizer.action_space.original
        safe = [d for d in optimizer.decisions if d.kind == DecisionKind.SAFE_MODE]
        assert safe and all(
            d.target == optimizer.action_space.original for d in safe
        )

    def test_exit_takes_a_warmup_hold_then_resumes(self):
        account, wh, optimizer = self.build()
        account.run_until(16 * HOUR)
        last_safe = max(
            i
            for i, d in enumerate(optimizer.decisions)
            if d.kind == DecisionKind.SAFE_MODE
        )
        after = optimizer.decisions[last_safe + 1:]
        assert after[0].kind == DecisionKind.HOLD
        assert after[0].reason == "safe-mode warm-up"
        assert any(d.kind != DecisionKind.HOLD for d in after[1:])

    def test_short_gap_holds_without_safe_mode(self):
        # One dark tick (age 900 s < the 1800 s threshold) must hold, not trip.
        account, wh, optimizer = faulting_optimizer(
            [
                FaultSpec(
                    FaultKind.TELEMETRY_GAP,
                    # Covers the 12h+1800s tick only (ticks land every 900 s).
                    window=Window(12 * HOUR + 1300.0, 12 * HOUR + 2300.0),
                )
            ]
        )
        account.run_until(14 * HOUR)
        assert optimizer.safe_mode_entries == 0
        holds = [d for d in optimizer.decisions if d.kind == DecisionKind.HOLD]
        assert any(d.reason == "telemetry unavailable" for d in holds)


class TestBreakerDrivenSafeMode:
    def test_open_breaker_enters_safe_mode_and_recovers(self):
        account, wh, optimizer = faulting_optimizer([])
        breaker = optimizer.actuator.breaker
        opened_at = account.sim.now
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(opened_at)
        assert breaker.blocking(opened_at)
        account.run_until(opened_at + 900.0)
        assert optimizer.safe_mode
        last = optimizer.decisions[-1]
        assert last.kind == DecisionKind.SAFE_MODE
        assert last.reason == "actuation circuit breaker open"
        # The cool-down (1800 s) elapses; blocking ends and SAFE_MODE exits.
        account.run_until(opened_at + 3 * 900.0)
        assert not optimizer.safe_mode
