"""Tests for the customer constraint rule engine."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR
from repro.core.actions import ActionSpace
from repro.core.constraints import ConstraintRule, ConstraintSet
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize


def at(day: int, hour: float) -> float:
    return day * DAY + hour * HOUR


class TestRuleApplicability:
    def test_hour_window(self):
        rule = ConstraintRule("morning", start_hour=9.0, end_hour=9.5)
        assert rule.applies_at(at(0, 9.25))
        assert not rule.applies_at(at(0, 9.75))
        assert not rule.applies_at(at(0, 8.99))

    def test_weekday_filter(self):
        rule = ConstraintRule("weekdays", weekdays=(0, 1, 2, 3, 4))
        assert rule.applies_at(at(0, 12))  # Monday
        assert not rule.applies_at(at(5, 12))  # Saturday

    def test_midnight_wrap(self):
        rule = ConstraintRule("night", start_hour=22.0, end_hour=6.0)
        assert rule.applies_at(at(0, 23))
        assert rule.applies_at(at(0, 3))
        assert not rule.applies_at(at(0, 12))

    def test_month_day_window(self):
        rule = ConstraintRule("month-end", month_days=(27, 28))
        assert rule.applies_at(at(27, 12))  # last day of 28-day month
        assert not rule.applies_at(at(10, 12))
        assert rule.applies_at(at(28 + 27, 12))  # next month's last day

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstraintRule("bad", start_hour=25)
        with pytest.raises(ConfigurationError):
            ConstraintRule("bad", weekdays=())
        with pytest.raises(ConfigurationError):
            ConstraintRule("bad", weekdays=(9,))
        with pytest.raises(ConfigurationError):
            ConstraintRule("bad", min_size=WarehouseSize.L, max_size=WarehouseSize.S)


class TestRulePermits:
    def config(self, **kw):
        defaults = dict(size=WarehouseSize.M, max_clusters=3)
        defaults.update(kw)
        return WarehouseConfig(**defaults)

    def test_no_downsize(self):
        rule = ConstraintRule("lock", allow_downsize=False)
        assert not rule.permits(self.config(), self.config(size=WarehouseSize.S))
        assert rule.permits(self.config(), self.config(size=WarehouseSize.L))

    def test_no_upsize(self):
        rule = ConstraintRule("cap", allow_upsize=False)
        assert not rule.permits(self.config(), self.config(size=WarehouseSize.L))

    def test_cluster_freeze(self):
        rule = ConstraintRule("freeze", allow_cluster_changes=False)
        assert not rule.permits(self.config(), self.config(max_clusters=2))
        assert rule.permits(self.config(), self.config(size=WarehouseSize.S))

    def test_size_floor_and_ceiling(self):
        rule = ConstraintRule("band", min_size=WarehouseSize.S, max_size=WarehouseSize.L)
        assert not rule.permits(self.config(), self.config(size=WarehouseSize.XS))
        assert not rule.permits(self.config(), self.config(size=WarehouseSize.XL))
        assert rule.permits(self.config(), self.config(size=WarehouseSize.L))

    def test_min_clusters(self):
        rule = ConstraintRule("par", min_clusters=3)
        assert not rule.permits(self.config(), self.config(max_clusters=2))
        assert rule.permits(self.config(), self.config(max_clusters=3))

    def test_suspend_floor(self):
        rule = ConstraintRule("warm", min_auto_suspend=300.0)
        assert not rule.permits(self.config(), self.config(auto_suspend_seconds=60))
        assert rule.permits(self.config(), self.config(auto_suspend_seconds=600))


class TestRequiredFloor:
    def test_lifts_size_and_clusters(self):
        # §4.1's example: 9-9:30 the BI warehouse must be XL with >= 3 clusters.
        rule = ConstraintRule(
            "bi-peak", start_hour=9.0, end_hour=9.5, min_size=WarehouseSize.XL, min_clusters=3
        )
        config = WarehouseConfig(size=WarehouseSize.L, max_clusters=2)
        lifted = rule.required_floor(config)
        assert lifted.size == WarehouseSize.XL
        assert lifted.max_clusters == 3

    def test_noop_when_compliant(self):
        rule = ConstraintRule("floor", min_size=WarehouseSize.S)
        config = WarehouseConfig(size=WarehouseSize.M)
        assert rule.required_floor(config) == config

    def test_ceiling_lowers_size(self):
        rule = ConstraintRule("cap", max_size=WarehouseSize.S)
        lifted = rule.required_floor(WarehouseConfig(size=WarehouseSize.L))
        assert lifted.size == WarehouseSize.S


class TestConstraintSet:
    def test_empty_set_permits_everything(self):
        cs = ConstraintSet()
        assert cs.permits(0.0, WarehouseConfig(), WarehouseConfig(size=WarehouseSize.XS))

    def test_inactive_rules_ignored(self):
        cs = ConstraintSet([ConstraintRule("m", start_hour=9, end_hour=10, allow_downsize=False)])
        downsized = WarehouseConfig(size=WarehouseSize.S)
        assert cs.permits(at(0, 12), WarehouseConfig(), downsized)
        assert not cs.permits(at(0, 9.5), WarehouseConfig(), downsized)

    def test_all_active_rules_must_permit(self):
        cs = ConstraintSet(
            [
                ConstraintRule("a", min_size=WarehouseSize.S),
                ConstraintRule("b", min_clusters=2),
            ]
        )
        ok = WarehouseConfig(size=WarehouseSize.M, max_clusters=2)
        assert cs.permits(0.0, WarehouseConfig(), ok)
        assert not cs.permits(0.0, WarehouseConfig(), ok.with_changes(max_clusters=1, min_clusters=1))

    def test_action_mask_blocks_noncompliant(self):
        original = WarehouseConfig(size=WarehouseSize.M, max_clusters=3)
        space = ActionSpace(original)
        cs = ConstraintSet([ConstraintRule("nodown", allow_downsize=False)])
        mask = cs.action_mask(0.0, original, space)
        for i, action in enumerate(space.actions):
            target = space.apply(original, action)
            if target.size < original.size:
                assert not mask[i]
        assert mask.any()

    def test_action_mask_without_rules_all_true(self):
        original = WarehouseConfig()
        space = ActionSpace(original)
        assert ConstraintSet().action_mask(0.0, original, space).all()

    def test_enforce_floor_applies_active_rules_only(self):
        cs = ConstraintSet(
            [ConstraintRule("peak", start_hour=9, end_hour=10, min_size=WarehouseSize.XL)]
        )
        config = WarehouseConfig(size=WarehouseSize.M)
        assert cs.enforce_floor(at(0, 9.5), config).size == WarehouseSize.XL
        assert cs.enforce_floor(at(0, 11.0), config).size == WarehouseSize.M
