"""Tests for the WarehouseOptimizer loop and KeeboService facade."""

import pytest

from repro.common.errors import ConfigurationError, UnknownWarehouseError
from repro.common.simtime import DAY, HOUR, Window
from repro.core.optimizer import KeeboService, OptimizerConfig, WarehouseOptimizer
from repro.core.sliders import SliderPosition
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.types import WarehouseSize

from tests.conftest import drive, make_account, make_requests, make_template


def small_config(**kw) -> OptimizerConfig:
    defaults = dict(
        training_window=12 * HOUR,
        onboarding_episodes=2,
        episode_length=6 * HOUR,
        retrain_interval=12 * HOUR,
        retrain_episodes=0,
        decision_interval=900.0,
        confidence_tau=0.0,
    )
    defaults.update(kw)
    return OptimizerConfig(**defaults)


def seeded_account(hours=12.0):
    account, wh = make_account(
        seed=21, size=WarehouseSize.M, auto_suspend_seconds=600.0, max_clusters=2
    )
    template = make_template("opt", base_work_seconds=15.0, n_partitions=2)
    times = [10.0 + i * 400.0 for i in range(int(hours * 9))]
    account.schedule_workload(wh, make_requests(template, times))
    account.run_until(hours * HOUR)
    return account, wh


class TestOnboarding:
    def test_onboard_trains_and_registers(self):
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        report = optimizer.onboard()
        assert optimizer.onboarded
        assert len(report.episodes) == 2
        assert optimizer.cost_model is not None
        events = account.telemetry.warehouse_events(wh, kind="keebo_onboarded")
        assert len(events) == 1

    def test_onboard_without_telemetry_fails(self):
        account, wh = make_account()
        account.run_until(DAY)
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        with pytest.raises(ConfigurationError):
            optimizer.onboard()

    def test_decisions_happen_after_onboarding(self):
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        optimizer.onboard()
        # Keep the workload flowing so the loop has something to see.
        template = make_template("opt", base_work_seconds=15.0, n_partitions=2)
        more = make_requests(template, [12 * HOUR + 10 + i * 400.0 for i in range(50)])
        account.schedule_workload(wh, more)
        account.run_until(18 * HOUR)
        assert len(optimizer.decisions) > 10
        counts = optimizer.decision_counts()
        assert sum(counts.values()) == len(optimizer.decisions)

    def test_savings_estimate_available(self):
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        optimizer.onboard()
        account.run_until(14 * HOUR)
        estimate = optimizer.estimate_savings(Window(12 * HOUR, 14 * HOUR))
        assert estimate.without_keebo_credits >= 0.0

    def test_estimate_before_onboard_fails(self):
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        with pytest.raises(ConfigurationError):
            optimizer.estimate_savings(Window(0, HOUR))


class TestExternalConflict:
    def test_pauses_on_external_change(self):
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        optimizer.onboard()
        template = make_template("opt", base_work_seconds=15.0, n_partitions=2)
        account.schedule_workload(
            wh, make_requests(template, [12 * HOUR + 10 + i * 400.0 for i in range(100)])
        )
        account.run_until(13 * HOUR)
        # An admin changes the warehouse behind Keebo's back.
        CloudWarehouseClient(account, actor="customer").alter_warehouse(
            wh, size=WarehouseSize.XL
        )
        account.run_until(15 * HOUR)
        assert optimizer.paused
        pauses = account.telemetry.warehouse_events(wh, kind="keebo_paused")
        assert len(pauses) == 1
        # While paused, Keebo leaves the external setting alone.
        assert CloudWarehouseClient(account).current_config(wh).size == WarehouseSize.XL

    def test_resume_optimizations(self):
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        optimizer.onboard()
        account.run_until(13 * HOUR)
        CloudWarehouseClient(account, actor="customer").alter_warehouse(
            wh, auto_suspend_seconds=120.0
        )
        account.run_until(14 * HOUR)
        assert optimizer.paused
        optimizer.resume_optimizations()
        assert not optimizer.paused
        n_before = len(optimizer.decisions)
        account.run_until(15 * HOUR)
        assert len(optimizer.decisions) > n_before


class TestExternalConflictRevert:
    """The revert-and-pause path of §4.4 under a flaky vendor."""

    def test_no_keebo_writes_after_pause(self):
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        optimizer.onboard()
        template = make_template("opt", base_work_seconds=15.0, n_partitions=2)
        account.schedule_workload(
            wh, make_requests(template, [12 * HOUR + 10 + i * 400.0 for i in range(100)])
        )
        account.run_until(13 * HOUR)
        CloudWarehouseClient(account, actor="customer").alter_warehouse(
            wh, size=WarehouseSize.XL
        )
        account.run_until(16 * HOUR)
        assert optimizer.paused
        pause = account.telemetry.warehouse_events(wh, kind="keebo_paused")[0]
        keebo_alters = [
            e
            for e in account.telemetry.warehouse_events(wh, kind="alter")
            if e.initiator == "keebo" and e.time > pause.time
        ]
        # Pausing accepted the external state: no revert war afterwards.
        assert keebo_alters == []
        assert optimizer.monitor._expected_config == CloudWarehouseClient(
            account
        ).current_config(wh)

    def test_conflict_read_failure_defers_pause(self):
        from repro import obs
        from repro.common.simtime import Window as W
        from repro.faults import FaultingWarehouseClient, FaultKind, FaultPlan, FaultSpec

        account, wh = seeded_account()
        outage = W(12 * HOUR + 100.0, 12 * HOUR + 600.0)
        client = FaultingWarehouseClient(
            account,
            FaultPlan(
                specs=(
                    FaultSpec(
                        FaultKind.API_ERROR, operation="current_config", window=outage
                    ),
                )
            ),
        )
        optimizer = WarehouseOptimizer(
            account, wh, config=small_config(), client=client
        )
        optimizer.onboard()  # at 12 h, before the outage arms
        account.run_until(12 * HOUR + 200.0)
        with obs.observed() as rec:
            optimizer._handle_external_conflict(account.sim.now)
        # The live config was unreadable: stay unpaused and retry later.
        assert not optimizer.paused
        assert any(
            r.get("name") == "optimizer.config_read_error" for r in rec.sink.records
        )
        account.run_until(12 * HOUR + 700.0)
        optimizer._handle_external_conflict(account.sim.now)
        assert optimizer.paused
        assert len(account.telemetry.warehouse_events(wh, kind="keebo_paused")) == 1


class TestRetraining:
    def test_periodic_retrain_updates_models(self):
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(
            account, wh, config=small_config(retrain_interval=2 * HOUR, retrain_episodes=1)
        )
        optimizer.onboard()
        template = make_template("opt", base_work_seconds=15.0, n_partitions=2)
        account.schedule_workload(
            wh, make_requests(template, [12 * HOUR + 10 + i * 400.0 for i in range(100)])
        )
        account.run_until(17 * HOUR)
        # Onboarding report plus at least one retrain report.
        assert len(optimizer.training_reports) >= 2


class TestKeeboService:
    def test_onboard_unknown_warehouse(self):
        account, wh = seeded_account()
        service = KeeboService(account)
        with pytest.raises(UnknownWarehouseError):
            service.onboard_warehouse("NOPE")

    def test_double_onboard_rejected(self):
        account, wh = seeded_account()
        service = KeeboService(account)
        service.onboard_warehouse(wh, config=small_config())
        with pytest.raises(ConfigurationError):
            service.onboard_warehouse(wh, config=small_config())

    def test_invoice_flow(self):
        account, wh = seeded_account()
        service = KeeboService(account, fee_fraction=0.3)
        service.onboard_warehouse(wh, config=small_config())
        account.run_until(16 * HOUR)
        invoice = service.invoice(wh, Window(12 * HOUR, 16 * HOUR))
        assert invoice.warehouse == wh
        assert invoice.fee_dollars >= 0.0
        assert service.invoices(Window(12 * HOUR, 16 * HOUR)) == [invoice]

    def test_set_slider_delegates(self):
        account, wh = seeded_account()
        service = KeeboService(account)
        service.onboard_warehouse(wh, config=small_config())
        service.set_slider(wh, SliderPosition.LOWEST_COST)
        assert service.optimizer(wh).params.position == SliderPosition.LOWEST_COST

    def test_shutdown_stops_controllers(self):
        account, wh = seeded_account()
        service = KeeboService(account)
        optimizer = service.onboard_warehouse(wh, config=small_config())
        service.shutdown()
        n = len(optimizer.decisions)
        account.run_until(20 * HOUR)
        assert len(optimizer.decisions) == n


class TestAlertLifecycle:
    def test_induced_backoff_fires_and_resolves_alert(self, monkeypatch):
        # Degrade the monitor's feedback for one stretch of ticks: the
        # backoff alert must fire once at the first backoff decision (later
        # backoff ticks deduplicate) and resolve on the first healthy tick.
        from dataclasses import replace

        from repro import obs

        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        with obs.observed() as rec:
            optimizer.onboard()
            real_snapshot = optimizer.monitor.snapshot
            degraded_until = 13 * HOUR

            def snapshot(now):
                fb = real_snapshot(now)
                if now <= degraded_until:
                    return replace(fb, recent_queries=50, latency_ratio=5.0)
                return fb

            monkeypatch.setattr(optimizer.monitor, "snapshot", snapshot)
            account.run_until(14 * HOUR)

        name = f"optimizer.backoff.{wh.lower()}"
        lifecycle = [
            r
            for r in rec.sink.records
            if r.get("type") == "event"
            and r.get("name") in ("alert.fire", "alert.resolve")
            and r["attrs"].get("alert") == name
        ]
        assert [r["name"] for r in lifecycle] == ["alert.fire", "alert.resolve"]
        fire, resolve = lifecycle
        assert fire["time"] <= degraded_until
        assert resolve["time"] > degraded_until
        assert resolve["attrs"]["refires"] >= 1  # episode spanned several ticks
        assert not rec.alerts.is_active(name)


class TestDecisionErrorFallback:
    def test_decision_error_becomes_typed_counted_hold(self, monkeypatch):
        from repro import obs
        from repro.common.errors import TelemetryError

        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=small_config())
        with obs.observed() as rec:
            optimizer.onboard()

            def boom(now, feedback):
                raise TelemetryError("history fetch failed") from ValueError("socket")

            monkeypatch.setattr(optimizer.smart_model, "next_action", boom)
            n_before = len(optimizer.decisions)
            account.run_until(13 * HOUR)

        # Every tick in the hour fell back to a typed HOLD decision.
        errored = optimizer.decisions[n_before:]
        assert errored
        assert all(d.kind.value == "hold" for d in errored)
        assert all(d.reason_code == "decision_error.TelemetryError" for d in errored)
        # The per-exception-type counter uses a snake_case metric segment.
        snapshot = rec.metrics.snapshot()
        counter = snapshot["repro.optimizer.decision_errors.telemetry_error"]
        assert counter["value"] == len(errored)
        # The event carries the __cause__ chain for triage.
        events = [
            r
            for r in rec.sink.records
            if r.get("type") == "event" and r.get("name") == "optimizer.decision_error"
        ]
        assert len(events) == len(errored)
        attrs = events[0]["attrs"]
        assert attrs["error_type"] == "TelemetryError"
        assert attrs["cause_type"] == "ValueError"
        assert attrs["cause"] == "socket"
        # Provenance recorded the same reason codes, one per tick.
        codes = [r.reason_code for r in optimizer.provenance.records[-len(errored):]]
        assert codes == ["decision_error.TelemetryError"] * len(errored)
