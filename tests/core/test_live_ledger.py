"""LiveLedger: streaming realized-vs-projected savings over report periods.

The exactness of the underlying ``IncrementalReplay`` is property-tested in
``tests/props/test_incremental_replay.py``; these tests pin the wiring —
idempotent ingestion, the aligned-reconciliation zero-divergence invariant,
period rolls, the fleet rollup, the durable round-trip, and the optimizer
integration behind ``OptimizerConfig.live_ledger``.
"""

import pytest

from repro.common.errors import RecoveryError
from repro.common.simtime import HOUR, Window
from repro.core.ledger import LiveLedger, fleet_projection
from repro.core.optimizer import OptimizerConfig, WarehouseOptimizer
from repro.costmodel.clusters import ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import LatencyScalingModel
from repro.costmodel.model import SavingsEstimate
from repro.costmodel.replay import QueryReplay
from repro.durability.codec import state_checksum
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

from tests.conftest import make_account, make_requests, make_template

PERIOD = Window(0.0, 4 * HOUR)
ORIGINAL = WarehouseConfig(size=WarehouseSize.M, auto_suspend_seconds=600.0)


def make_records(n=40, start=100.0, spacing=240.0) -> list[QueryRecord]:
    return [
        QueryRecord(
            query_id=i,
            warehouse="WH",
            text_hash=f"x{i}",
            template_hash=f"t{i % 3}",
            arrival_time=start + i * spacing,
            start_time=start + i * spacing,
            end_time=start + i * spacing + 30.0 + (i % 5) * 11.0,
            execution_seconds=30.0 + (i % 5) * 11.0,
            warehouse_size=WarehouseSize.M,
            cache_hit_ratio=0.5,
            cluster_number=1,
            chained=i % 4 == 0,
            completed=True,
        )
        for i in range(n)
    ]


def make_ledger(records, mode="exact", period=PERIOD) -> LiveLedger:
    return LiveLedger(
        "WH",
        LatencyScalingModel().fit(records),
        GapModel().fit(records),
        ClusterCountPredictor(),
        period,
        mode=mode,
    )


def full_credits(ledger: LiveLedger, records, config=ORIGINAL) -> float:
    replay = QueryReplay(
        ledger.latency_model, ledger.gap_model, ledger.cluster_predictor
    )
    return replay.replay(records, config, ledger.period).credits


class TestIngestion:
    def test_ingest_is_idempotent_per_query_id(self):
        records = make_records()
        ledger = make_ledger(records)
        assert ledger.ingest(records, now=HOUR) == len(records)
        assert ledger.ingest(records, now=2 * HOUR) == 0
        assert ledger.rows_streamed == len(records)
        assert ledger.cursor == 2 * HOUR

    def test_rows_outside_period_skipped(self):
        records = make_records()
        late = make_records(n=3, start=PERIOD.end + 50.0)
        ledger = make_ledger(records)
        assert ledger.ingest(records + late, now=HOUR) == len(records)


class TestReconcile:
    def test_aligned_exact_reconcile_divergence_is_zero(self):
        records = make_records()
        ledger = make_ledger(records)
        ledger.ingest(records, now=PERIOD.end)
        estimate = SavingsEstimate(PERIOD, full_credits(ledger, records), 1.0)
        entry = ledger.reconcile(estimate, ORIGINAL)
        assert entry.aligned
        assert entry.divergence == 0.0
        assert entry.projected_credits == estimate.without_keebo_credits
        assert entry.rows_streamed == len(records)

    def test_unaligned_period_counted_not_scored(self):
        records = make_records()
        ledger = make_ledger(records)
        ledger.ingest(records, now=PERIOD.end)
        stretched = Window(PERIOD.start, PERIOD.end + 600.0)
        estimate = SavingsEstimate(stretched, 12.0, 1.0)
        entry = ledger.reconcile(estimate, ORIGINAL)
        assert not entry.aligned
        assert entry.divergence == 0.0
        assert ledger.unaligned_periods == 1

    def test_sketch_reconcile_scores_distance_from_hull(self):
        records = make_records()
        ledger = make_ledger(records, mode="sketch")
        ledger.ingest(records, now=PERIOD.end)
        exact = full_credits(ledger, records)
        entry = ledger.reconcile(SavingsEstimate(PERIOD, exact, 1.0), ORIGINAL)
        assert entry.aligned
        assert entry.projected_lo <= entry.projected_hi
        # The hull encloses the true replay, so the distance is zero.
        assert entry.divergence == 0.0

    def test_roll_opens_a_fresh_period(self):
        records = make_records()
        ledger = make_ledger(records)
        ledger.ingest(records, now=PERIOD.end)
        next_period = Window(PERIOD.end, PERIOD.end + 4 * HOUR)
        ledger.roll(next_period)
        assert ledger.period == next_period
        assert ledger.rows_streamed == 0
        # Old ids are forgotten with the period: a fresh period re-admits.
        shifted = make_records(n=5, start=PERIOD.end + 10.0)
        assert ledger.ingest(shifted, now=PERIOD.end + HOUR) == 5


class TestFleetRollup:
    def test_rollup_sums_and_brackets(self):
        records = make_records()
        exact = make_ledger(records)
        sketch = make_ledger(records, mode="sketch")
        sketch.warehouse = "WH2"
        exact.ingest(records, now=PERIOD.end)
        sketch.ingest(records, now=PERIOD.end)
        rollup = fleet_projection([exact, sketch], lambda _: ORIGINAL)
        assert rollup["n_warehouses"] == 2
        assert rollup["rows"] == 2 * len(records)
        assert rollup["credits_lo"] <= rollup["credits_hi"]
        true_total = 2 * full_credits(exact, records)
        slack = 1e-9 * max(1.0, rollup["credits_hi"])
        assert rollup["credits_lo"] - slack <= true_total <= rollup["credits_hi"] + slack
        assert set(rollup["warehouses"]) == {"WH", "WH2"}


class TestDurability:
    def test_state_roundtrip_byte_identical(self):
        records = make_records()
        ledger = make_ledger(records)
        ledger.ingest(records[:30], now=2 * HOUR)
        state = ledger.state_dict()
        restored = make_ledger(records)
        # Re-feed sees the whole history; rows completed after the cursor
        # (or outside the period) must be filtered back out.
        restored.load_state_dict(state, records)
        assert restored.state_dict() == state
        assert state_checksum(restored.state_dict()) == state_checksum(state)
        assert (
            restored.projection(ORIGINAL).credits
            == ledger.projection(ORIGINAL).credits
        )

    def test_restore_with_missing_rows_fails(self):
        records = make_records()
        ledger = make_ledger(records)
        ledger.ingest(records, now=PERIOD.end)
        state = ledger.state_dict()
        restored = make_ledger(records)
        with pytest.raises(RecoveryError):
            restored.load_state_dict(state, records[:-1])


class TestOptimizerIntegration:
    def test_live_ledger_reconciles_bit_identically(self):
        account, wh = make_account(
            seed=37, size=WarehouseSize.M, auto_suspend_seconds=600.0, max_clusters=2
        )
        template = make_template("live", base_work_seconds=15.0, n_partitions=2)
        times = [10.0 + i * 400.0 for i in range(int(24 * 9))]
        account.schedule_workload(wh, make_requests(template, times))
        account.run_until(12 * HOUR)
        config = OptimizerConfig(
            training_window=12 * HOUR,
            onboarding_episodes=1,
            episode_length=6 * HOUR,
            retrain_interval=12 * HOUR,
            retrain_episodes=0,
            decision_interval=900.0,
            report_interval=3 * HOUR,
            confidence_tau=0.0,
            live_ledger=True,
        )
        optimizer = WarehouseOptimizer(account, wh, config=config)
        optimizer.onboard()
        account.run_until(22 * HOUR)
        ledger = optimizer.live_ledger
        assert ledger is not None
        aligned = [e for e in ledger.reconciliations if e.aligned]
        assert aligned, "no report period closed on the tick grid"
        # The headline invariant: streamed projection == full replay, bit
        # for bit, on every aligned period close.
        for entry in aligned:
            assert entry.divergence == 0.0
            assert entry.projected_credits == entry.estimated_credits
        assert any(e.rows_streamed > 0 for e in ledger.reconciliations)

    def test_live_ledger_off_by_default(self):
        account, wh = make_account(seed=38)
        template = make_template("off", base_work_seconds=10.0)
        account.schedule_workload(
            wh, make_requests(template, [10.0 + i * 600.0 for i in range(80)])
        )
        account.run_until(12 * HOUR)
        optimizer = WarehouseOptimizer(
            account,
            wh,
            config=OptimizerConfig(
                training_window=12 * HOUR,
                onboarding_episodes=1,
                episode_length=6 * HOUR,
                retrain_episodes=0,
                confidence_tau=0.0,
            ),
        )
        optimizer.onboard()
        assert optimizer.live_ledger is None
