"""Tests for the monitor (§4.4) and actuator (§4.5)."""

import pytest

from repro.common.simtime import HOUR, MINUTE
from repro.core.actuator import Actuator
from repro.core.monitoring import Monitor, RealTimeFeedback
from repro.core.sliders import SliderPosition, slider_params
from repro.learning.features import WorkloadBaseline
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.types import WarehouseSize

from tests.conftest import drive, make_account, make_requests, make_template


def feedback(**kw) -> RealTimeFeedback:
    defaults = dict(
        time=0.0,
        queue_length=0,
        running_queries=0,
        recent_queries=10,
        recent_p99=5.0,
        latency_ratio=1.0,
        mean_queue_seconds=0.0,
        arrival_zscore=0.0,
        unseen_template_fraction=0.0,
        external_change=False,
        baseline_ratio_q99=1.3,
    )
    defaults.update(kw)
    return RealTimeFeedback(**defaults)


class TestBackoffLogic:
    def test_queueing_triggers_backoff(self):
        fb = feedback(queue_length=3, mean_queue_seconds=5.0)
        assert fb.needs_backoff(slider_params(SliderPosition.BALANCED))

    def test_latency_degradation_triggers(self):
        fb = feedback(latency_ratio=3.0)
        assert fb.needs_backoff(slider_params(SliderPosition.BALANCED))

    def test_small_sample_does_not_trigger(self):
        fb = feedback(latency_ratio=3.0, recent_queries=3)
        assert not fb.needs_backoff(slider_params(SliderPosition.BALANCED))

    def test_threshold_respects_baseline_volatility(self):
        # A workload whose p99 naturally swings 2.5x should not back off at 2x.
        fb = feedback(latency_ratio=2.0, baseline_ratio_q99=2.5)
        assert not fb.needs_backoff(slider_params(SliderPosition.BALANCED))

    def test_cost_slider_tolerates_more(self):
        fb = feedback(latency_ratio=2.0)
        assert fb.needs_backoff(slider_params(SliderPosition.BEST_PERFORMANCE))
        assert not fb.needs_backoff(slider_params(SliderPosition.LOWEST_COST))

    def test_spike_detection_threshold(self):
        fb = feedback(arrival_zscore=3.2)
        assert fb.spike_detected(slider_params(SliderPosition.BALANCED))
        assert not fb.spike_detected(slider_params(SliderPosition.LOWEST_COST))


class TestMonitor:
    def build(self, **account_kw):
        account, wh = make_account(**account_kw)
        client = CloudWarehouseClient(account, actor="keebo")
        template = make_template("m", base_work_seconds=5.0)
        drive(account, wh, make_requests(template, [60.0 * i for i in range(30)]), HOUR)
        records = account.telemetry.query_history(wh)
        baseline = WorkloadBaseline.fit(records)
        monitor = Monitor(client, wh, baseline)
        monitor.learn_templates({r.template_hash for r in records})
        return account, wh, client, monitor

    def test_snapshot_reports_recent_traffic(self):
        account, wh, client, monitor = self.build()
        snap = monitor.snapshot(HOUR / 2)
        assert snap.recent_queries > 0
        assert snap.recent_p99 > 0

    def test_external_change_detection(self):
        account, wh, client, monitor = self.build()
        monitor.set_expected_config(client.current_config(wh))
        assert not monitor.snapshot(HOUR).external_change
        # A customer (not keebo) alters the warehouse.
        CloudWarehouseClient(account, actor="customer").alter_warehouse(
            wh, size=WarehouseSize.XL
        )
        assert monitor.snapshot(HOUR).external_change

    def test_keebo_changes_not_flagged(self):
        account, wh, client, monitor = self.build()
        client.alter_warehouse(wh, size=WarehouseSize.XL)
        monitor.set_expected_config(client.current_config(wh))
        assert not monitor.snapshot(HOUR).external_change

    def test_unseen_templates_flagged(self):
        account, wh, client, monitor = self.build()
        novel = make_template("novel", base_work_seconds=2.0)
        drive(account, wh, make_requests(novel, [HOUR + 10.0]), HOUR + MINUTE)
        snap = monitor.snapshot(HOUR + MINUTE)
        assert snap.unseen_template_fraction > 0

    def test_zscore_zero_on_expected_traffic(self):
        account, wh, client, monitor = self.build()
        snap = monitor.snapshot(HOUR / 2)
        assert abs(snap.arrival_zscore) < 3.0

    def test_zero_baseline_p99_reads_as_no_degradation(self):
        # A baseline fitted on an idle onboarding window can carry p99 = 0;
        # the snapshot must report ratio 0.0 ("no baseline signal"), not
        # divide by zero.
        account, wh = make_account()
        client = CloudWarehouseClient(account, actor="keebo")
        template = make_template("m", base_work_seconds=5.0)
        drive(account, wh, make_requests(template, [60.0 * i for i in range(5)]), HOUR)
        monitor = Monitor(client, wh, WorkloadBaseline(p99_latency=0.0))
        snap = monitor.snapshot(600.0)  # lookback window covers the traffic
        assert snap.recent_queries > 0  # traffic exists...
        assert snap.latency_ratio == 0.0  # ...but reads as not degraded


class TestActuator:
    def build(self):
        account, wh = make_account()
        client = CloudWarehouseClient(account, actor="keebo")
        monitor = Monitor(client, wh, WorkloadBaseline())
        return account, wh, client, Actuator(client, wh, monitor), monitor

    def test_apply_changes_config(self):
        account, wh, client, actuator, _ = self.build()
        target = client.current_config(wh).with_changes(size=WarehouseSize.L)
        entry = actuator.apply(target, reason="test")
        assert entry.succeeded and entry.changed
        assert client.current_config(wh) == target

    def test_noop_logged_but_not_changed(self):
        account, wh, client, actuator, _ = self.build()
        entry = actuator.apply(client.current_config(wh), reason="noop")
        assert entry.succeeded and not entry.changed
        assert actuator.actions_taken() == []

    def test_monitor_expectation_updated(self):
        account, wh, client, actuator, monitor = self.build()
        target = client.current_config(wh).with_changes(size=WarehouseSize.XL)
        actuator.apply(target, reason="test")
        assert monitor._expected_config == target

    def test_revert_restores_config(self):
        account, wh, client, actuator, _ = self.build()
        before = client.current_config(wh)
        actuator.apply(before.with_changes(size=WarehouseSize.XL), reason="up")
        entry = actuator.revert_to(before, reason="conflict")
        assert client.current_config(wh) == before
        assert "revert" in entry.reason

    def test_action_log_order(self):
        account, wh, client, actuator, _ = self.build()
        base = client.current_config(wh)
        actuator.apply(base.with_changes(size=WarehouseSize.M), "a")
        actuator.apply(base.with_changes(size=WarehouseSize.L), "b")
        reasons = [a.reason for a in actuator.actions_taken()]
        assert reasons == ["a", "b"]
