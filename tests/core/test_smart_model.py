"""Tests for the smart model's decision logic."""

import numpy as np
import pytest

from repro.common.simtime import HOUR, Window
from repro.core.actions import ActionSpace
from repro.core.constraints import ConstraintRule, ConstraintSet
from repro.core.monitoring import RealTimeFeedback
from repro.core.sliders import SliderPosition, slider_params
from repro.core.smart_model import DecisionKind, SmartModel
from repro.costmodel.model import WarehouseCostModel
from repro.learning.agent import DQNAgent, DQNConfig
from repro.learning.features import FEATURE_DIM, FeatureExtractor, WorkloadBaseline
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.types import WarehouseSize

from tests.conftest import drive, make_account, make_requests, make_template


def feedback(**kw) -> RealTimeFeedback:
    defaults = dict(
        time=12 * HOUR,
        queue_length=0,
        running_queries=0,
        recent_queries=10,
        recent_p99=5.0,
        latency_ratio=1.0,
        mean_queue_seconds=0.0,
        arrival_zscore=0.0,
        unseen_template_fraction=0.0,
        external_change=False,
        baseline_ratio_q99=1.3,
    )
    defaults.update(kw)
    return RealTimeFeedback(**defaults)


def build_smart_model(slider=SliderPosition.BALANCED, constraints=None, hours=12.0):
    account, wh = make_account(
        seed=9, size=WarehouseSize.M, auto_suspend_seconds=600.0, max_clusters=2
    )
    template = make_template("sm", base_work_seconds=10.0, n_partitions=2)
    times = [10.0 + i * 300.0 for i in range(int(hours * 12))]
    drive(account, wh, make_requests(template, times), hours * HOUR)
    client = CloudWarehouseClient(account, actor="keebo")
    window = Window(0, hours * HOUR)
    cost_model = WarehouseCostModel(client, wh).fit(window)
    original = account.telemetry.original_config(wh)
    space = ActionSpace(original)
    records = client.query_history(wh, window)
    baseline = WorkloadBaseline.fit(records)
    agent = DQNAgent(FEATURE_DIM, len(space), DQNConfig(), np.random.default_rng(0))
    model = SmartModel(
        client,
        wh,
        agent,
        space,
        FeatureExtractor(baseline, original),
        cost_model,
        constraints or ConstraintSet(),
        slider_params(slider),
    )
    return account, wh, client, model


class TestDecisions:
    def test_external_conflict_decision(self):
        account, wh, client, model = build_smart_model()
        decision = model.next_action(12 * HOUR, feedback(external_change=True))
        assert decision.kind == DecisionKind.EXTERNAL_CONFLICT

    def test_backoff_on_degradation(self):
        account, wh, client, model = build_smart_model()
        decision = model.next_action(
            12 * HOUR, feedback(latency_ratio=5.0, recent_queries=20)
        )
        assert decision.kind == DecisionKind.BACKOFF

    def test_cooldown_after_backoff(self):
        account, wh, client, model = build_smart_model()
        model.next_action(12 * HOUR, feedback(latency_ratio=5.0, recent_queries=20))
        decision = model.next_action(12 * HOUR + 600, feedback())
        assert decision.kind == DecisionKind.HOLD

    def test_backoff_restores_toward_original(self):
        account, wh, client, model = build_smart_model()
        # Simulate Keebo having downsized and shortened suspend earlier.
        client.alter_warehouse(wh, size=WarehouseSize.XS, auto_suspend_seconds=60.0)
        decision = model.next_action(
            12 * HOUR, feedback(latency_ratio=5.0, recent_queries=20)
        )
        assert decision.kind == DecisionKind.BACKOFF
        assert decision.target.size > WarehouseSize.XS
        assert decision.target.auto_suspend_seconds == 600.0

    def test_constraint_floor_enforced_first(self):
        rules = ConstraintSet(
            [ConstraintRule("force", min_size=WarehouseSize.XL, min_clusters=2)]
        )
        account, wh, client, model = build_smart_model(constraints=rules)
        decision = model.next_action(12 * HOUR, feedback())
        assert decision.kind == DecisionKind.CONSTRAINT_FLOOR
        assert decision.target.size == WarehouseSize.XL

    def test_learned_decision_respects_constraints(self):
        rules = ConstraintSet([ConstraintRule("nodown", allow_downsize=False)])
        account, wh, client, model = build_smart_model(constraints=rules)
        for i in range(12):
            decision = model.next_action(12 * HOUR + i * 600, feedback())
            assert decision.target.size >= WarehouseSize.M

    def test_never_exceeds_original_size_on_balanced(self):
        account, wh, client, model = build_smart_model()
        for i in range(12):
            decision = model.next_action(12 * HOUR + i * 600, feedback())
            assert decision.target.size <= WarehouseSize.M

    def test_quiet_periods_block_structural_changes(self):
        account, wh, client, model = build_smart_model()
        decision = model.next_action(12 * HOUR, feedback(recent_queries=0))
        current = client.current_config(wh)
        assert decision.target.size == current.size
        assert decision.target.max_clusters == current.max_clusters

    def test_slider_swap_without_retraining(self):
        account, wh, client, model = build_smart_model()
        agent_before = model.agent
        model.set_slider(slider_params(SliderPosition.LOWEST_COST))
        assert model.agent is agent_before
        assert model.params.position == SliderPosition.LOWEST_COST


class TestConfidenceRamp:
    def test_confidence_grows(self):
        account, wh, client, model = build_smart_model()
        model.set_confidence_ramp(anchor_time=0.0, tau_seconds=10 * HOUR)
        assert model.confidence(0.0) == pytest.approx(0.0, abs=0.01)
        assert 0.2 < model.confidence(5 * HOUR) < 0.7
        assert model.confidence(100 * HOUR) == 1.0

    def test_no_ramp_means_full_confidence(self):
        account, wh, client, model = build_smart_model()
        assert model.confidence(0.0) == 1.0

    def test_early_mask_blocks_aggressive_suspend(self):
        account, wh, client, model = build_smart_model()
        model.set_confidence_ramp(anchor_time=12 * HOUR, tau_seconds=30 * HOUR)
        mask = model._admissible_mask(12 * HOUR + 60, client.current_config(wh))
        for i, action in enumerate(model.action_space.actions):
            if not action.keeps_suspend and action.suspend_seconds <= 60.0:
                assert not mask[i]
        # KEEP-suspend actions stay available.
        assert mask[model.action_space.noop_index]

    def test_late_mask_unlocks_everything(self):
        account, wh, client, model = build_smart_model()
        model.set_confidence_ramp(anchor_time=0.0, tau_seconds=1.0)
        current = client.current_config(wh)
        mask = model._admissible_mask(12 * HOUR, current)
        # Every action within the slider's size band is admissible; only
        # upsizes beyond Balanced's ceiling (the original size) stay masked.
        ceiling = model.original.size
        for i, action in enumerate(model.action_space.actions):
            target = model.action_space.apply(current, action)
            assert mask[i] == (target.size <= ceiling)


class TestGuardrail:
    def test_vetoes_large_predicted_slowdown(self):
        account, wh, client, model = build_smart_model(slider=SliderPosition.BALANCED)
        current = client.current_config(wh)
        guard = model._guardrail_context(12 * HOUR, current)
        tiny = current.with_changes(size=WarehouseSize.XS)
        # Balanced tolerates only 15% predicted slowdown; XS from M is ~4x.
        assert not model._passes_guardrail(guard, tiny, pressure=False)

    def test_allows_cheap_neutral_move(self):
        account, wh, client, model = build_smart_model(slider=SliderPosition.LOWEST_COST)
        current = client.current_config(wh)
        guard = model._guardrail_context(12 * HOUR, current)
        shorter_suspend = current.with_changes(auto_suspend_seconds=60.0)
        assert model._passes_guardrail(guard, shorter_suspend, pressure=False)

    def test_counts_vetoes(self):
        account, wh, client, model = build_smart_model()
        before = model.guardrail_vetoes
        for i in range(12):
            model.next_action(12 * HOUR + i * 600, feedback())
        assert model.guardrail_vetoes >= before
