"""Tests for the joint action space."""

import pytest

from repro.common.errors import InvalidActionError
from repro.core.actions import KEEP_SUSPEND, SUSPEND_CHOICES, Action, ActionSpace
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize


def original(**kw) -> WarehouseConfig:
    defaults = dict(size=WarehouseSize.L, auto_suspend_seconds=1800.0, max_clusters=4)
    defaults.update(kw)
    return WarehouseConfig(**defaults)


class TestActionSpace:
    def test_cardinality(self):
        space = ActionSpace(original())
        assert len(space) == 3 * len(SUSPEND_CHOICES) * 3

    def test_index_roundtrip(self):
        space = ActionSpace(original())
        for i, action in enumerate(space.actions):
            assert space.index(action) == i

    def test_unknown_action_rejected(self):
        space = ActionSpace(original())
        with pytest.raises(InvalidActionError):
            space.index(Action(5, 60.0, 0))

    def test_noop_changes_nothing(self):
        space = ActionSpace(original())
        config = original()
        noop = space.actions[space.noop_index]
        assert space.apply(config, noop) == config

    def test_apply_resize(self):
        space = ActionSpace(original())
        result = space.apply(original(), Action(-1, KEEP_SUSPEND, 0))
        assert result.size == WarehouseSize.M
        assert result.auto_suspend_seconds == 1800.0

    def test_apply_suspend(self):
        space = ActionSpace(original())
        result = space.apply(original(), Action(0, 60.0, 0))
        assert result.auto_suspend_seconds == 60.0
        assert result.size == WarehouseSize.L

    def test_apply_cluster_delta(self):
        space = ActionSpace(original())
        result = space.apply(original(), Action(0, KEEP_SUSPEND, -1))
        assert result.max_clusters == 3

    def test_size_floor_clamped(self):
        space = ActionSpace(original(size=WarehouseSize.XS))
        result = space.apply(original(size=WarehouseSize.XS), Action(-1, KEEP_SUSPEND, 0))
        assert result.size == WarehouseSize.XS

    def test_headroom_limits_upsize(self):
        space = ActionSpace(original(), max_size_headroom=1)
        at_ceiling = original().with_changes(size=WarehouseSize.XL)
        result = space.apply(at_ceiling, Action(1, KEEP_SUSPEND, 0))
        assert result.size == WarehouseSize.XL  # L + 1 headroom = XL max

    def test_zero_headroom_never_exceeds_original(self):
        space = ActionSpace(original(), max_size_headroom=0)
        result = space.apply(original(), Action(1, KEEP_SUSPEND, 0))
        assert result.size == WarehouseSize.L

    def test_clusters_never_exceed_original_max(self):
        space = ActionSpace(original(max_clusters=4))
        config = original(max_clusters=4)
        for _ in range(10):
            config = space.apply(config, Action(0, KEEP_SUSPEND, 1))
        assert config.max_clusters == 4

    def test_clusters_never_below_one(self):
        space = ActionSpace(original())
        config = original()
        for _ in range(10):
            config = space.apply(config, Action(0, KEEP_SUSPEND, -1))
        assert config.max_clusters == 1

    def test_min_clusters_shrink_with_max(self):
        space = ActionSpace(original(min_clusters=3, max_clusters=3))
        result = space.apply(
            original(min_clusters=3, max_clusters=3), Action(0, KEEP_SUSPEND, -1)
        )
        assert result.max_clusters == 2
        assert result.min_clusters == 2

    def test_resulting_configs_align_with_actions(self):
        space = ActionSpace(original())
        configs = space.resulting_configs(original())
        assert len(configs) == len(space)
        assert configs[space.noop_index] == original()

    def test_describe(self):
        text = Action(-1, 60.0, 1).describe()
        assert "downsize" in text and "60" in text and "clusters+1" in text
        assert "keep" in Action(0, KEEP_SUSPEND, 0).describe()
