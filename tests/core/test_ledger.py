"""Tests for the savings ledger (Algorithm 1's reporting step)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR, Window
from repro.core.ledger import SavingsLedger
from repro.core.optimizer import OptimizerConfig, WarehouseOptimizer
from repro.costmodel.model import SavingsEstimate

from tests.conftest import make_account, make_requests, make_template


def estimate(start, end, without, with_):
    return SavingsEstimate(Window(start, end), without, with_)


class TestSavingsLedger:
    def test_report_and_totals(self):
        ledger = SavingsLedger("WH")
        ledger.report(estimate(0, 100, 10.0, 6.0), n_actions=2, n_backoffs=0)
        ledger.report(estimate(100, 200, 8.0, 9.0), n_actions=1, n_backoffs=1)
        assert ledger.periods_reported == 2
        assert ledger.total_savings_credits() == pytest.approx(4.0 - 1.0)
        # Negative periods are not billable (no savings, no charges).
        assert ledger.total_billable_credits() == pytest.approx(4.0)

    def test_window_filter(self):
        ledger = SavingsLedger("WH")
        ledger.report(estimate(0, 100, 10.0, 6.0), 0, 0)
        ledger.report(estimate(100, 200, 10.0, 5.0), 0, 0)
        assert ledger.total_savings_credits(Window(0, 100)) == pytest.approx(4.0)
        assert ledger.total_savings_credits(Window(150, 500)) == pytest.approx(5.0)

    def test_overlapping_periods_rejected(self):
        ledger = SavingsLedger("WH")
        ledger.report(estimate(0, 100, 1.0, 0.5), 0, 0)
        with pytest.raises(ConfigurationError):
            ledger.report(estimate(50, 150, 1.0, 0.5), 0, 0)

    def test_series_shape(self):
        ledger = SavingsLedger("WH")
        ledger.report(estimate(0, 100, 10.0, 6.0), 0, 0)
        assert ledger.series() == [(100, pytest.approx(4.0))]


class TestOptimizerReporting:
    def test_loop_populates_ledger(self):
        account, wh = make_account(seed=23)
        template = make_template("led", base_work_seconds=10.0)
        times = [10.0 + i * 500.0 for i in range(200)]
        account.schedule_workload(wh, make_requests(template, times))
        account.run_until(12 * HOUR)
        optimizer = WarehouseOptimizer(
            account,
            wh,
            config=OptimizerConfig(
                training_window=12 * HOUR,
                onboarding_episodes=1,
                episode_length=6 * HOUR,
                retrain_episodes=0,
                report_interval=2 * HOUR,
                confidence_tau=0.0,
            ),
        )
        optimizer.onboard()
        account.run_until(22 * HOUR)
        # 10 hours of optimized run at 2h reporting -> ~5 periods.
        assert 3 <= optimizer.ledger.periods_reported <= 6
        windows = [e.window for e in optimizer.ledger.entries]
        for earlier, later in zip(windows, windows[1:]):
            assert later.start >= earlier.end - 1e-9
