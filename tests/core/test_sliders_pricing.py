"""Tests for slider mapping and value-based pricing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.core.pricing import ValueBasedPricing
from repro.core.sliders import SliderPosition, slider_params
from repro.costmodel.model import SavingsEstimate


class TestSliders:
    def test_all_positions_defined(self):
        for position in SliderPosition:
            params = slider_params(position)
            assert params.position == position

    def test_accepts_ints(self):
        assert slider_params(3).position == SliderPosition.BALANCED

    def test_latency_weight_monotone(self):
        weights = [slider_params(p).latency_weight for p in SliderPosition]
        assert weights == sorted(weights)

    def test_latency_ceiling_monotone_decreasing(self):
        ceilings = [slider_params(p).max_latency_factor for p in SliderPosition]
        assert ceilings == sorted(ceilings, reverse=True)

    def test_cost_leaning_never_pays_more(self):
        for p in (SliderPosition.LOWEST_COST, SliderPosition.LOW_COST, SliderPosition.BALANCED):
            assert slider_params(p).cost_increase_tolerance == 0.0
            assert slider_params(p).max_upsize_steps == 0

    def test_best_performance_never_downsizes(self):
        assert slider_params(SliderPosition.BEST_PERFORMANCE).max_downsize_steps == 0

    def test_reward_config_scales_with_weight(self):
        balanced = slider_params(SliderPosition.BALANCED).reward_config()
        lowest = slider_params(SliderPosition.LOWEST_COST).reward_config()
        assert balanced.latency_weight > lowest.latency_weight
        assert balanced.queue_weight > lowest.queue_weight

    def test_labels(self):
        assert SliderPosition.LOWEST_COST.label == "Lowest Cost"
        assert SliderPosition.BEST_PERFORMANCE.label == "Best Performance"


class TestValueBasedPricing:
    def estimate(self, without=100.0, with_=60.0):
        return SavingsEstimate(Window(0, 1), without, with_)

    def test_fee_is_fraction_of_savings(self):
        pricing = ValueBasedPricing(fee_fraction=0.3, price_per_credit=2.0)
        invoice = pricing.invoice("WH", self.estimate())
        assert invoice.savings_credits == 40.0
        assert invoice.fee_dollars == pytest.approx(40 * 2 * 0.3)

    def test_no_savings_no_charge(self):
        pricing = ValueBasedPricing()
        invoice = pricing.invoice("WH", self.estimate(without=50.0, with_=60.0))
        assert invoice.savings_credits == -10.0
        assert invoice.billable_savings_credits == 0.0
        assert invoice.fee_dollars == 0.0

    def test_customer_net_benefit(self):
        pricing = ValueBasedPricing(fee_fraction=0.25, price_per_credit=1.0)
        invoice = pricing.invoice("WH", self.estimate())
        assert invoice.customer_net_benefit_dollars == pytest.approx(40 - 10)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ValueBasedPricing(fee_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ValueBasedPricing(price_per_credit=0.0)
