"""Tests for the latency scaling model."""

import pytest

from repro.costmodel.latency import DEFAULT_GAMMA, LatencyScalingModel
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize


def obs(template: str, size: WarehouseSize, latency: float, hit: float = 1.0) -> QueryRecord:
    return QueryRecord(
        query_id=0,
        warehouse="WH",
        text_hash=template + "x",
        template_hash=template,
        arrival_time=0.0,
        execution_seconds=latency,
        warehouse_size=size,
        cache_hit_ratio=hit,
        completed=True,
    )


def perfect_scaling_records(template="tpl", base=16.0, gamma=1.0) -> list[QueryRecord]:
    return [
        obs(template, size, base / size.speedup**gamma)
        for size in [WarehouseSize.XS, WarehouseSize.S, WarehouseSize.M, WarehouseSize.L]
        for _ in range(3)
    ]


class TestFit:
    def test_recovers_perfect_scaling(self):
        model = LatencyScalingModel().fit(perfect_scaling_records(gamma=1.0))
        assert model.gamma("tpl") == pytest.approx(1.0, abs=0.01)

    def test_recovers_sublinear_scaling(self):
        model = LatencyScalingModel().fit(perfect_scaling_records(gamma=0.5))
        assert model.gamma("tpl") == pytest.approx(0.5, abs=0.01)

    def test_single_size_falls_back_to_pooled(self):
        records = perfect_scaling_records("multi", gamma=0.9)
        records += [obs("single", WarehouseSize.M, 8.0)] * 4
        model = LatencyScalingModel().fit(records)
        assert model.gamma("single") == pytest.approx(model.warehouse_gamma)
        assert model.warehouse_gamma == pytest.approx(0.9, abs=0.01)

    def test_unknown_template_uses_warehouse_gamma(self):
        model = LatencyScalingModel().fit(perfect_scaling_records(gamma=0.8))
        assert model.gamma("never-seen") == pytest.approx(0.8, abs=0.01)

    def test_unfitted_uses_default(self):
        assert LatencyScalingModel().gamma("x") == DEFAULT_GAMMA

    def test_no_cross_size_data_uses_default(self):
        records = [obs("a", WarehouseSize.M, 5.0)] * 5
        model = LatencyScalingModel().fit(records)
        assert model.warehouse_gamma == DEFAULT_GAMMA

    def test_cold_runs_excluded_from_fit(self):
        records = perfect_scaling_records(gamma=1.0)
        # Cold garbage observations that would destroy the fit if included.
        records += [obs("tpl", WarehouseSize.L, 500.0, hit=0.0)] * 10
        model = LatencyScalingModel().fit(records)
        assert model.gamma("tpl") == pytest.approx(1.0, abs=0.01)

    def test_gamma_clipped_to_bounds(self):
        # Anti-scaling data (bigger = slower) clips at 0 instead of negative.
        records = [
            obs("weird", WarehouseSize.XS, 1.0),
            obs("weird", WarehouseSize.L, 100.0),
            obs("weird", WarehouseSize.XS, 1.0),
            obs("weird", WarehouseSize.L, 100.0),
        ]
        model = LatencyScalingModel().fit(records)
        assert model.gamma("weird") == 0.0

    def test_n_templates(self):
        model = LatencyScalingModel().fit(perfect_scaling_records())
        assert model.n_templates == 1


class TestRescale:
    def test_same_size_identity(self):
        model = LatencyScalingModel().fit(perfect_scaling_records(gamma=1.0))
        record = obs("tpl", WarehouseSize.M, 4.0)
        assert model.rescale(record, WarehouseSize.M) == pytest.approx(4.0)

    def test_downsize_slows(self):
        model = LatencyScalingModel().fit(perfect_scaling_records(gamma=1.0))
        record = obs("tpl", WarehouseSize.M, 4.0)
        assert model.rescale(record, WarehouseSize.XS) == pytest.approx(16.0)

    def test_upsize_speeds(self):
        model = LatencyScalingModel().fit(perfect_scaling_records(gamma=1.0))
        record = obs("tpl", WarehouseSize.M, 4.0)
        assert model.rescale(record, WarehouseSize.XL) == pytest.approx(1.0)

    def test_cold_records_scale_conservatively(self):
        model = LatencyScalingModel().fit(perfect_scaling_records(gamma=1.0))
        warm = obs("tpl", WarehouseSize.M, 4.0, hit=1.0)
        cold = obs("tpl", WarehouseSize.M, 4.0, hit=0.0)
        warm_scaled = model.rescale(warm, WarehouseSize.XS)
        cold_scaled = model.rescale(cold, WarehouseSize.XS)
        assert cold_scaled < warm_scaled  # the cold I/O part does not scale

    def test_predict_absolute(self):
        model = LatencyScalingModel().fit(perfect_scaling_records(base=16.0, gamma=1.0))
        assert model.predict_absolute("tpl", WarehouseSize.XS) == pytest.approx(16.0, rel=0.05)
        assert model.predict_absolute("tpl", WarehouseSize.M) == pytest.approx(4.0, rel=0.05)
        assert model.predict_absolute("unknown", WarehouseSize.M) is None

    def test_size_speed_factor(self):
        model = LatencyScalingModel().fit(perfect_scaling_records(gamma=1.0))
        assert model.size_speed_factor(WarehouseSize.M, WarehouseSize.XS) == pytest.approx(4.0)
        assert model.size_speed_factor(WarehouseSize.M, WarehouseSize.L) == pytest.approx(0.5)
