"""Tests for the bytes-scanned (on-demand) cost model extension."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import DAY, HOUR, Window
from repro.costmodel.bytes_billed import (
    TIB,
    BytesBilledModel,
    compare_engines,
)
from repro.warehouse.queries import QueryRecord


def rec(arrival: float, gib: float) -> QueryRecord:
    return QueryRecord(
        query_id=int(arrival),
        warehouse="WH",
        text_hash="x",
        template_hash="t",
        arrival_time=arrival,
        start_time=arrival,
        end_time=arrival + 1,
        execution_seconds=1.0,
        bytes_scanned=gib * 2**30,
        completed=True,
    )


class TestBytesBilledModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BytesBilledModel(dollars_per_tib=0)
        with pytest.raises(ConfigurationError):
            BytesBilledModel(min_bytes_per_query=-1)

    def test_simple_estimate(self):
        model = BytesBilledModel(dollars_per_tib=5.0, min_bytes_per_query=0)
        estimate = model.estimate([rec(0.0, 1024.0)], Window(0, HOUR))  # 1 TiB
        assert estimate.dollars == pytest.approx(5.0)
        assert estimate.n_queries == 1
        assert estimate.minimum_uplift_fraction == 0.0

    def test_per_query_minimum(self):
        model = BytesBilledModel(dollars_per_tib=5.0, min_bytes_per_query=10 * 2**20)
        tiny = [rec(float(i), 0.001) for i in range(100)]  # ~1 MiB each
        estimate = model.estimate(tiny, Window(0, HOUR))
        assert estimate.billable_bytes == pytest.approx(100 * 10 * 2**20)
        assert estimate.minimum_uplift_fraction > 0.8

    def test_window_filtering(self):
        model = BytesBilledModel()
        records = [rec(0.0, 10.0), rec(2 * HOUR, 10.0)]
        estimate = model.estimate(records, Window(0, HOUR))
        assert estimate.n_queries == 1

    def test_empty_window(self):
        estimate = BytesBilledModel().estimate([], Window(0, HOUR))
        assert estimate.dollars == 0.0
        assert estimate.minimum_uplift_fraction == 0.0


class TestEngineComparison:
    def test_scan_light_workload_favours_ondemand(self):
        # A warehouse that idles 24/7 for a handful of tiny scans.
        records = [rec(i * HOUR, 0.1) for i in range(24)]
        comparison = compare_engines(
            records,
            warehouse_credits=24.0,  # an XS running all day
            window=Window(0, DAY),
            price_per_credit=3.0,
        )
        assert comparison.cheaper_engine == "on-demand"
        assert comparison.savings_fraction > 0.9

    def test_scan_heavy_workload_favours_warehouse(self):
        # Rescanning a fat table continuously: 2 TiB per query, every 10 min.
        records = [rec(i * 600.0, 2048.0) for i in range(144)]
        comparison = compare_engines(
            records,
            warehouse_credits=4 * 24.0,  # a Medium running all day
            window=Window(0, DAY),
            price_per_credit=3.0,
        )
        assert comparison.cheaper_engine == "warehouse"

    def test_savings_fraction_symmetric(self):
        records = [rec(0.0, 1024.0)]
        comparison = compare_engines(records, 1.0, Window(0, HOUR), price_per_credit=6.25)
        # 1 TiB at 6.25 vs 1 credit at 6.25: equal -> warehouse wins ties.
        assert comparison.cheaper_engine == "warehouse"
        assert comparison.savings_fraction == pytest.approx(0.0)

    def test_on_simulated_telemetry(self):
        """End-to-end: price a real simulated warehouse's telemetry."""
        from tests.conftest import drive, make_account, make_requests, make_template

        account, wh = make_account(seed=17)
        template = make_template("scan", base_work_seconds=5.0, n_partitions=4)
        drive(account, wh, make_requests(template, [i * 900.0 for i in range(40)]), 12 * HOUR)
        records = account.telemetry.query_history(wh)
        credits = account.warehouse(wh).meter.total_credits(account.sim.now)
        comparison = compare_engines(
            records, credits, Window(0, 12 * HOUR), account.price_per_credit
        )
        assert comparison.warehouse_dollars > 0
        assert comparison.ondemand_dollars > 0
        assert comparison.cheaper_engine in ("warehouse", "on-demand")
