"""Tests for the gap model (chained-arrival detection)."""

import pytest

from repro.costmodel.gaps import CHAIN_WINDOW_SECONDS, GapModel
from repro.warehouse.queries import QueryRecord


def rec(template: str, arrival: float, duration: float, chained=False) -> QueryRecord:
    return QueryRecord(
        query_id=int(arrival * 10),
        warehouse="WH",
        text_hash=template + str(arrival),
        template_hash=template,
        arrival_time=arrival,
        start_time=arrival,
        end_time=arrival + duration,
        execution_seconds=duration,
        chained=chained,
        completed=True,
    )


def chain_history(n_chains: int = 5, lag: float = 5.0) -> list[QueryRecord]:
    """n repetitions of pipeline A -> B (B arrives `lag` after A ends)."""
    records = []
    for i in range(n_chains):
        t = i * 3600.0
        a = rec("A", t, 60.0)
        b = rec("B", t + 60.0 + lag, 30.0, chained=True)
        records += [a, b]
    return records


class TestFit:
    def test_learns_dependent_pairs(self):
        model = GapModel().fit(chain_history())
        assert model.is_dependent_pair("A".__str__(), "B") or model.is_dependent_pair("A", "B")
        assert model.n_dependent_pairs >= 1

    def test_insufficient_support_not_dependent(self):
        model = GapModel().fit(chain_history(n_chains=2))
        assert not model.is_dependent_pair("A", "B")

    def test_far_apart_pairs_not_dependent(self):
        records = []
        for i in range(10):
            t = i * 3600.0
            records.append(rec("A", t, 10.0))
            records.append(rec("B", t + 2000.0, 10.0))
        model = GapModel().fit(records)
        assert not model.is_dependent_pair("A", "B")


class TestClassify:
    def test_flagged_records_classified_chained(self):
        model = GapModel().fit(chain_history())
        observations = model.classify(chain_history(1))
        assert [o.chained for o in observations] == [False, True]

    def test_detector_works_without_flags(self):
        history = [
            rec(t.template_hash, t.arrival_time, t.execution_seconds, chained=False)
            for t in chain_history()
        ]
        model = GapModel(use_flags=False).fit(history)
        observations = model.classify(history)
        chained = [o.chained for o in observations]
        assert sum(chained) == 5  # each B detected statistically

    def test_flags_ignored_when_disabled(self):
        # Flags say chained, but the pattern has no statistical support.
        lone = [rec("A", 0.0, 10.0), rec("B", 500.0, 10.0, chained=True)]
        model = GapModel(use_flags=False).fit(lone)
        observations = model.classify(lone)
        assert not observations[1].chained

    def test_lag_recorded(self):
        model = GapModel().fit(chain_history(lag=7.0))
        observations = model.classify(chain_history(1, lag=7.0))
        assert observations[1].lag_after_predecessor == pytest.approx(7.0)

    def test_flagged_chain_with_weird_lag_uses_learned_lag(self):
        model = GapModel().fit(chain_history(lag=5.0))
        # A flagged chained record arriving long after its predecessor ended
        # (e.g. the predecessor in telemetry is not its true parent).
        odd = [rec("A", 0.0, 60.0), rec("B", 500.0, 30.0, chained=True)]
        observations = model.classify(odd)
        assert observations[1].chained
        assert observations[1].lag_after_predecessor == pytest.approx(5.0)

    def test_first_record_never_chained(self):
        model = GapModel().fit(chain_history())
        observations = model.classify([rec("B", 0.0, 10.0, chained=True)])
        assert not observations[0].chained

    def test_classification_sorted_by_arrival(self):
        model = GapModel().fit(chain_history())
        shuffled = chain_history(2)[::-1]
        observations = model.classify(shuffled)
        arrivals = [o.record.arrival_time for o in observations]
        assert arrivals == sorted(arrivals)
