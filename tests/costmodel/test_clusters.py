"""Tests for the cluster-count predictor."""

import numpy as np
import pytest

from repro.costmodel.clusters import (
    MINI_WINDOW_SECONDS,
    ClusterCountPredictor,
    concurrency_profile,
)
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord


def rec(start: float, dur: float, cluster: int = 1) -> QueryRecord:
    return QueryRecord(
        query_id=int(start),
        warehouse="WH",
        text_hash="x",
        template_hash="t",
        arrival_time=start,
        start_time=start,
        end_time=start + dur,
        execution_seconds=dur,
        cluster_number=cluster,
        completed=True,
    )


class TestConcurrencyProfile:
    def test_single_interval_full_window(self):
        profile = concurrency_profile([(0.0, 300.0)], 0.0, 300.0, 300.0)
        assert profile.tolist() == [1.0]

    def test_partial_coverage(self):
        profile = concurrency_profile([(0.0, 150.0)], 0.0, 300.0, 300.0)
        assert profile.tolist() == [0.5]

    def test_overlapping_intervals_sum(self):
        profile = concurrency_profile([(0, 300), (0, 300), (0, 150)], 0.0, 300.0, 300.0)
        assert profile.tolist() == [2.5]

    def test_empty(self):
        profile = concurrency_profile([], 0.0, 600.0, 300.0)
        assert profile.tolist() == [0.0, 0.0]

    def test_interval_spanning_windows(self):
        profile = concurrency_profile([(100.0, 500.0)], 0.0, 600.0, 300.0)
        assert profile.tolist() == [pytest.approx(200 / 300), pytest.approx(200 / 300)]


class TestPredictor:
    def test_fit_on_empty_history(self):
        predictor = ClusterCountPredictor().fit([], WarehouseConfig())
        assert predictor.fitted
        assert predictor.calibration == 1.0

    def test_calibration_learns_scale(self):
        # Concurrency says 1 cluster but telemetry observed 2: k ~ 2 (clipped).
        config = WarehouseConfig(max_clusters=4, max_concurrency=8)
        records = [rec(i * 400.0, 350.0, cluster=2) for i in range(20)]
        predictor = ClusterCountPredictor().fit(records, config)
        assert predictor.calibration > 1.5

    def test_calibration_disabled(self):
        config = WarehouseConfig(max_clusters=4, max_concurrency=8)
        records = [rec(i * 400.0, 350.0, cluster=2) for i in range(20)]
        predictor = ClusterCountPredictor(calibrate=False).fit(records, config)
        assert predictor.calibration == 1.0

    def test_predict_bounds(self):
        config = WarehouseConfig(max_clusters=3, max_concurrency=2)
        predictor = ClusterCountPredictor().fit([], config)
        # Demand for 10 concurrent queries on 2-slot clusters -> 5 clusters,
        # clipped to the configured max of 3.
        intervals = [(0.0, MINI_WINDOW_SECONDS)] * 10
        predicted = predictor.predict(intervals, 0.0, MINI_WINDOW_SECONDS, config)
        assert predicted[0] == 3.0

    def test_predict_zero_where_inactive(self):
        config = WarehouseConfig(max_clusters=3)
        predictor = ClusterCountPredictor().fit([], config)
        predicted = predictor.predict([(0.0, 100.0)], 0.0, 2 * MINI_WINDOW_SECONDS, config)
        assert predicted[0] >= 1.0
        assert predicted[1] == 0.0

    def test_min_clusters_floor(self):
        config = WarehouseConfig(min_clusters=2, max_clusters=4)
        predictor = ClusterCountPredictor().fit([], config)
        predicted = predictor.predict([(0.0, 100.0)], 0.0, MINI_WINDOW_SECONDS, config)
        assert predicted[0] >= 2.0
