"""Tests for the analytical query replay."""

import pytest

from repro.common.simtime import HOUR, Window
from repro.costmodel.clusters import ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import LatencyScalingModel
from repro.costmodel.replay import QueryReplay
from repro.warehouse.billing import MINIMUM_BILLED_SECONDS
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize


def rec(arrival: float, dur: float, template="t", size=WarehouseSize.S, chained=False):
    return QueryRecord(
        query_id=int(arrival * 1000) % 10**9,
        warehouse="WH",
        text_hash=template + str(arrival),
        template_hash=template,
        arrival_time=arrival,
        start_time=arrival,
        end_time=arrival + dur,
        execution_seconds=dur,
        warehouse_size=size,
        cache_hit_ratio=1.0,
        cluster_number=1,
        chained=chained,
        completed=True,
    )


@pytest.fixture
def replay() -> QueryReplay:
    return QueryReplay(LatencyScalingModel(), GapModel(), ClusterCountPredictor())


def config(**kw) -> WarehouseConfig:
    defaults = dict(size=WarehouseSize.S, auto_suspend_seconds=300.0)
    defaults.update(kw)
    return WarehouseConfig(**defaults)


class TestReplayBasics:
    def test_empty_records_zero_cost(self, replay):
        result = replay.replay([], config(), Window(0, HOUR))
        assert result.credits == 0.0
        assert result.cost_is_zero

    def test_single_query_burst(self, replay):
        result = replay.replay([rec(100.0, 60.0)], config(), Window(0, HOUR))
        # Busy 60s + 300s suspend tail at 2 credits/hour.
        expected = (60 + 300) / HOUR * 2.0
        assert result.credits == pytest.approx(expected, rel=0.05)
        assert result.n_bursts == 1

    def test_bursts_merge_within_suspend_gap(self, replay):
        records = [rec(0.0, 60.0), rec(200.0, 60.0)]  # gap 140 < 300
        result = replay.replay(records, config(), Window(0, HOUR))
        assert result.n_bursts == 1

    def test_bursts_split_beyond_suspend_gap(self, replay):
        records = [rec(0.0, 60.0), rec(2000.0, 60.0)]  # gap >> 300
        result = replay.replay(records, config(), Window(0, HOUR))
        assert result.n_bursts == 2

    def test_zero_suspend_means_always_on(self, replay):
        records = [rec(0.0, 10.0)]
        result = replay.replay(records, config(auto_suspend_seconds=0.0), Window(0, HOUR))
        assert result.active_seconds == pytest.approx(HOUR)

    def test_minimum_billing_for_tiny_burst(self, replay):
        tiny = config(auto_suspend_seconds=1.0)
        result = replay.replay([rec(0.0, 5.0)], tiny, Window(0, HOUR))
        assert result.credits >= MINIMUM_BILLED_SECONDS / HOUR * 2.0

    def test_hourly_credits_sum_close_to_total(self, replay):
        records = [rec(i * 600.0, 120.0) for i in range(20)]
        result = replay.replay(records, config(), Window(0, 4 * HOUR))
        assert sum(result.hourly_credits.values()) == pytest.approx(result.credits, rel=0.05)

    def test_latency_stats_reported(self, replay):
        records = [rec(0.0, 10.0), rec(1000.0, 30.0)]
        result = replay.replay(records, config(), Window(0, HOUR))
        assert result.avg_latency == pytest.approx(20.0)
        assert result.n_queries == 2


class TestWhatIfSizes:
    def _scaled_history(self):
        # Template observed on two sizes so gamma is fit to 1.0.
        records = []
        for i in range(6):
            records.append(rec(i * 4000.0, 40.0, size=WarehouseSize.S))
            records.append(rec(i * 4000.0 + 2000.0, 20.0, size=WarehouseSize.M))
        return records

    def test_bigger_size_costs_more_for_idle_dominated(self, replay):
        records = self._scaled_history()
        replay.latency_model.fit(records)
        window = Window(0, 8 * HOUR)
        small = replay.replay(records, config(size=WarehouseSize.S), window)
        large = replay.replay(records, config(size=WarehouseSize.XL), window)
        # Idle-tail dominated workload: doubling rates dominates the saving.
        assert large.credits > small.credits

    def test_counterfactual_latency_scales(self, replay):
        records = self._scaled_history()
        replay.latency_model.fit(records)
        window = Window(0, 8 * HOUR)
        small = replay.replay(records, config(size=WarehouseSize.S), window)
        large = replay.replay(records, config(size=WarehouseSize.XL), window)
        assert large.avg_latency < small.avg_latency


class TestChainedReplays:
    def test_chained_arrivals_shift_with_latency(self, replay):
        # Chain: A at 0 for 100s, B arrives 5s after A ends, repeatedly.
        records = []
        for i in range(5):
            t = i * 3600.0
            records.append(rec(t, 100.0, template="A", size=WarehouseSize.M))
            records.append(rec(t + 105.0, 50.0, template="B", size=WarehouseSize.M, chained=True))
        replay.gap_model.fit(records)
        replay.latency_model.fit(records)
        window = Window(0, 5 * 3600.0)
        # Replaying on XS (4x slower at default gamma ~0.7 -> ~2.6x) should
        # stretch the chain: B's counterfactual arrival moves later.
        slow = replay.replay(records, config(size=WarehouseSize.XS, auto_suspend_seconds=60.0), window)
        fast = replay.replay(records, config(size=WarehouseSize.M, auto_suspend_seconds=60.0), window)
        assert slow.active_seconds > fast.active_seconds
        assert slow.avg_latency > fast.avg_latency


class TestObsFastPath:
    """With observability disabled, replay must skip *all* span work.

    The smart model issues thousands of what-if replays per run; the
    disabled fast path (no span record, no ``config.describe()`` dict) is
    what keeps the obs layer's overhead near zero when it is off
    (benchmarks/bench_fig6_overhead.py puts a number on it).
    """

    def test_disabled_skips_describe_entirely(self, replay, monkeypatch):
        from repro.warehouse.config import WarehouseConfig

        def boom(self):  # pragma: no cover - must never run
            raise AssertionError("config.describe() called on the fast path")

        monkeypatch.setattr(WarehouseConfig, "describe", boom)
        result = replay.replay([rec(100.0, 60.0)], config(), Window(0, HOUR))
        assert result.n_queries == 1

    def test_disabled_result_matches_observed_result(self, replay):
        from repro import obs

        records = [rec(100.0, 60.0), rec(900.0, 30.0, template="u")]
        window = Window(0, HOUR)
        disabled = replay.replay(records, config(), window)
        with obs.observed() as recorder:
            observed = replay.replay(records, config(), window)
            spans = [r for r in recorder.sink.records if r["type"] == "span"]
        assert observed == disabled
        assert [s["name"] for s in spans] == ["costmodel.replay"]
        assert spans[0]["attrs"]["n_queries"] == 2


class TestMergeIntervals:
    """Edge cases of the busy-interval union (and kernel agreement).

    ``_merge_intervals`` is the scalar reference for
    ``kernels.merge_intervals``; every case checks both so the pair cannot
    drift apart on the boundaries.
    """

    @staticmethod
    def _both(intervals):
        from repro.costmodel import kernels
        from repro.costmodel.replay import _merge_intervals

        scalar = _merge_intervals(intervals)
        starts, ends = kernels.merge_intervals(*kernels.as_interval_arrays(intervals))
        vectorized = list(zip(starts.tolist(), ends.tolist()))
        assert scalar == vectorized
        return scalar

    def test_empty(self):
        assert self._both([]) == []

    def test_single(self):
        assert self._both([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_zero_length_span_kept(self):
        """A (t, t) span seeds a group rather than vanishing."""
        assert self._both([(5.0, 5.0)]) == [(5.0, 5.0)]

    def test_span_starting_at_zero_length_predecessor_joins_it(self):
        assert self._both([(5.0, 5.0), (5.0, 9.0)]) == [(5.0, 9.0)]

    def test_exactly_touching_endpoints_merge(self):
        """start == previous end joins the group (gap of zero is no gap)."""
        assert self._both([(0.0, 10.0), (10.0, 20.0)]) == [(0.0, 20.0)]

    def test_contained_span_does_not_shrink_group(self):
        assert self._both([(0.0, 100.0), (10.0, 20.0), (30.0, 40.0)]) == [(0.0, 100.0)]

    def test_disjoint_spans_stay_separate(self):
        assert self._both([(0.0, 1.0), (2.0, 3.0)]) == [(0.0, 1.0), (2.0, 3.0)]

    def test_mixed_zero_length_and_overlaps(self):
        assert self._both(
            [(0.0, 0.0), (0.0, 5.0), (5.0, 5.0), (6.0, 7.0), (6.5, 6.5)]
        ) == [(0.0, 5.0), (6.0, 7.0)]
