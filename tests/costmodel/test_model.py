"""Tests for the WarehouseCostModel facade (fit / estimate / savings)."""

import pytest

from repro.common.errors import TelemetryError
from repro.common.simtime import DAY, HOUR, Window
from repro.costmodel.model import WarehouseCostModel
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.types import WarehouseSize

from tests.conftest import drive, make_account, make_requests, make_template


def build_history(hours: float = 24.0, spacing: float = 900.0):
    """An account with a steady query history and its keebo client."""
    account, wh = make_account(
        seed=3, size=WarehouseSize.S, auto_suspend_seconds=300.0
    )
    template = make_template("steady", base_work_seconds=30.0, n_partitions=2)
    times = [10.0 + i * spacing for i in range(int(hours * HOUR / spacing))]
    drive(account, wh, make_requests(template, times), hours * HOUR)
    return account, wh, CloudWarehouseClient(account, actor="keebo")


class TestFitAndEstimate:
    def test_requires_fit(self):
        account, wh, client = build_history(2.0)
        model = WarehouseCostModel(client, wh)
        with pytest.raises(TelemetryError):
            model.estimate_without_keebo(Window(0, HOUR))

    def test_estimate_close_to_actual_same_config(self):
        account, wh, client = build_history(24.0)
        window = Window(0, 24 * HOUR)
        model = WarehouseCostModel(client, wh).fit(window)
        estimate = model.estimate_without_keebo(window)
        actual = model.actual_credits(window)
        assert estimate.credits == pytest.approx(actual, rel=0.15)

    def test_savings_near_zero_without_optimizer(self):
        account, wh, client = build_history(24.0)
        window = Window(0, 24 * HOUR)
        model = WarehouseCostModel(client, wh).fit(window)
        savings = model.estimate_savings(window)
        assert abs(savings.savings_fraction) < 0.15

    def test_savings_positive_after_keebo_suspend_cut(self):
        account, wh, client = build_history(24.0)
        # Keebo tightens the suspend interval at t=24h; run 24 more hours.
        client.alter_warehouse(wh, auto_suspend_seconds=60.0)
        template = make_template("steady", base_work_seconds=30.0, n_partitions=2)
        times = [24 * HOUR + 10.0 + i * 900.0 for i in range(96)]
        drive(account, wh, make_requests(template, times), 48 * HOUR)
        model = WarehouseCostModel(client, wh).fit(Window(0, 24 * HOUR))
        savings = model.estimate_savings(Window(24 * HOUR, 48 * HOUR))
        # Original 300s suspend vs actual 60s: the what-if should bill more.
        assert savings.savings_credits > 0
        assert savings.savings_fraction > 0.1

    def test_what_if_bigger_size_costs_more_here(self):
        account, wh, client = build_history(24.0)
        window = Window(0, 24 * HOUR)
        model = WarehouseCostModel(client, wh).fit(window)
        base = model.estimate_cost(window, client.current_config(wh))
        big = model.estimate_cost(
            window, client.current_config(wh).with_changes(size=WarehouseSize.L)
        )
        assert big.credits > base.credits


class TestActionImpact:
    def test_downsize_predicts_slower_cheaper_or_equal(self):
        account, wh, client = build_history(24.0)
        window = Window(0, 24 * HOUR)
        model = WarehouseCostModel(client, wh).fit(window)
        current = client.current_config(wh)
        impact = model.predict_action_impact(
            window, current, current.with_changes(size=WarehouseSize.XS)
        )
        assert impact.latency_factor > 1.0
        assert impact.slows_down

    def test_upsize_predicts_faster(self):
        account, wh, client = build_history(24.0)
        window = Window(0, 24 * HOUR)
        model = WarehouseCostModel(client, wh).fit(window)
        current = client.current_config(wh)
        impact = model.predict_action_impact(
            window, current, current.with_changes(size=WarehouseSize.L)
        )
        assert impact.latency_factor < 1.0
        assert not impact.slows_down

    def test_identity_impact_is_neutral(self):
        account, wh, client = build_history(12.0)
        window = Window(0, 12 * HOUR)
        model = WarehouseCostModel(client, wh).fit(window)
        current = client.current_config(wh)
        impact = model.predict_action_impact(window, current, current)
        assert impact.credits_delta == pytest.approx(0.0, abs=1e-9)
        assert impact.latency_factor == pytest.approx(1.0)


class TestSavingsEstimate:
    def test_fraction_zero_when_baseline_zero(self):
        from repro.costmodel.model import SavingsEstimate

        estimate = SavingsEstimate(Window(0, 1), 0.0, 0.0)
        assert estimate.savings_fraction == 0.0

    def test_fraction_computation(self):
        from repro.costmodel.model import SavingsEstimate

        estimate = SavingsEstimate(Window(0, 1), 100.0, 60.0)
        assert estimate.savings_credits == 40.0
        assert estimate.savings_fraction == pytest.approx(0.4)
