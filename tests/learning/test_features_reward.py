"""Tests for featurization, baselines and reward shaping."""

import numpy as np
import pytest

from repro.common.simtime import HOUR, Window
from repro.learning.features import (
    FEATURE_DIM,
    FeatureExtractor,
    WorkloadBaseline,
    interval_windows,
)
from repro.learning.reward import RewardConfig, interval_reward
from repro.warehouse.api import WarehouseInfo
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize, WarehouseState


def rec(arrival: float, exec_s: float = 5.0, queued: float = 0.0, hit: float = 1.0):
    return QueryRecord(
        query_id=int(arrival),
        warehouse="WH",
        text_hash="x",
        template_hash="t",
        arrival_time=arrival,
        start_time=arrival + queued,
        end_time=arrival + queued + exec_s,
        queued_seconds=queued,
        execution_seconds=exec_s,
        cache_hit_ratio=hit,
        completed=True,
    )


def info(config=None, state=WarehouseState.RUNNING, queue=0, running=0, clusters=1):
    return WarehouseInfo(
        name="WH",
        state=state,
        config=config or WarehouseConfig(),
        queue_length=queue,
        running_queries=running,
        active_clusters=clusters,
    )


class TestWorkloadBaseline:
    def test_empty_defaults(self):
        baseline = WorkloadBaseline.fit([])
        assert baseline.p99_latency > 0
        assert baseline.expected_arrivals_per_hour(0.0) == 0.0

    def test_p99_from_history(self):
        records = [rec(i * 60.0, exec_s=1.0) for i in range(95)] + [
            rec(6000.0 + i, exec_s=100.0) for i in range(5)
        ]
        baseline = WorkloadBaseline.fit(records)
        assert baseline.p99_latency > 50.0
        assert baseline.avg_latency < 10.0

    def test_hourly_arrival_profile(self):
        # All arrivals in hour 9 over 2 days.
        records = [rec(day * 24 * HOUR + 9 * HOUR + i) for day in range(2) for i in range(10)]
        baseline = WorkloadBaseline.fit(records)
        assert baseline.expected_arrivals_per_hour(9.5 * HOUR) > 0
        assert baseline.expected_arrivals_per_hour(3 * HOUR) == 0.0

    def test_window_ratio_captures_volatility(self):
        steady = [rec(i * 30.0, exec_s=5.0) for i in range(200)]
        # Two extreme outliers concentrated in one 15-minute window: that
        # window's p99 far exceeds the diluted global p99.
        spiky = [rec(i * 30.0, exec_s=100.0 if i in (40, 41) else 5.0) for i in range(200)]
        assert (
            WorkloadBaseline.fit(spiky).window_p99_ratio_q99
            > WorkloadBaseline.fit(steady).window_p99_ratio_q99
        )


class TestFeatureExtractor:
    def test_feature_vector_shape_and_finiteness(self):
        baseline = WorkloadBaseline.fit([rec(i * 60.0) for i in range(50)])
        extractor = FeatureExtractor(baseline, WarehouseConfig())
        state = extractor.extract(HOUR, [rec(100.0)], [], info())
        assert state.shape == (FEATURE_DIM,)
        assert np.isfinite(state).all()

    def test_empty_windows_ok(self):
        extractor = FeatureExtractor(WorkloadBaseline(), WarehouseConfig())
        state = extractor.extract(0.0, [], [], info(state=WarehouseState.SUSPENDED))
        assert np.isfinite(state).all()

    def test_suspended_flag(self):
        extractor = FeatureExtractor(WorkloadBaseline(), WarehouseConfig())
        suspended = extractor.extract(0.0, [], [], info(state=WarehouseState.SUSPENDED))
        running = extractor.extract(0.0, [], [], info(state=WarehouseState.RUNNING))
        assert (suspended != running).any()

    def test_interval_windows(self):
        recent, previous = interval_windows(1000.0, 300.0)
        assert recent == Window(700.0, 1000.0)
        assert previous == Window(400.0, 700.0)

    def test_interval_windows_clamped_at_zero(self):
        recent, previous = interval_windows(100.0, 300.0)
        assert recent.start == 0.0
        assert previous.duration == 0.0


class TestReward:
    def setup_method(self):
        self.baseline = WorkloadBaseline(p99_latency=10.0, avg_latency=5.0)
        self.original = WarehouseConfig(size=WarehouseSize.S)
        self.weights = RewardConfig(latency_weight=4.0)

    def reward(self, credits, records):
        return interval_reward(credits, 600.0, records, self.baseline, self.original, self.weights)

    def test_cheaper_is_better(self):
        records = [rec(0.0, exec_s=5.0)]
        assert self.reward(0.1, records) > self.reward(0.3, records)

    def test_latency_penalty_beyond_tolerance(self):
        ok = [rec(0.0, exec_s=10.0)]  # at baseline p99
        slow = [rec(0.0, exec_s=40.0)]  # 4x baseline p99
        assert self.reward(0.1, ok) > self.reward(0.1, slow)

    def test_no_queries_no_penalty(self):
        assert self.reward(0.0, []) == 0.0

    def test_queueing_penalized(self):
        smooth = [rec(0.0, exec_s=5.0, queued=0.0)]
        queued = [rec(0.0, exec_s=5.0, queued=20.0)]
        assert self.reward(0.1, smooth) > self.reward(0.1, queued)

    def test_cold_reads_penalized(self):
        warm = [rec(0.0, hit=1.0)]
        cold = [rec(0.0, hit=0.0)]
        assert self.reward(0.1, warm) > self.reward(0.1, cold)

    def test_cost_normalized_by_original_rate(self):
        # The same absolute credits hurt a small warehouse more.
        small = interval_reward(
            1.0, 600.0, [], WorkloadBaseline(), WarehouseConfig(size=WarehouseSize.XS), RewardConfig()
        )
        large = interval_reward(
            1.0, 600.0, [], WorkloadBaseline(), WarehouseConfig(size=WarehouseSize.XL), RewardConfig()
        )
        assert small < large
