"""Tests for the Double DQN variant."""

import numpy as np
import pytest

from repro.learning.agent import DQNAgent, DQNConfig
from repro.learning.buffer import Transition


def make_agent(double: bool, seed=0, **config_kw) -> DQNAgent:
    defaults = dict(warmup=8, batch_size=8, double_dqn=double, epsilon_decay_steps=10)
    defaults.update(config_kw)
    return DQNAgent(4, 3, DQNConfig(**defaults), np.random.default_rng(seed))


def terminal(reward: float, action: int = 1) -> Transition:
    return Transition(
        state=np.ones(4),
        action=action,
        reward=reward,
        next_state=np.ones(4),
        done=True,
        next_mask=np.ones(3, dtype=bool),
    )


class TestDoubleDQN:
    def test_learns_terminal_values(self):
        agent = make_agent(double=True)
        for _ in range(400):
            agent.observe(terminal(3.0))
        assert agent.q_values(np.ones(4))[1] == pytest.approx(3.0, abs=1.0)

    def test_bootstrap_through_next_state(self):
        """Non-terminal chains propagate value through the double estimator.

        Full convergence to 1/(1-γ) needs many target syncs; we assert the
        bootstrapped value clearly exceeds any single-step reward, which
        only happens if value flows through the next-state estimate.
        """
        agent = make_agent(double=True, target_sync_every=20, learning_rate=5e-3)
        for _ in range(3000):
            agent.observe(
                Transition(
                    state=np.zeros(4),
                    action=0,
                    reward=1.0,
                    next_state=np.zeros(4),
                    done=False,
                    next_mask=np.ones(3, dtype=bool),
                )
            )
        assert agent.q_values(np.zeros(4))[0] > 3.0

    def test_fully_masked_next_state_bootstraps_zero(self):
        agent = make_agent(double=True)
        for _ in range(300):
            agent.observe(
                Transition(
                    state=np.ones(4),
                    action=2,
                    reward=2.0,
                    next_state=np.ones(4) * 2,
                    done=False,
                    next_mask=np.zeros(3, dtype=bool),
                )
            )
        assert agent.q_values(np.ones(4))[2] == pytest.approx(2.0, abs=1.0)

    def test_double_and_vanilla_both_converge_same_target(self):
        vanilla = make_agent(double=False, seed=1)
        double = make_agent(double=True, seed=1)
        for _ in range(400):
            vanilla.observe(terminal(5.0))
            double.observe(terminal(5.0))
        q_v = vanilla.q_values(np.ones(4))[1]
        q_d = double.q_values(np.ones(4))[1]
        assert q_v == pytest.approx(5.0, abs=1.5)
        assert q_d == pytest.approx(5.0, abs=1.5)
