"""Tests for the numpy MLP."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.learning.network import MLP


class TestMLP:
    def test_forward_shapes(self):
        net = MLP(4, 3, hidden=(8,))
        single = net.forward(np.zeros(4))
        batch = net.forward(np.zeros((5, 4)))
        assert single.shape == (3,)
        assert batch.shape == (5, 3)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            MLP(0, 3)

    def test_deterministic_init(self):
        a = MLP(4, 2, rng=np.random.default_rng(1))
        b = MLP(4, 2, rng=np.random.default_rng(1))
        x = np.ones(4)
        assert np.allclose(a.forward(x), b.forward(x))

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        net = MLP(3, 2, hidden=(16, 16), rng=rng, learning_rate=5e-3)
        states = rng.normal(size=(256, 3))
        actions = rng.integers(0, 2, size=256)
        # Learnable target: q[a] should approximate a linear function.
        targets = states[:, 0] * (actions == 0) + states[:, 1] * (actions == 1)
        first = net.train_step(states, actions, targets)
        for _ in range(300):
            last = net.train_step(states, actions, targets)
        assert last < 0.2 * first

    def test_gradient_only_flows_through_taken_action(self):
        rng = np.random.default_rng(2)
        net = MLP(2, 3, hidden=(8,), rng=rng)
        states = np.ones((4, 2))
        actions = np.zeros(4, dtype=int)
        before = net.forward(np.ones(2)).copy()
        for _ in range(50):
            net.train_step(states, actions, np.full(4, 10.0))
        after = net.forward(np.ones(2))
        # The trained head moved clearly more than the untouched heads
        # (hidden layers are shared, so the others shift a little too).
        assert abs(after[0] - before[0]) > 2 * abs(after[1] - before[1])

    def test_parameter_roundtrip(self):
        net = MLP(3, 2, rng=np.random.default_rng(3))
        params = net.get_parameters()
        other = MLP(3, 2, rng=np.random.default_rng(99))
        other.set_parameters(params)
        x = np.array([0.5, -0.5, 1.0])
        assert np.allclose(net.forward(x), other.forward(x))

    def test_set_parameters_shape_check(self):
        net = MLP(3, 2)
        bad = [np.zeros((2, 2))] * 4
        with pytest.raises(ConfigurationError):
            net.set_parameters(bad)

    def test_clone_weights_from(self):
        a = MLP(3, 2, rng=np.random.default_rng(1))
        b = MLP(3, 2, rng=np.random.default_rng(2))
        b.clone_weights_from(a)
        x = np.ones(3)
        assert np.allclose(a.forward(x), b.forward(x))

    def test_get_parameters_returns_copies(self):
        net = MLP(2, 2)
        params = net.get_parameters()
        params[0][:] = 999.0
        assert not np.allclose(net.weights[0], 999.0)
