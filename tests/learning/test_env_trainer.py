"""Tests for workload reconstruction, the training env and the trainer."""

import numpy as np
import pytest

from repro.common.simtime import DAY, HOUR, Window
from repro.core.actions import ActionSpace
from repro.costmodel.latency import LatencyScalingModel
from repro.learning.agent import DQNAgent, DQNConfig
from repro.learning.env import WarehouseEnv, reconstruct_workload
from repro.learning.features import FEATURE_DIM, WorkloadBaseline
from repro.learning.reward import RewardConfig
from repro.learning.trainer import OfflineTrainer
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize

from tests.conftest import drive, make_account, make_requests, make_template


def history_from_sim(hours: float = 12.0):
    account, wh = make_account(seed=5, size=WarehouseSize.S, auto_suspend_seconds=300.0)
    template = make_template("w", base_work_seconds=20.0, n_partitions=3)
    times = [10.0 + i * 200.0 for i in range(int(hours * 18))]
    drive(account, wh, make_requests(template, times), hours * HOUR)
    records = account.telemetry.query_history(wh)
    model = LatencyScalingModel().fit(records)
    return records, model, account.warehouse(wh).config


class TestReconstruction:
    def test_request_per_record(self):
        records, model, _ = history_from_sim()
        requests = reconstruct_workload(records, model)
        assert len(requests) == len(records)
        assert [r.arrival_time for r in requests] == [rec.arrival_time for rec in records]

    def test_base_work_inferred_from_latency(self):
        records, model, _ = history_from_sim()
        requests = reconstruct_workload(records, model)
        # Observed on S with gamma ~0.7 default: base_work ~ 20/2^0.8*2^0.7.
        base = requests[0].template.base_work_seconds
        warm_on_s = requests[0].template.warm_latency(WarehouseSize.S)
        observed = np.median([r.execution_seconds for r in records if r.cache_hit_ratio >= 0.5])
        assert warm_on_s == pytest.approx(observed, rel=0.3)
        assert base > warm_on_s  # XS-equivalent work exceeds S latency

    def test_partitions_synthesized_from_bytes(self):
        records, model, _ = history_from_sim()
        requests = reconstruct_workload(records, model)
        template = requests[0].template
        assert len(template.partitions) == 3
        assert all(p.startswith("recon.") for p in template.partitions)

    def test_cold_multiplier_estimated(self):
        records, model, _ = history_from_sim()
        requests = reconstruct_workload(records, model)
        # History has cold and warm runs of the same template.
        assert requests[0].template.cold_multiplier > 1.0

    def test_no_ground_truth_leakage(self):
        """Reconstruction only sees telemetry fields, never template names."""
        records, model, _ = history_from_sim()
        requests = reconstruct_workload(records, model)
        assert all(r.template.name.startswith("recon.") for r in requests)


class TestWarehouseEnv:
    def make_env(self, seed=0):
        records, model, config = history_from_sim()
        requests = reconstruct_workload(records, model)
        space = ActionSpace(config)
        env = WarehouseEnv(
            requests,
            config,
            WorkloadBaseline.fit(records),
            space,
            RewardConfig(),
            Window(0, 6 * HOUR),
            decision_interval=1200.0,
            seed=seed,
        )
        return env, space

    def test_reset_returns_state(self):
        env, _ = self.make_env()
        state = env.reset()
        assert state.shape == (FEATURE_DIM,)

    def test_step_before_reset_rejected(self):
        from repro.common.errors import ConfigurationError

        env, _ = self.make_env()
        with pytest.raises(ConfigurationError):
            env.step(0)

    def test_episode_terminates(self):
        env, space = self.make_env()
        env.reset()
        steps = 0
        done = False
        while not done:
            outcome = env.step(space.noop_index)
            done = outcome.done
            steps += 1
        assert steps == env.steps_per_episode

    def test_noop_keeps_config(self):
        env, space = self.make_env()
        env.reset()
        before = env.client.current_config("WH")
        env.step(space.noop_index)
        assert env.client.current_config("WH") == before

    def test_action_changes_config(self):
        env, space = self.make_env()
        env.reset()
        idx = space.index(space.actions[0])  # downsize, suspend 60... whatever
        action = space.actions[idx]
        expected = space.apply(env.client.current_config("WH"), action)
        env.step(idx)
        assert env.client.current_config("WH") == expected

    def test_rewards_are_finite(self):
        env, space = self.make_env()
        env.reset()
        outcome = env.step(space.noop_index)
        assert np.isfinite(outcome.reward)
        assert outcome.credits >= 0.0

    def test_different_seeds_different_noise(self):
        env_a, space = self.make_env(seed=1)
        env_b, _ = self.make_env(seed=2)
        env_a.reset()
        env_b.reset()
        credits_a = sum(env_a.step(space.noop_index).credits for _ in range(6))
        credits_b = sum(env_b.step(space.noop_index).credits for _ in range(6))
        assert credits_a != credits_b


class TestOfflineTrainer:
    def test_training_runs_and_reports(self):
        records, model, config = history_from_sim()
        requests = reconstruct_workload(records, model)
        space = ActionSpace(config)
        env = WarehouseEnv(
            requests,
            config,
            WorkloadBaseline.fit(records),
            space,
            RewardConfig(),
            Window(0, 6 * HOUR),
            decision_interval=1200.0,
        )
        agent = DQNAgent(
            FEATURE_DIM, len(space), DQNConfig(warmup=16, batch_size=16), np.random.default_rng(0)
        )
        report = OfflineTrainer(agent, env).run(episodes=3)
        assert len(report.episodes) == 3
        assert all(e.steps == env.steps_per_episode for e in report.episodes)
        assert agent.train_steps > 0
        assert len(report.reward_curve) == 3
