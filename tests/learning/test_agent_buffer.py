"""Tests for the replay buffer and DQN agent."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.learning.agent import DQNAgent, DQNConfig
from repro.learning.buffer import ReplayBuffer, Transition


def transition(r: float = 1.0, a: int = 0, n_actions: int = 4) -> Transition:
    return Transition(
        state=np.zeros(3),
        action=a,
        reward=r,
        next_state=np.zeros(3),
        done=False,
        next_mask=np.ones(n_actions, dtype=bool),
    )


class TestReplayBuffer:
    def test_capacity_ring(self):
        buffer = ReplayBuffer(capacity=3)
        for i in range(5):
            buffer.add(transition(r=float(i)))
        assert len(buffer) == 3
        rewards = {t.reward for t in buffer._storage}
        assert rewards == {2.0, 3.0, 4.0}

    def test_sample_empty_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            ReplayBuffer().sample(4, rng)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            ReplayBuffer(0)

    def test_as_batches_shapes(self, rng):
        buffer = ReplayBuffer()
        for i in range(10):
            buffer.add(transition(a=i % 4))
        batch = buffer.sample(6, rng)
        states, actions, rewards, next_states, dones, masks = buffer.as_batches(batch)
        assert states.shape == (6, 3)
        assert actions.shape == (6,)
        assert masks.shape == (6, 4)
        assert dones.dtype == bool


class TestDQNAgent:
    def make_agent(self, **kw) -> DQNAgent:
        config = DQNConfig(warmup=8, batch_size=8, epsilon_decay_steps=10, **kw)
        return DQNAgent(3, 4, config, np.random.default_rng(0))

    def test_needs_two_actions(self):
        with pytest.raises(ConfigurationError):
            DQNAgent(3, 1)

    def test_masked_actions_never_selected(self):
        agent = self.make_agent()
        mask = np.array([False, True, False, False])
        for _ in range(50):
            assert agent.act(np.zeros(3), mask) == 1

    def test_empty_mask_rejected(self):
        agent = self.make_agent()
        with pytest.raises(ConfigurationError):
            agent.act(np.zeros(3), np.zeros(4, dtype=bool))

    def test_epsilon_decays(self):
        agent = self.make_agent()
        start = agent.epsilon
        for _ in range(20):
            agent.act(np.zeros(3), np.ones(4, dtype=bool))
        assert agent.epsilon < start
        assert agent.epsilon == pytest.approx(agent.config.epsilon_end)

    def test_greedy_respects_mask(self):
        agent = self.make_agent()
        q = agent.q_values(np.zeros(3))
        best = int(np.argmax(q))
        mask = np.ones(4, dtype=bool)
        mask[best] = False
        assert agent.greedy_action(np.zeros(3), mask) != best

    def test_observe_learns_after_warmup(self):
        agent = self.make_agent()
        losses = [agent.observe(transition()) for _ in range(20)]
        assert losses[0] is None  # warming up
        assert losses[-1] is not None

    def test_learning_moves_q_toward_reward(self):
        agent = self.make_agent()
        # Constant reward 5 on action 2, terminal transitions.
        for _ in range(400):
            agent.observe(
                Transition(
                    state=np.ones(3),
                    action=2,
                    reward=5.0,
                    next_state=np.ones(3),
                    done=True,
                    next_mask=np.ones(4, dtype=bool),
                )
            )
        q = agent.q_values(np.ones(3))
        assert q[2] == pytest.approx(5.0, abs=1.0)

    def test_target_sync(self):
        agent = self.make_agent(target_sync_every=5)
        for _ in range(60):
            agent.observe(transition())
        x = np.ones(3)
        assert np.allclose(agent.target.forward(x), agent.online.forward(x), atol=0.5)

    def test_snapshot_restore(self):
        agent = self.make_agent()
        for _ in range(30):
            agent.observe(transition())
        snapshot = agent.snapshot()
        q_before = agent.q_values(np.ones(3)).copy()
        for _ in range(30):
            agent.observe(transition(r=-10.0))
        agent.restore(snapshot)
        assert np.allclose(agent.q_values(np.ones(3)), q_before)

    def test_masked_next_state_bootstrap(self):
        """TD target must not bootstrap through masked next actions."""
        agent = self.make_agent()
        mask = np.zeros(4, dtype=bool)  # nothing admissible next
        for _ in range(200):
            agent.observe(
                Transition(
                    state=np.ones(3),
                    action=1,
                    reward=2.0,
                    next_state=np.ones(3) * 2,
                    done=False,
                    next_mask=mask,
                )
            )
        # With no admissible next action the target is just the reward.
        assert agent.q_values(np.ones(3))[1] == pytest.approx(2.0, abs=1.0)
