"""Integration: one KeeboService over several warehouses of one account.

§4.2: "we train a separate warehouse optimization model for each of the
customer's warehouses" — these tests pin down that the models, sliders and
constraints of concurrent optimizers are fully independent, and that
per-warehouse accounting stays separable.
"""

import pytest

from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, HOUR, Window
from repro.core.constraints import ConstraintRule, ConstraintSet
from repro.core.optimizer import KeeboService, OptimizerConfig
from repro.core.sliders import SliderPosition
from repro.warehouse.account import Account
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize
from repro.workloads.mixed import make_bi_workload, make_unpredictable_workload


def small_config():
    return OptimizerConfig(
        training_window=1 * DAY,
        onboarding_episodes=2,
        episode_length=12 * HOUR,
        retrain_episodes=0,
        confidence_tau=0.0,
    )


@pytest.fixture(scope="module")
def dual_service():
    account = Account(seed=301)
    account.create_warehouse(
        "ADHOC_WH",
        WarehouseConfig(size=WarehouseSize.L, auto_suspend_seconds=1800.0, max_clusters=3),
    )
    account.create_warehouse(
        "BI_WH",
        WarehouseConfig(size=WarehouseSize.M, auto_suspend_seconds=600.0, max_clusters=2),
    )
    horizon = 3 * DAY
    account.schedule_workload(
        "ADHOC_WH", make_unpredictable_workload(RngRegistry(302)).generate(Window(0, horizon))
    )
    account.schedule_workload(
        "BI_WH", make_bi_workload(RngRegistry(303)).generate(Window(0, horizon))
    )
    account.run_until(1 * DAY)
    service = KeeboService(account)
    service.onboard_warehouse("ADHOC_WH", slider=SliderPosition.LOWEST_COST, config=small_config())
    service.onboard_warehouse(
        "BI_WH",
        slider=SliderPosition.BEST_PERFORMANCE,
        constraints=ConstraintSet([ConstraintRule("keep-warm", min_auto_suspend=600.0)]),
        config=small_config(),
    )
    account.run_until(horizon)
    return account, service


class TestMultiWarehouse:
    def test_separate_models_per_warehouse(self, dual_service):
        account, service = dual_service
        a = service.optimizer("ADHOC_WH")
        b = service.optimizer("BI_WH")
        assert a.agent is not b.agent
        assert a.smart_model is not b.smart_model
        assert a.cost_model is not b.cost_model

    def test_both_loops_ran(self, dual_service):
        account, service = dual_service
        assert len(service.optimizer("ADHOC_WH").decisions) > 50
        assert len(service.optimizer("BI_WH").decisions) > 50

    def test_sliders_independent(self, dual_service):
        account, service = dual_service
        assert service.optimizer("ADHOC_WH").params.position == SliderPosition.LOWEST_COST
        assert service.optimizer("BI_WH").params.position == SliderPosition.BEST_PERFORMANCE

    def test_constraints_scoped_to_their_warehouse(self, dual_service):
        account, service = dual_service
        # BI_WH has a 600 s suspend floor; its Keebo changes must respect it.
        for snap in account.telemetry.config_history("BI_WH"):
            if snap.initiator == "keebo":
                assert snap.config.auto_suspend_seconds >= 600.0
        # ADHOC_WH has no such rule; the Lowest Cost optimizer is free to
        # suspend aggressively (and on this idle-heavy workload it does).
        adhoc_suspends = {
            snap.config.auto_suspend_seconds
            for snap in account.telemetry.config_history("ADHOC_WH")
            if snap.initiator == "keebo"
        }
        assert any(s < 600.0 for s in sorted(adhoc_suspends))

    def test_per_warehouse_invoices_sum(self, dual_service):
        account, service = dual_service
        window = Window(1 * DAY, 3 * DAY)
        invoices = service.invoices(window)
        assert [i.warehouse for i in invoices] == ["ADHOC_WH", "BI_WH"]
        total_fee = sum(i.fee_dollars for i in invoices)
        assert total_fee >= 0.0

    def test_telemetry_separation(self, dual_service):
        account, service = dual_service
        adhoc = account.telemetry.query_history("ADHOC_WH", Window(0, 3 * DAY))
        bi = account.telemetry.query_history("BI_WH", Window(0, 3 * DAY))
        assert {r.warehouse for r in adhoc} == {"ADHOC_WH"}
        assert {r.warehouse for r in bi} == {"BI_WH"}
        assert {r.query_id for r in adhoc}.isdisjoint({r.query_id for r in bi})

    def test_per_warehouse_metering_separable(self, dual_service):
        account, service = dual_service
        window = Window(0, 3 * DAY)
        a = account.warehouse("ADHOC_WH").meter.credits_in_window(window, as_of=account.sim.now)
        b = account.warehouse("BI_WH").meter.credits_in_window(window, as_of=account.sim.now)
        total = account.total_credits(window, include_overhead=False)
        assert total == pytest.approx(a + b)
