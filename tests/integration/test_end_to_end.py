"""End-to-end integration tests: the full product loop on one account.

These are the invariants the paper sells (§2's design criteria):

* C1 zero downside — on an idle-heavy workload KWO must reduce the bill;
* C4 performance first — p99 must not collapse while doing so;
* constraints are never violated by any applied action;
* determinism — the same seed reproduces the same run bit-for-bit.
"""

import pytest

from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, HOUR, Window
from repro.common.stats import percentile
from repro.core.constraints import ConstraintRule, ConstraintSet
from repro.core.optimizer import KeeboService, OptimizerConfig
from repro.core.sliders import SliderPosition
from repro.warehouse.account import Account
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize
from repro.workloads.mixed import make_unpredictable_workload


def run_scenario(seed=42, constraints=None, slider=SliderPosition.BALANCED, days=4):
    account = Account(seed=seed)
    account.create_warehouse(
        "WH",
        WarehouseConfig(size=WarehouseSize.L, auto_suspend_seconds=1800.0, max_clusters=3),
    )
    workload = make_unpredictable_workload(RngRegistry(seed + 1))
    account.schedule_workload("WH", workload.generate(Window(0, days * DAY)))
    half = days * DAY / 2
    account.run_until(half)
    service = KeeboService(account)
    optimizer = service.onboard_warehouse(
        "WH",
        slider=slider,
        constraints=constraints,
        config=OptimizerConfig(
            training_window=half,
            onboarding_episodes=4,
            episode_length=1 * DAY,
            retrain_episodes=0,
            confidence_tau=0.0,
        ),
    )
    account.run_until(days * DAY)
    return account, optimizer, half, days * DAY


class TestHeadlineBehaviour:
    def test_kwo_reduces_cost_on_idle_heavy_workload(self):
        account, optimizer, half, end = run_scenario()
        meter = account.warehouse("WH").meter
        pre = meter.credits_in_window(Window(0, half), as_of=end)
        post = meter.credits_in_window(Window(half, end), as_of=end)
        assert post < pre

    def test_p99_does_not_collapse(self):
        """Compare with-KWO against a no-KWO control on the *same* window —
        a pre/post comparison would be confounded by workload drift (spike
        days land in the measurement window)."""
        account, optimizer, half, end = run_scenario(seed=42)
        with_kwo = [
            r.total_seconds
            for r in account.telemetry.query_history("WH", Window(half, end))
        ]
        control = Account(seed=42)
        control.create_warehouse(
            "WH",
            WarehouseConfig(
                size=WarehouseSize.L, auto_suspend_seconds=1800.0, max_clusters=3
            ),
        )
        workload = make_unpredictable_workload(RngRegistry(43))
        control.schedule_workload("WH", workload.generate(Window(0, end)))
        control.run_until(end)
        without_kwo = [
            r.total_seconds
            for r in control.telemetry.query_history("WH", Window(half, end))
        ]
        assert percentile(with_kwo, 99) < 1.2 * percentile(without_kwo, 99)

    def test_every_query_is_served(self):
        account, optimizer, half, end = run_scenario()
        account.run_until(end + HOUR)  # drain stragglers
        warehouse = account.warehouse("WH")
        assert warehouse.queue_length == 0
        assert warehouse.running_query_count == 0

    def test_estimated_savings_positive(self):
        account, optimizer, half, end = run_scenario()
        estimate = optimizer.estimate_savings(Window(half, end))
        assert estimate.savings_credits > 0

    def test_overhead_negligible(self):
        account, optimizer, half, end = run_scenario()
        overhead = account.overhead.total_credits(Window(half, end))
        actual = account.warehouse("WH").meter.credits_in_window(
            Window(half, end), as_of=end
        )
        assert overhead < 0.05 * actual


class TestConstraintsRespected:
    def test_no_downsize_rule_always_honored(self):
        rules = ConstraintSet([ConstraintRule("nodown", allow_downsize=False)])
        account, optimizer, half, end = run_scenario(constraints=rules)
        for snap in account.telemetry.config_history("WH"):
            if snap.initiator == "keebo":
                assert snap.config.size >= WarehouseSize.L

    def test_size_floor_rule_honored(self):
        rules = ConstraintSet([ConstraintRule("floor", min_size=WarehouseSize.M)])
        account, optimizer, half, end = run_scenario(constraints=rules)
        for snap in account.telemetry.config_history("WH"):
            if snap.initiator == "keebo":
                assert snap.config.size >= WarehouseSize.M

    def test_suspend_floor_rule_honored(self):
        rules = ConstraintSet([ConstraintRule("warm", min_auto_suspend=300.0)])
        account, optimizer, half, end = run_scenario(constraints=rules)
        for snap in account.telemetry.config_history("WH"):
            if snap.initiator == "keebo":
                assert snap.config.auto_suspend_seconds >= 300.0


class TestDeterminism:
    def test_identical_seeds_identical_outcomes(self):
        a_account, a_opt, half, end = run_scenario(seed=77)
        b_account, b_opt, _, _ = run_scenario(seed=77)
        a_credits = a_account.warehouse("WH").meter.total_credits(end)
        b_credits = b_account.warehouse("WH").meter.total_credits(end)
        assert a_credits == b_credits
        a_kinds = [d.kind for d in a_opt.decisions]
        b_kinds = [d.kind for d in b_opt.decisions]
        assert a_kinds == b_kinds

    def test_different_seeds_differ(self):
        a_account, _, half, end = run_scenario(seed=77)
        b_account, _, _, _ = run_scenario(seed=78)
        assert a_account.warehouse("WH").meter.total_credits(end) != b_account.warehouse(
            "WH"
        ).meter.total_credits(end)


class TestSliderBehaviour:
    def test_lowest_cost_saves_at_least_as_much_as_best_performance(self):
        def post_credits(slider):
            account, optimizer, half, end = run_scenario(seed=90, slider=slider)
            return account.warehouse("WH").meter.credits_in_window(
                Window(half, end), as_of=end
            )

        cheap = post_credits(SliderPosition.LOWEST_COST)
        fast = post_credits(SliderPosition.BEST_PERFORMANCE)
        assert cheap <= fast
