"""Integration: smart-model persistence across service restarts."""

import pytest

from repro.common.simtime import DAY, HOUR
from repro.core.optimizer import KeeboService, OptimizerConfig, WarehouseOptimizer
from repro.core.registry import ModelRegistry

from tests.conftest import make_account, make_requests, make_template


def seeded_account(seed=27):
    account, wh = make_account(seed=seed)
    template = make_template("rg", base_work_seconds=10.0)
    account.schedule_workload(
        wh, make_requests(template, [10.0 + i * 400.0 for i in range(200)])
    )
    account.run_until(12 * HOUR)
    return account, wh


def config(**kw) -> OptimizerConfig:
    defaults = dict(
        training_window=12 * HOUR,
        onboarding_episodes=3,
        episode_length=6 * HOUR,
        retrain_episodes=1,
        confidence_tau=0.0,
    )
    defaults.update(kw)
    return OptimizerConfig(**defaults)


class TestRegistryLifecycle:
    def test_onboarding_saves_checkpoint(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=config(), registry=registry)
        optimizer.onboard()
        info = registry.info(account.name, wh)
        assert info is not None
        assert info.train_steps == optimizer.agent.train_steps

    def test_restart_restores_instead_of_retraining(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        account, wh = seeded_account()
        first = WarehouseOptimizer(account, wh, config=config(), registry=registry)
        first.onboard()
        first.shutdown()
        first_episodes = len(first.training_reports[0].episodes)
        assert first_episodes == 3  # full onboarding run

        # "Service restart": a new optimizer over the same account/registry.
        second = WarehouseOptimizer(account, wh, config=config(), registry=registry)
        second.onboard()
        second.shutdown()
        # Restored checkpoint -> only the fine-tune episode count runs.
        assert len(second.training_reports[0].episodes) == 1
        # Weights continued from the checkpoint (training steps accumulated).
        assert second.agent.train_steps >= first.agent.train_steps

    def test_service_plumbs_registry(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        account, wh = seeded_account()
        service = KeeboService(account, registry=registry)
        service.onboard_warehouse(wh, config=config())
        assert registry.warehouses(account.name) == [wh]

    def test_incompatible_checkpoint_falls_back_to_training(self, tmp_path):
        import numpy as np

        from repro.learning.agent import DQNAgent, DQNConfig

        registry = ModelRegistry(tmp_path)
        account, wh = seeded_account()
        # Plant a checkpoint with alien shapes under this warehouse's key.
        alien = DQNAgent(3, 2, DQNConfig(), np.random.default_rng(0))
        registry.save(account.name, wh, alien)
        optimizer = WarehouseOptimizer(account, wh, config=config(), registry=registry)
        optimizer.onboard()
        # Fell back to a full onboarding run and overwrote the checkpoint.
        assert len(optimizer.training_reports[0].episodes) == 3
        info = registry.info(account.name, wh)
        assert info.state_dim == optimizer.agent.online.input_dim

    def test_no_registry_still_works(self):
        account, wh = seeded_account()
        optimizer = WarehouseOptimizer(account, wh, config=config())
        optimizer.onboard()
        assert optimizer.onboarded
