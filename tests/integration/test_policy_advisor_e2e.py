"""Integration: the scaling-policy advisor inside the live optimizer loop."""

import pytest

from repro.common.simtime import DAY, HOUR, Window
from repro.core.optimizer import OptimizerConfig, WarehouseOptimizer
from repro.core.sliders import SliderPosition
from repro.warehouse.types import ScalingPolicy

from tests.conftest import make_account, make_requests, make_template


def run_with_slider(slider: SliderPosition, initial_policy: ScalingPolicy):
    """Multi-cluster warehouse with smooth no-queue traffic, KWO attached."""
    account, wh = make_account(
        seed=51,
        max_clusters=3,
        auto_suspend_seconds=600.0,
        scaling_policy=initial_policy,
    )
    template = make_template("pa", base_work_seconds=5.0, n_partitions=2)
    times = [10.0 + i * 300.0 for i in range(int(2 * DAY / 300.0))]
    account.schedule_workload(wh, make_requests(template, times))
    account.run_until(1 * DAY)
    optimizer = WarehouseOptimizer(
        account,
        wh,
        slider=slider,
        config=OptimizerConfig(
            training_window=1 * DAY,
            onboarding_episodes=1,
            episode_length=12 * HOUR,
            retrain_episodes=0,
            confidence_tau=0.0,
        ),
    )
    optimizer.onboard()
    account.run_until(2 * DAY)
    return account, wh, optimizer


class TestPolicyAdvisorEndToEnd:
    def test_cost_slider_moves_quiet_warehouse_to_economy(self):
        account, wh, optimizer = run_with_slider(
            SliderPosition.LOWEST_COST, ScalingPolicy.STANDARD
        )
        assert account.warehouse(wh).config.scaling_policy == ScalingPolicy.ECONOMY
        flips = [
            a
            for a in optimizer.actuator.actions_taken()
            if "policy advisor" in a.reason
        ]
        assert len(flips) >= 1

    def test_performance_slider_restores_standard(self):
        account, wh, optimizer = run_with_slider(
            SliderPosition.BEST_PERFORMANCE, ScalingPolicy.ECONOMY
        )
        assert account.warehouse(wh).config.scaling_policy == ScalingPolicy.STANDARD

    def test_policy_changes_recorded_in_telemetry(self):
        account, wh, optimizer = run_with_slider(
            SliderPosition.LOWEST_COST, ScalingPolicy.STANDARD
        )
        alters = account.telemetry.warehouse_events(wh, kind="alter")
        keebo_policy_changes = [
            e
            for e in alters
            if e.initiator == "keebo" and "scaling_policy" in e.detail.get("changes", {})
        ]
        assert len(keebo_policy_changes) >= 1
