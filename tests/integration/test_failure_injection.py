"""Failure injection: the optimizer must degrade gracefully, never crash.

§4.5: the actuator "keeps a record of all actions taken and reports any
errors it encounters."  These tests inject vendor-API failures and verify
the loop survives, logs the error, and keeps optimizing.
"""

import pytest

from repro.common.errors import WarehouseError
from repro.common.simtime import DAY, HOUR, Window
from repro.core.actuator import Actuator
from repro.core.monitoring import Monitor
from repro.core.optimizer import OptimizerConfig, WarehouseOptimizer
from repro.learning.features import WorkloadBaseline
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.types import WarehouseSize

from tests.conftest import drive, make_account, make_requests, make_template


class FlakyClient(CloudWarehouseClient):
    """A client whose ALTER WAREHOUSE fails on demand."""

    def __init__(self, account, fail_next: int = 0):
        super().__init__(account, actor="keebo")
        self.fail_next = fail_next
        self.failures_injected = 0

    def alter_warehouse(self, name, **changes):
        if self.fail_next > 0:
            self.fail_next -= 1
            self.failures_injected += 1
            raise WarehouseError("injected: transient vendor API failure")
        return super().alter_warehouse(name, **changes)


class TestActuatorFailureHandling:
    def build(self):
        account, wh = make_account()
        client = FlakyClient(account)
        monitor = Monitor(client, wh, WorkloadBaseline())
        return account, wh, client, Actuator(client, wh, monitor)

    def test_failure_logged_not_raised(self):
        account, wh, client, actuator = self.build()
        client.fail_next = 1
        target = client.current_config(wh).with_changes(size=WarehouseSize.L)
        entry = actuator.apply(target, reason="test")
        assert not entry.succeeded
        assert "injected" in entry.error
        assert actuator.errors == 1
        # The warehouse is untouched.
        assert client.current_config(wh).size != WarehouseSize.L

    def test_recovers_after_failure(self):
        account, wh, client, actuator = self.build()
        client.fail_next = 1
        target = client.current_config(wh).with_changes(size=WarehouseSize.L)
        actuator.apply(target, reason="first (fails)")
        entry = actuator.apply(target, reason="second (succeeds)")
        assert entry.succeeded
        assert client.current_config(wh).size == WarehouseSize.L

    def test_failed_actions_excluded_from_actions_taken(self):
        account, wh, client, actuator = self.build()
        client.fail_next = 1
        target = client.current_config(wh).with_changes(size=WarehouseSize.M)
        actuator.apply(target, reason="fails")
        assert actuator.actions_taken() == []


class TestOptimizerSurvivesFlakyVendor:
    def test_loop_continues_through_failures(self):
        account, wh = make_account(seed=44, size=WarehouseSize.M, auto_suspend_seconds=900.0)
        template = make_template("fi", base_work_seconds=10.0)
        drive(
            account, wh, make_requests(template, [10.0 + i * 400.0 for i in range(250)]), DAY
        )
        optimizer = WarehouseOptimizer(
            account,
            wh,
            config=OptimizerConfig(
                training_window=1 * DAY,
                onboarding_episodes=1,
                episode_length=12 * HOUR,
                retrain_episodes=0,
                confidence_tau=0.0,
            ),
        )
        optimizer.onboard()
        # Swap the optimizer's client surface for a flaky one mid-flight.
        flaky = FlakyClient(account, fail_next=5)
        optimizer.actuator.client = flaky
        account.run_until(DAY + 6 * HOUR)
        # Decisions kept flowing; some actuations failed; none crashed.
        assert len(optimizer.decisions) > 20
        if flaky.failures_injected:
            assert optimizer.actuator.errors == flaky.failures_injected
        # Post-failure the optimizer still applies successful changes.
        assert any(a.succeeded and a.changed for a in optimizer.actuator.log)
