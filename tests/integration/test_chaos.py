"""End-to-end chaos runs: the acceptance criteria of docs/ROBUSTNESS.md.

A chaos scenario with ambient API failures plus a telemetry blackout must
(1) complete without an unhandled exception, (2) enter and exit SAFE_MODE
visibly (alert.fire / alert.resolve in the trace), (3) land within the
documented savings tolerance of the fault-free run, and (4) be byte-
identical when repeated under the same seed.
"""

import pytest

from repro import obs
from repro.experiments.runner import run_before_after, run_chaos
from repro.experiments.scenarios import (
    CHAOS_SCENARIOS,
    chaos_smoke_scenario,
    flaky_api_scenario,
    smoke_scenario,
    telemetry_blackout_scenario,
)

#: Maximum |savings delta| vs the fault-free twin (docs/ROBUSTNESS.md).
SAVINGS_TOLERANCE = 0.25


def traced_chaos(builder):
    scenario = builder()
    with obs.observed(manifest=scenario.manifest()) as rec:
        chaos, optimizer = run_chaos(scenario)
    return chaos, optimizer, rec


class TestChaosSmoke:
    def test_completes_and_the_loop_reacts(self):
        chaos, optimizer, _ = traced_chaos(chaos_smoke_scenario)
        # The plan fired: ambient API errors plus the telemetry blackout.
        assert chaos.injected.get("api_error", 0) > 0
        assert chaos.injected.get("telemetry_gap", 0) > 0
        assert chaos.injected_total == sum(chaos.injected.values())
        # The control loop noticed and absorbed them.
        assert chaos.observed["telemetry_failures"] > 0
        assert chaos.observed["safe_mode_entries"] >= 1
        assert chaos.observed["safe_mode_ticks"] >= chaos.observed["safe_mode_entries"]
        assert not optimizer.safe_mode  # recovered by the end of the run

    def test_safe_mode_alert_fires_and_resolves(self):
        chaos, optimizer, rec = traced_chaos(chaos_smoke_scenario)
        name = f"optimizer.safe_mode.{optimizer.warehouse.lower()}"
        lifecycle = [
            r
            for r in rec.sink.records
            if r.get("type") == "event"
            and r.get("name") in ("alert.fire", "alert.resolve")
            and r["attrs"].get("alert") == name
        ]
        assert lifecycle, "SAFE_MODE never surfaced as an alert"
        assert lifecycle[0]["name"] == "alert.fire"
        assert lifecycle[-1]["name"] == "alert.resolve"
        assert not rec.alerts.is_active(name)

    def test_savings_within_tolerance_of_fault_free_run(self):
        chaos, _, _ = traced_chaos(chaos_smoke_scenario)
        fault_free, _ = run_before_after(smoke_scenario(seed=131))
        delta = chaos.savings_fraction - fault_free.savings_fraction
        assert abs(delta) <= SAVINGS_TOLERANCE

    def test_repeated_seed_is_byte_identical(self, tmp_path):
        for run in ("a", "b"):
            _, _, rec = traced_chaos(chaos_smoke_scenario)
            rec.sink.dump(tmp_path / f"{run}.jsonl")
            (tmp_path / f"{run}.metrics.json").write_text(rec.metrics.to_json())
            (tmp_path / f"{run}.series.json").write_text(rec.series.to_json())
            (tmp_path / f"{run}.alerts.json").write_text(rec.alerts.to_json())
        for suffix in (".jsonl", ".metrics.json", ".series.json", ".alerts.json"):
            a = (tmp_path / f"a{suffix}").read_bytes()
            b = (tmp_path / f"b{suffix}").read_bytes()
            assert a == b, f"{suffix} diverged across same-seed chaos runs"


class TestOtherChaosScenarios:
    def test_flaky_api_exercises_the_hardened_write_path(self):
        chaos, optimizer, _ = traced_chaos(flaky_api_scenario)
        assert chaos.injected_total > 0
        assert chaos.observed["actuator_errors"] > 0
        # Telemetry stays healthy, so flakiness alone must not trip SAFE_MODE.
        assert chaos.observed["telemetry_failures"] == 0
        assert not optimizer.safe_mode

    def test_telemetry_blackout_rides_through_safe_mode(self):
        chaos, optimizer, _ = traced_chaos(telemetry_blackout_scenario)
        assert chaos.observed["safe_mode_entries"] >= 1
        assert chaos.observed["telemetry_failures"] > 0
        assert not optimizer.safe_mode

    def test_registry_lists_every_builder(self):
        assert set(CHAOS_SCENARIOS) == {
            "chaos_smoke",
            "flaky_api",
            "telemetry_blackout",
        }

    def test_run_chaos_requires_a_fault_plan(self):
        with pytest.raises(ValueError):
            run_chaos(smoke_scenario())
