"""Durability overhead: checkpoint/restore cost next to the run it protects.

ISSUE 9's tentpole adds cadenced checkpoints to the control plane; this
bench records what that durability costs and what a restore buys:

* **checkpoint overhead** — the same smoke scenario runs with and without
  checkpoints enabled; the delta is the journal's all-in cost (state
  capture, framing, fsync), reported per checkpoint;
* **restore latency** — one crash + restore at the final boundary, timed
  alone: the pause a recovering control plane actually takes, with no
  retraining and no vendor calls;
* **artifact size** — snapshot + journal bytes at end of run, the durable
  footprint per warehouse.

All wall-clock numbers are recorded, not gated (machine-dependent); the
deterministic claim — restored state equals pre-crash state — is asserted
here as well, so the bench doubles as an end-to-end smoke of the
recovery path at whatever scale it runs.
"""

import timeit

from repro.core.optimizer import KeeboService
from repro.durability.checkpoint import CheckpointStore
from repro.experiments.scenarios import smoke_scenario

from benchmarks.conftest import record_result, run_once

CADENCE_SECONDS = 2 * 3600.0


def _run_smoke(checkpoint_dir=None):
    """The CLI `durability checkpoint` drive, returning (service, manifest)."""
    scenario = smoke_scenario()
    manifest = scenario.manifest()
    scenario.schedule()
    account = scenario.account
    account.run_until(scenario.keebo_start)
    service = KeeboService(account)
    service.onboard_warehouse(
        scenario.warehouse,
        slider=scenario.slider,
        constraints=scenario.constraints,
        config=scenario.optimizer_config,
    )
    if checkpoint_dir is not None:
        service.enable_checkpoints(
            checkpoint_dir, CADENCE_SECONDS, config_hash=manifest.config_hash
        )
    account.run_until(scenario.horizon)
    return scenario, manifest, service


def test_checkpoint_overhead_and_restore(benchmark, tmp_path):
    directory = tmp_path / "ckpt"

    def protocol():
        plain_seconds = timeit.default_timer()
        _run_smoke()
        plain_seconds = timeit.default_timer() - plain_seconds

        durable_seconds = timeit.default_timer()
        scenario, manifest, service = _run_smoke(directory)
        durable_seconds = timeit.default_timer() - durable_seconds

        # Crash/restore at the end of the run, timed alone.
        service.checkpoint()
        before = service._capture_state()
        service.crash()
        restore_seconds = timeit.default_timer()
        service.restore(
            directory,
            slider=scenario.slider,
            constraints=scenario.constraints,
            optimizer_config=scenario.optimizer_config,
            config_hash=manifest.config_hash,
        )
        restore_seconds = timeit.default_timer() - restore_seconds
        assert service._capture_state() == before  # the deterministic claim

        store = CheckpointStore(directory)
        report = store.verify()
        assert report["ok"], report["errors"]
        checkpoints = report["snapshot_seq"] + report["journal_entries"] + 1
        return {
            "seconds_plain_run": round(plain_seconds, 4),
            "seconds_durable_run": round(durable_seconds, 4),
            "seconds_restore": round(restore_seconds, 4),
            "checkpoints_taken": checkpoints,
            "overhead_ms_per_checkpoint": round(
                max(0.0, durable_seconds - plain_seconds) * 1000.0 / checkpoints, 3
            ),
            "snapshot_bytes": store.snapshot_path.stat().st_size,
            "journal_bytes": store.journal_path.stat().st_size,
        }

    data = run_once(benchmark, protocol)
    lines = [f"{key:>28}: {value}" for key, value in data.items()]
    record_result("checkpoint_overhead", "\n".join(lines), data=data)
