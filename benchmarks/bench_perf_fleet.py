"""Perf gate: process-parallel fleet runs vs serial, with identical output.

``run_fleet(workers=N)`` fans the §7.1 before/after protocol out to worker
processes via ``repro.parallel`` (docs/PERFORMANCE.md).  This bench runs
the same fleet serially and in parallel, asserts the results are equal,
and records both wall times.  The ≥2x speedup floor is asserted only on
machines with at least 4 usable cores — scenario simulations are CPU-bound,
so on a 1-core container the parallel run is legitimately no faster, and
the recorded numbers say so honestly (``cores`` travels with the result).

Scale comes from ``REPRO_PERF_SCALE``: ``full`` (default, 8 scenarios,
4 workers) or ``smoke`` (3 scenarios, 2 workers for CI).
"""

import os
import timeit

from repro.experiments.runner import run_fleet
from repro.experiments.scenarios import fleet_scenarios

from benchmarks.conftest import record_result, run_once

SCALE = os.environ.get("REPRO_PERF_SCALE", "full")
N_CUSTOMERS = {"full": 8, "smoke": 3}[SCALE]
WORKERS = {"full": 4, "smoke": 2}[SCALE]
SPEEDUP_FLOOR = 2.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def test_perf_fleet(benchmark):
    cores = _usable_cores()
    results = {}

    def compare():
        t_serial = timeit.timeit(
            lambda: results.__setitem__(
                "serial",
                run_fleet(fleet_scenarios(n_customers=N_CUSTOMERS, seed=900), workers=0),
            ),
            number=1,
        )
        t_parallel = timeit.timeit(
            lambda: results.__setitem__(
                "parallel",
                run_fleet(
                    fleet_scenarios(n_customers=N_CUSTOMERS, seed=900),
                    workers=WORKERS,
                ),
            ),
            number=1,
        )
        return t_serial, t_parallel

    t_serial, t_parallel = run_once(benchmark, compare)
    # Parallelism must never change the answer (the whole point of
    # repro.parallel); tests/experiments/test_parallel.py holds the same
    # equality down to the observability exports.
    assert results["parallel"] == results["serial"]

    speedup = t_serial / t_parallel
    gated = cores >= WORKERS
    lo, hi = results["serial"].savings_range
    record_result(
        "perf_fleet",
        f"fleet of {N_CUSTOMERS} scenarios ({SCALE} scale, "
        f"{WORKERS} workers, {cores} usable cores):\n"
        f"  serial:   {t_serial:8.2f} s\n"
        f"  parallel: {t_parallel:8.2f} s\n"
        f"  speedup:  {speedup:8.2f}x"
        + ("" if gated else "   (not gated: fewer cores than workers)")
        + f"\n  savings range: {lo:.1%} .. {hi:.1%}",
        data={
            "n_customers": N_CUSTOMERS,
            "workers": WORKERS,
            "cores": cores,
            "seconds_serial": t_serial,
            "seconds_parallel": t_parallel,
            "speedup": speedup,
            "savings_lo": lo,
            "savings_hi": hi,
        },
    )
    if gated and SCALE == "full":
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel fleet only {speedup:.2f}x faster on {cores} cores "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
