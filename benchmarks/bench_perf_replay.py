"""Perf gate: vectorized replay kernels vs the scalar reference loops.

``QueryReplay`` is the smart model's inner loop — thousands of what-if
replays per optimization run (§5) — so its counterfactual timeline,
activation-burst and billing kernels were rewritten as NumPy array code
(``repro.costmodel.kernels``).  The scalar loops remain as the bit-exact
reference (tests/props/test_replay_kernels.py proves the equivalence);
this bench proves the rewrite is actually *fast*, holding the vectorized
path to a ≥5x speedup on a 10k-query window at full scale.

Scale comes from ``REPRO_PERF_SCALE``: ``full`` (default, 10k queries,
gated) or ``smoke`` (1k queries for CI, numbers recorded but the speedup
floor is not asserted — tiny windows under-use the kernels).
"""

import os
import timeit

from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, Window
from repro.costmodel.clusters import ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import LatencyScalingModel
from repro.costmodel.replay import QueryReplay
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

from benchmarks.conftest import record_result, run_once

SCALE = os.environ.get("REPRO_PERF_SCALE", "full")
N_QUERIES = {"full": 10_000, "smoke": 1_000}[SCALE]
REPS = {"full": 5, "smoke": 3}[SCALE]
SPEEDUP_FLOOR = 5.0

_SIZES = (WarehouseSize.S, WarehouseSize.M, WarehouseSize.L)


def synthetic_records(n: int, days: float = 5.0) -> list[QueryRecord]:
    """A bursty multi-template history spanning ``days`` of sim time."""
    rng = RngRegistry(seed=20260806).stream("bench.perf_replay")
    gaps = rng.exponential(days * DAY / n, size=n)
    arrivals = gaps.cumsum()
    durations = rng.lognormal(mean=2.0, sigma=1.0, size=n)
    templates = rng.integers(0, 10, size=n)
    sizes = rng.integers(0, len(_SIZES), size=n)
    cache_hits = rng.uniform(0.0, 1.0, size=n)
    chained = rng.uniform(0.0, 1.0, size=n) < 0.1
    records = []
    for i in range(n):
        arrival = float(arrivals[i])
        duration = float(durations[i])
        records.append(
            QueryRecord(
                query_id=i,
                warehouse="PERF_WH",
                text_hash=f"q{i}",
                template_hash=f"t{int(templates[i])}",
                arrival_time=arrival,
                start_time=arrival,
                end_time=arrival + duration,
                execution_seconds=duration,
                warehouse_size=_SIZES[int(sizes[i])],
                cache_hit_ratio=float(cache_hits[i]),
                cluster_number=1,
                chained=bool(chained[i]),
                completed=True,
            )
        )
    return records


def fitted_replay(records: list[QueryRecord], vectorized: bool) -> QueryReplay:
    config = WarehouseConfig(size=WarehouseSize.M, auto_suspend_seconds=300.0)
    return QueryReplay(
        LatencyScalingModel().fit(records),
        GapModel().fit(records),
        ClusterCountPredictor().fit(records, config),
        vectorized=vectorized,
    )


def test_perf_replay(benchmark):
    records = synthetic_records(N_QUERIES)
    window = Window(0.0, 6.0 * DAY)
    config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=120.0)
    vectorized = fitted_replay(records, vectorized=True)
    scalar = fitted_replay(records, vectorized=False)

    # The two paths must agree bit for bit before either is worth timing.
    assert vectorized.replay(records, config, window) == scalar.replay(
        records, config, window
    )

    def compare():
        t_vec = timeit.timeit(
            lambda: vectorized.replay(records, config, window), number=REPS
        )
        t_sca = timeit.timeit(
            lambda: scalar.replay(records, config, window), number=REPS
        )
        return t_vec, t_sca

    t_vec, t_sca = run_once(benchmark, compare)
    speedup = t_sca / t_vec
    record_result(
        "perf_replay",
        f"replay of {N_QUERIES} queries ({SCALE} scale, {REPS} reps):\n"
        f"  vectorized: {t_vec / REPS * 1e3:8.2f} ms/replay\n"
        f"  scalar:     {t_sca / REPS * 1e3:8.2f} ms/replay\n"
        f"  speedup:    {speedup:8.2f}x",
        data={
            "n_queries": N_QUERIES,
            "reps": REPS,
            "seconds_vectorized": t_vec,
            "seconds_scalar": t_sca,
            "speedup": speedup,
        },
    )
    if SCALE == "full":
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized replay only {speedup:.1f}x faster than scalar "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
