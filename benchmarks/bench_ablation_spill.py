"""Ablation (§5.2/§4.4): super-linear downsizing and the spill signal.

§5.2 warns that when downsizing, "the latency may grow super-linearly for
some queries" — in practice because the working set stops fitting in memory
and the engine spills.  The cost model's log-linear latency scaling cannot
fully anticipate that knee, so guardrails alone under-predict the damage of
downsizing past it; the *monitor* must catch it from live telemetry (the
``bytes_spilled`` column) and back off.

Protocol: a *mixed* workload on an over-provisioned Large warehouse — mostly
light queries that barely benefit from size (scale exponent ~0.15), plus a
minority of memory-bound joins whose working set fits at Medium and whose
latency quintuples per step below it.  The light majority drags the pooled
gamma estimate down, so the cost model predicts downsizing is nearly free —
for the joins, it is wrong.  Two KWO runs at the cost-leaning Low Cost
slider: one with the spill-triggered back-off enabled (default) and one
with the monitor blinded to spilling.  The blinded run parks below the knee
and lets the joins grind; the monitored run sees bytes_spilled in telemetry
and self-corrects.
"""

import numpy as np

from repro.common.rng import fallback_rng
from repro.common.simtime import DAY, HOUR, Window
from repro.common.stats import percentile
from repro.core.optimizer import KeeboService, OptimizerConfig
from repro.warehouse.account import Account
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRequest, QueryTemplate
from repro.warehouse.types import WarehouseSize

from benchmarks.conftest import record_result, run_once

ONBOARD_AT = 2 * DAY
TOTAL = 5 * DAY


def _workload():
    joins = [
        QueryTemplate(
            name=f"join{i}",
            base_work_seconds=12.0 + 2.0 * i,
            scale_exponent=0.95,
            partitions=tuple(f"j{i}.p{k}" for k in range(4)),
            cold_multiplier=1.3,
            min_memory_size=WarehouseSize.M,
            spill_multiplier=3.0,
        )
        for i in range(4)
    ]
    light = [
        QueryTemplate(
            name=f"light{i}",
            base_work_seconds=6.0 + i,
            scale_exponent=0.15,  # barely speeds up with size
            partitions=tuple(f"l{i}.p{k}" for k in range(2)),
            cold_multiplier=1.5,
        )
        for i in range(8)
    ]
    rng = fallback_rng(321)
    requests = []
    t = 0.0
    while t < TOTAL:
        t += float(rng.exponential(150.0))
        if rng.random() < 0.1:
            template = joins[int(rng.integers(0, len(joins)))]
        else:
            template = light[int(rng.integers(0, len(light)))]
        requests.append(QueryRequest(template, t, instance_key=f"{t:.0f}"))
    return requests


class _BlindedFeedback:
    """Wraps a monitor so its feedback reports no spilling."""

    def __init__(self, monitor):
        self._monitor = monitor

    def __getattr__(self, name):
        return getattr(self._monitor, name)

    def snapshot(self, now):
        import dataclasses

        return dataclasses.replace(self._monitor.snapshot(now), spill_fraction=0.0)


def _run(spill_monitoring: bool):
    account = Account(seed=322)
    account.create_warehouse(
        "WH",
        WarehouseConfig(size=WarehouseSize.L, auto_suspend_seconds=1800.0, max_clusters=2),
    )
    account.schedule_workload("WH", _workload())
    # Pre-Keebo history includes a customer size experiment (a realistic
    # "try Medium for a day" episode) so the latency model has cross-size
    # evidence: the light queries' indifference to size is learnable.
    account.sim.schedule(1 * DAY, lambda: account.warehouse("WH").alter(size=WarehouseSize.M))
    account.sim.schedule(
        int(1.5 * DAY), lambda: account.warehouse("WH").alter(size=WarehouseSize.L)
    )
    account.run_until(ONBOARD_AT)
    service = KeeboService(account)
    from repro.core.sliders import SliderPosition

    optimizer = service.onboard_warehouse(
        "WH",
        slider=SliderPosition.LOWEST_COST,
        config=OptimizerConfig(
            training_window=2 * DAY,
            onboarding_episodes=4,
            episode_length=1 * DAY,
            retrain_episodes=0,
            confidence_tau=0.0,
        ),
    )
    if not spill_monitoring:
        optimizer.monitor = _BlindedFeedback(optimizer.monitor)
    account.run_until(TOTAL)
    window = Window(ONBOARD_AT, TOTAL)
    records = account.telemetry.query_history("WH", window)
    latencies = [r.total_seconds for r in records]
    spilled = sum(1 for r in records if r.bytes_spilled > 0)
    return {
        "credits": account.warehouse("WH").meter.credits_in_window(
            window, as_of=account.sim.now
        ),
        "avg": float(np.mean(latencies)),
        "p99": percentile(latencies, 99),
        "spill_share": spilled / len(records),
        "backoffs": optimizer.decision_counts().get("backoff", 0),
    }


def test_spill_signal_prevents_grinding(benchmark):
    def both():
        return _run(spill_monitoring=True), _run(spill_monitoring=False)

    monitored, blind = run_once(benchmark, both)
    lines = [
        f"{'variant':>16} {'credits':>9} {'avg lat':>8} {'p99':>8} {'spilled q':>10} {'backoffs':>9}",
        f"{'spill-monitored':>16} {monitored['credits']:>9.1f} {monitored['avg']:>7.2f}s "
        f"{monitored['p99']:>7.1f}s {monitored['spill_share']:>9.1%} {monitored['backoffs']:>9}",
        f"{'blinded':>16} {blind['credits']:>9.1f} {blind['avg']:>7.2f}s "
        f"{blind['p99']:>7.1f}s {blind['spill_share']:>9.1%} {blind['backoffs']:>9}",
    ]
    record_result("ablation_spill", "\n".join(lines))

    # The monitored run keeps the spill share low by backing off...
    assert monitored["spill_share"] < blind["spill_share"]
    # ...which protects latency relative to the blinded run.
    assert monitored["avg"] <= blind["avg"] * 1.05
    # And the protection is the documented mechanism, not an accident.
    assert monitored["backoffs"] > 0
