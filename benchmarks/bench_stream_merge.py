"""Perf gate: streamed chunk merge vs monolithic payload merge.

ISSUE 8's tentpole converts the obs pipeline from collect-then-merge
(every worker payload alive in the parent at once) to a chunk stream over
spill-bounded sinks.  This bench proves the conversion's two claims at
fleet width:

* **bounded memory** — the streamed path's Python allocation peak
  (``tracemalloc``) must be *strictly below* the monolithic path's at the
  same width, because it never holds more than one chunk plus a bounded
  sink tail (asserted here, not just recorded);
* **same bytes** — both paths dump byte-identical merged traces (the
  determinism contract survives the transport change).

Wall-time (``seconds_*`` / ``*_wall_second_*`` leaves) is gated loosely
like every other wall-clock number; the record counts and the memory
ordering are deterministic claims.  Scale via ``REPRO_PERF_SCALE``:
``full`` (default, 100 worker sessions) or ``smoke`` (12 for CI).
"""

import json
import os
import timeit
import tracemalloc

from repro.obs import Recorder
from repro.obs.stream import PayloadChunkMerger, SpillingTraceSink, payload_chunks

from benchmarks.conftest import record_result, run_once

SCALE = os.environ.get("REPRO_PERF_SCALE", "full")
WIDTH = {"full": 100, "smoke": 12}[SCALE]  # worker sessions (fleet width)
TICKS = 40  # spans-with-children per session
CHUNK_EVENTS = 48  # < records/session, so every session streams multiple chunks
SPILL_RECORDS = 64  # < records/session, so worker sinks really spill


def _build_session(index: int, sink=None) -> Recorder:
    """One worker's session: deterministic arithmetic, no RNG, no clocks."""
    rec = Recorder(sink=sink)
    for tick in range(TICKS):
        t = tick * 900.0
        with rec.span("bench.tick", t) as outer:
            outer.set(worker=index, tick=tick)
            with rec.span("bench.replay", t + 5.0) as inner:
                inner.set_end(t + 30.0)
                rec.emit("bench.done", t + 30.0, worker=index)
            outer.set_end(t + 60.0)
        rec.counter("repro.bench.ticks").inc()
    return rec


def _merge_monolithic(tmp_path):
    """Collect-then-merge: every worker payload alive at once."""
    parent = Recorder()
    payloads = [_build_session(i).to_payload() for i in range(WIDTH)]
    t0 = timeit.default_timer()
    for payload in payloads:
        parent.merge_payload(payload)
    merge_seconds = timeit.default_timer() - t0
    out = tmp_path / "monolithic.jsonl"
    parent.sink.dump(out)
    return out, merge_seconds, len(parent.sink)


def _merge_streamed(tmp_path):
    """Chunk stream: spill-bounded worker sinks, spooled chunks, bounded parent."""
    spool = tmp_path / "spool.chunks.jsonl"
    with open(spool, "w", encoding="utf-8") as fh:
        for i in range(WIDTH):
            sink = SpillingTraceSink(
                tmp_path / f"spill-{i:03d}", max_records=SPILL_RECORDS
            )
            session = _build_session(i, sink=sink)
            for chunk in payload_chunks(session, max_events=CHUNK_EVENTS):
                fh.write(
                    json.dumps(chunk, sort_keys=True, separators=(",", ":")) + "\n"
                )
            sink.cleanup()
    parent = Recorder(
        sink=SpillingTraceSink(tmp_path / "parent", max_records=SPILL_RECORDS)
    )
    merger = PayloadChunkMerger(parent)
    n_chunks = 0
    t0 = timeit.default_timer()
    with open(spool, encoding="utf-8") as fh:
        for line in fh:
            if merger.finished:
                merger = PayloadChunkMerger(parent)
            merger.merge(json.loads(line))
            n_chunks += 1
    merge_seconds = timeit.default_timer() - t0
    out = tmp_path / "streamed.jsonl"
    parent.sink.dump(out)
    return out, merge_seconds, len(parent.sink), n_chunks


def test_stream_merge(benchmark, tmp_path):
    def workload():
        tracemalloc.start()
        streamed_out, streamed_seconds, streamed_rows, n_chunks = _merge_streamed(
            tmp_path
        )
        _, streamed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        mono_out, mono_seconds, mono_rows = _merge_monolithic(tmp_path)
        _, mono_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return (
            streamed_out, streamed_seconds, streamed_rows, n_chunks,
            streamed_peak, mono_out, mono_seconds, mono_rows, mono_peak,
        )

    (
        streamed_out, streamed_seconds, streamed_rows, n_chunks,
        streamed_peak, mono_out, mono_seconds, mono_rows, mono_peak,
    ) = run_once(benchmark, workload)

    streamed_bytes = streamed_out.read_bytes()
    mono_bytes = mono_out.read_bytes()
    record_result(
        "stream_merge",
        f"stream vs monolithic merge ({SCALE} scale, {WIDTH} sessions x "
        f"{TICKS} ticks):\n"
        f"  rows merged:     {streamed_rows:8d}  ({n_chunks} chunks)\n"
        f"  streamed merge:  {streamed_seconds * 1e3:8.2f} ms  "
        f"peak {streamed_peak / 1024:10.1f} KiB\n"
        f"  monolithic merge:{mono_seconds * 1e3:8.2f} ms  "
        f"peak {mono_peak / 1024:10.1f} KiB\n"
        f"  peak ratio (streamed/monolithic): {streamed_peak / mono_peak:.3f}\n"
        f"  byte-identical:  {streamed_bytes == mono_bytes}",
        data={
            "scale": {
                "width": WIDTH,
                "ticks": TICKS,
                "chunk_events": CHUNK_EVENTS,
                "spill_records": SPILL_RECORDS,
            },
            "n_rows": streamed_rows,
            "n_chunks": n_chunks,
            "peak_kb_streamed": streamed_peak / 1024,
            "peak_kb_monolithic": mono_peak / 1024,
            "seconds_merge_streamed": streamed_seconds,
            "seconds_merge_monolithic": mono_seconds,
            "throughput_rows_per_wall_second_streamed": (
                streamed_rows / streamed_seconds if streamed_seconds else 0.0
            ),
            "throughput_rows_per_wall_second_monolithic": (
                mono_rows / mono_seconds if mono_seconds else 0.0
            ),
        },
    )
    # The acceptance claims, asserted (not merely archived):
    assert streamed_bytes == mono_bytes
    assert streamed_rows == mono_rows == WIDTH * TICKS * 3
    assert n_chunks > WIDTH  # every session really streamed multiple chunks
    assert streamed_peak < mono_peak  # bounded memory beats collect-then-merge
