"""§3 "Memory optimization": the auto-suspend trade-off surface.

The paper motivates auto-suspend tuning with the tension between idle cost
(long intervals pay for idle time) and cold caches (short intervals drop
the local cache, and "queries in BI workloads tend to access similar data
and therefore are more cache-sensitive").

This bench sweeps static auto-suspend intervals over a cache-sensitive BI
workload and prints the whole trade-off surface.  Measured shape (a finding
worth stating precisely — it is *why* the problem needs a cost/performance
slider rather than a cost minimizer):

* billed credits **decrease monotonically** as the interval shrinks — under
  per-second billing, suspending earlier always trims billed time, with
  diminishing returns near the 60-second billing minimum;
* latency and cold-read fraction **degrade monotonically** as the interval
  shrinks — by several× at the aggressive end;
* therefore no static interval is "optimal" in one dimension: every choice
  buys credits with latency.  KWO's slider (Figure 7) picks the operating
  point, and its cost model quantifies each step's price.
"""

import numpy as np

from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, Window
from repro.common.stats import percentile
from repro.warehouse.account import Account
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize
from repro.workloads.mixed import make_bi_workload

from benchmarks.conftest import record_result, run_once

SUSPEND_SWEEP = [30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0]
HORIZON_DAYS = 3


def _run_sweep():
    rows = []
    for suspend in SUSPEND_SWEEP:
        account = Account(seed=99)
        account.create_warehouse(
            "WH",
            WarehouseConfig(
                size=WarehouseSize.M, auto_suspend_seconds=suspend, max_clusters=2
            ),
        )
        workload = make_bi_workload(RngRegistry(100), intensity=1.0)
        account.schedule_workload("WH", workload.generate(Window(0, HORIZON_DAYS * DAY)))
        account.run_until(HORIZON_DAYS * DAY)
        records = account.telemetry.query_history("WH")
        latencies = [r.total_seconds for r in records]
        rows.append(
            {
                "suspend": suspend,
                "credits": account.warehouse("WH").meter.total_credits(account.sim.now),
                "avg": float(np.mean(latencies)),
                "p99": percentile(latencies, 99),
                "cold": float(np.mean([1.0 - r.cache_hit_ratio for r in records])),
            }
        )
    return rows


def test_suspend_tradeoff_surface(benchmark):
    rows = run_once(benchmark, _run_sweep)
    lines = [f"{'suspend':>8} {'credits':>9} {'avg lat':>8} {'p99':>7} {'cold reads':>11}"]
    for r in rows:
        lines.append(
            f"{r['suspend']:>7.0f}s {r['credits']:>9.1f} {r['avg']:>7.2f}s "
            f"{r['p99']:>6.1f}s {r['cold']:>10.1%}"
        )
    lines.append("")
    cheap, warm = rows[0], rows[-1]
    lines.append(
        f"shortest vs longest interval: {1 - cheap['credits'] / warm['credits']:.1%} cheaper, "
        f"{cheap['avg'] / warm['avg']:.2f}x average latency, "
        f"cold reads {cheap['cold']:.0%} vs {warm['cold']:.0%}"
    )
    record_result("suspend_tradeoff", "\n".join(lines))

    credits = [r["credits"] for r in rows]
    colds = [r["cold"] for r in rows]
    # Cost monotonically increases with the interval...
    assert credits == sorted(credits)
    # ...while cache warmth monotonically improves.
    assert colds == sorted(colds, reverse=True)
    # The aggressive end pays real latency: >1.5x the warm end's average.
    assert rows[0]["avg"] > 1.5 * rows[-1]["avg"]
    # Diminishing returns near the billing minimum: the 30s->60s step saves
    # far less than the 600s->1800s step.
    save_small = rows[1]["credits"] - rows[0]["credits"]
    save_large = rows[-1]["credits"] - rows[-2]["credits"]
    assert save_small < save_large
