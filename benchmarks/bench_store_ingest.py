"""Perf gate: FleetStore ingest/query/rollup throughput on a synthetic fleet.

The fleet telemetry store (``repro.obs.store``) is meant to absorb whole
sweeps of traced runs — provenance, outcomes, attributions, alerts — and
then answer joined queries from its in-memory indexes.  This bench ingests
a deterministic synthetic fleet (many runs × warehouses × decision ticks),
then exercises the indexed read paths, recording both wall-time and the
deterministic row/rollup counts.  The counts must never drift on the same
code; the seconds are gated loosely like every other wall-clock leaf
(``benchmarks/regression_gate.py``, 20% tolerance, non-blocking in CI).

Scale comes from ``REPRO_PERF_SCALE``: ``full`` (default, 24 runs) or
``smoke`` (6 runs for CI).
"""

import os
import timeit

from repro.obs.store import FleetStore

from benchmarks.conftest import record_result, run_once

SCALE = os.environ.get("REPRO_PERF_SCALE", "full")
N_RUNS = {"full": 24, "smoke": 6}[SCALE]
N_WAREHOUSES = 4
N_TICKS = 96  # one simulated day at a 15-minute decision interval


def synthetic_trace(run_index: int) -> list[dict]:
    """One run's trace records: decisions, outcomes, attributions, alerts.

    Fully deterministic arithmetic — no RNG, no clocks — so the archived
    row counts are a pure function of the scale knobs.
    """
    records: list[dict] = [
        {
            "type": "manifest",
            "scenario": "bench_store",
            "seed": run_index,
            "config_hash": f"{run_index:08x}",
            "slider": "balanced",
        }
    ]
    interval = 900.0
    for w in range(N_WAREHOUSES):
        warehouse = f"WH_{w}"
        for tick in range(N_TICKS):
            time = tick * interval
            seq = tick
            kind = ("learned", "hold", "backoff")[(tick + w + run_index) % 3]
            records.append(
                {
                    "type": "event",
                    "name": "provenance.decision",
                    "time": time,
                    "attrs": {
                        "warehouse": warehouse,
                        "seq": seq,
                        "kind": kind,
                        "reason_code": f"{kind}.bench",
                        "target": "cfg",
                        "interval": interval,
                    },
                }
            )
            if tick > 0:
                realized = 0.25 + 0.01 * ((tick + w) % 7)
                predicted = 0.25 + 0.01 * ((tick + run_index) % 5)
                records.append(
                    {
                        "type": "event",
                        "name": "provenance.outcome",
                        "time": time,
                        "attrs": {
                            "warehouse": warehouse,
                            "seq": seq - 1,
                            "window_start": time - interval,
                            "window_end": time,
                            "realized_credits": realized,
                            "predicted_credits": predicted,
                            "error_credits": realized - predicted,
                        },
                    }
                )
            if tick % 8 == 4:
                records.append(
                    {
                        "type": "event",
                        "name": "alert.fire",
                        "time": time,
                        "attrs": {
                            "alert": f"optimizer.backoff.wh_{w}",
                            "severity": "warning",
                            "warehouse": warehouse,
                        },
                    }
                )
            if tick % 8 == 6:
                records.append(
                    {
                        "type": "event",
                        "name": "alert.resolve",
                        "time": time,
                        "attrs": {
                            "alert": f"optimizer.backoff.wh_{w}",
                            "warehouse": warehouse,
                        },
                    }
                )
            if tick % 12 == 11:
                savings = 0.5 + 0.05 * (w + run_index % 3)
                records.append(
                    {
                        "type": "event",
                        "name": "provenance.attribution",
                        "time": time,
                        "attrs": {
                            "warehouse": warehouse,
                            "window_start": time - 12 * interval,
                            "window_end": time,
                            "savings_credits": savings,
                            "shares": [
                                {
                                    "decision_seq": seq - d,
                                    "overlap_seconds": interval,
                                    "credits": savings / 12,
                                }
                                for d in range(12)
                            ],
                        },
                    }
                )
    return records


def test_store_ingest(benchmark):
    traces = [synthetic_trace(i) for i in range(N_RUNS)]

    def workload():
        store = FleetStore()
        t_ingest = timeit.default_timer()
        for i, trace in enumerate(traces):
            store.ingest_trace_records(trace, run=f"run_{i:03d}")
        t_ingest = timeit.default_timer() - t_ingest

        t_query = timeit.default_timer()
        n_decisions = len(store.decisions())
        n_during = len(store.decisions_during_alerts())
        rollup = store.rollup(bucket_seconds=3600.0)
        top = store.top_savings(k=10)
        regret = store.top_regret(k=10)
        t_query = timeit.default_timer() - t_query
        return store, t_ingest, t_query, n_decisions, n_during, rollup, top, regret

    store, t_ingest, t_query, n_decisions, n_during, rollup, top, regret = run_once(
        benchmark, workload
    )
    rows_per_second = len(store) / t_ingest if t_ingest else 0.0
    record_result(
        "store_ingest",
        f"fleet store ingest ({SCALE} scale, {N_RUNS} runs x "
        f"{N_WAREHOUSES} warehouses x {N_TICKS} ticks):\n"
        f"  rows ingested:   {len(store):8d}  ({t_ingest * 1e3:8.2f} ms, "
        f"{rows_per_second:,.0f} rows/s)\n"
        f"  decisions join:  {n_decisions:8d}  rows\n"
        f"  during alerts:   {n_during:8d}  rows\n"
        f"  rollup buckets:  {len(rollup):8d}\n"
        f"  top-k rows:      {len(top) + len(regret):8d}  "
        f"(reads {t_query * 1e3:8.2f} ms total)",
        data={
            "scale": {"n_runs": N_RUNS, "n_warehouses": N_WAREHOUSES, "n_ticks": N_TICKS},
            "n_rows": len(store),
            "n_decisions": n_decisions,
            "n_decisions_during_alerts": n_during,
            "n_rollup_buckets": len(rollup),
            "seconds_ingest": t_ingest,
            "seconds_queries": t_query,
        },
    )
    # Structural sanity: joins and rollups actually produced the fleet view.
    assert n_decisions == N_RUNS * N_WAREHOUSES * N_TICKS
    assert len(store.runs()) == N_RUNS
    assert n_during > 0
    assert len(top) == 10 and len(regret) == 10
