"""Benchmark regression gate: fresh archived results vs committed baselines.

Every bench that passes ``manifest=``/``data=`` to ``record_result`` archives
a machine-readable ``benchmarks/results/<name>.json``.  This gate compares
those fresh archives against the committed ``benchmarks/baselines/<name>.json``
and fails when any numeric leaf drifts by more than the tolerance (20% by
default) — wall-clock seconds and deterministic metrics alike, per result.

Usage::

    python benchmarks/regression_gate.py            # compare, exit 1 on drift
    python benchmarks/regression_gate.py --run      # regenerate results first
    python benchmarks/regression_gate.py --update   # bless fresh results

Wall-clock leaves (``seconds_*``, ``delta_fraction``) are inherently noisy
across machines, which is why CI runs this gate as a *non-blocking* job: a
red gate is a prompt to look, not a merge blocker.  Deterministic metric
leaves (record counts, savings, credits) should never drift on the same
code — those failures are real regressions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"

#: Maximum relative drift tolerated for any numeric leaf.
DEFAULT_TOLERANCE = 0.20

#: Result names under the gate → the bench file that regenerates each one.
GATED_RESULTS = {
    "fig6": "bench_fig6_overhead.py",
    "fig6_tracing_overhead": "bench_fig6_overhead.py",
    "fig6_replay_disabled_overhead": "bench_fig6_overhead.py",
    "perf_replay": "bench_perf_replay.py",
    "perf_fleet": "bench_perf_fleet.py",
    "incremental_replay": "bench_incremental_replay.py",
    "store_ingest": "bench_store_ingest.py",
    "stream_merge": "bench_stream_merge.py",
}

#: Leaf-path substrings marking wall-clock-derived values (reported
#: separately so a red gate distinguishes noise from determinism breaks).
_TIMING_MARKERS = ("seconds", "delta_fraction", "wall", "speedup")

#: Leaves excluded from the drift check: ratios of wall-time *deltas*
#: amplify the noise of their inputs far past any usable tolerance.  The
#: raw ``seconds_*`` leaves they derive from are still gated.
_IGNORED_LEAVES = frozenset({"data.delta_fraction"})


def _is_timing(path: str) -> bool:
    leaf = path.rsplit(".", 1)[-1]
    return any(marker in leaf for marker in _TIMING_MARKERS)


def _numeric_leaves(node: object, prefix: str = "") -> dict[str, float]:
    """Flatten a JSON value tree to {dotted.path: numeric leaf}."""
    out: dict[str, float] = {}
    if isinstance(node, bool):  # bool is an int subclass; not a metric
        return out
    if isinstance(node, (int, float)):
        out[prefix or "<root>"] = float(node)
    elif isinstance(node, dict):
        for key in sorted(node):
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(node[key], sub))
    elif isinstance(node, list):
        for i, item in enumerate(node):
            out.update(_numeric_leaves(item, f"{prefix}[{i}]"))
    return out


def _drift(baseline: float, fresh: float) -> float:
    """Relative drift of ``fresh`` vs ``baseline`` (symmetric denominator)."""
    denom = max(abs(baseline), abs(fresh), 1e-12)
    return abs(fresh - baseline) / denom


def compare_result(name: str, tolerance: float) -> list[str]:
    """Compare one fresh result against its baseline; return violations."""
    baseline_path = BASELINES_DIR / f"{name}.json"
    fresh_path = RESULTS_DIR / f"{name}.json"
    if not fresh_path.exists():
        return [
            f"{name}: no fresh result at {fresh_path} — run the bench first "
            f"(pytest benchmarks/{GATED_RESULTS[name]} --benchmark-only) or "
            f"pass --run"
        ]
    baseline = _numeric_leaves(json.loads(baseline_path.read_text()))
    fresh = _numeric_leaves(json.loads(fresh_path.read_text()))
    violations = []
    for path in sorted(set(baseline) | set(fresh)):
        if path in _IGNORED_LEAVES:
            continue
        if path not in fresh:
            violations.append(f"{name}: {path} missing from fresh result")
            continue
        if path not in baseline:
            violations.append(f"{name}: {path} not in baseline (new leaf?)")
            continue
        drift = _drift(baseline[path], fresh[path])
        if drift > tolerance:
            kind = "wall-time" if _is_timing(path) else "metric"
            violations.append(
                f"{name}: {kind} {path} drifted {drift:+.1%} "
                f"(baseline {baseline[path]:g}, fresh {fresh[path]:g}, "
                f"tolerance {tolerance:.0%})"
            )
    return violations


def run_benches(names: list[str]) -> int:
    """Regenerate the fresh results for ``names`` via pytest-benchmark."""
    bench_files = sorted({GATED_RESULTS[n] for n in names})
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *[str(BENCH_DIR / f) for f in bench_files],
        "--benchmark-only",
        "-q",
    ]
    print(f"regenerating results: {' '.join(cmd)}")
    return subprocess.run(cmd, cwd=BENCH_DIR.parent, check=False).returncode


def update_baselines(names: list[str]) -> int:
    BASELINES_DIR.mkdir(exist_ok=True)
    missing = [n for n in names if not (RESULTS_DIR / f"{n}.json").exists()]
    if missing:
        print(f"cannot bless: no fresh result for {', '.join(missing)}")
        return 2
    for name in names:
        shutil.copyfile(RESULTS_DIR / f"{name}.json", BASELINES_DIR / f"{name}.json")
        print(f"blessed {BASELINES_DIR / f'{name}.json'}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"max relative drift per numeric leaf (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="run the gated benches first to regenerate fresh results",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="bless the current fresh results as the new baselines",
    )
    parser.add_argument(
        "names",
        nargs="*",
        default=None,
        help="result names to gate (default: all with committed baselines)",
    )
    args = parser.parse_args(argv)
    names = args.names or sorted(GATED_RESULTS)
    unknown = [n for n in names if n not in GATED_RESULTS]
    if unknown:
        parser.error(f"unknown result name(s): {', '.join(unknown)}")

    if args.run:
        rc = run_benches(names)
        if rc != 0:
            print(f"bench run failed (exit {rc})")
            return rc
    if args.update:
        return update_baselines(names)

    missing_baselines = [n for n in names if not (BASELINES_DIR / f"{n}.json").exists()]
    if missing_baselines:
        print(
            f"no baseline for {', '.join(missing_baselines)} — "
            f"run with --update to create them"
        )
        return 2

    all_violations: list[str] = []
    for name in names:
        violations = compare_result(name, args.tolerance)
        status = "FAIL" if violations else "ok"
        print(f"{name}: {status}")
        for violation in violations:
            print(f"  {violation}")
        all_violations.extend(violations)
    if all_violations:
        print(
            f"\nregression gate FAILED: {len(all_violations)} violation(s). "
            f"If intentional, bless new baselines with --update."
        )
        return 1
    print(f"\nregression gate passed ({len(names)} result(s) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
