"""Shared helpers for the benchmark harness.

Every bench regenerates one table/figure from the paper's §7: it runs the
experiment protocol once (timed by pytest-benchmark), prints the same
rows/series the paper reports, and archives the rendering under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable outputs.

Results can carry a :class:`repro.obs.RunManifest`: pass ``manifest=`` (and
optionally ``data=``, any JSON-able value tree) and a ``<name>.json`` is
written next to the ``.txt`` rendering, making the archived number
self-describing — seed, scenario, config hash and package version travel
with it.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).
"""

from __future__ import annotations

import json
import pathlib

from repro.obs import RunManifest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_result(
    name: str,
    text: str,
    manifest: RunManifest | None = None,
    data: object | None = None,
) -> None:
    """Print a figure's regenerated rows and archive them.

    With ``manifest`` (and optionally ``data``) a machine-readable
    ``<name>.json`` is archived alongside the human rendering.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if manifest is not None or data is not None:
        payload = {
            "manifest": manifest.to_dict() if manifest is not None else None,
            "data": data,
        }
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    print(f"\n===== {name} =====")
    print(text)


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing.

    The protocols here simulate days of warehouse time; repeating them for
    statistical timing would multiply bench wall-clock for no benefit.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
