"""Shared helpers for the benchmark harness.

Every bench regenerates one table/figure from the paper's §7: it runs the
experiment protocol once (timed by pytest-benchmark), prints the same
rows/series the paper reports, and archives the rendering under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable outputs.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_result(name: str, text: str) -> None:
    """Print a figure's regenerated rows and archive them."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing.

    The protocols here simulate days of warehouse time; repeating them for
    statistical timing would multiply bench wall-clock for no benefit.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
