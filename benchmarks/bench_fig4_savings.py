"""Figure 4 (§7.1): daily credit usage before vs with KWO, with p99 lines.

Paper's result:
  * Fig 4a (unpredictable warehouse): 10.4 -> 4.2 credits/day, a 59.7%
    reduction, with no noticeable p99 change.
  * Fig 4b (predictable warehouse):   26.9 -> 23.4 credits/day, a 13.2%
    reduction, with p99 slightly *better* under KWO.

We reproduce the shape: large savings on the idle-heavy unpredictable
warehouse, modest savings on the already-tight predictable one, and flat
p99 in both cases.  Absolute credit magnitudes differ (synthetic workloads
on a simulator, not the authors' production customers).
"""

from repro.experiments.runner import run_before_after
from repro.experiments.scenarios import fig4a_scenario, fig4b_scenario
from repro.portal.reports import render_savings

from benchmarks.conftest import record_result, run_once


def _run(scenario_builder, name: str, paper_savings: float):
    result, _ = run_before_after(scenario_builder())
    lines = [
        render_savings(result.dashboard),
        "",
        f"measured savings: {result.savings_fraction:.1%}  (paper: {paper_savings:.1%})",
        f"p99 change with KWO: {result.p99_change_fraction():+.1%}  (paper: ~flat)",
        f"cost-model estimated savings: {result.estimated_savings_fraction:.1%}",
        f"decisions: {result.decision_counts}",
    ]
    record_result(name, "\n".join(lines))
    return result


def test_fig4a_unpredictable_warehouse(benchmark):
    result = run_once(benchmark, lambda: _run(fig4a_scenario, "fig4a", 0.597))
    # Shape assertions: who wins and roughly by what factor.
    assert result.savings_fraction > 0.35, "large savings expected on idle-heavy warehouse"
    assert abs(result.p99_change_fraction()) < 0.35, "p99 must stay roughly flat"


def test_fig4b_predictable_warehouse(benchmark):
    result = run_once(benchmark, lambda: _run(fig4b_scenario, "fig4b", 0.132))
    assert 0.02 < result.savings_fraction < 0.35, "modest savings expected"
    assert abs(result.p99_change_fraction()) < 0.35, "p99 must stay roughly flat"


def test_fig4_ordering(benchmark):
    """The unpredictable/oversized warehouse saves more than the predictable
    one — the cross-subfigure comparison the paper's narrative rests on."""

    def both():
        a, _ = run_before_after(fig4a_scenario())
        b, _ = run_before_after(fig4b_scenario())
        return a, b

    a, b = run_once(benchmark, both)
    record_result(
        "fig4_ordering",
        f"fig4a savings {a.savings_fraction:.1%} > fig4b savings {b.savings_fraction:.1%}",
    )
    assert a.savings_fraction > b.savings_fraction
