"""Ablation (§6/§8): KWO's data learning vs non-learning baselines.

Compares, on the same idle-heavy workload:

  * **static**       — the customer's configuration untouched (pre-Keebo);
  * **rule-of-thumb** — the "set auto-suspend to 60 s" blog-post advice §3
    dismisses ("no guarantees on optimal cost or performance");
  * **greedy**       — a reactive utilization-threshold resizer;
  * **kwo**          — the full smart model (DQN + cost-model guardrails +
    monitoring).

Expected shape: rule-of-thumb already beats static on idle-heavy workloads
(suspend tuning is the first-order lever), the greedy resizer is erratic,
and KWO matches or beats the best baseline on cost without the latency
damage the cache-blind baselines incur.
"""

import numpy as np

from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, Window
from repro.common.stats import percentile
from repro.core.optimizer import KeeboService, OptimizerConfig
from repro.learning.baselines import (
    GreedyDownsizerPolicy,
    RuleOfThumbPolicy,
    StaticPolicy,
)
from repro.learning.features import WorkloadBaseline
from repro.core.actions import ActionSpace
from repro.warehouse.account import Account
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize
from repro.workloads.mixed import make_unpredictable_workload

from benchmarks.conftest import record_result, run_once

DAYS = 6
SWITCH = 3 * DAY


def _fresh_account():
    account = Account(seed=888)
    account.create_warehouse(
        "WH",
        WarehouseConfig(size=WarehouseSize.XL, auto_suspend_seconds=3600.0, max_clusters=4),
    )
    workload = make_unpredictable_workload(RngRegistry(889))
    account.schedule_workload("WH", workload.generate(Window(0, DAYS * DAY)))
    return account


def _measure(account) -> dict:
    window = Window(SWITCH, DAYS * DAY)
    credits = account.warehouse("WH").meter.credits_in_window(window, as_of=account.sim.now)
    records = account.telemetry.query_history("WH", window)
    latencies = [r.total_seconds for r in records]
    return {
        "credits": credits,
        "p99": percentile(latencies, 99),
        "avg": float(np.mean(latencies)) if latencies else 0.0,
    }


def _run_baseline(policy_name: str) -> dict:
    account = _fresh_account()
    account.run_until(SWITCH)
    client = CloudWarehouseClient(account, actor="keebo")
    records = client.query_history("WH", Window(0, SWITCH))
    baseline = WorkloadBaseline.fit(records)
    original = client.current_config("WH")
    space = ActionSpace(original)
    policies = {
        "static": StaticPolicy(),
        "rule-of-thumb": RuleOfThumbPolicy(),
        "greedy": GreedyDownsizerPolicy(baseline),
    }
    policy = policies[policy_name]

    def tick(now: float) -> None:
        recent = client.query_history("WH", Window(max(0.0, now - 900.0), now))
        info = client.describe_warehouse("WH")
        action = policy.decide(now, recent, info)
        target = space.apply(info.config, action)
        if target != info.config:
            client.alter_warehouse(
                "WH",
                size=target.size,
                auto_suspend_seconds=target.auto_suspend_seconds,
                min_clusters=target.min_clusters,
                max_clusters=target.max_clusters,
            )

    account.sim.add_controller(600.0, tick, start=SWITCH + 600.0)
    account.run_until(DAYS * DAY)
    return _measure(account)


def _run_kwo() -> dict:
    account = _fresh_account()
    account.run_until(SWITCH)
    service = KeeboService(account)
    service.onboard_warehouse(
        "WH",
        config=OptimizerConfig(
            training_window=3 * DAY,
            onboarding_episodes=6,
            episode_length=1 * DAY,
            retrain_episodes=0,
            confidence_tau=0.0,
        ),
    )
    account.run_until(DAYS * DAY)
    return _measure(account)


def test_policy_ablation(benchmark):
    def run_all():
        results = {name: _run_baseline(name) for name in ("static", "rule-of-thumb", "greedy")}
        results["kwo"] = _run_kwo()
        return results

    results = run_once(benchmark, run_all)
    lines = [f"{'policy':>14} {'credits':>9} {'avg lat':>8} {'p99':>8}"]
    for name, r in results.items():
        lines.append(f"{name:>14} {r['credits']:>9.1f} {r['avg']:>7.2f}s {r['p99']:>7.1f}s")
    record_result("ablation_policies", "\n".join(lines))

    static = results["static"]
    kwo = results["kwo"]
    # KWO clearly beats doing nothing on this idle-heavy workload...
    assert kwo["credits"] < 0.8 * static["credits"]
    # ... without wrecking tail latency relative to the untouched warehouse
    # (C4: performance over savings).
    assert kwo["p99"] < 1.3 * static["p99"]
    # The non-learning baselines can only buy savings with latency damage:
    # among policies that keep p99 within 1.3x of the untouched warehouse,
    # KWO is the cheapest (the Pareto argument of §7.4).
    latency_safe = {
        name: r for name, r in results.items() if r["p99"] < 1.3 * static["p99"]
    }
    assert min(latency_safe, key=lambda n: latency_safe[n]["credits"]) == "kwo"
    # And the baselines that undercut KWO's cost pay for it in tail latency.
    for name, r in results.items():
        if name != "kwo" and r["credits"] < kwo["credits"]:
            assert r["p99"] > 1.3 * kwo["p99"]
