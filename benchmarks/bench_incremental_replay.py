"""Perf gate: incremental what-if ledger vs full replay per streamed row.

``IncrementalReplay`` exists so the streaming savings ledger does not pay a
full-window ``QueryReplay`` for every QUERY_HISTORY row that lands: the
frozen-prefix coverage folds make one observe+materialize cycle O(delta +
buckets).  This bench streams single-row deltas into a 10k-query window and
holds the incremental path to **sub-millisecond per row** and a **≥10x
speedup** over recomputing the full replay from scratch per row (the honest
streaming baseline: the replay's history memo keys on list identity, which
a stream invalidates on every row).

Exactness is asserted in-bench before anything is timed — speed from a
wrong answer would be worthless — and the sketch mode's per-row cost is
recorded alongside.

Scale comes from ``REPRO_PERF_SCALE``: ``full`` (default, 10k-query window,
floors asserted on machines with ≥2 usable cores) or ``smoke`` (1k, numbers
recorded, floors not asserted — tiny windows under-use the folds).
"""

import os
import timeit

from repro.common.simtime import DAY, Window
from repro.costmodel.incremental import IncrementalReplay
from repro.costmodel.replay import QueryReplay
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize

from benchmarks.bench_perf_replay import fitted_replay, synthetic_records
from benchmarks.conftest import record_result, run_once

SCALE = os.environ.get("REPRO_PERF_SCALE", "full")
N_QUERIES = {"full": 10_000, "smoke": 1_000}[SCALE]
#: Rows streamed while timing (the tail of the window).
N_DELTAS = {"full": 200, "smoke": 50}[SCALE]
UPDATE_CEILING_SECONDS = 1e-3
SPEEDUP_FLOOR = 10.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def test_incremental_replay(benchmark):
    cores = _usable_cores()
    records = synthetic_records(N_QUERIES)
    window = Window(0.0, 6.0 * DAY)
    config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=120.0)
    replay = fitted_replay(records, vectorized=True)
    feed = sorted(records, key=lambda r: r.end_time)
    warm, deltas = feed[:-N_DELTAS], feed[-N_DELTAS:]

    def build_ledger(mode: str) -> IncrementalReplay:
        ledger = IncrementalReplay(
            replay.latency_model,
            replay.gap_model,
            replay.cluster_predictor,
            window,
            mode=mode,
        )
        for record in warm:
            ledger.observe(record)
        return ledger

    # Exactness first: the streamed ledger must equal a fresh full replay
    # bit for bit after the whole feed, or the timing below means nothing.
    checked = build_ledger("exact")
    for record in deltas:
        checked.observe(record)
    assert checked.result(config) == checked.full_replay(config)

    exact = build_ledger("exact")
    exact.result(config)  # warm the per-config folded state
    sketch = build_ledger("sketch")
    sketch.sketch(config)

    fresh = QueryReplay(
        replay.latency_model,
        replay.gap_model,
        replay.cluster_predictor,
        vectorized=True,
    )
    base = list(warm)

    def stream_incremental():
        for record in deltas:
            exact.observe(record)
            exact.result(config)

    def stream_sketch():
        for record in deltas:
            sketch.observe(record)
            sketch.sketch(config)

    def stream_full():
        rows = base
        for record in deltas:
            # A stream hands the replay a fresh list every row — the memo
            # misses, as it does in production telemetry fetches.
            rows = rows + [record]
            fresh.replay(rows, config, window)

    def compare():
        t_inc = timeit.timeit(stream_incremental, number=1)
        t_sk = timeit.timeit(stream_sketch, number=1)
        t_full = timeit.timeit(stream_full, number=1)
        return t_inc, t_sk, t_full

    t_inc, t_sk, t_full = run_once(benchmark, compare)
    per_row_inc = t_inc / N_DELTAS
    per_row_sk = t_sk / N_DELTAS
    per_row_full = t_full / N_DELTAS
    speedup = t_full / t_inc
    record_result(
        "incremental_replay",
        f"single-row deltas into a {N_QUERIES}-query window "
        f"({SCALE} scale, {N_DELTAS} rows):\n"
        f"  incremental (exact):  {per_row_inc * 1e6:9.1f} us/row\n"
        f"  incremental (sketch): {per_row_sk * 1e6:9.1f} us/row\n"
        f"  full recompute:       {per_row_full * 1e6:9.1f} us/row\n"
        f"  speedup (exact):      {speedup:9.1f}x",
        data={
            "n_queries": N_QUERIES,
            "n_deltas": N_DELTAS,
            "cores": cores,
            "seconds_incremental": t_inc,
            "seconds_sketch": t_sk,
            "seconds_full": t_full,
            "speedup": speedup,
        },
    )
    if SCALE == "full" and cores >= 2:
        assert per_row_inc < UPDATE_CEILING_SECONDS, (
            f"incremental update+materialize took {per_row_inc * 1e6:.0f} us/row "
            f"(ceiling {UPDATE_CEILING_SECONDS * 1e6:.0f} us)"
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"incremental ledger only {speedup:.1f}x faster than full "
            f"recompute (floor {SPEEDUP_FLOOR}x)"
        )
