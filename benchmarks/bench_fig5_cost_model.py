"""Figure 5 (§7.2): warehouse cost model accuracy.

Paper's result: estimated vs actual credits for four sampled warehouses,
relative errors 0.67%, 4.09%, 20.9%, 3.12% — the worst error belongs to the
low-spend, rarely-used warehouse (Warehouse3), because tiny absolute spend
amplifies relative error.

We reproduce: per-warehouse actual/estimated/relative-error rows, busy
warehouses within a few percent, and the low-spend warehouse clearly worst.
"""

from repro.experiments.runner import run_cost_model_accuracy
from repro.experiments.scenarios import fig5_scenarios

from benchmarks.conftest import record_result, run_once

PAPER_ERRORS = {
    "Warehouse1": 0.0067,
    "Warehouse2": 0.0409,
    "Warehouse3": 0.209,
    "Warehouse4": 0.0312,
}


def test_fig5_cost_model_accuracy(benchmark):
    rows = run_once(benchmark, lambda: run_cost_model_accuracy(fig5_scenarios()))
    lines = [f"{'warehouse':>12} {'actual':>9} {'estimated':>10} {'rel.err':>8} {'paper':>7}"]
    for row in rows:
        lines.append(
            f"{row.warehouse:>12} {row.actual_credits:>9.2f} "
            f"{row.estimated_credits:>10.2f} {row.relative_error:>8.2%} "
            f"{PAPER_ERRORS[row.warehouse]:>7.2%}"
        )
    record_result("fig5", "\n".join(lines))

    by_name = {r.warehouse: r for r in rows}
    # Busy warehouses estimate within a few percent.
    for name in ("Warehouse1", "Warehouse2", "Warehouse4"):
        assert by_name[name].relative_error < 0.12, f"{name} should be accurate"
    # The low-spend warehouse has the worst relative error (paper's 20.9%).
    worst = max(rows, key=lambda r: r.relative_error)
    assert worst.warehouse == "Warehouse3"
    # ... and it is indeed the low spender.
    assert by_name["Warehouse3"].actual_credits == min(r.actual_credits for r in rows)
