"""Figure 7 (§7.4): the cost/performance slider sweep.

Paper's result: running the same workload at all five slider positions
produces monotonically increasing cost and decreasing average latency from
"Lowest Cost" to "Best Performance" (Pareto-efficient trade-off; slider 3
achieved 1.42 s average latency at minimized cost in the paper's workload).

We reproduce the monotone cost curve and the decreasing latency trend
(adjacent performance-leaning positions may tie within noise).
"""

from repro.experiments.runner import run_slider_sweep

from benchmarks.conftest import record_result, run_once


def test_fig7_slider_tradeoff(benchmark):
    rows = run_once(benchmark, run_slider_sweep)
    lines = [f"{'slider':>7} {'label':>17} {'credits':>9} {'avg lat':>8} {'p99':>7}"]
    for row in rows:
        lines.append(
            f"{int(row.slider):>7} {row.slider.label:>17} {row.total_credits:>9.1f} "
            f"{row.avg_latency:>7.2f}s {row.p99_latency:>6.1f}s"
        )
    record_result("fig7", "\n".join(lines))

    credits = [row.total_credits for row in rows]
    latencies = [row.avg_latency for row in rows]
    # Cost rises from Lowest Cost to Best Performance.
    assert credits == sorted(credits), "cost must be monotone in the slider"
    # Latency falls overall: the cheapest setting is clearly the slowest and
    # the performance-leaning settings are clearly the fastest.
    assert latencies[0] == max(latencies)
    assert min(latencies[3], latencies[4]) == min(latencies)
    assert latencies[0] > 1.3 * min(latencies)
    # Pareto span: the customer can at least halve cost by moving 5 -> 1.
    assert credits[-1] > 1.4 * credits[0]
