"""Ablation (§2 C3/C5): static tuning vs continuous adaptation under drift.

The paper's case for full automation: "no static value will be optimal due
to the unpredictable and time-varying nature of modern workloads", and the
crude industry practice — "experiment with different warehouse sizes to
find one that offers reasonable performance for their peak load ... even
these crude experiments are only done occasionally".

Protocol: an ad-hoc workload that triples in intensity after week one.

* The **static-tuned** customer grid-searches size × suspend on week-one
  traffic and keeps the winner (as provisioning-time tuning does).  Because
  the tuning must keep peak-load latency acceptable, the grid search lands
  on the big, long-suspend configuration — and then overpays for it in
  every regime.
* **KWO** onboards on week-one telemetry and keeps adapting: it banks the
  quiet-period savings, and when the surge arrives the monitor's backoffs
  and the daily retrain absorb the new regime with bounded latency impact.

Measured shape: KWO's bill during the surge stays far below the statically
tuned one, its backoff path demonstrably fires on the regime change, and
the latency cost of its savings stays within the slider's envelope.
"""

import numpy as np

from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, Window
from repro.common.stats import percentile
from repro.core.optimizer import KeeboService, OptimizerConfig
from repro.warehouse.account import Account
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize
from repro.workloads.adhoc import AdhocWorkload

from benchmarks.conftest import record_result, run_once

WEEK1 = 4 * DAY
TOTAL = 8 * DAY
ORIGINAL = WarehouseConfig(size=WarehouseSize.L, auto_suspend_seconds=1800.0, max_clusters=2)


def _requests():
    quiet = AdhocWorkload.synthesize(
        RngRegistry(71).stream("w"),
        peak_rate_per_hour=8.0,
        spike_probability_per_day=0.0,
        month_end_boost=1.0,
    ).generate(Window(0, WEEK1))
    busy = AdhocWorkload.synthesize(
        RngRegistry(71).stream("w2"),
        peak_rate_per_hour=24.0,
        spike_probability_per_day=0.0,
        month_end_boost=1.0,
    ).generate(Window(WEEK1, TOTAL))
    return sorted(quiet + busy, key=lambda r: r.arrival_time)


def _run_static(config: WarehouseConfig) -> dict:
    account = Account(seed=72)
    account.create_warehouse("WH", config)
    account.schedule_workload("WH", _requests())
    account.run_until(TOTAL)
    return _measure(account, Window(WEEK1, TOTAL))


def _measure(account, window) -> dict:
    records = account.telemetry.query_history("WH", window)
    latencies = [r.total_seconds for r in records]
    return {
        "credits": account.warehouse("WH").meter.credits_in_window(
            window, as_of=account.sim.now
        ),
        "avg": float(np.mean(latencies)) if latencies else 0.0,
        "p99": percentile(latencies, 99),
        "queue": float(np.mean([r.queued_seconds for r in records])) if records else 0.0,
    }


def _oracle_static_for_week1() -> WarehouseConfig:
    """The provisioning-time tuning ritual: grid-search week 1, keep result."""
    candidates = []
    reference_avg = None
    for size in (WarehouseSize.S, WarehouseSize.M, WarehouseSize.L):
        for suspend in (60.0, 300.0, 1800.0):
            account = Account(seed=73)
            config = ORIGINAL.with_changes(size=size, auto_suspend_seconds=suspend)
            account.create_warehouse("WH", config)
            account.schedule_workload(
                "WH", [r for r in _requests() if r.arrival_time < WEEK1]
            )
            account.run_until(WEEK1)
            m = _measure(account, Window(0, WEEK1))
            if size == ORIGINAL.size and suspend == 1800.0:
                reference_avg = m["avg"]
            candidates.append((config, m))
    affordable = [
        (config, m) for config, m in candidates if m["avg"] <= 1.3 * reference_avg
    ]
    best_config, _ = min(affordable, key=lambda cm: cm[1]["credits"])
    return best_config


def _run_kwo() -> tuple[dict, dict]:
    account = Account(seed=72)
    account.create_warehouse("WH", ORIGINAL)
    account.schedule_workload("WH", _requests())
    account.run_until(WEEK1)
    service = KeeboService(account)
    optimizer = service.onboard_warehouse(
        "WH",
        config=OptimizerConfig(
            training_window=WEEK1,
            onboarding_episodes=5,
            episode_length=1 * DAY,
            retrain_interval=1 * DAY,
            retrain_episodes=1,
            confidence_tau=0.0,
        ),
    )
    account.run_until(TOTAL)
    return _measure(account, Window(WEEK1, TOTAL)), optimizer.decision_counts()


def test_static_tuning_decays_under_drift(benchmark):
    def run_all():
        static_config = _oracle_static_for_week1()
        kwo, decisions = _run_kwo()
        return static_config, _run_static(static_config), kwo, decisions

    static_config, static, kwo, decisions = run_once(benchmark, run_all)
    lines = [
        f"week-1-tuned static config: {static_config.describe()}",
        "",
        f"{'policy':>14} {'credits':>9} {'avg lat':>8} {'p99':>8} {'mean queue':>11}",
        f"{'static (tuned)':>14} {static['credits']:>9.1f} {static['avg']:>7.2f}s "
        f"{static['p99']:>7.1f}s {static['queue']:>10.2f}s",
        f"{'kwo':>14} {kwo['credits']:>9.1f} {kwo['avg']:>7.2f}s "
        f"{kwo['p99']:>7.1f}s {kwo['queue']:>10.2f}s",
        "",
        f"kwo decision mix over the run: {decisions}",
    ]
    record_result("ablation_drift", "\n".join(lines))

    # Static week-1 tuning cannot reduce cost below its provisioned point;
    # KWO keeps banking large savings straight through the regime change.
    assert kwo["credits"] < 0.7 * static["credits"]
    # The savings' latency price stays within the Balanced envelope rather
    # than collapsing (no unbounded queueing, avg within ~1.5x).
    assert kwo["avg"] < 1.5 * static["avg"]
    assert kwo["queue"] < 2.0
    # The adaptation machinery demonstrably engaged on the new regime.
    assert decisions.get("backoff", 0) > 0
