"""Fleet savings range (§1/§9): "customers observe 20%-70% savings".

Runs KWO over a fleet of synthetic customers with deliberately different
workload archetypes and provisioning hygiene, and reports the distribution
of realized savings.  The paper's claim is a *range*: savings depend on the
workload, spanning roughly 20-70% — idle-heavy over-provisioned accounts at
the top, tight steady pipelines at the bottom.
"""

import numpy as np

from repro.experiments.runner import run_fleet
from repro.experiments.scenarios import fleet_scenarios

from benchmarks.conftest import record_result, run_once


def test_fleet_savings_range(benchmark):
    result = run_once(benchmark, lambda: run_fleet(fleet_scenarios(n_customers=6)))
    lines = [f"{'customer':>28} {'pre/day':>9} {'post/day':>9} {'savings':>8} {'p99 chg':>8}"]
    for row in result.rows:
        lines.append(
            f"{row.scenario:>28} {row.pre_daily:>9.1f} {row.post_daily:>9.1f} "
            f"{row.savings_fraction:>8.1%} {row.p99_change_fraction():>+8.1%}"
        )
    lo, hi = result.savings_range
    lines.append("")
    lines.append(f"savings range: {lo:.1%} .. {hi:.1%}  (paper: 20% .. 70%)")
    record_result("savings_range", "\n".join(lines))

    fractions = result.savings_fractions
    # Every customer saves something (C1: zero downside), and the spread is
    # wide: some save modestly, the over-provisioned ones save a lot.
    assert min(fractions) > 0.0
    assert max(fractions) > 0.35
    assert max(fractions) - min(fractions) > 0.15, "savings must vary by workload"
    assert float(np.mean(fractions)) > 0.15
