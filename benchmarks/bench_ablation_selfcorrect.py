"""Ablation (§4.4): real-time self-correction under a workload spike.

The paper's monitor exists so KWO "backs off and self-corrects based on the
real-time feedback": when a sudden load spike hits a warehouse that KWO has
slimmed down, the smart model must immediately retreat to a safe
configuration rather than keep optimizing for the old regime.

This bench trains KWO on quiet traffic, then injects a large arrival spike.
With self-correction enabled the monitor triggers back-offs; with it
disabled (backoff thresholds at infinity) KWO keeps its aggressive settings
through the spike.  Queueing during the spike should be no worse — and the
back-off path visibly active — in the monitored run.
"""

import dataclasses

import numpy as np

from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, HOUR, Window
from repro.core.optimizer import KeeboService, OptimizerConfig
from repro.warehouse.account import Account
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRequest
from repro.warehouse.types import WarehouseSize
from repro.workloads.adhoc import AdhocWorkload

from benchmarks.conftest import record_result, run_once

SPIKE_START = 3 * DAY + 12 * HOUR
SPIKE_END = SPIKE_START + 2 * HOUR


def _build(selfcorrect: bool):
    account = Account(seed=1234)
    account.create_warehouse(
        "WH",
        WarehouseConfig(size=WarehouseSize.L, auto_suspend_seconds=1800.0, max_clusters=3),
    )
    quiet = AdhocWorkload.synthesize(
        RngRegistry(77).stream("workload.adhoc"),
        peak_rate_per_hour=8.0,
        spike_probability_per_day=0.0,
        month_end_boost=1.0,
    )
    requests = quiet.generate(Window(0, 4 * DAY))
    # Injected spike: a burst of heavy queries the training never saw.
    spike_rng = RngRegistry(78).stream("spike")
    heavy = quiet.templates[:5]
    spike = [
        QueryRequest(
            template=heavy[int(spike_rng.integers(0, len(heavy)))],
            arrival_time=float(spike_rng.uniform(SPIKE_START, SPIKE_END)),
            instance_key=f"spike{i}",
        )
        for i in range(400)
    ]
    account.schedule_workload("WH", sorted(requests + spike, key=lambda r: r.arrival_time))
    account.run_until(3 * DAY)
    service = KeeboService(account)
    optimizer = service.onboard_warehouse(
        "WH",
        config=OptimizerConfig(
            training_window=3 * DAY,
            onboarding_episodes=4,
            episode_length=1 * DAY,
            retrain_episodes=0,
            confidence_tau=0.0,
        ),
    )
    if not selfcorrect:
        optimizer.smart_model.params = dataclasses.replace(
            optimizer.smart_model.params,
            backoff_latency_ratio=float("inf"),
            spike_zscore=float("inf"),
        )
        optimizer.params = optimizer.smart_model.params
    account.run_until(4 * DAY)
    spike_window = Window(SPIKE_START, SPIKE_END + HOUR)
    records = account.telemetry.query_history("WH", spike_window)
    queue = float(np.mean([r.queued_seconds for r in records])) if records else 0.0
    p99 = float(np.percentile([r.total_seconds for r in records], 99)) if records else 0.0
    backoffs = optimizer.decision_counts().get("backoff", 0)
    return {"queue": queue, "p99": p99, "backoffs": backoffs}


def test_selfcorrection_under_spike(benchmark):
    def both():
        return _build(selfcorrect=True), _build(selfcorrect=False)

    monitored, blind = run_once(benchmark, both)
    lines = [
        f"{'variant':>16} {'mean queue (s)':>15} {'p99 (s)':>9} {'backoffs':>9}",
        f"{'self-correcting':>16} {monitored['queue']:>15.2f} {monitored['p99']:>9.1f} {monitored['backoffs']:>9}",
        f"{'monitor off':>16} {blind['queue']:>15.2f} {blind['p99']:>9.1f} {blind['backoffs']:>9}",
    ]
    record_result("ablation_selfcorrect", "\n".join(lines))

    # The monitored run actually uses the back-off path during the spike...
    assert monitored["backoffs"] > 0
    assert blind["backoffs"] == 0
    # ...and queue pressure during the spike stays no worse than blind.
    assert monitored["queue"] <= blind["queue"] * 1.2 + 0.5
