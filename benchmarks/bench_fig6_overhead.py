"""Figure 6 (§7.3): KWO's own overhead vs usage and estimated savings.

Paper's result, on a static hourly-ETL warehouse with KWO active:
  * KWO's overhead (telemetry fetches, actuator calls) is negligibly small
    compared to regular query processing;
  * estimated savings are significantly greater than overhead;
  * actual + estimated savings (the expected without-Keebo spend) is nearly
    identical across hours, because the workload is static.
"""

from repro.experiments.runner import run_overhead
from repro.experiments.scenarios import fig6_scenario
from repro.portal.reports import render_overhead

from benchmarks.conftest import record_result, run_once


def test_fig6_overhead(benchmark):
    result = run_once(benchmark, lambda: run_overhead(fig6_scenario()))
    dashboard = result.dashboard
    lines = [
        render_overhead(dashboard),
        "",
        f"hourly CV of (actual + est. savings): {result.total_without_keebo_stability():.3f}"
        "  (paper: 'nearly identical over different hours')",
    ]
    record_result("fig6", "\n".join(lines))

    # Overhead negligible relative to customer usage.
    assert result.overhead_fraction < 0.05
    # Savings dominate overhead.
    total_savings = sum(dashboard.estimated_savings)
    total_overhead = sum(dashboard.overhead_credits)
    assert total_savings > 5 * total_overhead
    # Static workload: the reconstructed without-Keebo spend is stable.
    assert result.total_without_keebo_stability() < 0.35
