"""Figure 6 (§7.3): KWO's own overhead vs usage and estimated savings.

Paper's result, on a static hourly-ETL warehouse with KWO active:
  * KWO's overhead (telemetry fetches, actuator calls) is negligibly small
    compared to regular query processing;
  * estimated savings are significantly greater than overhead;
  * actual + estimated savings (the expected without-Keebo spend) is nearly
    identical across hours, because the workload is static.

This module also measures *our own* observability overhead: the same
scenario with `repro.obs` disabled (the default) vs enabled, so the
"instrumentation is cheap enough to leave in hot paths" claim in
docs/OBSERVABILITY.md is a measured number, not a hope.
"""

import timeit

from repro import obs
from repro.experiments.runner import run_before_after, run_overhead
from repro.experiments.scenarios import fig6_scenario, smoke_scenario
from repro.portal.reports import render_overhead

from benchmarks.conftest import record_result, run_once


def test_fig6_overhead(benchmark):
    result = run_once(benchmark, lambda: run_overhead(fig6_scenario()))
    dashboard = result.dashboard
    lines = [
        render_overhead(dashboard),
        "",
        f"hourly CV of (actual + est. savings): {result.total_without_keebo_stability():.3f}"
        "  (paper: 'nearly identical over different hours')",
    ]
    record_result(
        "fig6",
        "\n".join(lines),
        manifest=result.manifest,
        data={
            "overhead_fraction": result.overhead_fraction,
            "total_estimated_savings": sum(dashboard.estimated_savings),
            "total_overhead_credits": sum(dashboard.overhead_credits),
            "hourly_cv": result.total_without_keebo_stability(),
        },
    )

    # Overhead negligible relative to customer usage.
    assert result.overhead_fraction < 0.05
    # Savings dominate overhead.
    total_savings = sum(dashboard.estimated_savings)
    total_overhead = sum(dashboard.overhead_credits)
    assert total_savings > 5 * total_overhead
    # Static workload: the reconstructed without-Keebo spend is stable.
    assert result.total_without_keebo_stability() < 0.35


def test_fig6_tracing_overhead(benchmark):
    """obs-disabled vs obs-enabled wall time on the smoke scenario."""

    def compare():
        # timeit (not a raw perf_counter read — R001) with one iteration:
        # the run simulates two days of warehouse time, repetition is noise
        # reduction we don't need for a coarse overhead bound.
        t_disabled = timeit.timeit(
            lambda: run_before_after(smoke_scenario()), number=1
        )
        scenario = smoke_scenario()
        manifest = scenario.manifest()
        with obs.observed(manifest=manifest) as rec:
            t_enabled = timeit.timeit(
                lambda: run_before_after(scenario), number=1
            )
        return t_disabled, t_enabled, rec, manifest

    t_disabled, t_enabled, rec, manifest = run_once(benchmark, compare)
    delta = (t_enabled - t_disabled) / t_disabled
    spans = sum(1 for r in rec.sink.records if r["type"] == "span")
    lines = [
        f"obs disabled: {t_disabled:8.3f} s",
        f"obs enabled:  {t_enabled:8.3f} s   ({delta:+.1%}, "
        f"{len(rec.sink)} trace records, {len(rec.metrics)} metric series)",
    ]
    record_result(
        "fig6_tracing_overhead",
        "\n".join(lines),
        manifest=manifest,
        data={
            "seconds_disabled": t_disabled,
            "seconds_enabled": t_enabled,
            "delta_fraction": delta,
            "trace_records": len(rec.sink),
            "metric_series": len(rec.metrics),
        },
    )

    # Enabled, the run must actually have traced something...
    assert spans > 0
    assert rec.metrics.counter("repro.engine.events").value > 0
    # ...and recording everything must stay far from dominating the run.
    # (Single-iteration wall times are noisy; this is a sanity bound, the
    # <2% disabled-path claim is about instrumentation left in place while
    # *off*, which is what every other bench in this suite now measures.)
    assert t_enabled < 2.0 * t_disabled


def test_replay_disabled_obs_overhead(benchmark):
    """Cost of the obs hooks in ``QueryReplay.replay`` while obs is *off*.

    The smart model makes thousands of what-if replays per run, so replay
    is the one call site where per-call span bookkeeping would add up.
    The disabled fast path returns before any span or ``config.describe()``
    work; this bench holds it to near-parity with calling the replay
    internals directly.
    """
    from repro.common.simtime import HOUR, Window
    from repro.costmodel.replay import QueryReplay
    from repro.costmodel.clusters import ClusterCountPredictor
    from repro.costmodel.gaps import GapModel
    from repro.costmodel.latency import LatencyScalingModel
    from repro.warehouse.config import WarehouseConfig
    from repro.warehouse.queries import QueryRecord
    from repro.warehouse.types import WarehouseSize

    records = [
        QueryRecord(
            query_id=i,
            warehouse="WH",
            text_hash=f"t{i}",
            template_hash=f"t{i % 7}",
            arrival_time=i * 11.0,
            start_time=i * 11.0,
            end_time=i * 11.0 + 8.0,
            execution_seconds=8.0,
            warehouse_size=WarehouseSize.S,
            cache_hit_ratio=1.0,
            cluster_number=1,
            chained=False,
            completed=True,
        )
        for i in range(200)
    ]
    replay = QueryReplay(LatencyScalingModel(), GapModel(), ClusterCountPredictor())
    config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=300.0)
    window = Window(0.0, HOUR)
    n = 200

    def compare():
        assert not obs.enabled()
        # Best-of-3 per path: the per-call delta under test is a single
        # global read and None check, far below one-shot timer noise.
        t_public = min(
            timeit.repeat(
                lambda: replay.replay(records, config, window), number=n, repeat=3
            )
        )
        t_internal = min(
            timeit.repeat(
                lambda: replay._replay_impl(records, config, window), number=n, repeat=3
            )
        )
        return t_public, t_internal

    t_public, t_internal = run_once(benchmark, compare)
    delta = (t_public - t_internal) / t_internal
    record_result(
        "fig6_replay_disabled_overhead",
        f"replay() with obs off: {t_public / n * 1e3:8.3f} ms/call\n"
        f"replay internals:      {t_internal / n * 1e3:8.3f} ms/call   ({delta:+.1%})",
        data={
            "seconds_public": t_public,
            "seconds_internal": t_internal,
            "delta_fraction": delta,
            "calls": n,
        },
    )
    # The hook is one global read and a None check per call; the loose
    # bound absorbs single-core timer noise, not real span bookkeeping
    # (which costs well over 2x on this call count).
    assert t_public < 1.5 * t_internal
