"""Onboarding ramp (§1/§9): fraction of eventual savings vs hours enabled.

Paper's claim: customers reach 50%, 70% and 95% of their eventual savings
after 20, 43 and 83 hours respectively.  Our reproduction measures the
trailing-24h savings rate after onboarding and reports the first sustained
crossing of each milestone; magnitudes land in the same tens-of-hours range
with the same saturating shape.
"""

from repro.experiments.runner import run_onboarding_curve
from repro.experiments.scenarios import onboarding_scenario

from benchmarks.conftest import record_result, run_once

PAPER_MILESTONES = {0.5: 20.0, 0.7: 43.0, 0.95: 83.0}


def test_onboarding_curve(benchmark):
    curve = run_once(
        benchmark, lambda: run_onboarding_curve(onboarding_scenario(total_days=12))
    )
    lines = ["hours  savings-rate (trailing 24h)"]
    for h, s in zip(curve.hours, curve.savings_rate):
        bar = "#" * max(0, int(40 * s / max(curve.eventual_rate, 1e-9)))
        lines.append(f"{h:>5.0f}  {s:>6.1%}  {bar}")
    lines.append("")
    lines.append(f"eventual savings rate: {curve.eventual_rate:.1%}")
    for fraction, paper_hours in PAPER_MILESTONES.items():
        hours = curve.hours_to_reach(fraction)
        lines.append(
            f"hours to {fraction:.0%} of eventual savings: "
            f"{hours if hours is not None else '>horizon'}  (paper: {paper_hours:.0f}h)"
        )
    record_result("onboarding", "\n".join(lines))

    assert curve.eventual_rate > 0.2, "the ramp must converge to real savings"
    h50 = curve.hours_to_reach(0.5)
    h95 = curve.hours_to_reach(0.95)
    assert h50 is not None and h95 is not None
    # Saturating shape in the paper's tens-of-hours range.
    assert 4.0 <= h50 <= 60.0
    assert h50 <= h95 <= 140.0
