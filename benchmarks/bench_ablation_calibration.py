"""Ablation (§5.2, last paragraph): ML calibration of the query replay.

The paper: "Calibrating the parameters used during the query replay with
learning-based models makes our warehouse cost estimator resilient to
simulation errors, yielding more accurate estimates."

This bench fits the cost model twice on identical telemetry — once with the
learned calibration enabled (cluster-count coefficient, chain-flag usage)
and once with the raw analytical models — and compares relative errors
against actual billing.
"""

import numpy as np

from repro.common.simtime import DAY, HOUR, Window
from repro.costmodel.model import WarehouseCostModel
from repro.experiments.scenarios import fig5_scenarios
from repro.warehouse.api import CloudWarehouseClient

from benchmarks.conftest import record_result, run_once


def _accuracy_with(calibrate: bool):
    errors = {}
    for scenario in fig5_scenarios(seed=550):
        scenario.schedule()
        account = scenario.account
        account.run_until(scenario.horizon + HOUR)
        client = CloudWarehouseClient(account, actor="keebo")
        train = Window(0.0, 2 * DAY)
        evaluate = Window(2 * DAY, scenario.horizon)
        model = WarehouseCostModel(
            client, scenario.warehouse, calibrate=calibrate, use_chain_flags=calibrate
        ).fit(train)
        estimate = model.estimate_cost(evaluate, client.current_config(scenario.warehouse))
        actual = client.credits_in_window(scenario.warehouse, evaluate)
        errors[scenario.name] = abs(estimate.credits - actual) / max(actual, 1e-9)
    return errors


def test_calibration_ablation(benchmark):
    def both():
        return _accuracy_with(calibrate=True), _accuracy_with(calibrate=False)

    calibrated, raw = run_once(benchmark, both)
    lines = [f"{'warehouse':>12} {'calibrated':>11} {'uncalibrated':>13}"]
    for name in calibrated:
        lines.append(f"{name:>12} {calibrated[name]:>11.2%} {raw[name]:>13.2%}")
    mean_cal = float(np.mean(list(calibrated.values())))
    mean_raw = float(np.mean(list(raw.values())))
    lines.append("")
    lines.append(f"mean relative error: calibrated {mean_cal:.2%} vs raw {mean_raw:.2%}")
    record_result("ablation_calibration", "\n".join(lines))

    # Calibration must not hurt overall accuracy, and calibrated estimates
    # must stay in the paper's accuracy regime.
    assert mean_cal <= mean_raw * 1.10
    assert mean_cal < 0.12
