"""Incremental what-if ledger: O(delta) streaming cost model (ROADMAP item 3).

:class:`QueryReplay` memoizes the config-independent prep of one telemetry
snapshot, but the memo key is the *identity* of the records list — so in a
streaming setting, where every new QUERY_HISTORY row produces a new list,
each savings refresh pays a full-window recompute.  This module maintains
the what-if ledger *online*: :class:`IncrementalReplay` ingests one row at a
time and keeps, per candidate configuration, enough folded state that the
next :class:`~repro.costmodel.replay.ReplayResult` costs O(delta + buckets)
instead of O(window).

Two modes:

**Exact mode** (default) is bit-identical to a full
:class:`~repro.costmodel.replay.QueryReplay` over the same records and
window — the property ``tests/props/test_incremental_replay.py`` locks in
under arbitrary interleavings of append / out-of-order insert / eviction /
config change.  The trick is a *frozen-prefix / live-suffix* fold over the
sorted counterfactual spans:

* spans are kept sorted by ``(start, end)`` — the order
  ``np.lexsort((finishes, starts))`` produces in the full replay.  Every
  downstream kernel depends only on the sorted *content* (identical values
  commute in float sums), so maintaining the same sorted multiset suffices;
* the per-mini-window coverage sums (concurrency profile, merged-busy
  overlap, burst overlap) are folded for a frozen prefix of spans in span
  order.  ``np.add.at`` applies pair updates sequentially, so accumulating
  the live suffix *into a copy of the prefix sums* reproduces, bit for bit,
  one :func:`~repro.costmodel.kernels.bucketed_overlap` call over all spans
  (see :func:`~repro.costmodel.kernels.overlap_into`);
* merged intervals and activation bursts are folded the same way: closed
  groups are final, the one *open* group at the fold boundary is re-merged
  with the suffix on every materialization.

Appends in arrival order are O(1) amortized plus an O(buckets + suffix)
materialization; out-of-order inserts that land inside the live suffix stay
cheap, and anything that touches the frozen prefix (deep inserts, eviction,
window slides, model refits) marks the per-config state dirty and amortizes
one vectorized rebuild.  Exactness therefore never depends on which path
ran — only the *cost* does.  Float subtraction is not the inverse of float
addition, so a bit-exact sliding fold cannot evict in O(delta); that is
what sketch mode is for.

**Sketch mode** quantizes span endpoints outward to a ``resolution``-second
grid and maintains two *integer* cell arrays — ``cover`` (how many spans
touch each cell) and ``interior`` (how many cover it entirely).  Integer
increments commute and invert exactly, so appends, out-of-order inserts
*and evictions* are all O(span/resolution) with no rebuild, ever.  The
materialized :class:`SketchResult` brackets the exact replay between an
*inner hull* (cells provably fully covered) and an *outer hull* (cells
possibly touched): every billing operation downstream — ceil, clip,
positive scaling, min, pairwise sums — is monotone, so

    ``credits_lo  <=  exact credits  <=  credits_hi``

up to IEEE rounding slack (monotonicity of rounding makes each individual
op safe; the documented test slack is ``1e-9`` relative).  The interval
width is the sketch's *self-reported* error bound; a closed-form ceiling in
terms of observable quantities is::

    hi - lo  <=  rate/HOUR * ( c_max * 2q * (N + 1)
                             + c_max * (2q + S + R) * (B + 1)
                             + M * (B + 1) )

with ``q`` the resolution, ``R`` the mini-window width, ``S`` the
auto-suspend interval, ``M`` the 60 s billing minimum, ``N`` the live span
count, ``B`` the outer-run count and ``c_max`` the config's cluster cap —
each span contributes at most ``2q`` of quantization slack to coverage and
concurrency, and each burst at most ``2q + S`` of boundary/tail slack plus
one billing minimum.  ``tests/props/test_incremental_replay.py`` asserts
both the enclosure and this ceiling.

Durability: the canonical :meth:`IncrementalReplay.state_dict` (window,
mode, cursor counts, a checksum over ingested row ids) round-trips through
``repro.durability`` byte-identically; the row *contents* are recovered by
re-feeding from telemetry, which by the exactness property reconstructs an
equivalent ledger regardless of the original interleaving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, RecoveryError
from repro.common.simtime import HOUR, Window
from repro.common.stats import percentile
from repro.costmodel import kernels
from repro.costmodel.clusters import MINI_WINDOW_SECONDS, ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import LatencyScalingModel
from repro.costmodel.replay import _SIZE_VALUES, QueryReplay, ReplayResult
from repro.durability.codec import (
    decode_window,
    encode_window,
    require_keys,
    state_checksum,
)
from repro.warehouse.billing import MINIMUM_BILLED_SECONDS
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord

#: Live-suffix length that triggers folding spans into the frozen prefix.
FOLD_TRIGGER = 256
#: Suffix length kept live after a fold (headroom for out-of-order inserts).
FOLD_KEEP = 64
#: Default sketch grid, seconds.  Must divide MINI_WINDOW_SECONDS.
DEFAULT_RESOLUTION = 60.0


class _Buf:
    """Amortized-O(1) append / evict-from-front numpy column."""

    __slots__ = ("data", "head", "n")

    def __init__(self, dtype: type) -> None:
        self.data = np.empty(16, dtype=dtype)
        self.head = 0
        self.n = 0

    def view(self) -> np.ndarray:
        return self.data[self.head : self.head + self.n]

    def _grow(self, extra: int = 1) -> None:
        need = self.n + extra
        if self.head + need <= self.data.size and self.head <= self.data.size // 2:
            return
        cap = max(16, 2 * need)
        fresh = np.empty(cap, dtype=self.data.dtype)
        fresh[: self.n] = self.view()
        self.data = fresh
        self.head = 0

    def insert(self, idx: int, value: float) -> None:
        self._grow(1)
        lo = self.head + idx
        hi = self.head + self.n
        self.data[lo + 1 : hi + 1] = self.data[lo:hi]
        self.data[lo] = value
        self.n += 1

    def set(self, idx: int, value: float) -> None:
        self.data[self.head + idx] = value

    def get(self, idx: int) -> float:
        return self.data[self.head + idx]

    def delete(self, idx: int) -> None:
        lo = self.head + idx
        hi = self.head + self.n
        self.data[lo : hi - 1] = self.data[lo + 1 : hi]
        self.n -= 1

    def drop_front(self, count: int) -> None:
        self.head += count
        self.n -= count

    def load(self, values: np.ndarray) -> None:
        self.data = np.array(values, dtype=self.data.dtype)
        self.head = 0
        self.n = int(values.size)


def _searchsorted_pair(
    starts: np.ndarray, ends: np.ndarray, start: float, end: float
) -> int:
    """Insertion index for ``(start, end)`` in arrays sorted by that pair."""
    lo = int(np.searchsorted(starts, start, side="left"))
    hi = int(np.searchsorted(starts, start, side="right"))
    if lo == hi:
        return lo
    return lo + int(np.searchsorted(ends[lo:hi], end, side="right"))


def _config_key(config: WarehouseConfig) -> tuple:
    return (
        config.size,
        float(config.auto_suspend_seconds),
        int(config.min_clusters),
        int(config.max_clusters),
        int(config.max_concurrency),
    )


@dataclass
class SketchResult:
    """Bounded-error savings summary from the sketch mode.

    ``credits_lo <= exact credits <= credits_hi`` (up to IEEE rounding
    slack); ``credits`` is the midpoint estimate and ``error_bound`` the
    half-width — the sketch's self-reported worst case.
    """

    credits_lo: float
    credits_hi: float
    busy_seconds_lo: float
    busy_seconds_hi: float
    n_queries: int
    n_runs: int

    @property
    def credits(self) -> float:
        return 0.5 * (self.credits_lo + self.credits_hi)

    @property
    def error_bound(self) -> float:
        return 0.5 * (self.credits_hi - self.credits_lo)

    def stated_bound(
        self, config: WarehouseConfig, resolution: float, window_duration: float
    ) -> float:
        """The documented closed-form ceiling on ``credits_hi - credits_lo``.

        With auto-suspend disabled a single burst runs to the window end, so
        one span missing from the inner hull can cost the whole window —
        the burst slack term degrades from ``2q + S`` to the window
        duration.  (That is the honest price of never suspending; exact
        mode or a finer resolution is the remedy.)
        """
        rate = config.size.credits_per_hour
        c_max = float(config.max_clusters)
        q = resolution
        suspend = float(config.auto_suspend_seconds)
        burst_slack = 2.0 * q + suspend if suspend > 0 else window_duration
        n = float(self.n_queries)
        b = float(self.n_runs)
        return (
            rate
            / HOUR
            * (
                c_max * 2.0 * q * (n + 1.0)
                + c_max * (burst_slack + MINI_WINDOW_SECONDS) * (b + 1.0)
                + MINIMUM_BILLED_SECONDS * (b + 1.0)
            )
        )


class _ExactState:
    """Per-config folded state for the bit-exact mode."""

    def __init__(self, config: WarehouseConfig, n_windows: int) -> None:
        self.config = config
        self.n_windows = n_windows
        self.lat = _Buf(np.float64)
        self.shifted = _Buf(np.float64)
        self.span_starts = _Buf(np.float64)
        self.span_ends = _Buf(np.float64)
        self.dirty = True
        self.frozen = 0
        self.conc_base = np.zeros(n_windows, dtype=np.float64)
        self.busy_base = np.zeros(n_windows, dtype=np.float64)
        self.burst_base = np.zeros(n_windows, dtype=np.float64)
        self.busy_open: tuple[float, float] | None = None
        self.burst_open: tuple[float, float] | None = None
        self.n_closed_intervals = 0
        self.n_closed_bursts = 0
        # Literal int 0 so the first fold reproduces sum()'s `0 + d1` start.
        self.active_base: float = 0
        self.shortfall_base: list[float] = []

    # -------------------------------------------------------------- editing
    def insert_record(self, owner: "IncrementalReplay", k: int) -> None:
        """Splice record ``k`` (already in the shared columns) in."""
        if self.dirty:
            return
        lat_k = owner._rescale_one(k, self.config)
        self.lat.insert(k, lat_k)
        new = self._shifted_value(owner, k)
        self.shifted.insert(k, new)
        end = min(new + lat_k, owner.window.end)
        if end > new:
            self._insert_span(new, end)
        self._cascade(owner, k + 1)

    def evict(self) -> None:
        """Window slid: the bucket grid moved, so fold state is void."""
        self.dirty = True

    def _shifted_value(self, owner: "IncrementalReplay", j: int) -> float:
        window_start = owner.window.start
        if owner._chained.get(j) and j > 0:
            arrival = (
                float(self.shifted.get(j - 1)) + float(self.lat.get(j - 1))
            ) + float(owner._lags.get(j))
            return arrival if arrival >= window_start else window_start
        raw = float(owner._raw_arrivals.get(j))
        return raw if raw >= window_start else window_start

    def _cascade(self, owner: "IncrementalReplay", j: int) -> None:
        """Recompute shifted arrivals from ``j`` until the chain converges.

        The scalar recurrence matches the full replay's chained-arrival loop
        op for op; it stops at the first record whose shifted arrival comes
        out bit-equal to the stored value (identical inputs from there on,
        so everything downstream is identical too).
        """
        if self.dirty:
            return
        n = owner._n
        window_end = owner.window.end
        while j < n:
            new = self._shifted_value(owner, j)
            old = float(self.shifted.get(j))
            if new == old:
                break
            lat_j = float(self.lat.get(j))
            old_end = min(old + lat_j, window_end)
            if old_end > old:
                self._remove_span(old, old_end)
                if self.dirty:
                    return
            self.shifted.set(j, new)
            new_end = min(new + lat_j, window_end)
            if new_end > new:
                self._insert_span(new, new_end)
                if self.dirty:
                    return
            j += 1

    def _remove_span(self, start: float, end: float) -> None:
        starts = self.span_starts.view()
        ends = self.span_ends.view()
        pos = _searchsorted_pair(starts, ends, start, end) - 1
        if pos < 0 or starts[pos] != start or ends[pos] != end:
            self.dirty = True
            return
        if pos < self.frozen:
            self.dirty = True
            return
        self.span_starts.delete(pos)
        self.span_ends.delete(pos)

    def _insert_span(self, start: float, end: float) -> None:
        starts = self.span_starts.view()
        ends = self.span_ends.view()
        pos = _searchsorted_pair(starts, ends, start, end)
        if pos < self.frozen:
            self.dirty = True
            return
        self.span_starts.insert(pos, start)
        self.span_ends.insert(pos, end)

    # -------------------------------------------------------------- rebuild
    def rebuild(self, owner: "IncrementalReplay") -> None:
        """Vectorized from-scratch rebuild (the full replay's own ops)."""
        window = owner.window
        n = owner._n
        config = self.config
        self.n_windows = owner.n_windows
        if n == 0:
            self.lat.load(np.empty(0))
            self.shifted.load(np.empty(0))
            self.span_starts.load(np.empty(0))
            self.span_ends.load(np.empty(0))
        else:
            lat = owner.latency_model.rescale_batch(
                owner._templates_list(),
                owner._size_values.view(),
                owner._cache_hits.view(),
                owner._exec_seconds.view(),
                config.size,
                gammas=owner._gammas.view(),
            )
            arrivals = np.maximum(owner._raw_arrivals.view(), window.start)
            chained_idx = np.flatnonzero(owner._chained.view())
            if chained_idx.size:
                shifted_arrivals = arrivals.tolist()
                latency_list = lat.tolist()
                lag_list = owner._lags.view().tolist()
                window_start = window.start
                for i in chained_idx.tolist():
                    arrival = (
                        shifted_arrivals[i - 1] + latency_list[i - 1]
                    ) + lag_list[i]
                    shifted_arrivals[i] = (
                        arrival if arrival >= window_start else window_start
                    )
                arrivals = np.asarray(shifted_arrivals, dtype=np.float64)
            ends = np.minimum(arrivals + lat, window.end)
            live = ends > arrivals
            starts = arrivals[live]
            finishes = ends[live]
            order = np.lexsort((finishes, starts))
            self.lat.load(lat)
            self.shifted.load(arrivals)
            self.span_starts.load(starts[order])
            self.span_ends.load(finishes[order])
        self.frozen = 0
        self.conc_base = np.zeros(self.n_windows, dtype=np.float64)
        self.busy_base = np.zeros(self.n_windows, dtype=np.float64)
        self.burst_base = np.zeros(self.n_windows, dtype=np.float64)
        self.busy_open = None
        self.burst_open = None
        self.n_closed_intervals = 0
        self.n_closed_bursts = 0
        self.active_base = 0
        self.shortfall_base = []
        self.dirty = False
        self.fold(owner)

    # ----------------------------------------------------------------- fold
    def fold(self, owner: "IncrementalReplay") -> None:
        """Advance the frozen prefix, leaving FOLD_KEEP spans live."""
        n_spans = self.span_starts.n
        if n_spans - self.frozen <= FOLD_TRIGGER:
            return
        new_frozen = n_spans - FOLD_KEEP
        window = owner.window
        starts = self.span_starts.view()
        ends = self.span_ends.view()
        chunk_s = starts[self.frozen : new_frozen]
        chunk_e = ends[self.frozen : new_frozen]
        kernels.overlap_into(
            self.conc_base, chunk_s, chunk_e, window.start,
            MINI_WINDOW_SECONDS, self.n_windows,
        )
        # Merged busy intervals: close every group the chunk completes.
        closed: list[tuple[float, float]] = []
        open_iv = self.busy_open
        for s, e in zip(chunk_s.tolist(), chunk_e.tolist()):
            if open_iv is not None and s <= open_iv[1]:
                if e > open_iv[1]:
                    open_iv = (open_iv[0], e)
            else:
                if open_iv is not None:
                    closed.append(open_iv)
                open_iv = (s, e)
        self.busy_open = open_iv
        if closed:
            arr = np.asarray(closed, dtype=np.float64)
            kernels.overlap_into(
                self.busy_base, np.ascontiguousarray(arr[:, 0]),
                np.ascontiguousarray(arr[:, 1]), window.start,
                MINI_WINDOW_SECONDS, self.n_windows,
            )
            self.n_closed_intervals += len(closed)
        # Activation bursts (suspend <= 0 is materialized directly).
        suspend = self.config.auto_suspend_seconds
        if suspend > 0:
            closed_bursts: list[tuple[float, float]] = []
            open_b = self.burst_open
            for s, e in zip(chunk_s.tolist(), chunk_e.tolist()):
                if open_b is None:
                    open_b = (s, e)
                elif s <= open_b[1] + suspend:
                    if e > open_b[1]:
                        open_b = (open_b[0], e)
                else:
                    closed_bursts.append(
                        (open_b[0], min(open_b[1] + suspend, window.end))
                    )
                    open_b = (s, e)
            self.burst_open = open_b
            if closed_bursts:
                arr = np.asarray(closed_bursts, dtype=np.float64)
                kernels.overlap_into(
                    self.burst_base, np.ascontiguousarray(arr[:, 0]),
                    np.ascontiguousarray(arr[:, 1]), window.start,
                    MINI_WINDOW_SECONDS, self.n_windows,
                )
                for bs, be in closed_bursts:
                    duration = be - bs
                    self.active_base = self.active_base + duration
                    if duration < MINIMUM_BILLED_SECONDS:
                        self.shortfall_base.append(MINIMUM_BILLED_SECONDS - duration)
                self.n_closed_bursts += len(closed_bursts)
        self.frozen = new_frozen

    # ------------------------------------------------------------- material
    def materialize(self, owner: "IncrementalReplay") -> ReplayResult:
        if self.dirty or self.n_windows != owner.n_windows:
            self.rebuild(owner)
        else:
            self.fold(owner)
        window = owner.window
        config = self.config
        n_queries = self.lat.n
        if n_queries == 0:
            return ReplayResult(0.0, 0.0, 0.0, 0, 0, 0.0, 0.0)
        rate = config.size.credits_per_hour
        n_windows = self.n_windows
        starts = self.span_starts.view()
        ends = self.span_ends.view()
        suffix_s = starts[self.frozen :]
        suffix_e = ends[self.frozen :]
        # Concurrency profile: prefix sums + suffix pairs, then /step — the
        # same dividend values bucketed_overlap would produce over all spans.
        conc = self.conc_base.copy()
        kernels.overlap_into(
            conc, suffix_s, suffix_e, window.start, MINI_WINDOW_SECONDS, n_windows
        )
        predicted = owner.cluster_predictor.predict_from_concurrency(
            conc / MINI_WINDOW_SECONDS, config
        )
        # Merged busy coverage: closed prefix groups + re-merged open/suffix.
        tail_intervals: list[tuple[float, float]] = []
        open_iv = self.busy_open
        for s, e in zip(suffix_s.tolist(), suffix_e.tolist()):
            if open_iv is not None and s <= open_iv[1]:
                if e > open_iv[1]:
                    open_iv = (open_iv[0], e)
            else:
                if open_iv is not None:
                    tail_intervals.append(open_iv)
                open_iv = (s, e)
        if open_iv is not None:
            tail_intervals.append(open_iv)
        busy_overlap = self.busy_base.copy()
        if tail_intervals:
            arr = np.asarray(tail_intervals, dtype=np.float64)
            kernels.overlap_into(
                busy_overlap, np.ascontiguousarray(arr[:, 0]),
                np.ascontiguousarray(arr[:, 1]), window.start,
                MINI_WINDOW_SECONDS, n_windows,
            )
        # Activation bursts.
        suspend = config.auto_suspend_seconds
        tail_bursts: list[tuple[float, float]] = []
        if suspend <= 0:
            if starts.size:
                tail_bursts = [(float(starts[0]), window.end)]
            burst_overlap = np.zeros(n_windows, dtype=np.float64)
            n_closed_bursts = 0
            active_seconds: float = 0
            shortfalls: list[float] = []
        else:
            open_b = self.burst_open
            for s, e in zip(suffix_s.tolist(), suffix_e.tolist()):
                if open_b is None:
                    open_b = (s, e)
                elif s <= open_b[1] + suspend:
                    if e > open_b[1]:
                        open_b = (open_b[0], e)
                else:
                    tail_bursts.append(
                        (open_b[0], min(open_b[1] + suspend, window.end))
                    )
                    open_b = (s, e)
            if open_b is not None:
                tail_bursts.append((open_b[0], min(open_b[1] + suspend, window.end)))
            burst_overlap = self.burst_base.copy()
            n_closed_bursts = self.n_closed_bursts
            active_seconds = self.active_base
            shortfalls = self.shortfall_base
        if tail_bursts:
            arr = np.asarray(tail_bursts, dtype=np.float64)
            kernels.overlap_into(
                burst_overlap, np.ascontiguousarray(arr[:, 0]),
                np.ascontiguousarray(arr[:, 1]), window.start,
                MINI_WINDOW_SECONDS, n_windows,
            )
        # Billing — the exact statement sequence of QueryReplay._bill.
        base_clusters = float(max(config.min_clusters, 1))
        clusters = np.maximum(predicted, base_clusters)
        cluster_seconds_per_window = (
            base_clusters * burst_overlap
            + (clusters - base_clusters) * np.minimum(busy_overlap, burst_overlap)
        )
        cluster_seconds = float(cluster_seconds_per_window.sum())
        credits = cluster_seconds / HOUR * rate
        for delta in shortfalls:
            credits += delta / HOUR * rate
            cluster_seconds += delta
        for burst_start, burst_end in tail_bursts:
            duration = burst_end - burst_start
            active_seconds = active_seconds + duration
            if duration < MINIMUM_BILLED_SECONDS:
                delta = MINIMUM_BILLED_SECONDS - duration
                credits += delta / HOUR * rate
                cluster_seconds += delta
        hourly = kernels.hourly_credit_sums(
            cluster_seconds_per_window, window.start, MINI_WINDOW_SECONDS, HOUR, rate
        )
        latencies = self.lat.view()
        return ReplayResult(
            credits=credits,
            active_seconds=active_seconds,
            cluster_seconds=cluster_seconds,
            n_queries=n_queries,
            n_bursts=n_closed_bursts + len(tail_bursts),
            avg_latency=float(np.mean(latencies)) if n_queries else 0.0,
            p99_latency=percentile(latencies, 99),
            hourly_credits=hourly,
        )


class _SketchState:
    """Per-config quantized-hull state for the sketch mode."""

    def __init__(
        self, config: WarehouseConfig, owner: "IncrementalReplay"
    ) -> None:
        self.config = config
        self.lat = _Buf(np.float64)
        self.shifted = _Buf(np.float64)
        self.n_live = 0
        self.n_short = 0
        q = owner.resolution
        per = int(round(MINI_WINDOW_SECONDS / q))
        self.cells_per_window = per
        self.n_cells = owner.n_windows * per
        self.cover = np.zeros(self.n_cells, dtype=np.int64)
        self.interior = np.zeros(self.n_cells, dtype=np.int64)
        # Rebuild-equivalent bootstrap over whatever rows already landed.
        for k in range(owner._n):
            self.insert_record(owner, k, bootstrap=True)

    # -------------------------------------------------------------- editing
    def _span(self, owner: "IncrementalReplay", j: int) -> tuple[float, float]:
        s = float(self.shifted.get(j))
        e = min(s + float(self.lat.get(j)), owner.window.end)
        return s, e

    def _cells(self, owner: "IncrementalReplay", start: float, end: float):
        q = owner.resolution
        first = int((start - owner.window.start) // q)
        last = int(math.ceil((end - owner.window.start) / q)) - 1
        first = max(0, min(first, self.n_cells - 1))
        last = max(first, min(last, self.n_cells - 1))
        return first, last

    def _apply(self, owner: "IncrementalReplay", start: float, end: float, sign: int) -> None:
        if end <= start:
            return
        first, last = self._cells(owner, start, end)
        self.cover[first : last + 1] += sign
        if last - first >= 2:
            self.interior[first + 1 : last] += sign
        self.n_live += sign
        if end - start < MINIMUM_BILLED_SECONDS:
            self.n_short += sign

    def _shifted_value(self, owner: "IncrementalReplay", j: int) -> float:
        window_start = owner.window.start
        if owner._chained.get(j) and j > 0:
            arrival = (
                float(self.shifted.get(j - 1)) + float(self.lat.get(j - 1))
            ) + float(owner._lags.get(j))
            return arrival if arrival >= window_start else window_start
        raw = float(owner._raw_arrivals.get(j))
        return raw if raw >= window_start else window_start

    def insert_record(
        self, owner: "IncrementalReplay", k: int, bootstrap: bool = False
    ) -> None:
        lat_k = owner._rescale_one(k, self.config)
        self.lat.insert(k, lat_k)
        self.shifted.insert(k, self._shifted_value(owner, k))
        s, e = self._span(owner, k)
        self._apply(owner, s, e, +1)
        if not bootstrap:
            self._cascade(owner, k + 1)

    def reclassified(self, owner: "IncrementalReplay", k: int) -> None:
        self._cascade(owner, k)

    def _cascade(self, owner: "IncrementalReplay", j: int) -> None:
        n = owner._n
        while j < n:
            new = self._shifted_value(owner, j)
            old = float(self.shifted.get(j))
            if new == old:
                break
            old_s, old_e = self._span(owner, j)
            self._apply(owner, old_s, old_e, -1)
            self.shifted.set(j, new)
            new_s, new_e = self._span(owner, j)
            self._apply(owner, new_s, new_e, +1)
            j += 1

    def evict(self, owner: "IncrementalReplay", count: int, drop_cells: int) -> None:
        """Remove the first ``count`` records and slide the grid."""
        for j in range(count):
            s, e = self._span(owner, j)
            self._apply(owner, s, e, -1)
        self.lat.drop_front(count)
        self.shifted.drop_front(count)
        self.cover = self.cover[drop_cells:].copy()
        self.interior = self.interior[drop_cells:].copy()
        self.n_cells -= drop_cells

    # ------------------------------------------------------------- material
    @staticmethod
    def _runs(mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(first, last) cell index of each maximal True run."""
        if not mask.any():
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        padded = np.diff(np.concatenate(([0], mask.view(np.int8), [0])))
        starts = np.flatnonzero(padded == 1)
        ends = np.flatnonzero(padded == -1) - 1
        return starts, ends

    def _hull_credits(
        self,
        owner: "IncrementalReplay",
        conc_overlap: np.ndarray,
        busy_overlap: np.ndarray,
        run_first: np.ndarray,
        run_last: np.ndarray,
    ) -> tuple[float, float, int]:
        """Billing tail over one hull: (credits before minimums, busy, runs)."""
        window = owner.window
        config = self.config
        q = owner.resolution
        n_windows = owner.n_windows
        predicted = owner.cluster_predictor.predict_from_concurrency(
            conc_overlap / MINI_WINDOW_SECONDS, config
        )
        hull_starts = window.start + run_first.astype(np.float64) * q
        hull_ends = np.minimum(
            window.start + (run_last.astype(np.float64) + 1.0) * q, window.end
        )
        suspend = config.auto_suspend_seconds
        if hull_starts.size == 0:
            burst_starts = hull_starts
            burst_ends = hull_ends
        elif suspend <= 0:
            burst_starts = hull_starts[:1]
            burst_ends = np.asarray([window.end], dtype=np.float64)
        else:
            burst_starts, burst_ends = kernels.activation_bursts(
                hull_starts, hull_ends, suspend, window.end
            )
        burst_overlap = kernels.bucketed_overlap(
            burst_starts, burst_ends, window.start, MINI_WINDOW_SECONDS, n_windows
        )
        base_clusters = float(max(config.min_clusters, 1))
        clusters = np.maximum(predicted, base_clusters)
        cluster_seconds_per_window = (
            base_clusters * burst_overlap
            + (clusters - base_clusters) * np.minimum(busy_overlap, burst_overlap)
        )
        credits = float(cluster_seconds_per_window.sum()) / HOUR * (
            config.size.credits_per_hour
        )
        return credits, float(busy_overlap.sum()), int(run_first.size)

    def materialize(self, owner: "IncrementalReplay") -> SketchResult:
        q = owner.resolution
        per = self.cells_per_window
        n_windows = owner.n_windows
        padded = n_windows * per
        cover = self.cover
        interior = self.interior
        if cover.size < padded:
            cover = np.pad(cover, (0, padded - cover.size))
            interior = np.pad(interior, (0, padded - interior.size))
        cover2d = cover[:padded].reshape(n_windows, per)
        interior2d = interior[:padded].reshape(n_windows, per)
        conc_hi = q * cover2d.sum(axis=1).astype(np.float64)
        conc_lo = q * interior2d.sum(axis=1).astype(np.float64)
        busy_hi = q * (cover2d > 0).sum(axis=1).astype(np.float64)
        busy_lo = q * (interior2d > 0).sum(axis=1).astype(np.float64)
        outer_first, outer_last = self._runs(cover > 0)
        inner_first, inner_last = self._runs(interior > 0)
        credits_hi, busy_hi_total, n_outer = self._hull_credits(
            owner, conc_hi, busy_hi, outer_first, outer_last
        )
        credits_lo, busy_lo_total, _ = self._hull_credits(
            owner, conc_lo, busy_lo, inner_first, inner_last
        )
        # Billing minimums: the lower hull adds none; the upper hull adds one
        # 60 s minimum per burst that could possibly be short.  When
        # suspend >= 2q every outer run's true busy extent is within 2q of
        # the run extent and distinct bursts always land in distinct runs,
        # so only runs shorter than M + 2q can host a burst with a
        # shortfall.  For smaller suspends, a short burst must contain a
        # span shorter than M, so the short-span count caps it.  (Pick
        # resolution <= suspend/2 to stay on the tight branch.)
        suspend = self.config.auto_suspend_seconds
        if suspend <= 0:
            burst_cap = 1 if n_outer else 0
        elif suspend >= 2 * q:
            run_durations = (
                np.minimum(
                    owner.window.start + (outer_last.astype(np.float64) + 1.0) * q,
                    owner.window.end,
                )
                - (owner.window.start + outer_first.astype(np.float64) * q)
            )
            burst_cap = int(
                (run_durations < MINIMUM_BILLED_SECONDS + 2.0 * q).sum()
            )
        else:
            burst_cap = self.n_short
        credits_hi += (
            MINIMUM_BILLED_SECONDS * burst_cap / HOUR
            * self.config.size.credits_per_hour
        )
        return SketchResult(
            credits_lo=credits_lo,
            credits_hi=credits_hi,
            busy_seconds_lo=busy_lo_total,
            busy_seconds_hi=busy_hi_total,
            n_queries=self.lat.n,
            n_runs=n_outer,
        )


@dataclass
class IncrementalReplay:
    """Streaming what-if ledger over one telemetry window.

    Feed rows with :meth:`observe` (any arrival order within the window),
    slide the window start with :meth:`advance_start`, and materialize a
    per-config :class:`~repro.costmodel.replay.ReplayResult` (exact mode) or
    :class:`SketchResult` (sketch mode) with :meth:`result` /
    :meth:`sketch`.  See the module docstring for the cost model of each
    operation and the exactness / error-bound contracts.
    """

    latency_model: LatencyScalingModel
    gap_model: GapModel
    cluster_predictor: ClusterCountPredictor
    window: Window
    mode: str = "exact"
    resolution: float = DEFAULT_RESOLUTION
    max_configs: int = 16

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "sketch"):
            raise ConfigurationError(f"unknown mode: {self.mode!r}")
        if self.mode == "sketch":
            ratio = MINI_WINDOW_SECONDS / self.resolution
            if self.resolution <= 0 or abs(ratio - round(ratio)) > 1e-9:
                raise ConfigurationError(
                    "sketch resolution must positively divide "
                    f"MINI_WINDOW_SECONDS ({MINI_WINDOW_SECONDS}s); "
                    f"got {self.resolution}"
                )
        self._records: list[QueryRecord] = []
        self._templates: list[str] = []
        self._raw_arrivals = _Buf(np.float64)
        self._end_times = _Buf(np.float64)
        self._exec_seconds = _Buf(np.float64)
        self._cache_hits = _Buf(np.float64)
        self._size_values = _Buf(np.float64)
        self._chained_flags = _Buf(bool)
        self._chained = _Buf(bool)
        self._lags = _Buf(np.float64)
        self._gammas = _Buf(np.float64)
        self._n = 0
        self._rows_observed = 0
        self._rows_evicted = 0
        self._states: dict[tuple, _ExactState | _SketchState] = {}
        self._fit_key = self._current_fit_key()
        self._id_checksum_memo: tuple[int, str] | None = None

    # ------------------------------------------------------------ plumbing
    @property
    def n_windows(self) -> int:
        return max(1, int(math.ceil(self.window.duration / MINI_WINDOW_SECONDS)))

    @property
    def n_records(self) -> int:
        return self._n

    @property
    def records(self) -> list[QueryRecord]:
        """The retained rows, in maintained arrival order (copy)."""
        return list(self._records)

    def _current_fit_key(self) -> tuple[int, int]:
        return (self.gap_model.fit_generation, self.latency_model.fit_generation)

    def _templates_list(self) -> list[str]:
        return self._templates

    def _rescale_one(self, k: int, config: WarehouseConfig) -> float:
        """Scalar twin of one ``rescale_batch`` element (bit-identical)."""
        gamma = float(self._gammas.get(k))
        exponent = gamma * (float(self._size_values.get(k)) - config.size.value)
        factor = 2.0 ** exponent
        cache_hit = float(self._cache_hits.get(k))
        if cache_hit < 0.5:  # MIN_FIT_CACHE_HIT
            factor = 1.0 + (factor - 1.0) * max(cache_hit, 0.3)
        return float(self._exec_seconds.get(k)) * factor

    def _refit_check(self) -> None:
        key = self._current_fit_key()
        if key == self._fit_key:
            return
        self._fit_key = key
        # Re-derive every fitted-model-dependent column, then rebuild.
        if self._n:
            chained, lags = self.gap_model.classify_arrays(
                self._raw_arrivals.view(),
                self._end_times.view(),
                self._templates,
                self._chained_flags.view(),
            )
            self._chained.load(chained)
            self._lags.load(lags)
            self._gammas.load(self.latency_model.gamma_array(self._templates))
        if self.mode == "exact":
            for state in self._states.values():
                state.dirty = True
        else:
            self._states.clear()

    # ------------------------------------------------------------- updates
    def observe(self, record: QueryRecord) -> None:
        """Ingest one QUERY_HISTORY row (O(delta) amortized)."""
        arrival = float(record.arrival_time)
        if not (self.window.start <= arrival < self.window.end):
            raise ConfigurationError(
                f"arrival {arrival} outside window "
                f"[{self.window.start}, {self.window.end})"
            )
        self._refit_check()
        raw = self._raw_arrivals.view()
        k = int(np.searchsorted(raw, arrival, side="right"))
        self._records.insert(k, record)
        self._templates.insert(k, record.template_hash)
        self._raw_arrivals.insert(k, arrival)
        self._end_times.insert(k, float(record.end_time))
        self._exec_seconds.insert(k, float(record.execution_seconds))
        self._cache_hits.insert(k, float(record.cache_hit_ratio))
        self._size_values.insert(k, _SIZE_VALUES[record.warehouse_size])
        self._chained_flags.insert(k, bool(record.chained))
        self._gammas.insert(k, self.latency_model.gamma(record.template_hash))
        self._n += 1
        self._rows_observed += 1
        self._id_checksum_memo = None
        chained_k, lag_k = self._classify_at(k)
        self._chained.insert(k, chained_k)
        self._lags.insert(k, lag_k)
        if k + 1 < self._n:
            # The successor's predecessor changed; refresh its classification
            # before any per-config cascade reads it.
            chained_s, lag_s = self._classify_at(k + 1)
            self._chained.set(k + 1, chained_s)
            self._lags.set(k + 1, lag_s)
        for state in self._states.values():
            state.insert_record(self, k)

    def _classify_at(self, k: int) -> tuple[bool, float]:
        """Scalar twin of ``GapModel.classify_arrays`` element ``k``."""
        if k == 0:
            return False, 0.0
        return self.gap_model.classify_step(
            float(self._end_times.get(k - 1)),
            float(self._raw_arrivals.get(k)),
            self._templates[k - 1],
            self._templates[k],
            bool(self._chained_flags.get(k)),
        )

    def advance_start(self, new_start: float) -> int:
        """Slide the window start forward, evicting aged-out rows.

        Mirrors ``telemetry.query_history`` semantics: rows with
        ``arrival_time < new_start`` leave the window.  Exact mode amortizes
        a rebuild (the mini-window grid is anchored at the window start);
        sketch mode stays O(delta) when the slide is a whole number of
        mini-windows.  Returns the number of evicted rows.
        """
        if new_start < self.window.start:
            raise ConfigurationError("window start may only advance")
        if new_start == self.window.start:
            return 0
        if new_start > self.window.end:
            raise ConfigurationError("window start may not pass the window end")
        self._refit_check()
        raw = self._raw_arrivals.view()
        count = int(np.searchsorted(raw, new_start, side="left"))
        delta = new_start - self.window.start
        q = self.resolution
        aligned = (
            self.mode == "sketch"
            and abs(delta / MINI_WINDOW_SECONDS - round(delta / MINI_WINDOW_SECONDS))
            < 1e-9
        )
        if self.mode == "sketch" and aligned:
            drop_cells = int(round(delta / q))
            for state in self._states.values():
                state.evict(self, count, drop_cells)
        elif self.mode == "sketch":
            self._states.clear()
        else:
            # The mini-window grid is anchored at the window start, so every
            # folded coverage base is void: amortize one vectorized rebuild.
            for state in self._states.values():
                state.evict()
        del self._records[:count]
        del self._templates[:count]
        for buf in (
            self._raw_arrivals, self._end_times, self._exec_seconds,
            self._cache_hits, self._size_values, self._chained_flags,
            self._chained, self._lags, self._gammas,
        ):
            buf.drop_front(count)
        self._n -= count
        self._rows_evicted += count
        self._id_checksum_memo = None
        self.window = Window(new_start, self.window.end)
        # The boundary record loses its predecessor: reclassify + cascade.
        if self._n:
            chained0, lag0 = self._classify_at(0)
            changed = bool(self._chained.get(0)) != chained0 or (
                float(self._lags.get(0)) != lag0
            )
            self._chained.set(0, chained0)
            self._lags.set(0, lag0)
            if changed and self.mode == "sketch":
                for state in self._states.values():
                    state.reclassified(self, 0)
        return count

    # ------------------------------------------------------------- results
    def _state_for(self, config: WarehouseConfig):
        self._refit_check()
        key = _config_key(config)
        state = self._states.get(key)
        if state is not None:
            # Touch for LRU: the slider's warm candidate set stays resident.
            self._states[key] = self._states.pop(key)
        else:
            if len(self._states) >= self.max_configs:
                oldest = next(iter(self._states))
                del self._states[oldest]
            if self.mode == "exact":
                state = _ExactState(config, self.n_windows)
            else:
                state = _SketchState(config, self)
            self._states[key] = state
        return state

    def result(self, config: WarehouseConfig) -> ReplayResult:
        """Exact-mode materialization (bit-identical to a full replay)."""
        if self.mode != "exact":
            raise ConfigurationError("result() requires mode='exact'; use sketch()")
        return self._state_for(config).materialize(self)

    def sketch(self, config: WarehouseConfig) -> SketchResult:
        """Sketch-mode materialization (bounded-error interval summary)."""
        if self.mode != "sketch":
            raise ConfigurationError("sketch() requires mode='sketch'; use result()")
        return self._state_for(config).materialize(self)

    def warm_configs(self) -> list[tuple]:
        """The per-config states currently held (the slider's candidates)."""
        return list(self._states)

    # ------------------------------------------------------- reconciliation
    def full_replay(self, config: WarehouseConfig) -> ReplayResult:
        """A from-scratch :class:`QueryReplay` over the retained rows."""
        replay = QueryReplay(
            latency_model=self.latency_model,
            gap_model=self.gap_model,
            cluster_predictor=self.cluster_predictor,
            vectorized=True,
        )
        return replay.replay(self.records, config, self.window)

    def verify(self, config: WarehouseConfig) -> tuple[ReplayResult, ReplayResult, float]:
        """(incremental, full, max |divergence|) — 0.0 in exact mode."""
        full = self.full_replay(config)
        if self.mode == "exact":
            inc = self.result(config)
            divergence = max(
                abs(inc.credits - full.credits),
                abs(inc.active_seconds - full.active_seconds),
                abs(inc.cluster_seconds - full.cluster_seconds),
            )
        else:
            sk = self.sketch(config)
            inc = full
            divergence = max(
                full.credits - sk.credits_hi, sk.credits_lo - full.credits, 0.0
            )
        return inc, full, divergence

    # ----------------------------------------------------------- durability
    def _id_checksum(self) -> str:
        memo = self._id_checksum_memo
        if memo is not None and memo[0] == self._rows_observed:
            return memo[1]
        digest = state_checksum({"ids": sorted(r.query_id for r in self._records)})
        self._id_checksum_memo = (self._rows_observed, digest)
        return digest

    def state_dict(self) -> dict:
        """Canonical streaming state for checkpoint/restore.

        Row contents are recoverable from telemetry, so the checkpoint
        stores the window, mode, counters and an order-independent checksum
        of the ingested row ids; after :meth:`load_state_dict` the owner
        re-feeds the rows and :meth:`verify_restored` confirms the ledger
        re-converged.  Byte-identical round-trip is over this dict.
        """
        return {
            "mode": self.mode,
            "resolution": self.resolution,
            "window": encode_window(self.window),
            "n_records": self._n,
            "rows_observed": self._rows_observed,
            "rows_evicted": self._rows_evicted,
            "fit_key": list(self._fit_key),
            "id_checksum": self._id_checksum(),
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(
            state,
            (
                "mode", "resolution", "window", "n_records",
                "rows_observed", "rows_evicted", "fit_key", "id_checksum",
            ),
            "IncrementalReplay",
        )
        if self._n:
            raise ConfigurationError("load_state_dict requires an empty ledger")
        self.mode = str(state["mode"])
        self.resolution = float(state["resolution"])
        self.window = decode_window(state["window"])
        self._restore_expected = (
            int(state["n_records"]), str(state["id_checksum"]),
            int(state["rows_observed"]), int(state["rows_evicted"]),
        )

    def verify_restored(self) -> None:
        """After re-feeding rows post-restore, check we converged."""
        expected = getattr(self, "_restore_expected", None)
        if expected is None:
            return
        n, checksum, rows_observed, rows_evicted = expected
        if self._n != n or self._id_checksum() != checksum:
            raise RecoveryError(
                f"incremental ledger restore mismatch: re-fed {self._n} rows "
                f"(checksum {self._id_checksum()[:12]}), checkpoint recorded "
                f"{n} (checksum {checksum[:12]})"
            )
        # Restore the lifetime counters so the next checkpoint is identical.
        self._rows_observed = rows_observed
        self._rows_evicted = rows_evicted
        self._id_checksum_memo = None
        del self._restore_expected
