"""Cost-model CLI: smoke-drive the incremental what-if ledger.

``costmodel stream`` feeds a deterministic synthetic QUERY_HISTORY row by
row (completion order, as a streaming ingest would see it) into an
exact-mode and a sketch-mode :class:`IncrementalReplay`, printing the
running projection, and exits non-zero unless

* the exact ledger's final answer is **bit-identical** to a fresh full
  :class:`QueryReplay` over the same rows (divergence must print 0.0), and
* the sketch interval encloses the exact credits.

CI runs this in the observability smoke job: a refactor that breaks the
streaming fold shows up as a non-zero divergence here before any property
test shrinks a counterexample.
"""

from __future__ import annotations

import argparse
from typing import IO

from repro.common.rng import RngRegistry
from repro.common.simtime import HOUR, Window
from repro.costmodel.clusters import ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.incremental import IncrementalReplay
from repro.costmodel.latency import LatencyScalingModel
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

_SIZES = (WarehouseSize.S, WarehouseSize.M, WarehouseSize.L)


def _synthetic_records(n: int, horizon: float, seed: int) -> list[QueryRecord]:
    rng = RngRegistry(seed=seed).stream("costmodel.stream")
    gaps = rng.exponential(horizon / (n + 1), size=n)
    arrivals = gaps.cumsum()
    durations = rng.lognormal(mean=2.0, sigma=1.0, size=n)
    templates = rng.integers(0, 8, size=n)
    sizes = rng.integers(0, len(_SIZES), size=n)
    cache_hits = rng.uniform(0.0, 1.0, size=n)
    chained = rng.uniform(0.0, 1.0, size=n) < 0.1
    return [
        QueryRecord(
            query_id=i,
            warehouse="STREAM_WH",
            text_hash=f"q{i}",
            template_hash=f"t{int(templates[i])}",
            arrival_time=float(arrivals[i]),
            start_time=float(arrivals[i]),
            end_time=float(arrivals[i]) + float(durations[i]),
            execution_seconds=float(durations[i]),
            warehouse_size=_SIZES[int(sizes[i])],
            cache_hit_ratio=float(cache_hits[i]),
            cluster_number=1,
            chained=bool(chained[i]),
            completed=True,
        )
        for i in range(n)
    ]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="costmodel_command", required=True)
    stream = sub.add_parser(
        "stream",
        help="stream a synthetic history through the incremental ledger "
        "and verify it against a full replay",
    )
    stream.add_argument("--rows", type=int, default=400, help="synthetic rows")
    stream.add_argument(
        "--hours", type=float, default=6.0, help="window length in sim hours"
    )
    stream.add_argument("--seed", type=int, default=20260808)
    stream.add_argument(
        "--resolution",
        type=float,
        default=60.0,
        help="sketch cell width in seconds (must divide 300)",
    )
    stream.add_argument(
        "--every", type=int, default=0,
        help="print the running projection every N rows (0 = quarters)",
    )


def run(args: argparse.Namespace, out: IO[str] | None = None) -> int:
    import sys

    out = out if out is not None else sys.stdout
    window = Window(0.0, args.hours * HOUR)
    records = _synthetic_records(args.rows, window.end, args.seed)
    records = [r for r in records if r.arrival_time < window.end]
    latency = LatencyScalingModel().fit(records)
    gap_model = GapModel().fit(records)
    config = WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=120.0)
    clusters = ClusterCountPredictor().fit(records, config)
    exact = IncrementalReplay(latency, gap_model, clusters, window)
    sketch = IncrementalReplay(
        latency, gap_model, clusters, window,
        mode="sketch", resolution=args.resolution,
    )
    every = args.every if args.every > 0 else max(1, len(records) // 4)
    print(
        f"streaming {len(records)} rows over {window.duration / HOUR:g} h "
        f"under {config.describe()}",
        file=out,
    )
    print(f"{'rows':>6} {'exact':>10} {'sketch lo':>10} {'sketch hi':>10}", file=out)
    feed = sorted(records, key=lambda r: r.end_time)
    for i, record in enumerate(feed):
        exact.observe(record)
        sketch.observe(record)
        if (i + 1) % every == 0 or i == len(feed) - 1:
            result = exact.result(config)
            bounds = sketch.sketch(config)
            print(
                f"{i + 1:>6} {result.credits:>10.4f} "
                f"{bounds.credits_lo:>10.4f} {bounds.credits_hi:>10.4f}",
                file=out,
            )
    incremental, full, divergence = exact.verify(config)
    bounds = sketch.sketch(config)
    slack = 1e-9 * max(1.0, abs(bounds.credits_hi))
    enclosed = (
        bounds.credits_lo - slack <= full.credits <= bounds.credits_hi + slack
    )
    print(
        f"final: incremental={incremental.credits:.6f}cr "
        f"full-replay={full.credits:.6f}cr divergence={divergence}",
        file=out,
    )
    print(
        f"sketch: [{bounds.credits_lo:.6f}, {bounds.credits_hi:.6f}]cr "
        f"(width {bounds.credits_hi - bounds.credits_lo:.6f}) "
        f"{'encloses' if enclosed else 'MISSES'} the exact credits",
        file=out,
    )
    if divergence != 0.0:
        print("FAIL: incremental ledger diverged from the full replay", file=out)
        return 1
    if not enclosed:
        print("FAIL: sketch interval does not enclose the exact credits", file=out)
        return 1
    return 0
