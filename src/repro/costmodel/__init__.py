"""The warehouse cost model (§5): analytical query replay calibrated by
machine-learned parameter estimators.

Unlike traditional query-optimizer cost models that emit unitless plan
scores, this model estimates *billable credits* directly, enabling both the
smart model's action evaluation and value-based pricing.
"""

from repro.costmodel.bytes_billed import (
    BytesBilledEstimate,
    BytesBilledModel,
    EngineComparison,
    compare_engines,
)
from repro.costmodel.clusters import (
    MINI_WINDOW_SECONDS,
    ClusterCountPredictor,
    concurrency_profile,
)
from repro.costmodel.gaps import GapModel, GapObservation
from repro.costmodel.latency import DEFAULT_GAMMA, LatencyScalingModel, TemplateScaling
from repro.costmodel.model import ActionImpact, SavingsEstimate, WarehouseCostModel
from repro.costmodel.replay import QueryReplay, ReplayResult

__all__ = [
    "LatencyScalingModel",
    "TemplateScaling",
    "DEFAULT_GAMMA",
    "GapModel",
    "GapObservation",
    "ClusterCountPredictor",
    "concurrency_profile",
    "MINI_WINDOW_SECONDS",
    "QueryReplay",
    "ReplayResult",
    "WarehouseCostModel",
    "SavingsEstimate",
    "ActionImpact",
    "BytesBilledModel",
    "BytesBilledEstimate",
    "EngineComparison",
    "compare_engines",
]
