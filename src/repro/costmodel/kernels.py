"""Vectorized NumPy kernels for the replay hot path (§5.1).

The what-if replay is called continuously — every smart-model tick asks
"what would this window have cost under that config" — so the per-query /
per-mini-window Python loops in :mod:`repro.costmodel.replay` dominate
fleet-scale experiment wall-time.  These kernels replace them with NumPy
array programs.

**Float-exactness contract.**  Each kernel reproduces, bit for bit, the
result of the scalar reference it replaces (kept as ``*_scalar`` next to
its call site and locked in by ``tests/props/test_replay_kernels.py``).
That is only possible because the accumulation *order* is preserved:

* :func:`bucketed_overlap` expands every (span, bucket) pair explicitly and
  accumulates with ``np.add.at`` — unbuffered, element order — in the same
  span-major / bucket-ascending order the scalar nested loop uses, and
  computes each bucket edge with the very expressions the scalar code uses
  (``origin + w * width`` and ``w_start + width``, never ``(w + 1) * width``);
* :func:`merge_intervals` and :func:`activation_bursts` group sorted spans
  with a running ``np.maximum.accumulate`` — the cummax at index ``i - 1``
  equals the scalar loop's running group end, because a group's start
  strictly exceeds every earlier group's end (plus suspend, for bursts);
* :func:`hourly_credit_sums` accumulates with ``np.bincount``, which sums
  weights in input order — ascending mini-window, like the scalar loop —
  and derives each hour with ``np.floor_divide``, the array twin of the
  scalar ``int(t // HOUR)``.

Sums that the scalar references already perform with ``np.ndarray.sum()``
(pairwise) stay ``np.ndarray.sum()`` here, so both paths round identically.
"""

from __future__ import annotations

import numpy as np

#: Interval sets travel either as the legacy ``[(start, end), ...]`` list or
#: as a ``(starts, ends)`` pair of float64 arrays (the vectorized form).
IntervalArrays = tuple[np.ndarray, np.ndarray]

_EMPTY = np.empty(0, dtype=np.float64)


def as_interval_arrays(
    intervals: list[tuple[float, float]] | IntervalArrays,
) -> IntervalArrays:
    """Normalize an interval set to a ``(starts, ends)`` float64 array pair."""
    if (
        isinstance(intervals, tuple)
        and len(intervals) == 2
        and isinstance(intervals[0], np.ndarray)
    ):
        starts, ends = intervals
        return np.asarray(starts, dtype=np.float64), np.asarray(ends, dtype=np.float64)
    if len(intervals) == 0:
        return _EMPTY, _EMPTY
    pairs = np.asarray(intervals, dtype=np.float64)
    return np.ascontiguousarray(pairs[:, 0]), np.ascontiguousarray(pairs[:, 1])


def bucketed_overlap(
    starts: np.ndarray,
    ends: np.ndarray,
    origin: float,
    width: float,
    n_buckets: int,
) -> np.ndarray:
    """Seconds of each of ``n_buckets`` fixed-width buckets covered by spans.

    Vectorized twin of the nested loop in ``QueryReplay._coverage_scalar`` /
    ``concurrency_profile_scalar``: for every span, the overlap with each
    bucket it touches is accumulated into that bucket.  Spans are *not*
    required to be disjoint — overlapping spans stack, which is exactly what
    the concurrency profile wants.
    """
    out = np.zeros(n_buckets, dtype=np.float64)
    overlap_into(out, starts, ends, origin, width, n_buckets)
    return out


def overlap_into(
    out: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    origin: float,
    width: float,
    n_buckets: int,
) -> None:
    """Accumulate span/bucket overlaps into an existing coverage array.

    The in-place form of :func:`bucketed_overlap`: because ``np.add.at``
    applies its updates sequentially in pair order, accumulating a *suffix*
    of spans into an ``out`` that already holds the sums of the prefix (in
    span order) reproduces, bit for bit, one :func:`bucketed_overlap` call
    over the concatenated span set.  ``repro.costmodel.incremental`` builds
    its frozen-prefix/live-suffix coverage folds on exactly this property.
    """
    if starts.size == 0 or n_buckets <= 0:
        return
    first = np.floor_divide(starts - origin, width).astype(np.int64)
    last = np.floor_divide(ends - origin, width).astype(np.int64)
    np.maximum(first, 0, out=first)
    np.minimum(last, n_buckets - 1, out=last)
    counts = last - first + 1
    touching = counts > 0
    if not touching.any():
        return
    first = first[touching]
    counts = counts[touching]
    span_starts = starts[touching]
    span_ends = ends[touching]
    # Ragged expansion: one row per (span, bucket) pair, span-major with
    # buckets ascending within each span — the scalar loop's order.
    span_of_pair = np.repeat(np.arange(first.size), counts)
    bucket_offset = np.arange(int(counts.sum())) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    buckets = first[span_of_pair] + bucket_offset
    bucket_start = origin + buckets * width
    bucket_end = bucket_start + width
    overlap = np.minimum(span_ends[span_of_pair], bucket_end) - np.maximum(
        span_starts[span_of_pair], bucket_start
    )
    np.maximum(overlap, 0.0, out=overlap)
    np.add.at(out, buckets, overlap)


def merge_intervals(starts: np.ndarray, ends: np.ndarray) -> IntervalArrays:
    """Union of possibly-overlapping busy intervals, sorted by start.

    Twin of ``repro.costmodel.replay._merge_intervals``: a new merged group
    begins exactly where a start exceeds the running maximum end of
    everything before it.
    """
    if starts.size == 0:
        return _EMPTY, _EMPTY
    running_end = np.maximum.accumulate(ends)
    is_group_start = np.empty(starts.size, dtype=bool)
    is_group_start[0] = True
    is_group_start[1:] = starts[1:] > running_end[:-1]
    group_first = np.flatnonzero(is_group_start)
    group_last = np.append(group_first[1:] - 1, starts.size - 1)
    return starts[group_first], running_end[group_last]


def activation_bursts(
    starts: np.ndarray,
    ends: np.ndarray,
    suspend: float,
    window_end: float,
) -> IntervalArrays:
    """Merge sorted busy intervals into billable activation bursts.

    Twin of ``QueryReplay._activation_bursts_scalar`` for ``suspend > 0``:
    gaps no longer than ``suspend`` keep the warehouse up, and every burst
    bills one auto-suspend tail (clipped to the window end).  The caller
    handles the never-suspends (``suspend <= 0``) special case.
    """
    if starts.size == 0:
        return _EMPTY, _EMPTY
    running_end = np.maximum.accumulate(ends)
    is_burst_start = np.empty(starts.size, dtype=bool)
    is_burst_start[0] = True
    is_burst_start[1:] = starts[1:] > running_end[:-1] + suspend
    burst_first = np.flatnonzero(is_burst_start)
    burst_last = np.append(burst_first[1:] - 1, starts.size - 1)
    burst_ends = np.minimum(running_end[burst_last] + suspend, window_end)
    return starts[burst_first], burst_ends


def hourly_credit_sums(
    cluster_seconds_per_window: np.ndarray,
    origin: float,
    width: float,
    hour_seconds: float,
    rate: float,
) -> dict[int, float]:
    """Per-hour credit totals from per-mini-window cluster-seconds.

    Twin of the hourly loop in ``QueryReplay._hourly_credits_scalar``:
    windows with no billed cluster-seconds contribute no key, and each
    window's credits are ``cluster_seconds / hour_seconds * rate`` summed in
    ascending-window order (``np.bincount`` accumulates in input order).
    """
    billed = np.flatnonzero(cluster_seconds_per_window > 0)
    if billed.size == 0:
        return {}
    window_start = origin + billed * width
    hours = np.floor_divide(window_start, hour_seconds).astype(np.int64)
    contribution = cluster_seconds_per_window[billed] / hour_seconds * rate
    base = int(hours[0])
    offsets = hours - base
    sums = np.bincount(offsets, weights=contribution)
    seen = np.bincount(offsets) > 0
    return {base + int(i): float(sums[i]) for i in np.flatnonzero(seen)}
