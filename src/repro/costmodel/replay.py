"""Analytical query replay (§5.1) — the what-if engine of the cost model.

Given a window of telemetry and a *hypothetical* warehouse configuration
(usually the customer's original settings, for the without-Keebo estimate),
the replay walks the workload timeline and computes what the CDW would have
billed:

1. every query's execution time is rescaled to the hypothetical size by the
   latency model; chained arrivals shift with their predecessor's
   counterfactual completion (gap model), independent arrivals keep their
   original timestamps;
2. busy intervals are merged into *activation bursts*: the warehouse stays
   billable through gaps shorter than the auto-suspend interval and for one
   auto-suspend tail after each burst (``auto_suspend = 0`` means the
   warehouse never suspends and bills to the end of the window);
3. the cluster-count predictor estimates how many clusters would have been
   running in each mini-window, bounded by the hypothetical min/max;
4. credits = Σ (clusters × burst-overlap × rate), plus the 60 s minimum for
   bursts shorter than a minute.

The result also carries counterfactual latency statistics so the smart
model can ask "what would this action do to performance" (§4.3).

The replay runs continuously at fleet scale, so the hot steps are
vectorized NumPy kernels (:mod:`repro.costmodel.kernels`); the original
per-record / per-mini-window loops are kept as ``*_scalar`` reference
implementations, selected with ``QueryReplay(vectorized=False)`` and locked
to bit-identical results by ``tests/props/test_replay_kernels.py``.  See
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import itertools
import math
import operator
from dataclasses import dataclass, field

import numpy as np

from repro.common.simtime import HOUR, Window, hour_index
from repro.common.stats import percentile
from repro.obs import trace as obs
from repro.costmodel import kernels
from repro.costmodel.clusters import MINI_WINDOW_SECONDS, ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.kernels import IntervalArrays
from repro.costmodel.latency import LatencyScalingModel
from repro.warehouse.billing import MINIMUM_BILLED_SECONDS
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

#: Buckets for the what-if active-fraction histogram: coverage is a ratio
#: in [0, 1], so the default (seconds-scaled) bucket boundaries fit badly.
_COVERAGE_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Enum-member -> float(size.value), so column extraction never touches the
#: (slow) Enum descriptor protocol per record.
_SIZE_VALUES = {size: float(size.value) for size in WarehouseSize}

#: The four float columns the timeline needs, pulled in one C-level pass.
_FLOAT_COLUMNS = operator.attrgetter(
    "arrival_time", "end_time", "execution_seconds", "cache_hit_ratio"
)


@dataclass
class ReplayResult:
    """Outcome of one what-if replay."""

    credits: float
    active_seconds: float
    cluster_seconds: float
    n_queries: int
    n_bursts: int
    avg_latency: float
    p99_latency: float
    hourly_credits: dict[int, float] = field(default_factory=dict)

    @property
    def cost_is_zero(self) -> bool:
        return self.credits <= 0.0


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of (sorted) possibly-overlapping busy intervals.

    Degenerate inputs are part of the contract — the incremental ledger
    (:mod:`repro.costmodel.incremental`) splits and re-merges spans at
    window and fold boundaries, so this must agree with the vectorized
    kernel (:func:`repro.costmodel.kernels.merge_intervals`) on:

    * the empty set (``[]`` in, ``[]`` out);
    * zero-length ``(t, t)`` spans — they seed a group, and a later span
      starting exactly at ``t`` joins it (the group test is ``start <=
      prev_end``, matching the kernel's strict ``>`` group-break);
    * exactly-touching endpoints — ``(a, b), (b, c)`` merges to ``(a, c)``;
    * contained spans — a span ending before the running group end must
      not shrink it.
    """
    merged: list[tuple[float, float]] = []
    for start, end in intervals:
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            if end > prev_end:
                merged[-1] = (prev_start, end)
        else:
            merged.append((start, end))
    return merged


@dataclass
class QueryReplay:
    """Replays telemetry under a hypothetical configuration.

    ``vectorized`` selects the NumPy kernel path (default) or the scalar
    reference loops; both produce bit-identical :class:`ReplayResult`s.
    """

    latency_model: LatencyScalingModel
    gap_model: GapModel
    cluster_predictor: ClusterCountPredictor
    vectorized: bool = True
    #: Memo of the config-independent history prep (column extraction,
    #: chain classification, per-record gammas).  The smart model replays
    #: one telemetry snapshot under many candidate configs, so every
    #: replay after the first reuses the prep.  Keyed on the *identity* of
    #: the records list (query_history builds a fresh list per fetch and
    #: QueryRecord is frozen) plus both models' ``fit_generation``.
    _history_memo: tuple | None = field(default=None, init=False, repr=False, compare=False)

    def replay(
        self, records: list[QueryRecord], config: WarehouseConfig, window: Window
    ) -> ReplayResult:
        if not records:
            return ReplayResult(0.0, 0.0, 0.0, 0, 0, 0.0, 0.0)
        rec = obs.recorder()
        if rec is None:
            # Disabled-observability fast path: no span bookkeeping and no
            # config.describe() dict per what-if call (the smart model makes
            # thousands per run — bench_fig6_overhead.py measures this).
            return self._replay_impl(records, config, window)
        with rec.span(
            "costmodel.replay", window.end, config=config.describe()
        ) as sp:
            result = self._replay_impl(records, config, window)
            self._observe(sp, result, window)
        return result

    def _replay_impl(
        self, records: list[QueryRecord], config: WarehouseConfig, window: Window
    ) -> ReplayResult:
        if self.vectorized:
            intervals, latencies = self._counterfactual_timeline(records, config, window)
            bursts = self._activation_bursts(intervals, config, window)
            burst_pairs = list(zip(bursts[0].tolist(), bursts[1].tolist()))
        else:
            intervals, latencies = self._counterfactual_timeline_scalar(
                records, config, window
            )
            bursts = self._activation_bursts_scalar(intervals, config, window)
            burst_pairs = bursts
        credits, cluster_seconds, hourly = self._bill(bursts, intervals, config, window)
        active_seconds = sum(end - start for start, end in burst_pairs)
        n_queries = len(latencies)
        return ReplayResult(
            credits=credits,
            active_seconds=active_seconds,
            cluster_seconds=cluster_seconds,
            n_queries=n_queries,
            n_bursts=len(burst_pairs),
            avg_latency=float(np.mean(latencies)) if n_queries else 0.0,
            p99_latency=percentile(latencies, 99),
            hourly_credits=hourly,
        )

    @staticmethod
    def _observe(sp, result: ReplayResult, window: Window) -> None:
        """Replay coverage and counterfactual-timeline stats, when recording."""
        rec = obs.recorder()
        if rec is None:
            return
        coverage = result.active_seconds / window.duration if window.duration > 0 else 0.0
        sp.set(
            n_queries=result.n_queries,
            n_bursts=result.n_bursts,
            active_seconds=result.active_seconds,
            credits=result.credits,
            coverage=coverage,
        )
        rec.counter("repro.costmodel.replays").inc(time=window.end)
        rec.counter("repro.costmodel.replayed_queries").inc(
            result.n_queries, time=window.end
        )
        rec.histogram("repro.costmodel.replay_active_fraction", _COVERAGE_BUCKETS).observe(
            coverage, time=window.end
        )
        rec.histogram("repro.costmodel.replay_p99_latency").observe(
            result.p99_latency, time=window.end
        )

    # ------------------------------------------------------ vectorized steps
    def _history_prep(self, records: list[QueryRecord]):
        """Config-independent replay prep, memoized per telemetry snapshot.

        Everything here is a pure function of the records and the fitted
        gap/latency models, so one extraction serves every what-if config
        replayed against the same history.  The downstream kernels never
        write into these arrays (they allocate fresh outputs), which is
        what makes sharing them across replays safe.
        """
        key = (
            len(records),
            self.gap_model.fit_generation,
            self.latency_model.fit_generation,
        )
        memo = self._history_memo
        if memo is not None and memo[0] is records and memo[1] == key:
            return memo[2]
        columns = self._columns(records)
        raw_arrivals, end_times, _, _, _, chained_flags, templates = columns
        chained, lags = self.gap_model.classify_arrays(
            raw_arrivals, end_times, templates, chained_flags
        )
        gammas = self.latency_model.gamma_array(templates)
        prepared = (columns, chained, lags, gammas)
        self._history_memo = (records, key, prepared)
        return prepared

    @staticmethod
    def _columns(
        records: list[QueryRecord],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[str]]:
        """Arrival-ordered replay columns extracted in one pass."""
        ordered = sorted(records, key=operator.attrgetter("arrival_time"))
        n = len(ordered)
        # One flattened fromiter for all four float columns beats one pass
        # per column; attrgetter + map keeps the extraction loop in C.
        flat = np.fromiter(
            itertools.chain.from_iterable(map(_FLOAT_COLUMNS, ordered)),
            dtype=np.float64,
            count=4 * n,
        ).reshape(n, 4)
        # Enum attribute access per record is measurably slow; map the enum
        # members to their float values through a precomputed dict instead.
        size_values = np.fromiter(
            map(
                _SIZE_VALUES.__getitem__,
                map(operator.attrgetter("warehouse_size"), ordered),
            ),
            dtype=np.float64,
            count=n,
        )
        chained_flags = np.fromiter(
            map(operator.attrgetter("chained"), ordered), dtype=bool, count=n
        )
        templates = list(map(operator.attrgetter("template_hash"), ordered))
        return (
            np.ascontiguousarray(flat[:, 0]),
            np.ascontiguousarray(flat[:, 1]),
            np.ascontiguousarray(flat[:, 2]),
            np.ascontiguousarray(flat[:, 3]),
            size_values,
            chained_flags,
            templates,
        )

    def _counterfactual_timeline(
        self, records: list[QueryRecord], config: WarehouseConfig, window: Window
    ) -> tuple[IntervalArrays, np.ndarray]:
        """Vectorized twin of :meth:`_counterfactual_timeline_scalar`.

        Classification, latency rescaling, window clipping and the interval
        sort are all array programs; only the chained-arrival recurrence —
        a genuinely sequential float chain whose rounding order is part of
        the contract — runs as a Python loop over the (sparse) chained
        indices.
        """
        (
            (
                raw_arrivals,
                end_times,
                exec_seconds,
                cache_hits,
                size_values,
                chained_flags,
                templates,
            ),
            chained,
            lags,
            gammas,
        ) = self._history_prep(records)
        latencies = self.latency_model.rescale_batch(
            templates, size_values, cache_hits, exec_seconds, config.size,
            gammas=gammas,
        )
        arrivals = np.maximum(raw_arrivals, window.start)
        chained_idx = np.flatnonzero(chained)
        if chained_idx.size:
            shifted_arrivals = arrivals.tolist()
            latency_list = latencies.tolist()
            lag_list = lags.tolist()
            window_start = window.start
            for i in chained_idx.tolist():
                # prev_end + lag, clipped — the scalar loop's exact ops.
                arrival = (
                    shifted_arrivals[i - 1] + latency_list[i - 1]
                ) + lag_list[i]
                shifted_arrivals[i] = (
                    arrival if arrival >= window_start else window_start
                )
            arrivals = np.asarray(shifted_arrivals, dtype=np.float64)
        ends = np.minimum(arrivals + latencies, window.end)
        live = ends > arrivals
        starts = arrivals[live]
        finishes = ends[live]
        order = np.lexsort((finishes, starts))
        return (starts[order], finishes[order]), latencies

    @staticmethod
    def _activation_bursts(
        intervals: IntervalArrays, config: WarehouseConfig, window: Window
    ) -> IntervalArrays:
        """Merge busy interval arrays into billable activation bursts."""
        starts, ends = intervals
        if starts.size == 0:
            return starts[:0], ends[:0]
        suspend = config.auto_suspend_seconds
        if suspend <= 0:
            # Never auto-suspends: active from first arrival to window end.
            return starts[:1], np.asarray([window.end], dtype=np.float64)
        return kernels.activation_bursts(starts, ends, suspend, window.end)

    # -------------------------------------------------------- scalar steps
    # Reference implementations: the pre-vectorization loops, kept verbatim
    # as the ground truth for the kernel equivalence tests.
    def _counterfactual_timeline_scalar(
        self, records: list[QueryRecord], config: WarehouseConfig, window: Window
    ) -> tuple[list[tuple[float, float]], list[float]]:
        observations = self.gap_model.classify(records)
        intervals: list[tuple[float, float]] = []
        latencies: list[float] = []
        prev_end: float | None = None
        for observation in observations:
            latency = self.latency_model.rescale(observation.record, config.size)
            if observation.chained and prev_end is not None:
                arrival = prev_end + observation.lag_after_predecessor
            else:
                arrival = observation.record.arrival_time
            arrival = max(arrival, window.start)
            end = min(arrival + latency, window.end)
            if end > arrival:
                intervals.append((arrival, end))
            latencies.append(latency)
            prev_end = arrival + latency
        intervals.sort()
        return intervals, latencies

    @staticmethod
    def _activation_bursts_scalar(
        intervals: list[tuple[float, float]], config: WarehouseConfig, window: Window
    ) -> list[tuple[float, float]]:
        """Merge busy intervals into billable activation bursts."""
        if not intervals:
            return []
        suspend = config.auto_suspend_seconds
        if suspend <= 0:
            # Never auto-suspends: active from first arrival to window end.
            return [(intervals[0][0], window.end)]
        bursts: list[tuple[float, float]] = []
        burst_start, busy_end = intervals[0]
        for start, end in intervals[1:]:
            if start <= busy_end + suspend:
                busy_end = max(busy_end, end)
            else:
                bursts.append((burst_start, min(busy_end + suspend, window.end)))
                burst_start, busy_end = start, end
        bursts.append((burst_start, min(busy_end + suspend, window.end)))
        return bursts

    @staticmethod
    def _coverage_scalar(
        spans: list[tuple[float, float]], window: Window, n_windows: int
    ) -> np.ndarray:
        """Seconds of each mini-window covered by the (disjoint) spans."""
        coverage = np.zeros(n_windows)
        for span_start, span_end in spans:
            first = int((span_start - window.start) // MINI_WINDOW_SECONDS)
            last = int((span_end - window.start) // MINI_WINDOW_SECONDS)
            for w in range(max(first, 0), min(last, n_windows - 1) + 1):
                w_start = window.start + w * MINI_WINDOW_SECONDS
                w_end = w_start + MINI_WINDOW_SECONDS
                coverage[w] += max(0.0, min(span_end, w_end) - max(span_start, w_start))
        return coverage

    @staticmethod
    def _hourly_credits_scalar(
        cluster_seconds_per_window: np.ndarray, window: Window, rate: float
    ) -> dict[int, float]:
        """Per-hour credit totals (scalar reference for the bincount kernel)."""
        hourly: dict[int, float] = {}
        for w in range(len(cluster_seconds_per_window)):
            if cluster_seconds_per_window[w] <= 0:
                continue
            h = hour_index(window.start + w * MINI_WINDOW_SECONDS)
            hourly[h] = hourly.get(h, 0.0) + cluster_seconds_per_window[w] / HOUR * rate
        return hourly

    # -------------------------------------------------------------- billing
    def _bill(
        self,
        bursts: list[tuple[float, float]] | IntervalArrays,
        intervals: list[tuple[float, float]] | IntervalArrays,
        config: WarehouseConfig,
        window: Window,
    ) -> tuple[float, float, dict[int, float]]:
        rate = config.size.credits_per_hour
        n_windows = max(1, int(math.ceil(window.duration / MINI_WINDOW_SECONDS)))
        if self.vectorized:
            burst_starts, burst_ends = bursts
            predicted = self.cluster_predictor.predict(
                intervals, window.start, window.end, config, vectorized=True
            )
            burst_overlap = kernels.bucketed_overlap(
                burst_starts, burst_ends, window.start, MINI_WINDOW_SECONDS, n_windows
            )
            merged_starts, merged_ends = kernels.merge_intervals(*intervals)
            busy_overlap = kernels.bucketed_overlap(
                merged_starts, merged_ends, window.start, MINI_WINDOW_SECONDS, n_windows
            )
            burst_pairs = list(zip(burst_starts.tolist(), burst_ends.tolist()))
        else:
            predicted = self.cluster_predictor.predict(
                intervals, window.start, window.end, config, vectorized=False
            )
            burst_overlap = self._coverage_scalar(bursts, window, n_windows)
            busy_overlap = self._coverage_scalar(
                _merge_intervals(intervals), window, n_windows
            )
            burst_pairs = bursts
        if len(predicted) < n_windows:  # pad defensively
            predicted = np.pad(predicted, (0, n_windows - len(predicted)))
        # Extra clusters only bill while there is concurrent work for them:
        # cluster 1 stays up through idle gaps (until suspend), but scale-out
        # clusters retire shortly after the queue drains, so their billed
        # time tracks the *busy* coverage, not the whole activation burst.
        base_clusters = float(max(config.min_clusters, 1))
        clusters = np.maximum(predicted, base_clusters)
        cluster_seconds_per_window = (
            base_clusters * burst_overlap
            + (clusters - base_clusters) * np.minimum(busy_overlap, burst_overlap)
        )
        cluster_seconds = float(cluster_seconds_per_window.sum())
        credits = cluster_seconds / HOUR * rate
        # 60 s minimum per activation (the burst's first cluster start).
        for burst_start, burst_end in burst_pairs:
            duration = burst_end - burst_start
            if duration < MINIMUM_BILLED_SECONDS:
                credits += (MINIMUM_BILLED_SECONDS - duration) / HOUR * rate
                cluster_seconds += MINIMUM_BILLED_SECONDS - duration
        if self.vectorized:
            hourly = kernels.hourly_credit_sums(
                cluster_seconds_per_window, window.start, MINI_WINDOW_SECONDS, HOUR, rate
            )
        else:
            hourly = self._hourly_credits_scalar(
                cluster_seconds_per_window, window, rate
            )
        return credits, cluster_seconds, hourly
