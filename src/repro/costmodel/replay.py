"""Analytical query replay (§5.1) — the what-if engine of the cost model.

Given a window of telemetry and a *hypothetical* warehouse configuration
(usually the customer's original settings, for the without-Keebo estimate),
the replay walks the workload timeline and computes what the CDW would have
billed:

1. every query's execution time is rescaled to the hypothetical size by the
   latency model; chained arrivals shift with their predecessor's
   counterfactual completion (gap model), independent arrivals keep their
   original timestamps;
2. busy intervals are merged into *activation bursts*: the warehouse stays
   billable through gaps shorter than the auto-suspend interval and for one
   auto-suspend tail after each burst (``auto_suspend = 0`` means the
   warehouse never suspends and bills to the end of the window);
3. the cluster-count predictor estimates how many clusters would have been
   running in each mini-window, bounded by the hypothetical min/max;
4. credits = Σ (clusters × burst-overlap × rate), plus the 60 s minimum for
   bursts shorter than a minute.

The result also carries counterfactual latency statistics so the smart
model can ask "what would this action do to performance" (§4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.simtime import HOUR, Window, hour_index
from repro.common.stats import percentile
from repro.obs import trace as obs
from repro.costmodel.clusters import MINI_WINDOW_SECONDS, ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import LatencyScalingModel
from repro.warehouse.billing import MINIMUM_BILLED_SECONDS
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord

#: Buckets for the what-if active-fraction histogram: coverage is a ratio
#: in [0, 1], so the default (seconds-scaled) bucket boundaries fit badly.
_COVERAGE_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass
class ReplayResult:
    """Outcome of one what-if replay."""

    credits: float
    active_seconds: float
    cluster_seconds: float
    n_queries: int
    n_bursts: int
    avg_latency: float
    p99_latency: float
    hourly_credits: dict[int, float] = field(default_factory=dict)

    @property
    def cost_is_zero(self) -> bool:
        return self.credits <= 0.0


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of (sorted) possibly-overlapping busy intervals."""
    merged: list[tuple[float, float]] = []
    for start, end in intervals:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass
class QueryReplay:
    """Replays telemetry under a hypothetical configuration."""

    latency_model: LatencyScalingModel
    gap_model: GapModel
    cluster_predictor: ClusterCountPredictor

    def replay(
        self, records: list[QueryRecord], config: WarehouseConfig, window: Window
    ) -> ReplayResult:
        if not records:
            return ReplayResult(0.0, 0.0, 0.0, 0, 0, 0.0, 0.0)
        with obs.span(
            "costmodel.replay", window.end, config=config.describe()
        ) as sp:
            intervals, latencies = self._counterfactual_timeline(records, config, window)
            bursts = self._activation_bursts(intervals, config, window)
            credits, cluster_seconds, hourly = self._bill(bursts, intervals, config, window)
            active_seconds = sum(end - start for start, end in bursts)
            result = ReplayResult(
                credits=credits,
                active_seconds=active_seconds,
                cluster_seconds=cluster_seconds,
                n_queries=len(latencies),
                n_bursts=len(bursts),
                avg_latency=float(np.mean(latencies)) if latencies else 0.0,
                p99_latency=percentile(latencies, 99),
                hourly_credits=hourly,
            )
            self._observe(sp, result, window)
        return result

    @staticmethod
    def _observe(sp, result: ReplayResult, window: Window) -> None:
        """Replay coverage and counterfactual-timeline stats, when recording."""
        rec = obs.recorder()
        if rec is None:
            return
        coverage = result.active_seconds / window.duration if window.duration > 0 else 0.0
        sp.set(
            n_queries=result.n_queries,
            n_bursts=result.n_bursts,
            active_seconds=result.active_seconds,
            credits=result.credits,
            coverage=coverage,
        )
        rec.counter("repro.costmodel.replays").inc(time=window.end)
        rec.counter("repro.costmodel.replayed_queries").inc(
            result.n_queries, time=window.end
        )
        rec.histogram("repro.costmodel.replay_active_fraction", _COVERAGE_BUCKETS).observe(
            coverage, time=window.end
        )
        rec.histogram("repro.costmodel.replay_p99_latency").observe(
            result.p99_latency, time=window.end
        )

    # ----------------------------------------------------------------- steps
    def _counterfactual_timeline(
        self, records: list[QueryRecord], config: WarehouseConfig, window: Window
    ) -> tuple[list[tuple[float, float]], list[float]]:
        observations = self.gap_model.classify(records)
        intervals: list[tuple[float, float]] = []
        latencies: list[float] = []
        prev_end: float | None = None
        for obs in observations:
            latency = self.latency_model.rescale(obs.record, config.size)
            if obs.chained and prev_end is not None:
                arrival = prev_end + obs.lag_after_predecessor
            else:
                arrival = obs.record.arrival_time
            arrival = max(arrival, window.start)
            end = min(arrival + latency, window.end)
            if end > arrival:
                intervals.append((arrival, end))
            latencies.append(latency)
            prev_end = arrival + latency
        intervals.sort()
        return intervals, latencies

    @staticmethod
    def _activation_bursts(
        intervals: list[tuple[float, float]], config: WarehouseConfig, window: Window
    ) -> list[tuple[float, float]]:
        """Merge busy intervals into billable activation bursts."""
        if not intervals:
            return []
        suspend = config.auto_suspend_seconds
        if suspend <= 0:
            # Never auto-suspends: active from first arrival to window end.
            return [(intervals[0][0], window.end)]
        bursts: list[tuple[float, float]] = []
        burst_start, busy_end = intervals[0]
        for start, end in intervals[1:]:
            if start <= busy_end + suspend:
                busy_end = max(busy_end, end)
            else:
                bursts.append((burst_start, min(busy_end + suspend, window.end)))
                burst_start, busy_end = start, end
        bursts.append((burst_start, min(busy_end + suspend, window.end)))
        return bursts

    @staticmethod
    def _coverage(
        spans: list[tuple[float, float]], window: Window, n_windows: int
    ) -> np.ndarray:
        """Seconds of each mini-window covered by the (disjoint) spans."""
        coverage = np.zeros(n_windows)
        for span_start, span_end in spans:
            first = int((span_start - window.start) // MINI_WINDOW_SECONDS)
            last = int((span_end - window.start) // MINI_WINDOW_SECONDS)
            for w in range(max(first, 0), min(last, n_windows - 1) + 1):
                w_start = window.start + w * MINI_WINDOW_SECONDS
                w_end = w_start + MINI_WINDOW_SECONDS
                coverage[w] += max(0.0, min(span_end, w_end) - max(span_start, w_start))
        return coverage

    def _bill(
        self,
        bursts: list[tuple[float, float]],
        intervals: list[tuple[float, float]],
        config: WarehouseConfig,
        window: Window,
    ) -> tuple[float, float, dict[int, float]]:
        rate = config.size.credits_per_hour
        n_windows = max(1, int(math.ceil(window.duration / MINI_WINDOW_SECONDS)))
        predicted = self.cluster_predictor.predict(
            intervals, window.start, window.end, config
        )
        if len(predicted) < n_windows:  # pad defensively
            predicted = np.pad(predicted, (0, n_windows - len(predicted)))
        burst_overlap = self._coverage(bursts, window, n_windows)
        # Extra clusters only bill while there is concurrent work for them:
        # cluster 1 stays up through idle gaps (until suspend), but scale-out
        # clusters retire shortly after the queue drains, so their billed
        # time tracks the *busy* coverage, not the whole activation burst.
        busy_overlap = self._coverage(_merge_intervals(intervals), window, n_windows)
        base_clusters = float(max(config.min_clusters, 1))
        clusters = np.maximum(predicted, base_clusters)
        cluster_seconds_per_window = (
            base_clusters * burst_overlap
            + (clusters - base_clusters) * np.minimum(busy_overlap, burst_overlap)
        )
        cluster_seconds = float(cluster_seconds_per_window.sum())
        credits = cluster_seconds / HOUR * rate
        # 60 s minimum per activation (the burst's first cluster start).
        for burst_start, burst_end in bursts:
            duration = burst_end - burst_start
            if duration < MINIMUM_BILLED_SECONDS:
                credits += (MINIMUM_BILLED_SECONDS - duration) / HOUR * rate
                cluster_seconds += MINIMUM_BILLED_SECONDS - duration
        hourly: dict[int, float] = {}
        for w in range(n_windows):
            if cluster_seconds_per_window[w] <= 0:
                continue
            h = hour_index(window.start + w * MINI_WINDOW_SECONDS)
            hourly[h] = hourly.get(h, 0.0) + cluster_seconds_per_window[w] / HOUR * rate
        return credits, cluster_seconds, hourly
