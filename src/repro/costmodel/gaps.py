"""Inter-arrival gap modelling (§5.2 "Impact on query arrival times").

When the replay changes query latencies, *independent* arrivals keep their
original timestamps (users do not type faster because the warehouse is
bigger), but *chained* arrivals — ETL steps launched when their predecessor
finishes — shift with the predecessor's counterfactual completion time.

The model classifies each query as chained or independent.  Two signals are
combined:

* the telemetry ``chained`` flag (session-correlation metadata a CDW can
  derive without query text);
* a statistical detector: an arrival that lands within a small window after
  the previous query's completion, for a (template → template) pair that
  repeats this pattern, is chained.  The detector exists both as a fallback
  for telemetry without session metadata and for the calibration ablation.

It also records the gap each chained query keeps from its predecessor's
completion so the replay can reproduce it.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.durability.codec import require_keys
from repro.warehouse.queries import QueryRecord

#: An arrival within this many seconds of the previous completion is a
#: chaining candidate for the statistical detector.
CHAIN_WINDOW_SECONDS = 30.0
#: A (prev_template, next_template) pair must show the pattern at least this
#: often to be considered a dependency.
MIN_PAIR_SUPPORT = 3


@dataclass
class GapObservation:
    """The replay-relevant structure of one query's arrival."""

    record: QueryRecord
    chained: bool
    #: For chained queries: seconds between predecessor end and this arrival.
    lag_after_predecessor: float = 0.0


@dataclass
class GapModel:
    """Classifies arrivals and supplies chain lags for the replay."""

    use_flags: bool = True
    _pair_support: dict[tuple[str, str], int] = field(default_factory=dict)
    _pair_lags: dict[tuple[str, str], float] = field(default_factory=dict)
    fitted: bool = False
    #: Bumped by every :meth:`fit`; caches keyed on classification results
    #: (``QueryReplay``'s history memo) invalidate on it.
    fit_generation: int = 0

    def fit(self, records: list[QueryRecord]) -> "GapModel":
        """Learn recurring dependency pairs from completed history."""
        support: dict[tuple[str, str], int] = defaultdict(int)
        lags: dict[tuple[str, str], list[float]] = defaultdict(list)
        ordered = sorted(records, key=lambda r: r.arrival_time)
        for prev, nxt in zip(ordered, ordered[1:]):
            lag = nxt.arrival_time - prev.end_time
            if 0.0 <= lag <= CHAIN_WINDOW_SECONDS:
                pair = (prev.template_hash, nxt.template_hash)
                support[pair] += 1
                lags[pair].append(lag)
        self._pair_support = dict(support)
        self._pair_lags = {
            pair: sum(values) / len(values) for pair, values in lags.items()
        }
        self.fitted = True
        self.fit_generation += 1
        return self

    def is_dependent_pair(self, prev_template: str, next_template: str) -> bool:
        return self._pair_support.get((prev_template, next_template), 0) >= MIN_PAIR_SUPPORT

    def classify(self, records: list[QueryRecord]) -> list[GapObservation]:
        """Label each record chained/independent with its chain lag."""
        ordered = sorted(records, key=lambda r: r.arrival_time)
        out: list[GapObservation] = []
        for i, record in enumerate(ordered):
            chained = False
            lag = 0.0
            if i > 0:
                prev = ordered[i - 1]
                observed_lag = record.arrival_time - prev.end_time
                flag_says = self.use_flags and record.chained
                detector_says = (
                    0.0 <= observed_lag <= CHAIN_WINDOW_SECONDS
                    and self.is_dependent_pair(prev.template_hash, record.template_hash)
                )
                if flag_says or detector_says:
                    chained = True
                    if 0.0 <= observed_lag <= CHAIN_WINDOW_SECONDS:
                        lag = observed_lag
                    else:
                        lag = self._pair_lags.get(
                            (prev.template_hash, record.template_hash), 5.0
                        )
            out.append(GapObservation(record, chained, lag))
        return out

    def classify_step(
        self,
        prev_end: float,
        arrival: float,
        prev_template: str,
        template: str,
        chained_flag: bool,
    ) -> tuple[bool, float]:
        """Classify one adjacent (predecessor, record) pair.

        Scalar twin of a single :meth:`classify_arrays` element — the same
        float comparisons and dictionary lookups, so streaming callers
        (``repro.costmodel.incremental``) that classify rows one at a time
        get bit-identical ``(chained, lag)`` values.  Index 0 of a window
        has no predecessor and is never chained; that case is the caller's.
        """
        observed = arrival - prev_end
        in_window = 0.0 <= observed <= CHAIN_WINDOW_SECONDS
        flag_says = self.use_flags and chained_flag
        detector_says = in_window and (
            self._pair_support.get((prev_template, template), 0) >= MIN_PAIR_SUPPORT
        )
        if not (flag_says or detector_says):
            return False, 0.0
        if in_window:
            return True, float(observed)
        return True, self._pair_lags.get((prev_template, template), 5.0)

    def classify_arrays(
        self,
        arrivals: np.ndarray,
        end_times: np.ndarray,
        template_hashes: list[str],
        chained_flags: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`classify` over columns sorted by arrival time.

        Takes parallel arrays (already in arrival order — the caller sorts
        once and extracts all replay columns in the same pass) and returns
        ``(chained, lag)`` arrays bit-identical to the per-record
        :class:`GapObservation` fields.  Only the dictionary lookups for
        chaining *candidates* stay in Python; everything dense is NumPy.
        """
        n = int(arrivals.size)
        chained = np.zeros(n, dtype=bool)
        lags = np.zeros(n, dtype=np.float64)
        if n <= 1:
            return chained, lags
        observed = arrivals[1:] - end_times[:-1]
        in_window = (observed >= 0.0) & (observed <= CHAIN_WINDOW_SECONDS)
        if self.use_flags:
            flag_says = np.asarray(chained_flags[1:], dtype=bool)
        else:
            flag_says = np.zeros(n - 1, dtype=bool)
        if self._pair_support:
            # dict.get driven by map() keeps the per-pair lookup in C.
            support_counts = np.fromiter(
                map(
                    self._pair_support.get,
                    zip(template_hashes, template_hashes[1:]),
                    itertools.repeat(0),
                ),
                dtype=np.int64,
                count=n - 1,
            )
            detector_says = in_window & (support_counts >= MIN_PAIR_SUPPORT)
        else:
            detector_says = np.zeros(n - 1, dtype=bool)
        is_chained = flag_says | detector_says
        lag_tail = np.where(in_window, observed, 0.0)
        for j in np.flatnonzero(is_chained & ~in_window).tolist():
            lag_tail[j] = self._pair_lags.get(
                (template_hashes[j], template_hashes[j + 1]), 5.0
            )
        chained[1:] = is_chained
        lags[1:] = np.where(is_chained, lag_tail, 0.0)
        return chained, lags

    @property
    def n_dependent_pairs(self) -> int:
        return sum(1 for s in self._pair_support.values() if s >= MIN_PAIR_SUPPORT)

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        # Tuple keys flatten to [prev, next, value] triples for JSON.
        return {
            "use_flags": self.use_flags,
            "fitted": self.fitted,
            "fit_generation": self.fit_generation,
            "pair_support": [
                [prev, nxt, count]
                for (prev, nxt), count in sorted(self._pair_support.items())
            ],
            "pair_lags": [
                [prev, nxt, lag] for (prev, nxt), lag in sorted(self._pair_lags.items())
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(
            state,
            ("use_flags", "fitted", "fit_generation", "pair_support", "pair_lags"),
            "GapModel",
        )
        self.use_flags = bool(state["use_flags"])
        self.fitted = bool(state["fitted"])
        self.fit_generation = int(state["fit_generation"])
        self._pair_support = {
            (prev, nxt): int(count) for prev, nxt, count in state["pair_support"]
        }
        self._pair_lags = {(prev, nxt): float(lag) for prev, nxt, lag in state["pair_lags"]}
