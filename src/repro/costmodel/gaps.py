"""Inter-arrival gap modelling (§5.2 "Impact on query arrival times").

When the replay changes query latencies, *independent* arrivals keep their
original timestamps (users do not type faster because the warehouse is
bigger), but *chained* arrivals — ETL steps launched when their predecessor
finishes — shift with the predecessor's counterfactual completion time.

The model classifies each query as chained or independent.  Two signals are
combined:

* the telemetry ``chained`` flag (session-correlation metadata a CDW can
  derive without query text);
* a statistical detector: an arrival that lands within a small window after
  the previous query's completion, for a (template → template) pair that
  repeats this pattern, is chained.  The detector exists both as a fallback
  for telemetry without session metadata and for the calibration ablation.

It also records the gap each chained query keeps from its predecessor's
completion so the replay can reproduce it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.warehouse.queries import QueryRecord

#: An arrival within this many seconds of the previous completion is a
#: chaining candidate for the statistical detector.
CHAIN_WINDOW_SECONDS = 30.0
#: A (prev_template, next_template) pair must show the pattern at least this
#: often to be considered a dependency.
MIN_PAIR_SUPPORT = 3


@dataclass
class GapObservation:
    """The replay-relevant structure of one query's arrival."""

    record: QueryRecord
    chained: bool
    #: For chained queries: seconds between predecessor end and this arrival.
    lag_after_predecessor: float = 0.0


@dataclass
class GapModel:
    """Classifies arrivals and supplies chain lags for the replay."""

    use_flags: bool = True
    _pair_support: dict[tuple[str, str], int] = field(default_factory=dict)
    _pair_lags: dict[tuple[str, str], float] = field(default_factory=dict)
    fitted: bool = False

    def fit(self, records: list[QueryRecord]) -> "GapModel":
        """Learn recurring dependency pairs from completed history."""
        support: dict[tuple[str, str], int] = defaultdict(int)
        lags: dict[tuple[str, str], list[float]] = defaultdict(list)
        ordered = sorted(records, key=lambda r: r.arrival_time)
        for prev, nxt in zip(ordered, ordered[1:]):
            lag = nxt.arrival_time - prev.end_time
            if 0.0 <= lag <= CHAIN_WINDOW_SECONDS:
                pair = (prev.template_hash, nxt.template_hash)
                support[pair] += 1
                lags[pair].append(lag)
        self._pair_support = dict(support)
        self._pair_lags = {
            pair: sum(values) / len(values) for pair, values in lags.items()
        }
        self.fitted = True
        return self

    def is_dependent_pair(self, prev_template: str, next_template: str) -> bool:
        return self._pair_support.get((prev_template, next_template), 0) >= MIN_PAIR_SUPPORT

    def classify(self, records: list[QueryRecord]) -> list[GapObservation]:
        """Label each record chained/independent with its chain lag."""
        ordered = sorted(records, key=lambda r: r.arrival_time)
        out: list[GapObservation] = []
        for i, record in enumerate(ordered):
            chained = False
            lag = 0.0
            if i > 0:
                prev = ordered[i - 1]
                observed_lag = record.arrival_time - prev.end_time
                flag_says = self.use_flags and record.chained
                detector_says = (
                    0.0 <= observed_lag <= CHAIN_WINDOW_SECONDS
                    and self.is_dependent_pair(prev.template_hash, record.template_hash)
                )
                if flag_says or detector_says:
                    chained = True
                    if 0.0 <= observed_lag <= CHAIN_WINDOW_SECONDS:
                        lag = observed_lag
                    else:
                        lag = self._pair_lags.get(
                            (prev.template_hash, record.template_hash), 5.0
                        )
            out.append(GapObservation(record, chained, lag))
        return out

    @property
    def n_dependent_pairs(self) -> int:
        return sum(1 for s in self._pair_support.values() if s >= MIN_PAIR_SUPPORT)
