"""Bytes-scanned cost estimation — the §5 extensibility claim, exercised.

§5 contrasts vendors' billable units: "credits for Snowflake, bytes scanned
for BigQuery, and hours of usage for Azure Synapse", and argues the hybrid
replay-plus-estimators design "is easily extensible to new CDW products".

This module is that extension for an on-demand, bytes-billed engine (the
BigQuery pricing model): cost is a function of data scanned, not of time —
so the replay machinery (activation bursts, suspend tails, cluster counts)
is irrelevant, while the *telemetry* (bytes scanned per query) is exactly
sufficient.  Two artifacts:

* :class:`BytesBilledModel` — estimates what a telemetry window would have
  been billed under per-TiB on-demand pricing (with the vendor's per-query
  minimum), and can what-if alternative rates.
* :func:`compare_engines` — the cross-engine what-if a data team actually
  asks: for this workload, is time-based (warehouse) or scan-based
  (on-demand) pricing cheaper?  Scan-light, always-on workloads favour
  warehouses; scan-heavy, bursty workloads favour on-demand.

Note: this prices an *existing* telemetry stream under a different billing
scheme.  Optimizing an on-demand engine (partitioning, clustering, scan
pruning) is the separate problem the paper defers to its BigQuery paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.warehouse.queries import QueryRecord

TIB = float(2**40)
#: BigQuery-style on-demand defaults: ~$6.25/TiB with a 10 MiB per-query
#: minimum.  Expressed in *credit-equivalents* via the account's $/credit so
#: both engines are compared in one currency.
DEFAULT_DOLLARS_PER_TIB = 6.25
DEFAULT_MIN_BYTES_PER_QUERY = 10 * (2**20)


@dataclass(frozen=True)
class BytesBilledEstimate:
    """Cost of a telemetry window under scan-based pricing."""

    window: Window
    n_queries: int
    total_bytes: float
    billable_bytes: float
    dollars: float

    @property
    def minimum_uplift_fraction(self) -> float:
        """How much of the bill comes from per-query minimums."""
        if self.billable_bytes <= 0:
            return 0.0
        return 1.0 - self.total_bytes / self.billable_bytes


class BytesBilledModel:
    """Prices telemetry under on-demand, per-TiB billing."""

    def __init__(
        self,
        dollars_per_tib: float = DEFAULT_DOLLARS_PER_TIB,
        min_bytes_per_query: float = DEFAULT_MIN_BYTES_PER_QUERY,
    ):
        if dollars_per_tib <= 0:
            raise ConfigurationError("dollars_per_tib must be positive")
        if min_bytes_per_query < 0:
            raise ConfigurationError("min_bytes_per_query must be non-negative")
        self.dollars_per_tib = dollars_per_tib
        self.min_bytes_per_query = min_bytes_per_query

    def estimate(self, records: list[QueryRecord], window: Window) -> BytesBilledEstimate:
        in_window = [r for r in records if window.contains(r.arrival_time)]
        total = sum(r.bytes_scanned for r in in_window)
        billable = sum(
            max(r.bytes_scanned, self.min_bytes_per_query) for r in in_window
        )
        return BytesBilledEstimate(
            window=window,
            n_queries=len(in_window),
            total_bytes=total,
            billable_bytes=billable,
            dollars=billable / TIB * self.dollars_per_tib,
        )


@dataclass(frozen=True)
class EngineComparison:
    """Warehouse (time-billed) vs on-demand (scan-billed) for one workload."""

    window: Window
    warehouse_dollars: float
    ondemand_dollars: float

    @property
    def cheaper_engine(self) -> str:
        return "warehouse" if self.warehouse_dollars <= self.ondemand_dollars else "on-demand"

    @property
    def savings_fraction(self) -> float:
        """Fraction saved by picking the cheaper engine over the other."""
        hi = max(self.warehouse_dollars, self.ondemand_dollars)
        lo = min(self.warehouse_dollars, self.ondemand_dollars)
        return (hi - lo) / hi if hi > 0 else 0.0


def compare_engines(
    records: list[QueryRecord],
    warehouse_credits: float,
    window: Window,
    price_per_credit: float,
    bytes_model: BytesBilledModel | None = None,
) -> EngineComparison:
    """Price the same telemetry under both billing schemes."""
    model = bytes_model or BytesBilledModel()
    ondemand = model.estimate(records, window)
    return EngineComparison(
        window=window,
        warehouse_dollars=warehouse_credits * price_per_credit,
        ondemand_dollars=ondemand.dollars,
    )
