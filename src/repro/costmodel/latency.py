"""Latency scaling across warehouse sizes (§5.2 "Impact on query latencies").

The replay must answer: *how long would this query have run on the
customer's original size?*  Because KWO changes sizes dynamically, telemetry
contains the same template executed on several sizes; we fit, per template,

``log2(latency) = intercept - gamma * size_index``

so ``gamma`` is the template's scaling elasticity (1.0 = doubling the
warehouse halves latency).  Templates observed on a single size fall back to
the warehouse-average gamma — the paper's "average impact on query latencies
observed on that warehouse as a first-order approximation".  Identical
queries are matched by text hash, similar queries by template hash
(footnote 4).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.durability.codec import require_keys
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize

#: Prior elasticity used before any cross-size evidence exists.
DEFAULT_GAMMA = 0.7
#: Elasticities outside this band are treated as fitting noise and clipped.
GAMMA_BOUNDS = (0.0, 1.2)
#: Cold-cache executions pollute the scaling fit; exclude mostly-cold runs.
MIN_FIT_CACHE_HIT = 0.5


@dataclass
class TemplateScaling:
    """Fitted per-template scaling parameters."""

    gamma: float
    log2_latency_at_xs: float
    n_observations: int
    n_sizes: int

    def latency_at(self, size: WarehouseSize) -> float:
        return 2.0 ** (self.log2_latency_at_xs - self.gamma * size.value)


@dataclass
class LatencyScalingModel:
    """Regression model rescaling observed latencies across sizes."""

    default_gamma: float = DEFAULT_GAMMA
    _templates: dict[str, TemplateScaling] = field(default_factory=dict)
    _warehouse_gamma: float = DEFAULT_GAMMA
    fitted: bool = False
    #: Bumped by every :meth:`fit`; caches keyed on per-template gammas
    #: (``QueryReplay``'s history memo) invalidate on it.
    fit_generation: int = 0

    def fit(self, records: list[QueryRecord]) -> "LatencyScalingModel":
        """Fit from completed query history of one warehouse."""
        by_template: dict[str, list[tuple[int, float]]] = defaultdict(list)
        for r in records:
            if r.execution_seconds <= 0:
                continue
            if r.cache_hit_ratio < MIN_FIT_CACHE_HIT:
                continue
            by_template[r.template_hash].append(
                (r.warehouse_size.value, math.log2(r.execution_seconds))
            )
        slopes: list[tuple[float, int]] = []  # (gamma, weight) for pooling
        self._templates.clear()
        for tpl, obs in by_template.items():
            xs = np.array([o[0] for o in obs], dtype=float)
            ys = np.array([o[1] for o in obs], dtype=float)
            n_sizes = len(set(xs))
            if n_sizes >= 2:
                # least squares: y = b - gamma * x
                slope, intercept = np.polyfit(xs, ys, 1)
                gamma = float(np.clip(-slope, *GAMMA_BOUNDS))
                log2_at_xs = float(intercept)
                slopes.append((gamma, len(obs)))
            else:
                gamma = math.nan  # resolved after the pooled gamma is known
                log2_at_xs = float(ys.mean() + self.default_gamma * xs.mean())
            self._templates[tpl] = TemplateScaling(gamma, log2_at_xs, len(obs), n_sizes)
        if slopes:
            weights = np.array([w for _, w in slopes], dtype=float)
            gammas = np.array([g for g, _ in slopes], dtype=float)
            self._warehouse_gamma = float(np.average(gammas, weights=weights))
        else:
            self._warehouse_gamma = self.default_gamma
        # Resolve single-size templates with the pooled warehouse gamma.
        for tpl, scaling in self._templates.items():
            if math.isnan(scaling.gamma):
                obs = by_template[tpl]
                xs = np.array([o[0] for o in obs], dtype=float)
                ys = np.array([o[1] for o in obs], dtype=float)
                scaling.gamma = self._warehouse_gamma
                scaling.log2_latency_at_xs = float(ys.mean() + scaling.gamma * xs.mean())
        self.fitted = True
        self.fit_generation += 1
        return self

    @property
    def warehouse_gamma(self) -> float:
        """Pooled scaling elasticity of this warehouse's workload."""
        return self._warehouse_gamma

    def gamma(self, template_hash: str) -> float:
        scaling = self._templates.get(template_hash)
        if scaling is None:
            return self._warehouse_gamma if self.fitted else self.default_gamma
        return scaling.gamma

    def rescale(
        self,
        record: QueryRecord,
        to_size: WarehouseSize,
    ) -> float:
        """Counterfactual execution seconds of ``record`` on ``to_size``.

        The observed latency (which embeds that run's cache/contention/noise
        conditions) is scaled by ``2**(gamma * (from - to))``; only the
        compute-elastic part of latency should scale, so fully-cold runs are
        scaled conservatively (cold read time is dominated by remote I/O).
        """
        gamma = self.gamma(record.template_hash)
        from_idx = record.warehouse_size.value
        factor = 2.0 ** (gamma * (from_idx - to_size.value))
        if record.cache_hit_ratio < MIN_FIT_CACHE_HIT:
            # Cold portion does not speed up with compute; damp the scaling.
            factor = 1.0 + (factor - 1.0) * max(record.cache_hit_ratio, 0.3)
        return record.execution_seconds * factor

    def gamma_array(self, template_hashes: list[str]) -> np.ndarray:
        """Per-record gammas via one :meth:`gamma` lookup per distinct
        template — the config-independent half of :meth:`rescale_batch`,
        exposed so replay can compute it once per telemetry snapshot."""
        gamma_of = {tpl: self.gamma(tpl) for tpl in sorted(set(template_hashes))}
        return np.fromiter(
            map(gamma_of.__getitem__, template_hashes),
            dtype=np.float64,
            count=len(template_hashes),
        )

    def rescale_batch(
        self,
        template_hashes: list[str],
        size_values: np.ndarray,
        cache_hit_ratios: np.ndarray,
        execution_seconds: np.ndarray,
        to_size: WarehouseSize,
        gammas: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`rescale` over parallel record columns.

        Bit-identical to calling :meth:`rescale` per record: per-record
        gammas come from the same :meth:`gamma` lookups (resolved once per
        distinct template), the exponent ``gamma * (from - to)`` is the same
        elementwise multiply, ``2.0 ** x`` runs as the same Python pow per
        *unique* exponent (a replay window has few distinct
        template × size combinations), and the cold-cache damping is the
        same elementwise expression.
        """
        to_value = to_size.value
        if gammas is None:
            gammas = self.gamma_array(template_hashes)
        exponents = gammas * (size_values - to_value)
        unique_exponents, inverse = np.unique(exponents, return_inverse=True)
        unique_factors = np.fromiter(
            (2.0 ** x for x in unique_exponents.tolist()),
            dtype=np.float64,
            count=unique_exponents.size,
        )
        factors = unique_factors[inverse]
        cold = cache_hit_ratios < MIN_FIT_CACHE_HIT
        if cold.any():
            damped = 1.0 + (factors - 1.0) * np.maximum(cache_hit_ratios, 0.3)
            factors = np.where(cold, damped, factors)
        return execution_seconds * factors

    def predict_absolute(self, template_hash: str, size: WarehouseSize) -> float | None:
        """Expected warm latency of a known template at ``size``."""
        scaling = self._templates.get(template_hash)
        if scaling is None:
            return None
        return scaling.latency_at(size)

    def size_speed_factor(self, from_size: WarehouseSize, to_size: WarehouseSize) -> float:
        """Warehouse-average latency multiplier when moving between sizes."""
        return 2.0 ** (self._warehouse_gamma * (from_size.value - to_size.value))

    @property
    def n_templates(self) -> int:
        return len(self._templates)

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        return {
            "default_gamma": self.default_gamma,
            "warehouse_gamma": self._warehouse_gamma,
            "fitted": self.fitted,
            "fit_generation": self.fit_generation,
            "templates": {
                tpl: {
                    "gamma": s.gamma,
                    "log2_latency_at_xs": s.log2_latency_at_xs,
                    "n_observations": s.n_observations,
                    "n_sizes": s.n_sizes,
                }
                for tpl, s in sorted(self._templates.items())
            },
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(
            state,
            ("default_gamma", "warehouse_gamma", "fitted", "fit_generation", "templates"),
            "LatencyScalingModel",
        )
        self.default_gamma = float(state["default_gamma"])
        self._warehouse_gamma = float(state["warehouse_gamma"])
        self.fitted = bool(state["fitted"])
        self.fit_generation = int(state["fit_generation"])
        self._templates = {
            tpl: TemplateScaling(
                gamma=float(s["gamma"]),
                log2_latency_at_xs=float(s["log2_latency_at_xs"]),
                n_observations=int(s["n_observations"]),
                n_sizes=int(s["n_sizes"]),
            )
            for tpl, s in state["templates"].items()
        }
