"""The warehouse cost model facade (§5).

Combines the analytical query replay with the three learned parameter
estimators (latency scaling, gaps, cluster counts) to:

* estimate the **without-Keebo** cost of any telemetry window — the what-if
  baseline behind savings reporting and value-based pricing (§4.6, §4.7);
* evaluate arbitrary **what-if configurations** so the smart model can ask
  "what would this action do to cost and latency before I take it" (§4.3);
* quantify **savings** = estimated without-Keebo credits − actual billed
  credits (the with-Keebo cost is read directly from metering, as §5.1
  notes it need not be estimated).

Unlike a traditional query-optimizer cost model, every number here is in
billable credits, directly convertible to dollars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import TelemetryError
from repro.common.simtime import Window
from repro.costmodel.clusters import ClusterCountPredictor
from repro.costmodel.gaps import GapModel
from repro.costmodel.latency import LatencyScalingModel
from repro.costmodel.replay import QueryReplay, ReplayResult
from repro.durability.codec import decode_window, encode_window, require_keys
from repro.warehouse.api import CloudWarehouseClient
from repro.warehouse.config import WarehouseConfig


@dataclass(frozen=True)
class SavingsEstimate:
    """Savings attributed to the optimizer over one window."""

    window: Window
    without_keebo_credits: float
    with_keebo_credits: float

    @property
    def savings_credits(self) -> float:
        return self.without_keebo_credits - self.with_keebo_credits

    @property
    def savings_fraction(self) -> float:
        if self.without_keebo_credits <= 0:
            return 0.0
        return self.savings_credits / self.without_keebo_credits


@dataclass(frozen=True)
class ActionImpact:
    """Predicted effect of moving a warehouse between two configurations."""

    credits_delta: float
    latency_factor: float
    from_credits: float
    to_credits: float

    @property
    def saves_money(self) -> bool:
        return self.credits_delta < 0

    @property
    def slows_down(self) -> bool:
        return self.latency_factor > 1.0


class WarehouseCostModel:
    """Per-warehouse cost model: fit on telemetry, then ask what-ifs."""

    def __init__(
        self,
        client: CloudWarehouseClient,
        warehouse: str,
        calibrate: bool = True,
        use_chain_flags: bool = True,
    ):
        self.client = client
        self.warehouse = warehouse
        self.latency_model = LatencyScalingModel()
        self.gap_model = GapModel(use_flags=use_chain_flags)
        self.cluster_predictor = ClusterCountPredictor(calibrate=calibrate)
        self.replay = QueryReplay(self.latency_model, self.gap_model, self.cluster_predictor)
        self.fitted = False
        self.training_window: Window | None = None

    # -------------------------------------------------------------- training
    def fit(self, window: Window) -> "WarehouseCostModel":
        """Fit all parameter estimators on the telemetry inside ``window``."""
        records = self.client.query_history(self.warehouse, window)
        self.latency_model.fit(records)
        self.gap_model.fit(records)
        fit_config = self.client.current_config(self.warehouse)
        self.cluster_predictor.fit(records, fit_config)
        self.training_window = window
        self.fitted = True
        return self

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        """Fitted estimator state (StateCodec).

        The replay memo is a pure cache keyed on fit generations and is
        deliberately not captured: it rebuilds on demand and never affects
        outputs.
        """
        return {
            "latency_model": self.latency_model.state_dict(),
            "gap_model": self.gap_model.state_dict(),
            "cluster_predictor": self.cluster_predictor.state_dict(),
            "fitted": self.fitted,
            "training_window": (
                None if self.training_window is None else encode_window(self.training_window)
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(
            state,
            ("latency_model", "gap_model", "cluster_predictor", "fitted", "training_window"),
            "WarehouseCostModel",
        )
        self.latency_model.load_state_dict(state["latency_model"])
        self.gap_model.load_state_dict(state["gap_model"])
        self.cluster_predictor.load_state_dict(state["cluster_predictor"])
        self.fitted = bool(state["fitted"])
        window = state["training_window"]
        self.training_window = None if window is None else decode_window(window)

    def _require_fit(self) -> None:
        if not self.fitted:
            raise TelemetryError(
                f"cost model for {self.warehouse!r} used before fit(); call fit(window) first"
            )

    # ------------------------------------------------------------- estimates
    def estimate_cost(self, window: Window, config: WarehouseConfig) -> ReplayResult:
        """What-if: billed credits for ``window`` under ``config``."""
        self._require_fit()
        records = self.client.query_history(self.warehouse, window)
        return self.replay.replay(records, config, window)

    def estimate_without_keebo(self, window: Window) -> ReplayResult:
        """The §5.1 baseline: replay under the customer's *original* settings
        (the most recent configuration not initiated by Keebo)."""
        self._require_fit()
        original = self.client.account.telemetry.original_config(
            self.warehouse, before=window.end
        )
        return self.estimate_cost(window, original)

    def actual_credits(self, window: Window) -> float:
        """With-Keebo cost straight from metering (no estimation needed)."""
        return self.client.credits_in_window(self.warehouse, window)

    def estimate_savings(self, window: Window) -> SavingsEstimate:
        self._require_fit()
        without = self.estimate_without_keebo(window)
        actual = self.actual_credits(window)
        return SavingsEstimate(window, without.credits, actual)

    def predict_action_impact(
        self,
        window: Window,
        from_config: WarehouseConfig,
        to_config: WarehouseConfig,
    ) -> ActionImpact:
        """Replay a recent window under both configurations and compare.

        Used by the smart model to veto actions whose predicted latency
        impact exceeds what the slider allows (§4.3's "cost model" input).
        """
        self._require_fit()
        base = self.estimate_cost(window, from_config)
        candidate = self.estimate_cost(window, to_config)
        if base.avg_latency > 0:
            latency_factor = candidate.avg_latency / base.avg_latency
        else:
            latency_factor = 1.0
        return ActionImpact(
            credits_delta=candidate.credits - base.credits,
            latency_factor=latency_factor,
            from_credits=base.credits,
            to_credits=candidate.credits,
        )
