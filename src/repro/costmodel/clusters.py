"""Cluster-count prediction (§5.2 "Impact on warehouse parallelism").

When KWO has capped a warehouse at 4 clusters but the customer's original
setting was 10, the replay must estimate how many clusters *would* have run
at each point in time.  Following the paper, queries are batched into
mini-windows and the model predicts the average cluster count per window.

The predictor is hybrid (§5 "Our approach"): an **analytical demand
estimate** — concurrent queries divided by per-cluster concurrency slots —
multiplied by a **learned calibration coefficient** fitted against windows
whose true cluster counts telemetry actually observed.  The calibration
absorbs systematic simulation error (scale-out delays, scheduler slack,
policy conservatism); disabling it is the `bench_ablation_calibration`
ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.costmodel.kernels import IntervalArrays, as_interval_arrays, bucketed_overlap
from repro.durability.codec import require_keys
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord

#: Mini-window width used for batching (paper: "mini-windows").
MINI_WINDOW_SECONDS = 300.0


def concurrency_profile_scalar(
    intervals: list[tuple[float, float]], start: float, end: float, step: float
) -> np.ndarray:
    """Scalar reference for :func:`concurrency_profile` (see its docstring).

    Kept verbatim as the ground truth the vectorized kernel is equivalence-
    tested against (``tests/props/test_replay_kernels.py``).
    """
    n = max(1, int(math.ceil((end - start) / step)))
    busy = np.zeros(n)
    for begin, finish in intervals:
        lo = max(begin, start)
        hi = min(finish, end)
        if hi <= lo:
            continue
        first = int((lo - start) // step)
        last = int((hi - start) // step)
        for w in range(first, min(last, n - 1) + 1):
            w_start = start + w * step
            w_end = w_start + step
            busy[w] += max(0.0, min(hi, w_end) - max(lo, w_start))
    return busy / step


def concurrency_profile(
    intervals: list[tuple[float, float]] | IntervalArrays,
    start: float,
    end: float,
    step: float,
    vectorized: bool = True,
) -> np.ndarray:
    """Average number of concurrently busy intervals per mini-window.

    ``intervals`` are (begin, finish) busy spans — a list of pairs or a
    ``(starts, ends)`` array pair; the result has one entry per mini-window
    of width ``step`` covering [start, end).  The vectorized path is
    bit-identical to :func:`concurrency_profile_scalar`.
    """
    if not vectorized:
        if isinstance(intervals, tuple) and isinstance(intervals[0], np.ndarray):
            intervals = list(zip(intervals[0].tolist(), intervals[1].tolist()))
        return concurrency_profile_scalar(intervals, start, end, step)
    begins, finishes = as_interval_arrays(intervals)
    n = max(1, int(math.ceil((end - start) / step)))
    if begins.size == 0:
        return np.zeros(n)
    # Clip to the profiled range first — exactly the scalar's lo/hi — so the
    # bucket edges computed from the clipped values match bit for bit.
    lo = np.maximum(begins, start)
    hi = np.minimum(finishes, end)
    keep = hi > lo
    busy = bucketed_overlap(lo[keep], hi[keep], start, step, n)
    return busy / step


@dataclass
class ClusterCountPredictor:
    """Hybrid analytic + calibrated cluster count model."""

    calibrate: bool = True
    calibration: float = 1.0
    fitted: bool = False

    def fit(self, records: list[QueryRecord], config: WarehouseConfig) -> "ClusterCountPredictor":
        """Fit the calibration against observed per-window cluster counts.

        ``config`` is the configuration whose cluster bounds were in force
        when ``records`` executed (so the analytic demand is comparable).
        """
        if not records:
            self.fitted = True
            return self
        start = min(r.start_time for r in records)
        end = max(r.end_time for r in records)
        intervals = [(r.start_time, r.end_time) for r in records]
        demand = self._analytic_clusters(
            concurrency_profile(intervals, start, end, MINI_WINDOW_SECONDS), config
        )
        observed = self._observed_clusters(records, start, end)
        mask = (demand > 0) & (observed > 0)
        if self.calibrate and mask.sum() >= 3:
            # Least squares through the origin: observed ≈ k * analytic.
            x = demand[mask]
            y = observed[mask]
            self.calibration = float(np.clip(np.dot(x, y) / np.dot(x, x), 0.5, 2.0))
        else:
            self.calibration = 1.0
        self.fitted = True
        return self

    # ----------------------------------------------------------- durability
    def state_dict(self) -> dict:
        return {
            "calibrate": self.calibrate,
            "calibration": self.calibration,
            "fitted": self.fitted,
        }

    def load_state_dict(self, state: dict) -> None:
        require_keys(state, ("calibrate", "calibration", "fitted"), "ClusterCountPredictor")
        self.calibrate = bool(state["calibrate"])
        self.calibration = float(state["calibration"])
        self.fitted = bool(state["fitted"])

    @staticmethod
    def _analytic_clusters(concurrency: np.ndarray, config: WarehouseConfig) -> np.ndarray:
        clusters = np.ceil(concurrency / config.max_concurrency)
        return np.clip(clusters, 1.0, float(config.max_clusters)) * (concurrency > 0)

    @staticmethod
    def _observed_clusters(
        records: list[QueryRecord], start: float, end: float
    ) -> np.ndarray:
        """Average of the max cluster number seen per mini-window."""
        n = max(1, int(math.ceil((end - start) / MINI_WINDOW_SECONDS)))
        peak = np.zeros(n)
        for r in records:
            w = int((r.start_time - start) // MINI_WINDOW_SECONDS)
            if 0 <= w < n:
                peak[w] = max(peak[w], float(r.cluster_number))
        return peak

    def predict(
        self,
        intervals: list[tuple[float, float]] | IntervalArrays,
        start: float,
        end: float,
        config: WarehouseConfig,
        vectorized: bool = True,
    ) -> np.ndarray:
        """Predicted average cluster count per mini-window under ``config``."""
        concurrency = concurrency_profile(
            intervals, start, end, MINI_WINDOW_SECONDS, vectorized=vectorized
        )
        return self.predict_from_concurrency(concurrency, config)

    def predict_from_concurrency(
        self, concurrency: np.ndarray, config: WarehouseConfig
    ) -> np.ndarray:
        """Cluster counts from a precomputed concurrency profile.

        The tail of :meth:`predict`, exposed so callers that maintain the
        concurrency profile themselves (``repro.costmodel.incremental``) run
        the identical float program.  Every operation here is monotone
        non-decreasing in ``concurrency`` (ceil, clip, positive scaling,
        masked clip/max), which is what lets the sketch mode bracket the
        exact prediction between inner/outer concurrency hulls.
        """
        analytic = self._analytic_clusters(concurrency, config)
        k = self.calibration if self.calibrate else 1.0
        predicted = analytic * k
        active = analytic > 0
        predicted[active] = np.clip(predicted[active], 1.0, float(config.max_clusters))
        # Maximized mode keeps min_clusters running whenever active.
        predicted[active] = np.maximum(predicted[active], float(config.min_clusters))
        return predicted
