"""Deterministic fault injection for the CDW simulator (docs/ROBUSTNESS.md).

Declare *what* goes wrong in a :class:`FaultPlan`, wrap the vendor client
in a :class:`FaultingWarehouseClient`, and every consumer — actuator,
monitor, optimizer — must survive the weather.  Seeded through the run's
:class:`~repro.common.rng.RngRegistry`, so chaos runs are byte-reproducible.
"""

from repro.faults.client import FaultingWarehouseClient
from repro.faults.plan import (
    ALL_OPERATIONS,
    BILLING_OPERATIONS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    STATUS_OPERATIONS,
    TELEMETRY_OPERATIONS,
    WRITE_OPERATIONS,
)

__all__ = [
    "ALL_OPERATIONS",
    "BILLING_OPERATIONS",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultingWarehouseClient",
    "STATUS_OPERATIONS",
    "TELEMETRY_OPERATIONS",
    "WRITE_OPERATIONS",
]
