"""Command-line tools over the fault-injection layer.

Invocations (via the main CLI)::

    python -m repro.cli faults list                      # chaos scenario registry
    python -m repro.cli faults describe chaos_smoke      # render the fault plan
    python -m repro.cli faults run chaos_smoke           # run it; summarize faults
    python -m repro.cli faults run chaos_smoke --trace chaos.jsonl

``run`` drives the chaos protocol (``run_chaos``) and prints the
injected-vs-observed reconciliation: what the plan fired at the client
surface versus what the control loop absorbed (actuator errors/retries,
breaker opens, degraded snapshots, SAFE_MODE episodes).  With ``--trace``
it records the run and writes the same trace + sidecar set as ``obs
smoke``, so ``obs diff``/``obs alerts`` work on chaos runs — CI runs the
same seed twice and asserts the exports are byte-identical.

``run`` exits 0 when the run completed and, for plans that inject hard
faults, at least one fault was actually injected (a chaos run that injects
nothing is a rotted plan, not a passing test); 2 for an unknown scenario.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import IO


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``faults`` subcommand family."""
    sub = parser.add_subparsers(dest="faults_command", required=True)

    sub.add_parser("list", help="list the registered chaos scenarios")

    describe = sub.add_parser("describe", help="render a scenario's fault plan")
    describe.add_argument("scenario", help="chaos scenario name (see `faults list`)")
    describe.add_argument("--seed", type=int, default=None, help="scenario seed")

    run_p = sub.add_parser("run", help="run a chaos scenario; reconcile fault counts")
    run_p.add_argument("scenario", help="chaos scenario name (see `faults list`)")
    run_p.add_argument("--seed", type=int, default=None, help="scenario seed")
    run_p.add_argument(
        "--trace",
        default=None,
        help=(
            "record the run: trace JSONL here, sidecars at <trace>.metrics.json, "
            "<trace>.series.json and <trace>.alerts.json (same layout as obs smoke)"
        ),
    )
    run_p.add_argument(
        "--crash-at",
        type=int,
        default=None,
        dest="crash_at",
        help=(
            "also kill the control plane at this 1-based checkpoint boundary "
            "and restore it (crash-recovery chaos; see `durability smoke`)"
        ),
    )
    run_p.add_argument(
        "--checkpoint-dir",
        default=None,
        dest="checkpoint_dir",
        help="with --crash-at: keep the crash run's checkpoint artifacts here",
    )


def _build(name: str, seed: int | None):
    """Resolve a chaos scenario by registry name (None on unknown)."""
    from repro.experiments.scenarios import CHAOS_SCENARIOS

    builder = CHAOS_SCENARIOS.get(name)
    if builder is None:
        return None
    return builder() if seed is None else builder(seed=seed)


def list_scenarios(out: IO[str]) -> int:
    from repro.experiments.scenarios import CHAOS_SCENARIOS

    for name in sorted(CHAOS_SCENARIOS):
        scenario = CHAOS_SCENARIOS[name]()
        doc = (CHAOS_SCENARIOS[name].__doc__ or "").strip().splitlines()[0]
        print(
            f"{name:<20} {len(scenario.fault_plan)} spec(s), "
            f"{scenario.total_days} day(s)  {doc}",
            file=out,
        )
    return 0


def describe(name: str, seed: int | None, out: IO[str]) -> int:
    scenario = _build(name, seed)
    if scenario is None:
        print(f"error: unknown chaos scenario {name!r}", file=sys.stderr)
        return 2
    print(
        f"scenario {scenario.name!r}: {scenario.total_days} day(s), "
        f"keebo_day={scenario.keebo_day}, "
        f"seed={scenario.account.rngs.seed}",
        file=out,
    )
    print(scenario.fault_plan.describe(), file=out)
    return 0


def run_crash_scenario(
    name: str, seed: int | None, crash_at: int, checkpoint_dir: str | None, out: IO[str]
) -> int:
    """Chaos run plus a control-plane crash: client faults and a process
    death in the same run, with the byte-identity check of the crash
    harness as the pass criterion."""
    from repro.experiments.crash import run_with_recovery
    from repro.experiments.scenarios import CHAOS_SCENARIOS
    from repro.faults.plan import FaultKind

    builder = CHAOS_SCENARIOS.get(name)
    if builder is None:
        print(f"error: unknown chaos scenario {name!r}", file=sys.stderr)
        return 2
    build = builder if seed is None else (lambda: builder(seed=seed))
    result = run_with_recovery(
        build,
        kind=FaultKind.CRASH_AT_TICK,
        crash_boundary=crash_at,
        crash_dir=checkpoint_dir,
    )
    for line in result.summary_lines():
        print(line, file=out)
    if checkpoint_dir is not None:
        print(f"checkpoint artifacts: {checkpoint_dir}", file=out)
    return 0 if result.ok else 1


def run_scenario(
    name: str,
    seed: int | None,
    trace: str | None,
    out: IO[str],
    crash_at: int | None = None,
    checkpoint_dir: str | None = None,
) -> int:
    # Imported here: `faults list/describe` stay usable without pulling in
    # the full experiments stack.
    from repro import obs
    from repro.experiments.runner import run_chaos

    if crash_at is not None:
        return run_crash_scenario(name, seed, crash_at, checkpoint_dir, out)
    scenario = _build(name, seed)
    if scenario is None:
        print(f"error: unknown chaos scenario {name!r}", file=sys.stderr)
        return 2
    if trace is not None:
        with obs.observed(manifest=scenario.manifest()) as rec:
            chaos, _ = run_chaos(scenario)
        trace_path = pathlib.Path(trace)
        rec.sink.dump(trace_path)
        for suffix, payload in (
            (".metrics.json", rec.metrics.to_json()),
            (".series.json", rec.series.to_json()),
            (".alerts.json", rec.alerts.to_json()),
        ):
            sidecar = trace_path.with_name(trace_path.name + suffix)
            sidecar.write_text(payload, encoding="utf-8")
        print(f"trace: {trace_path} ({len(rec.sink)} records)", file=out)
    else:
        chaos, _ = run_chaos(scenario)
    for line in chaos.summary_lines():
        print(line, file=out)
    if chaos.injected_total == 0:
        print(
            "error: fault plan injected nothing (rotted windows or "
            "probabilities?)",
            file=sys.stderr,
        )
        return 1
    return 0


def run(args: argparse.Namespace, out: IO[str] | None = None) -> int:
    """Execute a parsed ``faults`` invocation; returns the process exit code."""
    out = out if out is not None else sys.stdout
    if args.faults_command == "list":
        return list_scenarios(out)
    if args.faults_command == "describe":
        return describe(args.scenario, args.seed, out)
    return run_scenario(
        args.scenario,
        args.seed,
        args.trace,
        out,
        crash_at=getattr(args, "crash_at", None),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
    )
