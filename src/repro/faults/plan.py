"""Declarative fault plans: *what* goes wrong, *where*, *when*, *how often*.

The paper's §4.4-§4.5 treat cloud-side flakiness as a first-class design
constraint: the actuator "reports any errors it encounters", the monitor
self-corrects on adverse impact, and KWO reverts when external changes
conflict with its own actions.  To *prove* those behaviours we must be able
to create the adverse conditions deterministically.  A :class:`FaultPlan`
is a declarative list of :class:`FaultSpec` entries; the
:class:`~repro.faults.client.FaultingWarehouseClient` consults the plan on
every vendor-API call and draws from the run's
:class:`~repro.common.rng.RngRegistry`, so identical ``(scenario, seed,
plan)`` runs inject byte-identical fault sequences.

Fault taxonomy (docs/ROBUSTNESS.md):

========================  ====================================================
kind                      behaviour at the client surface
========================  ====================================================
``api_error``             the operation raises :class:`InjectedFaultError`
``api_timeout``           write ops: the write **lands**, then
                          :class:`WarehouseTimeoutError` is raised (the
                          classic ambiguous-timeout); read ops: plain timeout
``config_reject``         ``alter_warehouse`` raises
                          :class:`ConfigRejectedError` without writing
``partial_write``         ``alter_warehouse`` applies only the first change
                          key (sorted), then raises a timeout
``stuck_suspend``         ``suspend_warehouse`` does nothing and times out
                          (the warehouse looks stuck in SUSPENDING)
``telemetry_gap``         telemetry reads raise :class:`TelemetryError`
                          (a blackout: the view is unavailable)
``telemetry_delay``       telemetry reads hide rows newer than
                          ``now - magnitude`` (ingestion lag)
``telemetry_duplicate``   telemetry reads repeat their last row (at-least-
                          once delivery)
``billing_stale``         metering reads are as-of ``now - magnitude``
``crash_at_tick``         the control plane dies at a checkpoint tick and
                          must restore from its durable artifacts
``torn_write``            a half-framed line is appended to the recovery
                          journal (crash mid-append)
``truncated_journal``     trailing bytes vanish from the recovery journal
``stale_snapshot``        the journal advances past a snapshot that was
                          never written (compaction ordering bug)
========================  ====================================================

The last four are **process-level** kinds: they target the synthetic
``"process"`` operation and fire at durability checkpoint ticks, not at
the vendor-client surface (see :mod:`repro.durability`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.warehouse.api import (
    ALL_OPERATIONS,
    BILLING_OPERATIONS,
    STATUS_OPERATIONS,
    TELEMETRY_OPERATIONS,
    WRITE_OPERATIONS,
)


class FaultKind(enum.Enum):
    """One row of the fault taxonomy above."""

    API_ERROR = "api_error"
    API_TIMEOUT = "api_timeout"
    CONFIG_REJECT = "config_reject"
    PARTIAL_WRITE = "partial_write"
    STUCK_SUSPEND = "stuck_suspend"
    TELEMETRY_GAP = "telemetry_gap"
    TELEMETRY_DELAY = "telemetry_delay"
    TELEMETRY_DUPLICATE = "telemetry_duplicate"
    BILLING_STALE = "billing_stale"
    # Process-level kinds (docs/ROBUSTNESS.md §v2): these never fire at the
    # vendor-client surface.  They target the synthetic "process" operation,
    # evaluated by the durability controller at checkpoint ticks, and kill
    # or corrupt the *service's own* durable state instead of the API.
    CRASH_AT_TICK = "crash_at_tick"
    TORN_WRITE = "torn_write"
    TRUNCATED_JOURNAL = "truncated_journal"
    STALE_SNAPSHOT = "stale_snapshot"


#: The synthetic operation name process-level kinds target.  It is not a
#: member of any :mod:`repro.warehouse.api` operation group, so process
#: specs can never match a vendor-client call.
PROCESS_OPERATION = "process"

#: Kinds evaluated at checkpoint ticks rather than client calls.
PROCESS_KINDS = frozenset(
    {
        FaultKind.CRASH_AT_TICK,
        FaultKind.TORN_WRITE,
        FaultKind.TRUNCATED_JOURNAL,
        FaultKind.STALE_SNAPSHOT,
    }
)


#: The operations each kind may legally target ("*" expands to this set).
#: The operation groups themselves are owned by :mod:`repro.warehouse.api`.
_KIND_OPERATIONS: dict[FaultKind, tuple[str, ...]] = {
    FaultKind.API_ERROR: ALL_OPERATIONS,
    FaultKind.API_TIMEOUT: ALL_OPERATIONS,
    FaultKind.CONFIG_REJECT: ("alter_warehouse",),
    FaultKind.PARTIAL_WRITE: ("alter_warehouse",),
    FaultKind.STUCK_SUSPEND: ("suspend_warehouse",),
    FaultKind.TELEMETRY_GAP: TELEMETRY_OPERATIONS,
    FaultKind.TELEMETRY_DELAY: TELEMETRY_OPERATIONS,
    FaultKind.TELEMETRY_DUPLICATE: TELEMETRY_OPERATIONS,
    FaultKind.BILLING_STALE: BILLING_OPERATIONS,
    FaultKind.CRASH_AT_TICK: (PROCESS_OPERATION,),
    FaultKind.TORN_WRITE: (PROCESS_OPERATION,),
    FaultKind.TRUNCATED_JOURNAL: (PROCESS_OPERATION,),
    FaultKind.STALE_SNAPSHOT: (PROCESS_OPERATION,),
}

#: Kinds whose ``magnitude`` (seconds) is meaningful and must be positive.
_TIMED_KINDS = frozenset({FaultKind.TELEMETRY_DELAY, FaultKind.BILLING_STALE})


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: kind, target operation, arming window, odds.

    Attributes
    ----------
    kind:
        Row of the fault taxonomy.
    operation:
        Client operation to target, or ``"*"`` for every operation the kind
        may legally target.
    probability:
        Per-call trigger probability in ``[0, 1]``.  Window-only faults
        (e.g. a blackout) use ``1.0``.
    window:
        Sim-time window during which the spec is armed; ``None`` arms it
        for the whole run.
    magnitude:
        Seconds, for the timed kinds (telemetry delay, billing staleness).
    detail:
        Free-text note carried into injected error messages and traces.
    """

    kind: FaultKind
    operation: str = "*"
    probability: float = 1.0
    window: Window | None = None
    magnitude: float = 0.0
    detail: str = ""

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        allowed = _KIND_OPERATIONS[self.kind]
        if self.operation != "*" and self.operation not in allowed:
            raise ConfigurationError(
                f"{self.kind.value} cannot target {self.operation!r}; "
                f"allowed: {', '.join(allowed)}"
            )
        if self.kind in _TIMED_KINDS and self.magnitude <= 0:
            raise ConfigurationError(
                f"{self.kind.value} needs a positive magnitude (seconds)"
            )
        if self.magnitude < 0:
            raise ConfigurationError("fault magnitude must be >= 0")

    def targets(self, operation: str) -> bool:
        """Does this spec apply to ``operation``?"""
        if self.operation == "*":
            return operation in _KIND_OPERATIONS[self.kind]
        return operation == self.operation

    def armed(self, now: float) -> bool:
        """Is this spec active at sim time ``now``?"""
        return self.window is None or self.window.contains(now)

    def describe(self) -> str:
        parts = [self.kind.value, f"op={self.operation}"]
        if self.probability < 1.0:
            parts.append(f"p={self.probability:g}")
        if self.window is not None:
            parts.append(f"window=[{self.window.start:g}, {self.window.end:g})")
        if self.magnitude:
            parts.append(f"magnitude={self.magnitude:g}s")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of :class:`FaultSpec` entries.

    Spec order matters: the faulting client evaluates armed specs in plan
    order and draws one RNG variate per armed probabilistic spec, so the
    injected sequence is a pure function of ``(plan, seed, call sequence)``.
    """

    name: str = "faults"
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        # Tolerate list literals in scenario builders.
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def armed_specs(self, operation: str, now: float) -> list[FaultSpec]:
        """Specs targeting ``operation`` that are armed at ``now``, in order."""
        return [s for s in self.specs if s.targets(operation) and s.armed(now)]

    def describe(self) -> str:
        """Human-readable rendering (the ``faults describe`` CLI output)."""
        lines = [f"fault plan {self.name!r}: {len(self.specs)} spec(s)"]
        lines.extend(f"  [{i}] {spec.describe()}" for i, spec in enumerate(self.specs))
        return "\n".join(lines)
