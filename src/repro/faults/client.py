"""A fault-injecting wrapper over the vendor client API.

:class:`FaultingWarehouseClient` is a drop-in
:class:`~repro.warehouse.api.CloudWarehouseClient` that consults a
:class:`~repro.faults.plan.FaultPlan` on every call.  Determinism contract:

* randomness comes from one named stream of the account's
  :class:`~repro.common.rng.RngRegistry`, so identical ``(scenario, seed,
  plan)`` runs inject byte-identical fault sequences;
* armed specs are evaluated in plan order and evaluation stops at the
  first trigger, so the variate sequence is a pure function of the call
  sequence;
* specs with ``probability == 1.0`` consume no randomness (window-only
  faults never perturb other draws).

Every injection is counted in :attr:`injected` and emitted as a
``fault.inject`` trace event, so a chaos run can reconcile
injected-vs-observed fault counts afterwards (``repro.cli faults run``).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import (
    ConfigRejectedError,
    InjectedFaultError,
    TelemetryError,
    WarehouseTimeoutError,
)
from repro.common.simtime import Window
from repro.obs import trace as obs
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.warehouse.account import Account
from repro.warehouse.api import CloudWarehouseClient, WarehouseInfo
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.telemetry import WarehouseEvent

#: Kinds that abort the call (possibly after a partial/landed write).
_FAILURE_KINDS = frozenset(
    {
        FaultKind.API_ERROR,
        FaultKind.API_TIMEOUT,
        FaultKind.CONFIG_REJECT,
        FaultKind.PARTIAL_WRITE,
        FaultKind.STUCK_SUSPEND,
        FaultKind.TELEMETRY_GAP,
    }
)


class FaultingWarehouseClient(CloudWarehouseClient):
    """Vendor client that injects the faults a :class:`FaultPlan` declares."""

    def __init__(
        self,
        account: Account,
        plan: FaultPlan,
        actor: str = "keebo",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(account, actor)
        self.plan = plan
        # One stream for the whole client: the call sequence is deterministic,
        # so a single stream keeps draws reproducible and auditable.
        self.rng = rng if rng is not None else account.rngs.stream("faults.client")
        #: Injection counts by fault kind value.
        self.injected: dict[str, int] = {}
        #: Injection counts by (operation, kind value) — the CLI summary table.
        self.injected_by_operation: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------- machinery
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # ----------------------------------------------------------- durability
    def fault_state_dict(self) -> dict:
        """Injection counters (StateCodec shape; tuple keys flattened).

        The fault RNG stream itself is registry-owned and captured with
        every other stream by the service.
        """
        return {
            "injected": dict(sorted(self.injected.items())),
            "injected_by_operation": [
                [operation, kind, count]
                for (operation, kind), count in sorted(self.injected_by_operation.items())
            ],
        }

    def load_fault_state(self, state: dict) -> None:
        self.injected = {k: int(v) for k, v in state["injected"].items()}
        self.injected_by_operation = {
            (operation, kind): int(count)
            for operation, kind, count in state["injected_by_operation"]
        }

    def _record(self, spec: FaultSpec, operation: str, now: float) -> None:
        kind = spec.kind.value
        self.injected[kind] = self.injected.get(kind, 0) + 1
        key = (operation, kind)
        self.injected_by_operation[key] = self.injected_by_operation.get(key, 0) + 1
        obs.emit(
            "fault.inject",
            now,
            operation=operation,
            kind=kind,
            detail=spec.detail,
        )
        obs.counter(f"repro.faults.injected.{kind}").inc(time=now)

    def _triggered(self, spec: FaultSpec) -> bool:
        if spec.probability >= 1.0:
            return True
        return float(self.rng.random()) < spec.probability

    def _first_trigger(
        self, operation: str, kinds: frozenset[FaultKind]
    ) -> FaultSpec | None:
        """First armed spec of ``kinds`` that triggers for this call."""
        now = self.account.sim.now
        for spec in self.plan.armed_specs(operation, now):
            if spec.kind in kinds and self._triggered(spec):
                self._record(spec, operation, now)
                return spec
        return None

    def _transform_specs(self, operation: str, kind: FaultKind) -> list[FaultSpec]:
        now = self.account.sim.now
        out = []
        for spec in self.plan.armed_specs(operation, now):
            if spec.kind is kind and self._triggered(spec):
                self._record(spec, operation, now)
                out.append(spec)
        return out

    @staticmethod
    def _raise_for(spec: FaultSpec, operation: str) -> None:
        note = f" ({spec.detail})" if spec.detail else ""
        if spec.kind is FaultKind.API_ERROR:
            raise InjectedFaultError(f"injected: {operation} failed{note}")
        if spec.kind is FaultKind.CONFIG_REJECT:
            raise ConfigRejectedError(f"injected: {operation} rejected{note}")
        if spec.kind is FaultKind.TELEMETRY_GAP:
            raise TelemetryError(f"injected: {operation} unavailable{note}")
        raise WarehouseTimeoutError(f"injected: {operation} timed out{note}")

    # ------------------------------------------------------------ write path
    def alter_warehouse(self, name: str, **changes) -> WarehouseConfig:
        spec = self._first_trigger("alter_warehouse", _FAILURE_KINDS)
        if spec is None:
            return super().alter_warehouse(name, **changes)
        if spec.kind is FaultKind.API_TIMEOUT:
            # The ambiguous timeout: the write lands, the response is lost.
            super().alter_warehouse(name, **changes)
        elif spec.kind is FaultKind.PARTIAL_WRITE and changes:
            first = sorted(changes)[0]
            super().alter_warehouse(name, **{first: changes[first]})
        self._raise_for(spec, "alter_warehouse")

    def suspend_warehouse(self, name: str) -> None:
        spec = self._first_trigger("suspend_warehouse", _FAILURE_KINDS)
        if spec is None:
            return super().suspend_warehouse(name)
        if spec.kind is FaultKind.API_TIMEOUT:
            super().suspend_warehouse(name)
        # STUCK_SUSPEND: the request is accepted then lost — no state change.
        self._raise_for(spec, "suspend_warehouse")

    def resume_warehouse(self, name: str) -> None:
        spec = self._first_trigger("resume_warehouse", _FAILURE_KINDS)
        if spec is None:
            return super().resume_warehouse(name)
        if spec.kind is FaultKind.API_TIMEOUT:
            super().resume_warehouse(name)
        self._raise_for(spec, "resume_warehouse")

    # ----------------------------------------------------------- status path
    def show_warehouses(self) -> list[WarehouseInfo]:
        spec = self._first_trigger("show_warehouses", _FAILURE_KINDS)
        if spec is not None:
            self._raise_for(spec, "show_warehouses")
        return super().show_warehouses()

    def describe_warehouse(self, name: str) -> WarehouseInfo:
        spec = self._first_trigger("describe_warehouse", _FAILURE_KINDS)
        if spec is not None:
            self._raise_for(spec, "describe_warehouse")
        return super().describe_warehouse(name)

    def current_config(self, name: str) -> WarehouseConfig:
        spec = self._first_trigger("current_config", _FAILURE_KINDS)
        if spec is not None:
            self._raise_for(spec, "current_config")
        return super().current_config(name)

    # -------------------------------------------------------- telemetry path
    def query_history(
        self, warehouse: str, window: Window | None = None, include_overhead: bool = False
    ) -> list[QueryRecord]:
        spec = self._first_trigger("query_history", _FAILURE_KINDS)
        if spec is not None:
            self._raise_for(spec, "query_history")
        records = super().query_history(warehouse, window, include_overhead)
        for delay in self._transform_specs("query_history", FaultKind.TELEMETRY_DELAY):
            horizon = self.account.sim.now - delay.magnitude
            records = [r for r in records if r.arrival_time <= horizon]
        if records and self._transform_specs(
            "query_history", FaultKind.TELEMETRY_DUPLICATE
        ):
            records = records + [records[-1]]
        return records

    def warehouse_events(
        self, warehouse: str, window: Window | None = None, kind: str | None = None
    ) -> list[WarehouseEvent]:
        spec = self._first_trigger("warehouse_events", _FAILURE_KINDS)
        if spec is not None:
            self._raise_for(spec, "warehouse_events")
        events = super().warehouse_events(warehouse, window, kind)
        for delay in self._transform_specs("warehouse_events", FaultKind.TELEMETRY_DELAY):
            horizon = self.account.sim.now - delay.magnitude
            events = [e for e in events if e.time <= horizon]
        if events and self._transform_specs(
            "warehouse_events", FaultKind.TELEMETRY_DUPLICATE
        ):
            events = events + [events[-1]]
        return events

    # ---------------------------------------------------------- billing path
    def _billing_as_of(self, operation: str) -> float:
        as_of = self.account.sim.now
        for spec in self._transform_specs(operation, FaultKind.BILLING_STALE):
            as_of = min(as_of, self.account.sim.now - spec.magnitude)
        return as_of

    def metering_history(self, warehouse: str, window: Window) -> dict[int, float]:
        spec = self._first_trigger("metering_history", _FAILURE_KINDS)
        if spec is not None:
            self._raise_for(spec, "metering_history")
        as_of = self._billing_as_of("metering_history")
        if as_of >= self.account.sim.now:
            return super().metering_history(warehouse, window)
        self._charge_like_base("metering_history", warehouse)
        return self.account.warehouse(warehouse).meter.hourly_rollup(window, as_of=as_of)

    def credits_in_window(self, warehouse: str, window: Window) -> float:
        spec = self._first_trigger("credits_in_window", _FAILURE_KINDS)
        if spec is not None:
            self._raise_for(spec, "credits_in_window")
        as_of = self._billing_as_of("credits_in_window")
        if as_of >= self.account.sim.now:
            return super().credits_in_window(warehouse, window)
        self._charge_like_base("credits_in_window", warehouse)
        return self.account.warehouse(warehouse).meter.credits_in_window(
            window, as_of=as_of
        )

    def _charge_like_base(self, operation: str, warehouse: str) -> None:
        # Stale billing reads are still metered like the real ones.
        from repro.warehouse.api import TELEMETRY_FETCH_CREDITS

        self._charge(TELEMETRY_FETCH_CREDITS, "metering_history", warehouse)
