"""Canonical experiment scenarios — one builder per paper figure/claim.

Each scenario wires an account, a warehouse with the *customer's* (typically
suboptimal) configuration, and a seeded workload; the runner then drives the
before/after protocol of §7.1 or the specialized protocols of §7.2-§7.4.

Configuration choices mirror the paper's narrative:

* Figure 4a's warehouse serves unpredictable ad-hoc analysts on an oversized
  warehouse with a long auto-suspend — the classic "provisioned for peak,
  pays for idle" customer where KWO finds large savings (paper: −59.7%).
* Figure 4b's warehouse runs a steady, predictable ETL+BI mix on a
  reasonably-sized warehouse — little idle waste, so savings are modest
  (paper: −13.2%) and come mostly from right-sizing and suspend tuning.
* Figure 5 samples four warehouses of different characters, including a
  rarely-used one whose tiny spend makes relative error large (paper: 20.9%).
* Figure 6's warehouse performs static hourly ETL (paper: "relatively
  static workloads ... for performing ETL tasks").
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field
from typing import Callable

from repro.common.rng import RngRegistry
from repro.common.simtime import DAY, HOUR, Window
from repro.core.constraints import ConstraintSet
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.obs import RunManifest
from repro.core.optimizer import OptimizerConfig
from repro.core.sliders import SliderPosition
from repro.warehouse.account import Account
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import ScalingPolicy, WarehouseSize
from repro.workloads.adhoc import AdhocWorkload
from repro.workloads.base import Workload
from repro.workloads.bi import BiWorkload
from repro.workloads.etl import EtlWorkload
from repro.workloads.mixed import (
    make_bi_workload,
    make_predictable_workload,
    make_static_etl_workload,
    make_unpredictable_workload,
)


@dataclass
class Scenario:
    """A fully-wired simulated deployment, ready to run."""

    name: str
    account: Account
    warehouse: str
    workload: Workload
    total_days: int
    keebo_day: int | None  # None = Keebo never enabled
    slider: SliderPosition = SliderPosition.BALANCED
    optimizer_config: OptimizerConfig = field(default_factory=OptimizerConfig)
    constraints: ConstraintSet | None = None
    #: When set, the runner hands every optimizer a FaultingWarehouseClient
    #: injecting this plan (chaos protocol, docs/ROBUSTNESS.md).
    fault_plan: FaultPlan | None = None
    #: The picklable recipe that built this scenario (attached by the
    #: ``@scenario_factory`` decorator).  Worker processes rebuild the
    #: scenario from it — the Scenario object itself (live Account, heaps,
    #: RNG streams) never crosses a process boundary.  Excluded from
    #: equality/manifests: two scenarios are the same run regardless of
    #: which recipe produced them.
    spec: "ScenarioSpec | None" = field(default=None, compare=False, repr=False)

    @property
    def horizon(self) -> float:
        return self.total_days * DAY

    @property
    def keebo_start(self) -> float | None:
        return None if self.keebo_day is None else self.keebo_day * DAY

    def schedule(self) -> int:
        """Generate + schedule all arrivals; returns the request count."""
        requests = self.workload.generate(Window(0.0, self.horizon))
        self.account.schedule_workload(self.warehouse, requests)
        return len(requests)

    def manifest(self) -> RunManifest:
        """The provenance record for this run (docs/OBSERVABILITY.md).

        The config hash covers everything that shapes the run besides the
        seed: the warehouses' customer-set knobs, the optimizer config, the
        slider, the constraints and the protocol horizon.  Call before
        running — KWO alters warehouse configs once active.
        """
        configuration = {
            "warehouses": {
                name: wh.config for name, wh in sorted(self.account.warehouses.items())
            },
            "optimizer": self.optimizer_config,
            "constraints": self.constraints,
            "slider": int(self.slider),
            "total_days": self.total_days,
            "keebo_day": self.keebo_day,
            "fault_plan": self.fault_plan,
        }
        return RunManifest.create(
            scenario=self.name,
            seed=self.account.rngs.seed,
            config=configuration,
            slider=int(self.slider),
        )


# ---------------------------------------------------------------- specs
#: Factory registry: spec name -> builder.  Worker processes look builders
#: up here by name, so a spec is just (name, kwargs, index) — all picklable.
SCENARIO_FACTORIES: dict[str, Callable] = {}


@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable scenario recipe: factory name + kwargs (+ list index).

    Determinism contract (docs/PERFORMANCE.md): factories are pure
    functions of their kwargs, so ``spec.build()`` in any process yields a
    scenario byte-equivalent to the one the original factory call returned.
    ``index`` selects one element of a list-returning factory (``fig5``,
    ``fleet``).
    """

    factory: str
    kwargs: tuple[tuple[str, object], ...] = ()
    index: int | None = None

    def build(self) -> Scenario:
        try:
            builder = SCENARIO_FACTORIES[self.factory]
        except KeyError:
            raise KeyError(
                f"unknown scenario factory {self.factory!r}; registered: "
                f"{sorted(SCENARIO_FACTORIES)}"
            ) from None
        built = builder(**dict(self.kwargs))
        if self.index is not None:
            built = built[self.index]
        if not isinstance(built, Scenario):
            raise TypeError(
                f"factory {self.factory!r} returned {type(built).__name__}; "
                "list-returning factories need an index"
            )
        return built

    def describe(self) -> str:
        """Human-readable recipe, for logs and worker error messages."""
        kwargs = ", ".join(f"{k}={v!r}" for k, v in self.kwargs)
        suffix = "" if self.index is None else f"[{self.index}]"
        return f"{self.factory}({kwargs}){suffix}"


def scenario_factory(name: str) -> Callable:
    """Register a scenario builder and stamp its products with their spec.

    The wrapped builder behaves identically; additionally every
    :class:`Scenario` it returns (directly or in a list) carries a
    :class:`ScenarioSpec` with the *fully-bound* call arguments, so the
    parallel layer can rebuild it in a worker process.
    """

    def decorate(fn: Callable) -> Callable:
        signature = inspect.signature(fn)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            spec_kwargs = tuple(sorted(bound.arguments.items()))
            built = fn(*args, **kwargs)
            if isinstance(built, Scenario):
                built.spec = ScenarioSpec(name, spec_kwargs)
            else:
                for i, scenario in enumerate(built):
                    scenario.spec = ScenarioSpec(name, spec_kwargs, index=i)
            return built

        if name in SCENARIO_FACTORIES:
            raise ValueError(f"duplicate scenario factory {name!r}")
        SCENARIO_FACTORIES[name] = wrapper
        return wrapper

    return decorate


def _default_optimizer_config(**overrides) -> OptimizerConfig:
    base = dict(
        training_window=3 * DAY,
        onboarding_episodes=6,
        episode_length=1 * DAY,
        retrain_interval=24 * HOUR,
        retrain_episodes=1,
    )
    base.update(overrides)
    return OptimizerConfig(**base)


# --------------------------------------------------------------------- Fig 4
@scenario_factory("fig4a")
def fig4a_scenario(seed: int = 401) -> Scenario:
    """Unpredictable warehouse, heavily over-provisioned (paper: −59.7%)."""
    account = Account(name="fig4a", seed=seed)
    config = WarehouseConfig(
        size=WarehouseSize.XL,
        auto_suspend_seconds=3600.0,
        min_clusters=1,
        max_clusters=6,
        scaling_policy=ScalingPolicy.STANDARD,
    )
    account.create_warehouse("ADHOC_WH", config)
    workload = make_unpredictable_workload(RngRegistry(seed + 1))
    return Scenario(
        name="fig4a",
        account=account,
        warehouse="ADHOC_WH",
        workload=workload,
        total_days=14,
        keebo_day=7,
        # A fast-ramping deployment (the paper's Figure 4 customers show
        # near-full savings within the first optimized days).
        optimizer_config=_default_optimizer_config(confidence_tau=12 * HOUR),
    )


@scenario_factory("fig4b")
def fig4b_scenario(seed: int = 402) -> Scenario:
    """Predictable ETL+BI warehouse, already mostly well-tuned (paper: −13.2%).

    The customer runs a busy, steady pipeline on a warehouse with a fairly
    tight auto-suspend; idle waste is small, so KWO's headroom is modest.
    """
    account = Account(name="fig4b", seed=seed)
    config = WarehouseConfig(
        size=WarehouseSize.L,
        auto_suspend_seconds=600.0,
        min_clusters=1,
        max_clusters=2,
    )
    account.create_warehouse("ETL_WH", config)
    workload = make_predictable_workload(RngRegistry(seed + 1), intensity=1.8)
    return Scenario(
        name="fig4b",
        account=account,
        warehouse="ETL_WH",
        workload=workload,
        total_days=14,
        keebo_day=7,
        optimizer_config=_default_optimizer_config(),
    )


# --------------------------------------------------------------------- Fig 5
@scenario_factory("fig5")
def fig5_scenarios(seed: int = 500) -> list[Scenario]:
    """Four warehouses of different characters for cost-model accuracy.

    Warehouse3 is the rarely-used, low-spend one where relative error is
    expected to be largest (its absolute spend is tiny, so the 60 s minimum
    charges and resume jitter dominate).
    """
    scenarios = []
    # Warehouse1: busy mixed analytics.
    acct1 = Account(name="fig5-wh1", seed=seed + 1)
    acct1.create_warehouse(
        "Warehouse1", WarehouseConfig(size=WarehouseSize.L, auto_suspend_seconds=600, max_clusters=4)
    )
    scenarios.append(
        Scenario(
            "Warehouse1", acct1, "Warehouse1",
            make_unpredictable_workload(RngRegistry(seed + 11)),
            total_days=4, keebo_day=None,
        )
    )
    # Warehouse2: steady ETL.
    acct2 = Account(name="fig5-wh2", seed=seed + 2)
    acct2.create_warehouse(
        "Warehouse2", WarehouseConfig(size=WarehouseSize.M, auto_suspend_seconds=300, max_clusters=2)
    )
    scenarios.append(
        Scenario(
            "Warehouse2", acct2, "Warehouse2",
            make_static_etl_workload(RngRegistry(seed + 12), launches_per_day=12),
            total_days=4, keebo_day=None,
        )
    )
    # Warehouse3: provisioned but rarely used (low spend, worst rel. error).
    acct3 = Account(name="fig5-wh3", seed=seed + 3)
    acct3.create_warehouse(
        "Warehouse3", WarehouseConfig(size=WarehouseSize.S, auto_suspend_seconds=120, max_clusters=1)
    )
    rare = AdhocWorkload.synthesize(
        RngRegistry(seed + 13).stream("workload.adhoc"),
        n_templates=8,
        peak_rate_per_hour=1.0,
        base_rate_per_hour=0.05,
        spike_probability_per_day=0.0,
        month_end_boost=1.0,
    )
    scenarios.append(
        Scenario("Warehouse3", acct3, "Warehouse3", rare, total_days=4, keebo_day=None)
    )
    # Warehouse4: BI dashboards.
    acct4 = Account(name="fig5-wh4", seed=seed + 4)
    acct4.create_warehouse(
        "Warehouse4", WarehouseConfig(size=WarehouseSize.M, auto_suspend_seconds=600, max_clusters=3)
    )
    scenarios.append(
        Scenario(
            "Warehouse4", acct4, "Warehouse4",
            make_bi_workload(RngRegistry(seed + 14), intensity=1.5),
            total_days=4, keebo_day=None,
        )
    )
    return scenarios


# --------------------------------------------------------------------- Fig 6
@scenario_factory("fig6")
def fig6_scenario(seed: int = 600) -> Scenario:
    """Static hourly ETL warehouse with KWO active (overhead measurement)."""
    account = Account(name="fig6", seed=seed)
    config = WarehouseConfig(
        size=WarehouseSize.L, auto_suspend_seconds=900.0, max_clusters=2
    )
    account.create_warehouse("ETL_WH", config)
    workload = make_static_etl_workload(RngRegistry(seed + 1), launches_per_day=24)
    return Scenario(
        name="fig6",
        account=account,
        warehouse="ETL_WH",
        workload=workload,
        total_days=5,
        keebo_day=3,
        optimizer_config=_default_optimizer_config(),
    )


# --------------------------------------------------------------------- Fig 7
@scenario_factory("fig7")
def fig7_scenario(slider: SliderPosition, seed: int = 700) -> Scenario:
    """One slider sweep point: the same workload and warehouse, with KWO
    configured at ``slider`` (paper runs the same workload at all five)."""
    account = Account(name=f"fig7-s{int(slider)}", seed=seed)
    config = WarehouseConfig(
        size=WarehouseSize.L, auto_suspend_seconds=1800.0, max_clusters=3
    )
    account.create_warehouse("BI_WH", config)
    parts = [
        BiWorkload.synthesize(
            RngRegistry(seed + 1).stream("workload.bi"),
            n_dashboards=5,
            peak_refreshes_per_hour=5.0,
        ),
        EtlWorkload.synthesize(
            RngRegistry(seed + 2).stream("workload.etl"),
            n_pipelines=2,
            steps_per_pipeline=4,
            launches_per_day=4,
        ),
    ]
    from repro.workloads.base import CompositeWorkload

    return Scenario(
        name=f"fig7-slider{int(slider)}",
        account=account,
        warehouse="BI_WH",
        workload=CompositeWorkload(parts),
        total_days=7,
        keebo_day=3,
        slider=slider,
        optimizer_config=_default_optimizer_config(),
    )


# --------------------------------------------------------------------- smoke
@scenario_factory("smoke")
def smoke_scenario(seed: int = 123) -> Scenario:
    """A deliberately small traced-run scenario (seconds, not minutes).

    Used by ``repro.cli obs smoke``, the CI instrumentation guard, and the
    trace-determinism property test: two days of light static ETL with KWO
    onboarded after day one, tuned for the shortest run that still exercises
    onboarding, ticks, retraining windows, monitoring and replay.
    """
    account = Account(name="smoke", seed=seed)
    config = WarehouseConfig(
        size=WarehouseSize.M, auto_suspend_seconds=900.0, max_clusters=2
    )
    account.create_warehouse("SMOKE_WH", config)
    workload = make_static_etl_workload(RngRegistry(seed + 1), launches_per_day=10)
    return Scenario(
        name="smoke",
        account=account,
        warehouse="SMOKE_WH",
        workload=workload,
        total_days=2,
        keebo_day=1,
        optimizer_config=OptimizerConfig(
            decision_interval=1800.0,
            retrain_interval=12 * HOUR,
            training_window=1 * DAY,
            onboarding_episodes=2,
            retrain_episodes=1,
            episode_length=1 * DAY,
            report_interval=4 * HOUR,
        ),
    )


# --------------------------------------------------------------------- chaos
# Chaos scenarios arm their faults *after* onboarding completes: onboarding
# needs a working telemetry view by construction (no models exist yet to
# fall back on), while the steady-state loop must survive anything the plan
# throws at it (docs/ROBUSTNESS.md).


@scenario_factory("chaos_smoke")
def chaos_smoke_scenario(seed: int = 131) -> Scenario:
    """The smoke scenario under weather: ≥10% API failures, one blackout.

    Small enough for CI (two simulated days), yet it exercises the whole
    robustness surface: injected API errors on every operation, config
    rejections on writes, a three-hour telemetry blackout that must drive
    the optimizer through a full SAFE_MODE enter/exit cycle, an ingestion
    delay and stale billing reads.
    """
    base = smoke_scenario(seed=seed)
    # Two decision intervals of staleness before SAFE_MODE: one flaky read
    # is a HOLD, a sustained blackout escalates.
    base.optimizer_config.telemetry_staleness_threshold = 3600.0
    chaos_start = 1 * DAY + HOUR  # after onboarding at keebo_day=1
    plan = FaultPlan(
        name="chaos_smoke",
        specs=(
            FaultSpec(
                FaultKind.API_ERROR,
                probability=0.12,
                window=Window(chaos_start, 2 * DAY),
                detail="ambient API flakiness",
            ),
            FaultSpec(
                FaultKind.CONFIG_REJECT,
                operation="alter_warehouse",
                probability=0.2,
                window=Window(chaos_start, 2 * DAY),
            ),
            FaultSpec(
                FaultKind.TELEMETRY_GAP,
                window=Window(1 * DAY + 8 * HOUR, 1 * DAY + 11 * HOUR),
                detail="telemetry blackout",
            ),
            FaultSpec(
                FaultKind.TELEMETRY_DELAY,
                probability=0.2,
                window=Window(chaos_start, 2 * DAY),
                magnitude=900.0,
            ),
            FaultSpec(
                FaultKind.BILLING_STALE,
                probability=0.3,
                window=Window(chaos_start, 2 * DAY),
                magnitude=3600.0,
            ),
        ),
    )
    base.name = "chaos_smoke"
    base.account.name = "chaos_smoke"
    base.fault_plan = plan
    return base


@scenario_factory("flaky_api")
def flaky_api_scenario(seed: int = 132) -> Scenario:
    """Persistent vendor flakiness on the write path: retries and the
    circuit breaker carry the run (no blackout; telemetry stays up)."""
    base = smoke_scenario(seed=seed)
    base.total_days = 3
    base.optimizer_config.telemetry_staleness_threshold = 3600.0
    chaos_start = 1 * DAY + HOUR
    end = base.total_days * DAY
    plan = FaultPlan(
        name="flaky_api",
        specs=(
            FaultSpec(
                FaultKind.API_ERROR,
                operation="alter_warehouse",
                probability=0.25,
                window=Window(chaos_start, end),
            ),
            FaultSpec(
                FaultKind.API_TIMEOUT,
                operation="alter_warehouse",
                probability=0.15,
                window=Window(chaos_start, end),
                detail="ambiguous timeout: the write lands",
            ),
            FaultSpec(
                FaultKind.PARTIAL_WRITE,
                operation="alter_warehouse",
                probability=0.1,
                window=Window(chaos_start, end),
            ),
            FaultSpec(
                FaultKind.CONFIG_REJECT,
                operation="alter_warehouse",
                probability=0.1,
                window=Window(chaos_start, end),
            ),
        ),
    )
    base.name = "flaky_api"
    base.account.name = "flaky_api"
    base.fault_plan = plan
    return base


@scenario_factory("telemetry_blackout")
def telemetry_blackout_scenario(seed: int = 133) -> Scenario:
    """A long hard blackout plus lag on recovery: SAFE_MODE end to end."""
    base = smoke_scenario(seed=seed)
    base.total_days = 3
    base.optimizer_config.telemetry_staleness_threshold = 3600.0
    plan = FaultPlan(
        name="telemetry_blackout",
        specs=(
            FaultSpec(
                FaultKind.TELEMETRY_GAP,
                window=Window(1 * DAY + 6 * HOUR, 1 * DAY + 12 * HOUR),
                detail="six-hour blackout",
            ),
            FaultSpec(
                FaultKind.TELEMETRY_DELAY,
                window=Window(1 * DAY + 12 * HOUR, 1 * DAY + 14 * HOUR),
                magnitude=1200.0,
                detail="ingestion catches up",
            ),
            FaultSpec(
                FaultKind.TELEMETRY_DUPLICATE,
                probability=0.3,
                window=Window(1 * DAY + 12 * HOUR, 2 * DAY),
                detail="at-least-once replay",
            ),
            FaultSpec(
                FaultKind.BILLING_STALE,
                window=Window(1 * DAY + 6 * HOUR, 1 * DAY + 14 * HOUR),
                magnitude=7200.0,
            ),
        ),
    )
    base.name = "telemetry_blackout"
    base.account.name = "telemetry_blackout"
    base.fault_plan = plan
    return base


#: Scenario registry for ``repro.cli faults`` (name -> builder(seed)).
CHAOS_SCENARIOS = {
    "chaos_smoke": chaos_smoke_scenario,
    "flaky_api": flaky_api_scenario,
    "telemetry_blackout": telemetry_blackout_scenario,
}


# -------------------------------------------------------- onboarding / fleet
@scenario_factory("onboarding")
def onboarding_scenario(seed: int = 800, total_days: int = 12) -> Scenario:
    """Long horizon with periodic retraining: savings ramp vs hours (§1/§9)."""
    account = Account(name="onboarding", seed=seed)
    config = WarehouseConfig(
        size=WarehouseSize.XL, auto_suspend_seconds=3600.0, max_clusters=4
    )
    account.create_warehouse("MAIN_WH", config)
    workload = make_unpredictable_workload(RngRegistry(seed + 1), intensity=1.0)
    return Scenario(
        name="onboarding",
        account=account,
        warehouse="MAIN_WH",
        workload=workload,
        total_days=total_days,
        keebo_day=3,
        optimizer_config=_default_optimizer_config(
            retrain_interval=12 * HOUR, retrain_episodes=2
        ),
    )


@scenario_factory("fleet")
def fleet_scenarios(n_customers: int = 6, seed: int = 900) -> list[Scenario]:
    """A fleet of synthetic customers for the 20-70% savings-range claim."""
    registry = RngRegistry(seed)
    builders = [
        ("idle-heavy adhoc", WarehouseSize.XL, 3600.0, 4, make_unpredictable_workload),
        ("steady etl", WarehouseSize.L, 600.0, 2, make_predictable_workload),
        ("bi dashboards", WarehouseSize.L, 1800.0, 3, make_bi_workload),
        ("oversized adhoc", WarehouseSize.SIZE_2XL, 1800.0, 4, make_unpredictable_workload),
        ("hourly etl", WarehouseSize.M, 900.0, 2, lambda r: make_static_etl_workload(r, 18)),
        ("mixed", WarehouseSize.L, 1200.0, 3, make_predictable_workload),
    ]
    scenarios = []
    for i in range(n_customers):
        label, size, suspend, clusters, factory = builders[i % len(builders)]
        account = Account(name=f"customer{i}", seed=seed + 10 * i)
        account.create_warehouse(
            "WH",
            WarehouseConfig(size=size, auto_suspend_seconds=suspend, max_clusters=clusters),
        )
        scenarios.append(
            Scenario(
                name=f"customer{i} ({label})",
                account=account,
                warehouse="WH",
                workload=factory(registry.fork(f"customer{i}")),
                total_days=10,
                keebo_day=4,
                optimizer_config=_default_optimizer_config(),
            )
        )
    return scenarios
