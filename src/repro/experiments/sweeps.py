"""Configuration what-if sweeps over a fitted cost model.

A thin, reusable layer over :class:`~repro.costmodel.model.WarehouseCostModel`
for the question data teams ask constantly (and the §5 cost model exists to
answer): *price this telemetry under a grid of configurations*.  Used by the
``cost_model_whatif`` example and the suspend-trade-off analysis; also handy
interactively:

    model = WarehouseCostModel(client, "WH").fit(window)
    points = sweep_configs(model, window, base_config)
    best = cheapest_within_latency(points, max_latency_factor=1.2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.common.errors import ConfigurationError
from repro.common.simtime import Window
from repro.costmodel.model import WarehouseCostModel
from repro.costmodel.replay import ReplayResult
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.types import WarehouseSize

DEFAULT_SIZES = (
    WarehouseSize.XS,
    WarehouseSize.S,
    WarehouseSize.M,
    WarehouseSize.L,
    WarehouseSize.XL,
)
DEFAULT_SUSPENDS = (60.0, 300.0, 600.0)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration."""

    config: WarehouseConfig
    result: ReplayResult
    #: Average latency relative to the reference configuration's replay.
    latency_factor: float

    @property
    def credits(self) -> float:
        return self.result.credits


def sweep_configs(
    model: WarehouseCostModel,
    window: Window,
    reference: WarehouseConfig,
    sizes: Sequence[WarehouseSize] = DEFAULT_SIZES,
    suspends: Sequence[float] = DEFAULT_SUSPENDS,
    max_clusters: Iterable[int] | None = None,
) -> list[SweepPoint]:
    """Replay ``window`` under the size × suspend (× cluster) grid.

    The reference configuration's replay defines latency factor 1.0; it is
    included in the grid whether or not it lies on it.
    """
    if not sizes or not suspends:
        raise ConfigurationError("sweep needs at least one size and one suspend value")
    base = model.estimate_cost(window, reference)
    reference_latency = max(base.avg_latency, 1e-9)
    cluster_options = list(max_clusters) if max_clusters else [reference.max_clusters]
    points = [SweepPoint(reference, base, 1.0)]
    seen = {reference}
    for size in sizes:
        for suspend in suspends:
            for clusters in cluster_options:
                config = reference.with_changes(
                    size=size,
                    auto_suspend_seconds=float(suspend),
                    max_clusters=clusters,
                    min_clusters=min(reference.min_clusters, clusters),
                )
                if config in seen:
                    continue
                seen.add(config)
                result = model.estimate_cost(window, config)
                points.append(
                    SweepPoint(config, result, result.avg_latency / reference_latency)
                )
    return points


def cheapest_within_latency(
    points: list[SweepPoint], max_latency_factor: float
) -> SweepPoint:
    """The cheapest point whose predicted latency stays within the budget."""
    affordable = [p for p in points if p.latency_factor <= max_latency_factor]
    if not affordable:
        raise ConfigurationError(
            f"no configuration stays within latency factor {max_latency_factor}"
        )
    return min(affordable, key=lambda p: p.credits)


def pareto_frontier(points: list[SweepPoint]) -> list[SweepPoint]:
    """Points not dominated in (credits, latency), sorted by credits.

    A point dominates another when it is no worse on both axes and strictly
    better on one — the frontier is what the paper's Figure 7 claims KWO's
    slider walks ("offering Pareto efficiency in managing warehouses").
    """
    ordered = sorted(points, key=lambda p: (p.credits, p.latency_factor))
    frontier: list[SweepPoint] = []
    best_latency = float("inf")
    for point in ordered:
        if point.latency_factor < best_latency - 1e-12:
            frontier.append(point)
            best_latency = point.latency_factor
    return frontier
