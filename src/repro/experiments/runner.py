"""Experiment harness: runs scenarios under the protocols of §7.

Each protocol returns a result dataclass with exactly the rows/series the
corresponding paper figure reports, so benchmarks only format output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.simtime import DAY, HOUR, Window
from repro.common.stats import percentile
from repro.core.optimizer import KeeboService, WarehouseOptimizer
from repro.core.sliders import SliderPosition
from repro.costmodel.model import WarehouseCostModel
from repro.experiments.scenarios import Scenario, fig7_scenario
from repro.faults import FaultingWarehouseClient
from repro.obs import RunManifest
from repro.obs.provenance import AttributionSummary
from repro.parallel import StreamConfig, WorkerJob, register_protocol, run_jobs
from repro.portal.dashboards import (
    OverheadDashboard,
    SavingsDashboard,
    overhead_dashboard,
    savings_dashboard,
)
from repro.warehouse.api import CloudWarehouseClient


@dataclass
class BeforeAfterResult:
    """§7.1 protocol: pre-Keebo days vs with-Keebo days (Figure 4)."""

    scenario: str
    dashboard: SavingsDashboard
    decision_counts: dict[str, int]
    estimated_savings_fraction: float
    guardrail_vetoes: int
    manifest: RunManifest | None = None
    #: Decision-provenance rollup (savings attribution + calibration);
    #: ``None`` only for results built by code predating provenance v3.
    attribution: AttributionSummary | None = None

    @property
    def savings_fraction(self) -> float:
        return self.dashboard.savings_fraction

    @property
    def pre_daily(self) -> float:
        return self.dashboard.pre_keebo_daily_mean

    @property
    def post_daily(self) -> float:
        return self.dashboard.with_keebo_daily_mean

    def p99_change_fraction(self) -> float:
        """Relative p99 change, with-Keebo vs pre (negative = improved)."""
        pre = [
            p for p, on in zip(self.dashboard.daily_p99, self.dashboard.keebo_active) if not on
        ]
        post = [
            p for p, on in zip(self.dashboard.daily_p99, self.dashboard.keebo_active) if on
        ]
        if not pre or not post or np.mean(pre) == 0:
            return 0.0
        return float(np.mean(post) / np.mean(pre) - 1.0)


def run_before_after(scenario: Scenario) -> tuple[BeforeAfterResult, WarehouseOptimizer]:
    """Run the §7.1 protocol on one scenario."""
    if scenario.keebo_day is None:
        raise ValueError("before/after protocol needs a keebo_day")
    manifest = scenario.manifest()
    scenario.schedule()
    account = scenario.account
    account.run_until(scenario.keebo_start)
    client_factory = None
    if scenario.fault_plan is not None:
        plan = scenario.fault_plan
        client_factory = lambda acct: FaultingWarehouseClient(acct, plan)  # noqa: E731
    service = KeeboService(account, client_factory=client_factory)
    optimizer = service.onboard_warehouse(
        scenario.warehouse,
        slider=scenario.slider,
        constraints=scenario.constraints,
        config=scenario.optimizer_config,
    )
    account.run_until(scenario.horizon)
    client = CloudWarehouseClient(account)
    dashboard = savings_dashboard(
        client, scenario.warehouse, Window(0.0, scenario.horizon), scenario.keebo_start
    )
    post_window = Window(scenario.keebo_start, scenario.horizon)
    estimate = optimizer.estimate_savings(post_window)
    # Shut down before summarizing: shutdown seals the trailing provenance
    # records, so the attribution rollup sees realized outcomes.
    optimizer.shutdown()
    result = BeforeAfterResult(
        scenario=scenario.name,
        dashboard=dashboard,
        decision_counts=optimizer.decision_counts(),
        estimated_savings_fraction=estimate.savings_fraction,
        guardrail_vetoes=optimizer.smart_model.guardrail_vetoes,
        manifest=manifest,
        attribution=optimizer.provenance.summary(
            optimizer.ledger.total_savings_credits()
        ),
    )
    return result, optimizer


@dataclass
class AccuracyRow:
    """One bar pair of Figure 5."""

    warehouse: str
    actual_credits: float
    estimated_credits: float
    manifest: RunManifest | None = None

    @property
    def relative_error(self) -> float:
        if self.actual_credits <= 0:
            return 0.0
        return abs(self.estimated_credits - self.actual_credits) / self.actual_credits


@register_protocol("accuracy.row")
def _accuracy_row(scenario: Scenario, train_days: float = 2.0) -> AccuracyRow:
    """One §7.2 measurement: fit on early telemetry, estimate the rest."""
    manifest = scenario.manifest()
    scenario.schedule()
    account = scenario.account
    account.run_until(scenario.horizon + HOUR)  # let trailing queries finish
    client = CloudWarehouseClient(account, actor="keebo")
    train = Window(0.0, train_days * DAY)
    evaluate = Window(train_days * DAY, scenario.horizon)
    model = WarehouseCostModel(client, scenario.warehouse).fit(train)
    config = client.current_config(scenario.warehouse)
    estimate = model.estimate_cost(evaluate, config)
    actual = client.credits_in_window(scenario.warehouse, evaluate)
    return AccuracyRow(scenario.name, actual, estimate.credits, manifest=manifest)


def run_cost_model_accuracy(
    scenarios: list[Scenario], train_days: float = 2.0, workers: int = 0
) -> list[AccuracyRow]:
    """§7.2 protocol: estimate costs from metadata alone vs actual billing.

    Each scenario runs *without* any optimizer; the cost model fits its
    parameter estimators on the first ``train_days`` of telemetry and then
    estimates the cost of the remaining days, which is compared to the
    credits the simulator actually billed for those days.
    """
    jobs = [
        WorkerJob(
            protocol="accuracy.row",
            scenario=scenario,
            kwargs=(("train_days", float(train_days)),),
        )
        for scenario in scenarios
    ]
    return run_jobs(jobs, workers=workers)


@dataclass
class OverheadResult:
    """§7.3 protocol output (Figure 6)."""

    dashboard: OverheadDashboard
    manifest: RunManifest | None = None

    @property
    def overhead_fraction(self) -> float:
        return self.dashboard.total_overhead_fraction

    def total_without_keebo_stability(self) -> float:
        """Coefficient of variation of hourly (actual + estimated savings).

        The paper observes this sum is "nearly identical over different
        hours" for the static ETL warehouse; a small CV confirms it.
        """
        totals = [
            a + s
            for a, s in zip(self.dashboard.actual_credits, self.dashboard.estimated_savings)
        ]
        active = [t for t in totals if t > 0]
        if len(active) < 2:
            return 0.0
        return float(np.std(active) / np.mean(active))


def run_overhead(scenario: Scenario) -> OverheadResult:
    """Run §7.3: KWO active, measure hourly actual/overhead/savings."""
    manifest = scenario.manifest()
    scenario.schedule()
    account = scenario.account
    account.run_until(scenario.keebo_start)
    service = KeeboService(account)
    optimizer = service.onboard_warehouse(
        scenario.warehouse, slider=scenario.slider, config=scenario.optimizer_config
    )
    account.run_until(scenario.horizon)
    measure = Window(scenario.keebo_start + DAY, scenario.horizon)
    dashboard = overhead_dashboard(optimizer, measure)
    optimizer.shutdown()
    return OverheadResult(dashboard, manifest=manifest)


@dataclass
class SliderSweepRow:
    """One bar+point of Figure 7."""

    slider: SliderPosition
    total_credits: float
    avg_latency: float
    p99_latency: float
    manifest: RunManifest | None = None


@register_protocol("slider.point")
def _slider_point(scenario: Scenario) -> SliderSweepRow:
    """One §7.4 measurement: run KWO at the scenario's slider position."""
    manifest = scenario.manifest()
    scenario.schedule()
    account = scenario.account
    account.run_until(scenario.keebo_start)
    service = KeeboService(account)
    optimizer = service.onboard_warehouse(
        scenario.warehouse, slider=scenario.slider, config=scenario.optimizer_config
    )
    account.run_until(scenario.horizon)
    window = Window(scenario.keebo_start, scenario.horizon)
    client = CloudWarehouseClient(account)
    credits = client.credits_in_window(scenario.warehouse, window)
    records = client.query_history(scenario.warehouse, window)
    latencies = [r.total_seconds for r in records]
    row = SliderSweepRow(
        slider=scenario.slider,
        total_credits=credits,
        avg_latency=float(np.mean(latencies)) if latencies else 0.0,
        p99_latency=percentile(latencies, 99),
        manifest=manifest,
    )
    optimizer.shutdown()
    return row


def run_slider_sweep(seed: int = 700, workers: int = 0) -> list[SliderSweepRow]:
    """§7.4 protocol: same workload, five slider positions."""
    jobs = [
        WorkerJob(protocol="slider.point", scenario=fig7_scenario(position, seed=seed))
        for position in SliderPosition
    ]
    return run_jobs(jobs, workers=workers)


@dataclass
class OnboardingCurve:
    """§1/§9 claim: fraction of eventual savings reached vs hours onboard.

    ``savings_rate`` holds, for each measurement hour, the savings fraction
    over the trailing 24 hours (or since onboarding, if less) — a smoothed
    rate, since single-bucket fractions on a fresh deployment are dominated
    by workload noise.
    """

    hours: list[float]
    savings_rate: list[float]
    manifest: RunManifest | None = None

    @property
    def eventual_rate(self) -> float:
        """The steady-state savings rate: the mean of the last quarter."""
        if not self.savings_rate:
            return 0.0
        tail = self.savings_rate[-max(1, len(self.savings_rate) // 4):]
        return float(np.mean(tail))

    def hours_to_reach(self, fraction_of_final: float) -> float | None:
        """First sustained crossing of ``fraction_of_final × eventual``."""
        target = fraction_of_final * self.eventual_rate
        if target <= 0:
            return None
        for i, (h, s) in enumerate(zip(self.hours, self.savings_rate)):
            nxt = self.savings_rate[i + 1] if i + 1 < len(self.savings_rate) else s
            if s >= target and nxt >= target:
                return h
        return None


@register_protocol("onboarding.curve")
def _onboarding_curve(
    scenario: Scenario, bucket_hours: float = 4.0, trailing_hours: float = 24.0
) -> OnboardingCurve:
    manifest = scenario.manifest()
    scenario.schedule()
    account = scenario.account
    account.run_until(scenario.keebo_start)
    service = KeeboService(account)
    optimizer = service.onboard_warehouse(
        scenario.warehouse, slider=scenario.slider, config=scenario.optimizer_config
    )
    account.run_until(scenario.horizon)
    hours: list[float] = []
    rates: list[float] = []
    t = scenario.keebo_start + bucket_hours * HOUR
    while t <= scenario.horizon + 1e-9:
        trailing = Window(max(scenario.keebo_start, t - trailing_hours * HOUR), t)
        estimate = optimizer.estimate_savings(trailing)
        hours.append((t - scenario.keebo_start) / HOUR)
        rates.append(estimate.savings_fraction)
        t += bucket_hours * HOUR
    optimizer.shutdown()
    return OnboardingCurve(hours, rates, manifest=manifest)


def run_onboarding_curve(
    scenario: Scenario,
    bucket_hours: float = 4.0,
    trailing_hours: float = 24.0,
    workers: int = 0,
) -> OnboardingCurve:
    """Measure savings ramp-up after onboarding."""
    job = WorkerJob(
        protocol="onboarding.curve",
        scenario=scenario,
        kwargs=(
            ("bucket_hours", float(bucket_hours)),
            ("trailing_hours", float(trailing_hours)),
        ),
    )
    return run_jobs([job], workers=workers)[0]


@dataclass
class FleetResult:
    """Savings distribution across a fleet of synthetic customers."""

    rows: list[BeforeAfterResult] = field(default_factory=list)

    @property
    def savings_fractions(self) -> list[float]:
        return [r.savings_fraction for r in self.rows]

    @property
    def savings_range(self) -> tuple[float, float]:
        fractions = self.savings_fractions
        return (min(fractions), max(fractions)) if fractions else (0.0, 0.0)

    def attribution_rollup(self) -> dict:
        """Fleet-wide provenance rollup: one row per warehouse plus totals.

        ``conserved`` is the AND over warehouses of the exact float
        equality between attributed and ledger credits — any drift
        anywhere in the fleet flips it.
        """
        summaries = [r.attribution for r in self.rows if r.attribution is not None]
        return {
            "warehouses": [
                {
                    "warehouse": s.warehouse,
                    "n_decisions": s.n_decisions,
                    "n_sealed": s.n_sealed,
                    "attributed_credits": s.attributed_credits,
                    "ledger_credits": s.ledger_credits,
                    "conserved": s.conserved,
                    "mean_abs_error_credits": s.mean_abs_error_credits,
                }
                for s in summaries
            ],
            "n_decisions": sum(s.n_decisions for s in summaries),
            "n_sealed": sum(s.n_sealed for s in summaries),
            "attributed_credits": sum(s.attributed_credits for s in summaries),
            "ledger_credits": sum(s.ledger_credits for s in summaries),
            "conserved": all(s.conserved for s in summaries),
        }


@dataclass
class ChaosResult:
    """Chaos protocol output: the §7.1 result plus the fault ledger.

    ``injected`` counts what the fault plan actually fired (by kind);
    ``observed`` counts what the control loop *noticed and absorbed* —
    actuator errors/retries, breaker opens, degraded monitor snapshots,
    SAFE_MODE episodes.  A healthy robustness layer shows observed
    reactions commensurate with injections, and zero escaped exceptions
    (the run finishing at all is the first assertion).
    """

    result: BeforeAfterResult
    injected: dict[str, int]
    injected_total: int
    observed: dict[str, int]

    @property
    def savings_fraction(self) -> float:
        return self.result.savings_fraction

    def summary_lines(self) -> list[str]:
        lines = [
            f"chaos run {self.result.scenario!r}: "
            f"{self.injected_total} fault(s) injected",
            f"  savings_fraction: {self.savings_fraction:+.3f}",
            "  injected by kind:",
        ]
        if not self.injected:
            lines.append("    (none)")
        lines.extend(
            f"    {kind}: {count}" for kind, count in sorted(self.injected.items())
        )
        lines.append("  observed by the control loop:")
        lines.extend(
            f"    {key}: {value}" for key, value in sorted(self.observed.items())
        )
        attribution = self.result.attribution
        if attribution is not None:
            conserved = "conserved" if attribution.conserved else "VIOLATED"
            lines.append(
                f"  provenance: {attribution.n_decisions} decisions "
                f"({attribution.n_sealed} sealed), "
                f"attributed={attribution.attributed_credits:+.4f}cr "
                f"[{conserved}], "
                f"calibration mean |err|={attribution.mean_abs_error_credits:.4f}cr"
            )
        return lines


def run_chaos(scenario: Scenario) -> tuple[ChaosResult, WarehouseOptimizer]:
    """Run the before/after protocol under the scenario's fault plan and
    reconcile injected-vs-observed fault counts."""
    if scenario.fault_plan is None:
        raise ValueError("chaos protocol needs a scenario with a fault_plan")
    result, optimizer = run_before_after(scenario)
    client = optimizer.client
    if not isinstance(client, FaultingWarehouseClient):  # pragma: no cover
        raise TypeError("chaos run did not receive a FaultingWarehouseClient")
    observed = {
        "actuator_errors": optimizer.actuator.errors,
        "actuator_retries_scheduled": optimizer.actuator.retries_scheduled,
        "breaker_opens": optimizer.actuator.breaker.opens,
        "telemetry_failures": optimizer.monitor.telemetry_failures,
        "safe_mode_entries": optimizer.safe_mode_entries,
        "safe_mode_ticks": optimizer.decision_counts().get("safe_mode", 0),
    }
    chaos = ChaosResult(
        result=result,
        injected=dict(client.injected),
        injected_total=client.total_injected(),
        observed=observed,
    )
    return chaos, optimizer


@register_protocol("chaos.kill_worker")
def _chaos_kill_worker(scenario: Scenario, marker: str = "", exit_code: int = 137):
    """Kill the hosting worker process once (crash-resilience chaos).

    With a ``marker`` path: the first attempt creates the marker and dies
    via ``os._exit`` (no exception, no cleanup — exactly what an OOM kill
    looks like to the parent pool); the retry finds the marker and
    completes normally, returning the scenario name.  Without a marker
    the job dies on *every* attempt — deterministic poison, which the
    pool must quarantine rather than retry forever.
    """
    import os as _os
    import pathlib as _pathlib

    if marker:
        path = _pathlib.Path(marker)
        if path.exists():
            return scenario.name
        path.write_text("died once", encoding="utf-8")
    _os._exit(exit_code)


@register_protocol("before_after.row")
def _before_after_row(scenario: Scenario) -> BeforeAfterResult:
    """The §7.1 protocol, result row only (optimizers stay in-process)."""
    result, _ = run_before_after(scenario)
    return result


@register_protocol("chaos.row")
def _chaos_row(scenario: Scenario) -> ChaosResult:
    """The chaos protocol, result only (optimizers stay in-process)."""
    chaos, _ = run_chaos(scenario)
    return chaos


def run_fleet(
    scenarios: list[Scenario],
    workers: int = 0,
    stream: StreamConfig | None = None,
) -> FleetResult:
    """Run the §7.1 protocol across a fleet, optionally process-parallel.

    ``workers=0`` runs inline; ``workers>0`` fans scenarios out to that
    many worker processes.  Results (and, under an active observation
    session, the merged trace/metrics/series exports) are identical either
    way — see docs/PERFORMANCE.md for the determinism contract.  A
    :class:`~repro.parallel.StreamConfig` streams the observability out of
    workers in bounded chunks with campaign heartbeats instead of
    monolithic payloads (docs/OBSERVABILITY.md §v4) — same bytes, O(chunk)
    memory.
    """
    jobs = [
        WorkerJob(protocol="before_after.row", scenario=scenario)
        for scenario in scenarios
    ]
    return FleetResult(rows=run_jobs(jobs, workers=workers, stream=stream))


def run_chaos_fleet(
    scenarios: list[Scenario],
    workers: int = 0,
    stream: StreamConfig | None = None,
) -> list[ChaosResult]:
    """Run the chaos protocol across a fleet of fault-plan scenarios."""
    jobs = [
        WorkerJob(protocol="chaos.row", scenario=scenario) for scenario in scenarios
    ]
    return run_jobs(jobs, workers=workers, stream=stream)
