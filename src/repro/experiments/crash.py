"""The crash-recovery harness: prove crash → restore → continue ≡ no crash.

The durability layer's headline invariant (docs/ROBUSTNESS.md §v2) is
*byte-identity*: for any seeded scenario and any crash point, a run that
dies at a checkpoint tick, restores from its durable artifacts and runs to
the horizon must export the **same bytes** — ledger, provenance,
attribution, metrics, series, alerts, fleet-store rows, and the trace
itself — as the same-seed run that never crashed.  The only permitted
divergence is the single ``service.restore`` trace event the recovery
emits.

:func:`run_with_recovery` runs that experiment end to end:

1. build the scenario **twice** from its registered factory (live
   scenarios are single-use — their heaps and RNG streams advance);
2. drive the *reference* copy to the horizon with checkpoints enabled and
   the same process fault plan armed.  The reference executes the
   identical checkpoint-tick code — fault evaluation, RNG draws,
   corruption hooks against its own throwaway store — and simply declines
   to die (:meth:`KeeboService.consume_pending_crash` without teardown),
   so every stream stays draw-for-draw aligned with the crash run;
3. drive the *crash* copy the same way, but on a pending crash tear the
   control plane down (:meth:`KeeboService.crash`) and restore it from
   the checkpoint directory;
4. finish both with the §7.1 before/after tail and byte-compare every
   export.

The corruption kinds split by contract: ``crash_at_tick`` restores
strictly (``repair=False``); ``torn_write`` needs ``repair=True`` (the
torn half-line is exactly the residue a crash mid-append leaves) and
still satisfies byte-identity; ``truncated_journal`` and
``stale_snapshot`` are *detection* kinds — acknowledged state is gone or
inconsistent, so the only correct behaviour is a typed
:class:`~repro.common.errors.RecoveryError`, which the harness records
as ``recovered=False`` with the error message in the report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import RecoveryError
from repro.common.simtime import Window
from repro.core.optimizer import KeeboService, WarehouseOptimizer
from repro.experiments.runner import BeforeAfterResult
from repro.experiments.scenarios import Scenario
from repro.faults import FaultingWarehouseClient, FaultKind, FaultPlan, FaultSpec
from repro.faults.plan import PROCESS_KINDS
from repro.lint.output import dumps_json
from repro.obs import trace as obs
from repro.obs.provenance import encode_record
from repro.obs.store import FleetStore
from repro.portal.dashboards import savings_dashboard
from repro.warehouse.api import CloudWarehouseClient

#: Seconds past each cadence multiple at which the durability controller
#: fires (see :meth:`KeeboService.enable_checkpoints`).
CHECKPOINT_OFFSET_SECONDS = 1.0

#: Slack added when driving the sim up to a checkpoint boundary.
_BOUNDARY_EPSILON = 1e-6

#: The exports the invariant quantifies over, in report order.
EXPORT_NAMES = (
    "ledger",
    "provenance",
    "attribution",
    "store",
    "trace",
    "metrics",
    "series",
    "alerts",
)

#: Kinds whose corruption is detectable-but-unrecoverable by design:
#: restore must raise RecoveryError rather than resurrect partial state.
DETECTION_KINDS = frozenset({FaultKind.TRUNCATED_JOURNAL, FaultKind.STALE_SNAPSHOT})


def crash_plan(
    kind: FaultKind, crash_boundary: int, cadence_seconds: float, keebo_start: float
) -> FaultPlan:
    """A process plan firing ``kind`` at the Nth checkpoint tick (1-based).

    The spec's window brackets exactly one durability-controller fire
    time, so the fault triggers deterministically at that tick and the
    plan stays valid for both the reference and the crash run.
    """
    if kind not in PROCESS_KINDS:
        raise ValueError(f"{kind.value} is not a process-level fault kind")
    if crash_boundary < 1:
        raise ValueError("crash_boundary is 1-based: the first checkpoint tick is 1")
    fire = keebo_start + crash_boundary * cadence_seconds + CHECKPOINT_OFFSET_SECONDS
    return FaultPlan(
        name=f"crash[{kind.value}@{crash_boundary}]",
        specs=(
            FaultSpec(
                kind,
                operation="process",
                window=Window(fire - 0.5, fire + 0.5),
                detail=f"checkpoint boundary {crash_boundary}",
            ),
        ),
    )


@dataclass
class RecoveryRunResult:
    """One crash-recovery experiment: what happened and whether bytes match."""

    scenario: str
    seed: int
    kind: str
    cadence_seconds: float
    crash_boundary: int
    #: Crash/restore cycles actually executed in the crash run.
    crashes: int
    #: Did the crash run reach the horizon with a working control plane?
    recovered: bool
    #: The RecoveryError message when restore (correctly) refused.
    recovery_error: str
    #: Export name -> byte-equality with the uninterrupted run.
    identical: dict[str, bool]
    #: ``service.restore`` events observed in the crash run's trace.
    restore_events: int
    #: Journal repairs reported by restore (torn-tail truncations).
    repairs: int
    result: BeforeAfterResult | None = field(default=None, repr=False)

    @property
    def byte_identical(self) -> bool:
        return bool(self.identical) and all(self.identical.values())

    @property
    def ok(self) -> bool:
        """The kind-specific pass criterion.

        Detection kinds pass by *refusing* to restore; the others pass by
        recovering into a byte-identical continuation.
        """
        if FaultKind(self.kind) in DETECTION_KINDS:
            return not self.recovered and bool(self.recovery_error)
        return self.recovered and self.byte_identical

    def report(self) -> dict:
        """The recovery report (CI artifact; rendered with dumps_json)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "kind": self.kind,
            "cadence_seconds": self.cadence_seconds,
            "crash_boundary": self.crash_boundary,
            "crashes": self.crashes,
            "recovered": self.recovered,
            "recovery_error": self.recovery_error,
            "identical": dict(sorted(self.identical.items())),
            "byte_identical": self.byte_identical,
            "restore_events": self.restore_events,
            "repairs": self.repairs,
            "ok": self.ok,
        }

    def summary_lines(self) -> list[str]:
        verdict = "OK" if self.ok else "FAIL"
        lines = [
            f"recovery run {self.scenario!r} seed={self.seed} "
            f"{self.kind}@boundary {self.crash_boundary}: {verdict}",
            f"  crashes={self.crashes} recovered={self.recovered} "
            f"repairs={self.repairs} restore_events={self.restore_events}",
        ]
        if self.recovery_error:
            lines.append(f"  recovery_error: {self.recovery_error}")
        if self.identical:
            mismatched = sorted(k for k, v in self.identical.items() if not v)
            lines.append(
                "  exports: all byte-identical"
                if not mismatched
                else f"  exports differing: {', '.join(mismatched)}"
            )
        return lines


def _collect_exports(
    rec, optimizer: WarehouseOptimizer, *, drop_restore_events: bool
) -> dict[str, str]:
    """Every byte-compared artifact of one finished run, keyed by name.

    ``drop_restore_events`` filters the crash run's ``service.restore``
    lines out of the trace export — the one divergence the invariant
    allows (the fleet store never ingests them, so its rows need no
    filtering).
    """
    trace = rec.sink.to_jsonl()
    if drop_restore_events:
        trace = "".join(
            line + "\n"
            for line in trace.splitlines()
            if json.loads(line).get("name") != "service.restore"
        )
    store = FleetStore()
    store.ingest_trace_records(rec.to_payload()["records"], run="recovery")
    ledger = optimizer.ledger
    provenance = optimizer.provenance
    return {
        "ledger": dumps_json([ledger.encode_entry(e) for e in ledger.entries]),
        "provenance": dumps_json([encode_record(r) for r in provenance.records]),
        "attribution": dumps_json(
            [
                provenance.attribution.encode_entry(e)
                for e in provenance.attribution.entries
            ]
        ),
        "store": store.to_jsonl(),
        "trace": trace,
        "metrics": rec.metrics.to_json(),
        "series": rec.series.to_json(),
        "alerts": rec.alerts.to_json(),
    }


def _drive(
    scenario: Scenario,
    directory,
    cadence_seconds: float,
    plan: FaultPlan,
    *,
    act_on_crash: bool,
    repair: bool,
):
    """One full run with checkpoints enabled; returns (exports, result, ...).

    Both the reference and the crash run go through this driver with the
    same segmented ``run_until`` boundaries, so their event dispatch,
    checkpoint ticks, and fault-plan RNG draws are identical call for
    call; only the reaction to a pending crash differs.
    """
    manifest = scenario.manifest()
    config_hash = manifest.config_hash
    with obs.observed(manifest=manifest) as rec:
        scenario.schedule()
        account = scenario.account
        account.run_until(scenario.keebo_start)
        client_factory = None
        if scenario.fault_plan is not None:
            client_plan = scenario.fault_plan
            client_factory = lambda acct: FaultingWarehouseClient(acct, client_plan)  # noqa: E731
        service = KeeboService(account, client_factory=client_factory)
        service.onboard_warehouse(
            scenario.warehouse,
            slider=scenario.slider,
            constraints=scenario.constraints,
            config=scenario.optimizer_config,
        )
        service.enable_checkpoints(
            directory,
            cadence_seconds,
            config_hash=config_hash,
            process_plan=plan,
            offset_seconds=CHECKPOINT_OFFSET_SECONDS,
        )
        crashes = 0
        repairs = 0
        boundary = scenario.keebo_start + cadence_seconds + CHECKPOINT_OFFSET_SECONDS
        while boundary < scenario.horizon:
            account.run_until(boundary + _BOUNDARY_EPSILON)
            kind = service.consume_pending_crash()
            if kind is not None and act_on_crash:
                crashes += 1
                service.crash()
                load = service.restore(
                    directory,
                    slider=scenario.slider,
                    constraints=scenario.constraints,
                    optimizer_config=scenario.optimizer_config,
                    config_hash=config_hash,
                    process_plan=plan,
                    repair=repair,
                )
                repairs += len(load.repairs)
            boundary += cadence_seconds
        account.run_until(scenario.horizon)
        optimizer = service.optimizer(scenario.warehouse)
        # The §7.1 tail, mirrored from run_before_after: dashboard, then
        # shutdown *before* the attribution rollup so trailing provenance
        # records are sealed.
        client = CloudWarehouseClient(account)
        dashboard = savings_dashboard(
            client,
            scenario.warehouse,
            Window(0.0, scenario.horizon),
            scenario.keebo_start,
        )
        post_window = Window(scenario.keebo_start, scenario.horizon)
        estimate = optimizer.estimate_savings(post_window)
        optimizer.shutdown()
        result = BeforeAfterResult(
            scenario=scenario.name,
            dashboard=dashboard,
            decision_counts=optimizer.decision_counts(),
            estimated_savings_fraction=estimate.savings_fraction,
            guardrail_vetoes=optimizer.smart_model.guardrail_vetoes,
            manifest=manifest,
            attribution=optimizer.provenance.summary(
                optimizer.ledger.total_savings_credits()
            ),
        )
        exports = _collect_exports(rec, optimizer, drop_restore_events=act_on_crash)
        restore_events = sum(
            1
            for record in rec.sink.records
            if record["type"] == "event" and record["name"] == "service.restore"
        )
    return exports, result, crashes, repairs, restore_events


def run_with_recovery(
    build_scenario,
    *,
    kind: FaultKind = FaultKind.CRASH_AT_TICK,
    crash_boundary: int = 3,
    cadence_seconds: float = 2 * 3600.0,
    reference_dir=None,
    crash_dir=None,
) -> RecoveryRunResult:
    """Run one crash-recovery experiment and byte-compare the two runs.

    ``build_scenario`` is a zero-argument callable returning a *fresh*
    :class:`Scenario` on every call (a bound factory, not a live
    scenario — live scenarios are single-use).  ``reference_dir`` and
    ``crash_dir`` are the two checkpoint directories; temporary ones are
    created when omitted.
    """
    import tempfile

    probe = build_scenario()
    if probe.keebo_start is None:
        raise ValueError("crash-recovery needs a scenario with a keebo_day")
    plan = crash_plan(kind, crash_boundary, cadence_seconds, probe.keebo_start)
    repair = kind is FaultKind.TORN_WRITE

    with tempfile.TemporaryDirectory() as scratch:
        ref_dir = reference_dir if reference_dir is not None else f"{scratch}/reference"
        bad_dir = crash_dir if crash_dir is not None else f"{scratch}/crash"
        ref_exports, _, _, _, _ = _drive(
            probe, ref_dir, cadence_seconds, plan, act_on_crash=False, repair=False
        )
        crashed = build_scenario()
        recovery_error = ""
        try:
            exports, result, crashes, repairs, restore_events = _drive(
                crashed, bad_dir, cadence_seconds, plan, act_on_crash=True, repair=repair
            )
            identical = {
                name: ref_exports[name] == exports[name] for name in EXPORT_NAMES
            }
            recovered = True
        except RecoveryError as exc:
            recovery_error = str(exc)
            exports, result = None, None
            crashes, repairs, restore_events = 1, 0, 0
            identical = {}
            recovered = False

    return RecoveryRunResult(
        scenario=probe.name,
        seed=probe.account.rngs.seed,
        kind=kind.value,
        cadence_seconds=cadence_seconds,
        crash_boundary=crash_boundary,
        crashes=crashes,
        recovered=recovered,
        recovery_error=recovery_error,
        identical=identical,
        restore_events=restore_events,
        repairs=repairs,
        result=result,
    )
