"""Experiment scenarios and protocols reproducing the paper's §7."""

from repro.experiments.runner import (
    AccuracyRow,
    BeforeAfterResult,
    FleetResult,
    OnboardingCurve,
    OverheadResult,
    SliderSweepRow,
    run_before_after,
    run_cost_model_accuracy,
    run_fleet,
    run_onboarding_curve,
    run_overhead,
    run_slider_sweep,
)
from repro.experiments.sweeps import (
    SweepPoint,
    cheapest_within_latency,
    pareto_frontier,
    sweep_configs,
)
from repro.experiments.scenarios import (
    Scenario,
    fig4a_scenario,
    fig4b_scenario,
    fig5_scenarios,
    fig6_scenario,
    fig7_scenario,
    fleet_scenarios,
    onboarding_scenario,
)

__all__ = [
    "Scenario",
    "fig4a_scenario",
    "fig4b_scenario",
    "fig5_scenarios",
    "fig6_scenario",
    "fig7_scenario",
    "onboarding_scenario",
    "fleet_scenarios",
    "BeforeAfterResult",
    "run_before_after",
    "AccuracyRow",
    "run_cost_model_accuracy",
    "OverheadResult",
    "run_overhead",
    "SliderSweepRow",
    "run_slider_sweep",
    "OnboardingCurve",
    "run_onboarding_curve",
    "FleetResult",
    "run_fleet",
    "SweepPoint",
    "sweep_configs",
    "cheapest_within_latency",
    "pareto_frontier",
]
