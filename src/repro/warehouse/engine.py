"""Discrete-event simulation core.

A tiny, dependency-free event loop: components schedule callbacks at future
timestamps; the simulation pops them in (time, insertion) order.  Periodic
*controllers* are first-class because the paper's Algorithm 1 is exactly a
periodic controller (fetch telemetry every ``T`` hours, act every
``T_realtime`` minutes) running against the warehouse.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ReproError


class SimulationError(ReproError):
    """The event loop was driven incorrectly (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulation.schedule`; allows cancellation."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulation:
    """The event loop.  ``now`` only moves forward."""

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self.processed_events = 0

    def schedule(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run at ``time`` (>= now)."""
        if time < self.now - 1e-9:
            raise SimulationError(f"cannot schedule at {time} before now={self.now}")
        event = _Event(max(time, self.now), next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback)

    def add_controller(
        self, interval: float, callback: Callable[[float], None], start: float | None = None
    ) -> "PeriodicController":
        """Run ``callback(now)`` every ``interval`` seconds from ``start``."""
        if interval <= 0:
            raise SimulationError("controller interval must be positive")
        controller = PeriodicController(self, interval, callback)
        controller.start(self.now if start is None else start)
        return controller

    def run_until(self, end_time: float) -> None:
        """Process all events up to and including ``end_time``."""
        if end_time < self.now:
            raise SimulationError(f"end_time {end_time} precedes now {self.now}")
        while self._heap and self._heap[0].time <= end_time:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.processed_events += 1
        self.now = end_time

    def run_all(self, hard_stop: float | None = None) -> None:
        """Drain the event queue (optionally up to ``hard_stop``)."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if hard_stop is not None and head.time > hard_stop:
                break
            heapq.heappop(self._heap)
            self.now = head.time
            head.callback()
            self.processed_events += 1
        if hard_stop is not None:
            self.now = max(self.now, hard_stop)

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)


class PeriodicController:
    """Re-schedules itself every ``interval`` until stopped."""

    def __init__(self, sim: Simulation, interval: float, callback: Callable[[float], None]):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self._handle: EventHandle | None = None
        self._stopped = False

    def start(self, first_fire: float) -> None:
        self._handle = self.sim.schedule(first_fire, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback(self.sim.now)
        if not self._stopped:
            self._handle = self.sim.schedule_in(self.interval, self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
