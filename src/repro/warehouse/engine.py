"""Discrete-event simulation core.

A tiny, dependency-free event loop: components schedule callbacks at future
timestamps; the simulation pops them in (time, insertion) order.  Periodic
*controllers* are first-class because the paper's Algorithm 1 is exactly a
periodic controller (fetch telemetry every ``T`` hours, act every
``T_realtime`` minutes) running against the warehouse.

Observability: the loop feeds ``repro.obs`` (dispatch counts, queue depth,
one span per controller fire) when an observation session is active; with
the default no-op recorder the loop is unchanged but for one global read
per ``run_until``.  When an event callback raises, the loop wraps the
failure in a :class:`SimulationError` carrying the event's scheduled time
and label (controller name) — previously that context was lost and a bad
controller tick surfaced as a naked exception with no idea of *when*.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ReproError
from repro.common.simtime import format_time
from repro.obs import trace as obs


class SimulationError(ReproError):
    """The event loop was driven incorrectly (e.g. scheduling in the past),
    or an event callback failed (the cause is chained, with the event's
    scheduled time and label in the message)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str | None = field(default=None, compare=False)
    #: Set when the event leaves the heap, so a late ``cancel()`` (e.g. a
    #: controller stopping itself mid-dispatch) does not touch the pending
    #: counter for an event that is no longer pending.
    popped: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulation.schedule`; allows cancellation."""

    def __init__(self, sim: "Simulation", event: _Event):
        self._sim = sim
        self._event = event

    def cancel(self) -> None:
        event = self._event
        if not event.cancelled and not event.popped:
            self._sim._pending -= 1
        event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulation:
    """The event loop.  ``now`` only moves forward."""

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self.processed_events = 0
        # Live count of schedulable (non-cancelled, not-yet-popped) events.
        # Maintained incrementally so ``pending_events`` — read by the obs
        # queue-depth gauge after every run — is O(1), not an O(heap) scan.
        self._pending = 0

    def schedule(
        self, time: float, callback: Callable[[], None], label: str | None = None
    ) -> EventHandle:
        """Schedule ``callback`` to run at ``time`` (>= now).

        ``label`` names the event in failure context and traces (controllers
        pass their own name; plain events may leave it unset).
        """
        if time < self.now - 1e-9:
            raise SimulationError(f"cannot schedule at {time} before now={self.now}")
        event = _Event(max(time, self.now), next(self._seq), callback, label=label)
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(self, event)

    def schedule_in(
        self, delay: float, callback: Callable[[], None], label: str | None = None
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, label=label)

    def add_controller(
        self,
        interval: float,
        callback: Callable[[float], None],
        start: float | None = None,
        name: str | None = None,
    ) -> "PeriodicController":
        """Run ``callback(now)`` every ``interval`` seconds from ``start``."""
        if interval <= 0:
            raise SimulationError("controller interval must be positive")
        controller = PeriodicController(self, interval, callback, name=name)
        controller.start(self.now if start is None else start)
        return controller

    def _dispatch(self, event: _Event) -> None:
        """Run one event's callback, wrapping failures with when/what context."""
        try:
            event.callback()
        except Exception as exc:
            where = f" in {event.label!r}" if event.label else ""
            obs.emit(
                "engine.event_error",
                self.now,
                label=event.label,
                error=type(exc).__name__,
            )
            raise SimulationError(
                f"event scheduled at t={event.time:.3f} ({format_time(event.time)})"
                f"{where} raised {type(exc).__name__}: {exc}"
            ) from exc

    def run_until(self, end_time: float) -> None:
        """Process all events up to and including ``end_time``."""
        if end_time < self.now:
            raise SimulationError(f"end_time {end_time} precedes now {self.now}")
        before = self.processed_events
        while self._heap and self._heap[0].time <= end_time:
            event = heapq.heappop(self._heap)
            event.popped = True
            if event.cancelled:
                continue  # removed from the pending count at cancel time
            self._pending -= 1
            self.now = event.time
            self._dispatch(event)
            self.processed_events += 1
        self.now = end_time
        self._record_progress(before)

    def run_all(self, hard_stop: float | None = None) -> None:
        """Drain the event queue (optionally up to ``hard_stop``)."""
        before = self.processed_events
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap).popped = True
                continue
            if hard_stop is not None and head.time > hard_stop:
                break
            heapq.heappop(self._heap)
            head.popped = True
            self._pending -= 1
            self.now = head.time
            self._dispatch(head)
            self.processed_events += 1
        if hard_stop is not None:
            self.now = max(self.now, hard_stop)
        self._record_progress(before)

    def _record_progress(self, processed_before: int) -> None:
        """Feed dispatch count and queue depth to the active recorder."""
        rec = obs.recorder()
        if rec is None:
            return
        dispatched = self.processed_events - processed_before
        if dispatched:
            rec.counter("repro.engine.events").inc(dispatched, time=self.now)
        rec.gauge("repro.engine.queue_depth").set(self.pending_events, time=self.now)

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled, not-yet-dispatched) event count, O(1).

        ``_record_progress`` reads this after every ``run_until`` — with the
        old full-heap scan that made an observed run O(events²).  The
        counter is maintained at schedule/cancel/pop time; the invariant is
        locked by ``tests/warehouse/test_engine.py::TestPendingCounter``.
        """
        return self._pending


class PeriodicController:
    """Re-schedules itself every ``interval`` until stopped."""

    def __init__(
        self,
        sim: Simulation,
        interval: float,
        callback: Callable[[float], None],
        name: str | None = None,
    ):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        # The default name is derived from the callback, so failure context
        # and trace spans are labelled even for anonymous controllers.
        self.name = name or getattr(
            callback, "__qualname__", type(callback).__name__
        )
        self._handle: EventHandle | None = None
        self._stopped = False

    def start(self, first_fire: float) -> None:
        self._handle = self.sim.schedule(first_fire, self._fire, label=self.name)

    def _fire(self) -> None:
        if self._stopped:
            return
        rec = obs.recorder()
        if rec is None:
            self.callback(self.sim.now)
        else:
            rec.counter("repro.engine.controller_fires").inc(time=self.sim.now)
            with rec.span("engine.controller.fire", self.sim.now, controller=self.name):
                self.callback(self.sim.now)
        if not self._stopped:
            self._handle = self.sim.schedule_in(self.interval, self._fire, label=self.name)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
