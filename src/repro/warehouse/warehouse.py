"""The virtual warehouse: state machine tying together clusters, cache,
billing, queueing and auto-suspend.

Behavioural model (each piece is a lever the paper's KWO pulls):

* **Auto-suspend / auto-resume** — after ``auto_suspend_seconds`` of no
  running or queued queries the warehouse suspends: billing stops, all
  local caches drop.  The next submission resumes it after a short,
  jittered provisioning delay.  Every cluster start bills a 60 s minimum.
* **Resizing** — takes effect for *new* query starts; in-flight queries
  finish at their original speed.  Resizing re-provisions servers, so local
  caches are lost and the billing rate changes from the resize instant.
* **Multi-cluster scale-out** — delegated to
  :class:`~repro.warehouse.scheduler.MultiClusterScheduler`.
* **Latency model** — a query's execution time is
  ``base_work / speedup**gamma * cache_penalty * contention * noise``:
  bigger warehouses speed queries up sub-linearly per template, cold cache
  reads slow them down, and slot contention adds a mild degradation.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

import numpy as np

from repro.common.errors import WarehouseError
from repro.common.simtime import format_time
from repro.warehouse.billing import BillingMeter
from repro.warehouse.cluster import Cluster, ClusterState
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.engine import EventHandle, Simulation
from repro.warehouse.queries import QueryRecord, QueryRequest, next_query_id
from repro.warehouse.scheduler import MultiClusterScheduler
from repro.warehouse.telemetry import ConfigSnapshot, TelemetryStore, WarehouseEvent
from repro.warehouse.types import WarehouseSize, WarehouseState

#: Mean provisioning delay when a suspended warehouse resumes.
RESUME_DELAY_MEAN = 2.0
#: Provisioning delay for an additional scale-out cluster.
CLUSTER_START_DELAY = 2.0
#: Per-concurrent-query latency degradation (10 concurrent ~ +45%).
CONTENTION_SLOWDOWN = 0.05
#: Lognormal sigma of run-to-run latency noise.
LATENCY_NOISE_SIGMA = 0.06
#: Policy tick spacing while the warehouse is running.
POLICY_TICK_SECONDS = 30.0
#: Auto-suspend enforcement is lazy: the service sweeps for expired idle
#: timers on a coarse grid, so a warehouse suspends at the first sweep *at or
#: after* its deadline (Snowflake documents that suspension "may take a few
#: extra seconds to minutes").  Cost models that assume exact deadlines pick
#: up a small per-burst error from this — largest, in relative terms, for
#: rarely-used warehouses (the paper's Figure 5 Warehouse3 effect).
SUSPEND_SWEEP_SECONDS = 60.0


@dataclass
class _PendingQuery:
    """Internal pairing of the ground-truth request with its telemetry row."""

    request: QueryRequest
    record: QueryRecord


class VirtualWarehouse:
    """One simulated virtual warehouse inside an account."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        config: WarehouseConfig,
        telemetry: TelemetryStore,
        rng: np.random.Generator,
        initially_suspended: bool = True,
    ):
        self.sim = sim
        self.name = name
        self.config = config
        self.telemetry = telemetry
        self.rng = rng
        self.meter = BillingMeter(name)
        self.scheduler = MultiClusterScheduler(self)
        self.state = WarehouseState.SUSPENDED
        self.clusters: dict[int, Cluster] = {}
        self.draining: set[int] = set()
        self.last_activity = sim.now
        self._suspend_handle: EventHandle | None = None
        self._resume_handle: EventHandle | None = None
        self._cluster_start_handles: dict[int, EventHandle] = {}
        self._next_cluster_id = 1
        self._exec_ewma = 30.0  # seconds; prior before any query completes
        self._policy_controller = sim.add_controller(POLICY_TICK_SECONDS, self._policy_tick)
        self.telemetry.record_config(
            name, ConfigSnapshot(sim.now, config, initiator="customer")
        )
        self.telemetry.record_event(
            WarehouseEvent(sim.now, name, "create", "customer", {"config": config.describe()})
        )
        if not initially_suspended:
            self._complete_resume()

    # ------------------------------------------------------------ inspection
    def active_clusters(self) -> list[Cluster]:
        """Clusters currently RUNNING (billing)."""
        return [c for c in self.clusters.values() if c.state == ClusterState.RUNNING]

    def cluster_count_started(self) -> int:
        """RUNNING plus STARTING clusters (capacity already committed)."""
        return sum(
            1
            for c in self.clusters.values()
            if c.state in (ClusterState.RUNNING, ClusterState.STARTING)
        )

    @property
    def queue_length(self) -> int:
        return len(self.scheduler)

    @property
    def running_query_count(self) -> int:
        return sum(len(c.running) for c in self.clusters.values())

    @property
    def is_idle(self) -> bool:
        return self.running_query_count == 0 and self.queue_length == 0

    def recent_execution_seconds(self) -> float:
        """EWMA of recent execution times (drives ECONOMY scale-out)."""
        return self._exec_ewma

    def utilization(self) -> float:
        """Share of active concurrency slots currently busy."""
        active = self.active_clusters()
        if not active:
            return 0.0
        return self.running_query_count / (len(active) * self.config.max_concurrency)

    # ------------------------------------------------------------ submission
    def submit(self, request: QueryRequest, is_overhead: bool = False) -> QueryRecord:
        """Accept a query at the current simulation time."""
        now = self.sim.now
        record = QueryRecord(
            query_id=next_query_id(),
            warehouse=self.name,
            text_hash=request.text_hash,
            template_hash=request.template_hash,
            arrival_time=now,
            bytes_scanned=request.template.bytes_scanned,
            is_overhead=is_overhead,
            chained=request.chained,
        )
        self.scheduler.enqueue(_PendingQuery(request, record))
        self.last_activity = now
        self._cancel_suspend_check()
        if self.state == WarehouseState.SUSPENDED:
            self._begin_resume()
        elif self.state == WarehouseState.RUNNING:
            self.scheduler.dispatch(now)
        # RESUMING: the queue drains when the resume completes.
        return record

    # ---------------------------------------------------------------- resume
    def _begin_resume(self) -> None:
        self.state = WarehouseState.RESUMING
        delay = max(0.5, self.rng.normal(RESUME_DELAY_MEAN, 0.3 * RESUME_DELAY_MEAN))
        self._resume_handle = self.sim.schedule_in(delay, self._complete_resume)

    def _complete_resume(self) -> None:
        self.state = WarehouseState.RUNNING
        self._resume_handle = None
        self.telemetry.record_event(
            WarehouseEvent(self.sim.now, self.name, "resume", "system", {})
        )
        for _ in range(self.config.min_clusters):
            self._start_cluster_now()
        self.scheduler.dispatch(self.sim.now)
        self._maybe_schedule_suspend_check()

    # --------------------------------------------------------------- cluster
    def _next_ordinal(self) -> int:
        """Lowest unused CLUSTER_NUMBER among started clusters."""
        taken = {
            c.ordinal
            for c in self.clusters.values()
            if c.state in (ClusterState.RUNNING, ClusterState.STARTING)
        }
        ordinal = 1
        while ordinal in taken:
            ordinal += 1
        return ordinal

    def _start_cluster_now(self) -> Cluster:
        cluster = Cluster(
            cluster_id=self._next_cluster_id,
            size=self.config.size,
            max_concurrency=self.config.max_concurrency,
            ordinal=self._next_ordinal(),
            state=ClusterState.RUNNING,
            started_at=self.sim.now,
            last_busy_at=self.sim.now,
        )
        self._next_cluster_id += 1
        self.clusters[cluster.cluster_id] = cluster
        self.meter.open_segment(cluster.cluster_id, self.sim.now, self.config.size)
        return cluster

    def _start_additional_cluster(self, now: float) -> None:
        """Scale-out: provision one more cluster after a start delay."""
        if self.state != WarehouseState.RUNNING:
            return
        if self.cluster_count_started() >= self.config.max_clusters:
            return
        cluster = Cluster(
            cluster_id=self._next_cluster_id,
            size=self.config.size,
            max_concurrency=self.config.max_concurrency,
            ordinal=self._next_ordinal(),
            state=ClusterState.STARTING,
            started_at=now,
        )
        self._next_cluster_id += 1
        self.clusters[cluster.cluster_id] = cluster
        delay = max(0.5, self.rng.normal(CLUSTER_START_DELAY, 0.3 * CLUSTER_START_DELAY))
        handle = self.sim.schedule_in(delay, lambda: self._finish_cluster_start(cluster))
        self._cluster_start_handles[cluster.cluster_id] = handle

    def _finish_cluster_start(self, cluster: Cluster) -> None:
        self._cluster_start_handles.pop(cluster.cluster_id, None)
        if self.state != WarehouseState.RUNNING:
            # Warehouse suspended while the cluster was provisioning.
            self.clusters.pop(cluster.cluster_id, None)
            return
        cluster.state = ClusterState.RUNNING
        cluster.last_busy_at = self.sim.now
        self.meter.open_segment(cluster.cluster_id, self.sim.now, self.config.size)
        self.scheduler.dispatch(self.sim.now)

    def _retire_one_cluster(self, now: float) -> None:
        """Scale-in: stop the newest empty cluster beyond min_clusters."""
        active = self.active_clusters()
        if len(active) <= self.config.min_clusters:
            return
        empties = [c for c in active if not c.running]
        if not empties:
            # Mark the newest cluster draining; it stops when it empties.
            newest = max(active, key=lambda c: c.cluster_id)
            self.draining.add(newest.cluster_id)
            return
        victim = max(empties, key=lambda c: c.cluster_id)
        self._stop_cluster(victim, now)

    def _stop_cluster(self, cluster: Cluster, now: float) -> None:
        if cluster.running:
            raise WarehouseError(f"cannot stop busy cluster {cluster.cluster_id}")
        if cluster.state == ClusterState.RUNNING:
            self.meter.close_segment(cluster.cluster_id, now)
        cluster.state = ClusterState.STOPPED
        cluster.drop_cache()
        self.draining.discard(cluster.cluster_id)
        self.clusters.pop(cluster.cluster_id, None)

    # ------------------------------------------------------------- execution
    def _begin_execution(self, pending: _PendingQuery, cluster: Cluster, now: float) -> None:
        record, request = pending.record, pending.request
        template = request.template
        hit_ratio = cluster.cache.access(template.partitions)
        warm = template.warm_latency(self.config.size)
        cache_mult = 1.0 + (template.cold_multiplier - 1.0) * (1.0 - hit_ratio)
        contention_mult = 1.0 + CONTENTION_SLOWDOWN * len(cluster.running)
        noise = float(self.rng.lognormal(0.0, LATENCY_NOISE_SIGMA))
        duration = warm * cache_mult * contention_mult * noise
        record.start_time = now
        record.queued_seconds = now - record.arrival_time
        record.execution_seconds = duration
        record.warehouse_size = self.config.size
        record.cluster_number = cluster.ordinal
        record.cache_hit_ratio = hit_ratio
        spill_steps = template.spill_steps(self.config.size)
        if spill_steps:
            # Rough working-set proxy: each missing size step spills another
            # copy of the scanned bytes to storage.
            record.bytes_spilled = template.bytes_scanned * spill_steps
        cluster.begin_query(record, now)
        self.sim.schedule_in(duration, lambda: self._complete_query(record, cluster))

    def _complete_query(self, record: QueryRecord, cluster: Cluster) -> None:
        now = self.sim.now
        cluster.finish_query(record.query_id, now)
        record.end_time = now
        record.completed = True
        self.telemetry.record_query(record)
        self.last_activity = now
        self._exec_ewma = 0.2 * record.execution_seconds + 0.8 * self._exec_ewma
        if cluster.cluster_id in self.draining and not cluster.running:
            if len(self.active_clusters()) > self.config.min_clusters:
                self._stop_cluster(cluster, now)
            else:
                self.draining.discard(cluster.cluster_id)
        if self.state == WarehouseState.RUNNING:
            self.scheduler.dispatch(now)
            self._maybe_schedule_suspend_check()

    # ---------------------------------------------------------- auto-suspend
    def _maybe_schedule_suspend_check(self) -> None:
        if not self.is_idle or self.state != WarehouseState.RUNNING:
            return
        if self.config.auto_suspend_seconds <= 0:
            return
        self._cancel_suspend_check()
        due = self.last_activity + self.config.auto_suspend_seconds
        # Lazy enforcement: round the deadline up to the next sweep.
        due = math.ceil(due / SUSPEND_SWEEP_SECONDS) * SUSPEND_SWEEP_SECONDS
        self._suspend_handle = self.sim.schedule(max(due, self.sim.now), self._suspend_check)

    def _cancel_suspend_check(self) -> None:
        if self._suspend_handle is not None:
            self._suspend_handle.cancel()
            self._suspend_handle = None

    def _suspend_check(self) -> None:
        self._suspend_handle = None
        if self.state != WarehouseState.RUNNING or not self.is_idle:
            return
        if self.sim.now - self.last_activity + 1e-9 >= self.config.auto_suspend_seconds:
            self.suspend(initiator="system")
        else:
            self._maybe_schedule_suspend_check()

    def suspend(self, initiator: str = "customer") -> None:
        """Suspend now: stop billing, drop every cluster's cache."""
        if self.state == WarehouseState.SUSPENDED:
            return
        if self.running_query_count > 0:
            raise WarehouseError(f"cannot suspend {self.name}: queries are running")
        now = self.sim.now
        for handle in self._cluster_start_handles.values():
            handle.cancel()
        self._cluster_start_handles.clear()
        if self._resume_handle is not None:
            self._resume_handle.cancel()
            self._resume_handle = None
        for cluster in list(self.clusters.values()):
            if cluster.state == ClusterState.RUNNING:
                self.meter.close_segment(cluster.cluster_id, now)
            cluster.state = ClusterState.STOPPED
            cluster.drop_cache()
        self.clusters.clear()
        self.draining.clear()
        self.scheduler.reset()
        self.state = WarehouseState.SUSPENDED
        self._cancel_suspend_check()
        self.telemetry.record_event(WarehouseEvent(now, self.name, "suspend", initiator, {}))

    def resume(self, initiator: str = "customer") -> None:
        """Explicit resume (queries also auto-resume on submit)."""
        if self.state != WarehouseState.SUSPENDED:
            return
        self.telemetry.record_event(
            WarehouseEvent(self.sim.now, self.name, "resume_requested", initiator, {})
        )
        self._begin_resume()

    # ----------------------------------------------------------- alteration
    def alter(self, initiator: str = "customer", **changes) -> WarehouseConfig:
        """Apply ALTER WAREHOUSE-style changes; returns the new config.

        Supported keys mirror :class:`WarehouseConfig` fields.  Resizes
        reprice open billing segments and drop caches; auto-suspend changes
        re-arm the idle timer; cluster-bound changes start or drain clusters
        as needed.
        """
        old = self.config
        new = old.with_changes(**changes)
        if new == old:
            return old
        now = self.sim.now
        self.config = new
        self.telemetry.record_config(self.name, ConfigSnapshot(now, new, initiator))
        self.telemetry.record_event(
            WarehouseEvent(
                now,
                self.name,
                "alter",
                initiator,
                {"changes": {k: _event_value(v) for k, v in changes.items()}},
            )
        )
        if new.size != old.size:
            self._apply_resize(new.size, now, initiator)
        if new.auto_suspend_seconds != old.auto_suspend_seconds:
            self._cancel_suspend_check()
            self._maybe_schedule_suspend_check()
        if self.state == WarehouseState.RUNNING:
            self._reconcile_cluster_bounds(now)
        return new

    def _apply_resize(self, size: WarehouseSize, now: float, initiator: str) -> None:
        for cluster in self.clusters.values():
            was_running = cluster.state == ClusterState.RUNNING
            cluster.apply_resize(size)
            if was_running:
                self.meter.reprice_segment(cluster.cluster_id, now, size)
        self.telemetry.record_event(
            WarehouseEvent(now, self.name, "resize", initiator, {"size": size.label})
        )

    def _reconcile_cluster_bounds(self, now: float) -> None:
        """Enforce min/max cluster bounds after an alter."""
        while len(self.active_clusters()) < self.config.min_clusters:
            self._start_cluster_now()
        while self.cluster_count_started() > self.config.max_clusters:
            active = self.active_clusters()
            empties = [c for c in active if not c.running]
            if empties:
                self._stop_cluster(max(empties, key=lambda c: c.cluster_id), now)
            else:
                busy = [c for c in active if c.cluster_id not in self.draining]
                if not busy:
                    break
                self.draining.add(max(busy, key=lambda c: c.cluster_id).cluster_id)
                break

    # ----------------------------------------------------------------- ticks
    def _policy_tick(self, now: float) -> None:
        if self.state != WarehouseState.RUNNING:
            return
        self.scheduler.policy_tick(now)
        self._maybe_schedule_suspend_check()

    def shutdown(self) -> None:
        """Stop periodic work (end of simulation)."""
        self._policy_controller.stop()

    def __repr__(self) -> str:
        return (
            f"VirtualWarehouse({self.name!r}, {self.state.value}, "
            f"{self.config.describe()}, t={format_time(self.sim.now)})"
        )


def _event_value(value):
    """Render config values JSON-ish for event detail dicts."""
    if isinstance(value, WarehouseSize):
        return value.label
    if hasattr(value, "value"):
        return value.value
    return value
