"""The cloud data warehouse simulator substrate.

A discrete-event model of a Snowflake-like CDW: virtual warehouses with
T-shirt sizes, per-second billing (60 s minimums, hourly rollups),
auto-suspend/resume with cache-drop semantics, multi-cluster scale-out
policies, query queueing, a vendor-style client API and ACCOUNT_USAGE-style
telemetry views.  See DESIGN.md §2 for the substitution rationale.
"""

from repro.warehouse.account import Account, OverheadMeter
from repro.warehouse.api import CloudWarehouseClient, WarehouseInfo
from repro.warehouse.billing import MINIMUM_BILLED_SECONDS, BillingMeter, UsageSegment
from repro.warehouse.cache import PARTITION_BYTES, PartitionCache
from repro.warehouse.cluster import Cluster, ClusterState
from repro.warehouse.config import MAX_CLUSTER_COUNT, WarehouseConfig
from repro.warehouse.engine import PeriodicController, Simulation, SimulationError
from repro.warehouse.queries import QueryRecord, QueryRequest, QueryTemplate, hash_text
from repro.warehouse.scheduler import MultiClusterScheduler
from repro.warehouse.telemetry import ConfigSnapshot, TelemetryStore, WarehouseEvent
from repro.warehouse.types import ScalingPolicy, WarehouseSize, WarehouseState
from repro.warehouse.warehouse import VirtualWarehouse

__all__ = [
    "Account",
    "OverheadMeter",
    "CloudWarehouseClient",
    "WarehouseInfo",
    "BillingMeter",
    "UsageSegment",
    "MINIMUM_BILLED_SECONDS",
    "PartitionCache",
    "PARTITION_BYTES",
    "Cluster",
    "ClusterState",
    "WarehouseConfig",
    "MAX_CLUSTER_COUNT",
    "Simulation",
    "SimulationError",
    "PeriodicController",
    "QueryTemplate",
    "QueryRequest",
    "QueryRecord",
    "hash_text",
    "MultiClusterScheduler",
    "TelemetryStore",
    "WarehouseEvent",
    "ConfigSnapshot",
    "WarehouseSize",
    "ScalingPolicy",
    "WarehouseState",
    "VirtualWarehouse",
]
