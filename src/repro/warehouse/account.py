"""A simulated customer account: warehouses + telemetry + overhead metering.

The account is the top-level simulator object a scenario builds.  It owns
the event loop, the telemetry store shared by all warehouses, and the
overhead meter that charges KWO's own telemetry/actuator traffic (the red
series of the paper's Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import UnknownWarehouseError, WarehouseError
from repro.common.rng import RngRegistry
from repro.common.simtime import Window, hour_index
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.engine import Simulation
from repro.warehouse.queries import QueryRequest
from repro.warehouse.telemetry import TelemetryStore
from repro.warehouse.warehouse import VirtualWarehouse


@dataclass(frozen=True)
class OverheadCharge:
    """One metered service operation (telemetry fetch, actuator call...)."""

    time: float
    credits: float
    kind: str
    warehouse: str


class OverheadMeter:
    """Tracks the (small) credits consumed by the optimization service itself.

    The paper's §7.3 stresses that KWO's overhead is negligible because
    telemetry reads avoid waking warehouses and batch multiple queries; we
    model each service operation as a fixed tiny cloud-services charge.
    """

    def __init__(self):
        self.charges: list[OverheadCharge] = []

    def record(self, time: float, credits: float, kind: str, warehouse: str = "") -> None:
        if credits < 0:
            raise WarehouseError("overhead credits must be non-negative")
        self.charges.append(OverheadCharge(time, credits, kind, warehouse))

    def total_credits(self, window: Window | None = None) -> float:
        return sum(
            c.credits for c in self.charges if window is None or window.contains(c.time)
        )

    def hourly_rollup(self, window: Window) -> dict[int, float]:
        rollup: dict[int, float] = {}
        for c in self.charges:
            if window.contains(c.time):
                h = hour_index(c.time)
                rollup[h] = rollup.get(h, 0.0) + c.credits
        return rollup


class Account:
    """One simulated CDW account (one "customer")."""

    def __init__(
        self,
        name: str = "acme",
        seed: int = 0,
        price_per_credit: float = 3.0,
        start_time: float = 0.0,
    ):
        self.name = name
        self.sim = Simulation(start_time)
        self.rngs = RngRegistry(seed)
        self.telemetry = TelemetryStore()
        self.overhead = OverheadMeter()
        self.price_per_credit = price_per_credit
        self.warehouses: dict[str, VirtualWarehouse] = {}

    # ------------------------------------------------------------ lifecycle
    def create_warehouse(
        self, name: str, config: WarehouseConfig | None = None, initially_suspended: bool = True
    ) -> VirtualWarehouse:
        if name in self.warehouses:
            raise WarehouseError(f"warehouse {name!r} already exists")
        wh = VirtualWarehouse(
            self.sim,
            name,
            config or WarehouseConfig(),
            self.telemetry,
            # One stream per warehouse; uniqueness is guaranteed by the
            # duplicate-name check above, not by a literal name.
            self.rngs.stream(f"warehouse.{name}"),  # repro-lint: disable=R003
            initially_suspended=initially_suspended,
        )
        self.warehouses[name] = wh
        return wh

    def warehouse(self, name: str) -> VirtualWarehouse:
        try:
            return self.warehouses[name]
        except KeyError:
            raise UnknownWarehouseError(name) from None

    # -------------------------------------------------------------- workload
    def schedule_workload(self, warehouse: str, requests: list[QueryRequest]) -> None:
        """Schedule query arrivals as simulation events."""
        wh = self.warehouse(warehouse)
        for request in requests:
            self.sim.schedule(request.arrival_time, _Submitter(wh, request))

    def run_until(self, t: float) -> None:
        self.sim.run_until(t)

    # ------------------------------------------------------------- accounting
    def total_credits(self, window: Window | None = None, include_overhead: bool = True) -> float:
        """Account-wide billed credits (compute + service overhead)."""
        as_of = self.sim.now
        if window is None:
            total = sum(wh.meter.total_credits(as_of) for wh in self.warehouses.values())
        else:
            total = sum(
                wh.meter.credits_in_window(window, as_of) for wh in self.warehouses.values()
            )
        if include_overhead:
            total += self.overhead.total_credits(window)
        return total

    def total_spend_dollars(self, window: Window | None = None) -> float:
        return self.total_credits(window) * self.price_per_credit


class _Submitter:
    """Picklable/cancel-free arrival callback (avoids closure-in-loop bugs)."""

    __slots__ = ("wh", "request")

    def __init__(self, wh: VirtualWarehouse, request: QueryRequest):
        self.wh = wh
        self.request = request

    def __call__(self) -> None:
        self.wh.submit(self.request)
