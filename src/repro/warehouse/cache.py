"""Per-cluster local result/data cache.

Snowflake clusters keep recently scanned table data on local SSD; the cache
is lost when the warehouse suspends (its servers are released) or when it is
resized (new servers are provisioned).  This is the mechanism behind the
paper's §3 "memory optimization" trade-off: a short auto-suspend interval
saves idle credits but forces cold reads — and therefore longer, more
expensive queries — after resume.

The cache is modelled as an LRU over named data partitions with a byte
capacity determined by warehouse size.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.common.errors import ConfigurationError

#: Size of one cacheable data partition.  Snowflake micro-partitions are
#: ~16 MB compressed; we use a coarser 64 MB unit so workloads stay small.
PARTITION_BYTES = 64 * (2**20)


class PartitionCache:
    """LRU cache of data partitions with byte-capacity eviction.

    Only identity (partition name) matters; all partitions have the same
    size, so capacity is equivalently a max partition count.
    """

    def __init__(self, capacity_bytes: float):
        if capacity_bytes < 0:
            raise ConfigurationError("cache capacity must be non-negative")
        self.capacity_bytes = float(capacity_bytes)
        self._entries: OrderedDict[str, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def max_partitions(self) -> int:
        return int(self.capacity_bytes // PARTITION_BYTES)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, partition: str) -> bool:
        return partition in self._entries

    @property
    def used_bytes(self) -> float:
        return len(self._entries) * PARTITION_BYTES

    def access(self, partitions: Iterable[str]) -> float:
        """Touch ``partitions``; return the hit ratio of this access.

        Missing partitions are loaded (inserted) and hits are refreshed, so
        a repeated access is fully warm.  An empty access counts as fully
        warm (ratio 1.0) because a query that scans nothing cannot miss.
        A query's footprint is a *set*: duplicate partition names in one
        access are collapsed (they would otherwise self-hit mid-access).
        """
        parts = list(dict.fromkeys(partitions))
        if not parts:
            return 1.0
        # Snapshot semantics: the hit set is decided against the cache state
        # at access start (insertions during the scan cannot evict a
        # partition this same query was about to read).
        hit_set = [p in self._entries for p in parts]
        for p in parts:
            # (Re-)insert everything: refreshes recency for hits and loads
            # misses; a hit evicted moments ago by this access's own misses
            # is simply reloaded.
            self._insert(p)
        hits = sum(hit_set)
        self.hits += hits
        self.misses += len(parts) - hits
        return hits / len(parts)

    def peek_hit_ratio(self, partitions: Iterable[str]) -> float:
        """Hit ratio ``access`` would see, without mutating the cache."""
        parts = list(dict.fromkeys(partitions))
        if not parts:
            return 1.0
        return sum(1 for p in parts if p in self._entries) / len(parts)

    def _insert(self, partition: str) -> None:
        if self.max_partitions == 0:
            return
        self._entries[partition] = None
        self._entries.move_to_end(partition)
        while len(self._entries) > self.max_partitions:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop everything (suspend / resize semantics)."""
        self._entries.clear()

    def resize(self, capacity_bytes: float) -> None:
        """Change capacity.  The simulator clears on resize anyway, but a
        standalone cache shrinks by evicting the least recent entries."""
        if capacity_bytes < 0:
            raise ConfigurationError("cache capacity must be non-negative")
        self.capacity_bytes = float(capacity_bytes)
        while len(self._entries) > self.max_partitions:
            self._entries.popitem(last=False)
