"""Query descriptions: templates, submitted requests and telemetry records.

Security model (paper §2 C6): the optimizer never sees query text.  Each
query carries a SHA-1 ``text_hash`` (full text) and ``template_hash`` (text
stripped of constants); only the hashes are exposed through telemetry, which
is exactly the trick footnote 4 of the paper describes for finding identical
and similar queries.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.warehouse.types import WarehouseSize

_query_ids = itertools.count(1)


def hash_text(text: str) -> str:
    """Stable hex digest standing in for a securely hashed query text."""
    return hashlib.sha1(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class QueryTemplate:
    """Ground-truth execution profile of one recurring query shape.

    This is *simulator-internal* truth: the optimizer and cost model never
    read these fields; they only observe latencies through telemetry.

    Parameters
    ----------
    name:
        Human-readable template name (hashed before leaving the simulator).
    base_work_seconds:
        Warm-cache execution time on an otherwise idle XS cluster.
    scale_exponent:
        How latency responds to compute: ``latency = base / speedup**gamma``.
        1.0 = perfectly parallelizable, 0.0 = does not benefit from larger
        warehouses.  The paper's §5.2 notes latency "may grow super-linearly
        for some queries, but linearly or sub-linearly for others" when
        downsizing; gamma captures that heterogeneity.
    bytes_scanned:
        Total bytes the query reads.
    partitions:
        Identifiers of the data partitions touched (the cacheable unit).
    cold_multiplier:
        Latency multiplier when *all* reads miss the local cache; the
        effective multiplier interpolates with the actual miss ratio.
        BI-style templates are cache sensitive (high multiplier).
    min_memory_size:
        Smallest warehouse size whose memory holds this query's working set
        (hash tables, sort buffers).  On smaller sizes the query *spills*:
        latency multiplies by ``spill_multiplier`` per missing size step.
        This is §5.2's "latency may grow super-linearly for some queries"
        when downsizing — the phenomenon that makes blind downsizing unsafe.
        Defaults to XS (never spills).
    spill_multiplier:
        Extra slowdown per size step below ``min_memory_size``.
    """

    name: str
    base_work_seconds: float
    scale_exponent: float = 0.8
    bytes_scanned: float = 1 * (2**30)
    partitions: tuple[str, ...] = ()
    cold_multiplier: float = 2.0
    min_memory_size: WarehouseSize = WarehouseSize.XS
    spill_multiplier: float = 2.5

    def __post_init__(self):
        if self.base_work_seconds <= 0:
            raise ConfigurationError("base_work_seconds must be positive")
        if not 0.0 <= self.scale_exponent <= 1.5:
            raise ConfigurationError("scale_exponent out of plausible range [0, 1.5]")
        if self.cold_multiplier < 1.0:
            raise ConfigurationError("cold_multiplier must be >= 1.0")
        if self.bytes_scanned < 0:
            raise ConfigurationError("bytes_scanned must be non-negative")
        if self.spill_multiplier < 1.0:
            raise ConfigurationError("spill_multiplier must be >= 1.0")

    @property
    def template_hash(self) -> str:
        return hash_text(f"template:{self.name}")

    def spill_steps(self, size: WarehouseSize) -> int:
        """Size steps below the working-set threshold (0 = no spill)."""
        return max(0, self.min_memory_size.value - size.value)

    def spill_factor(self, size: WarehouseSize) -> float:
        """Latency multiplier from spilling at ``size``."""
        return self.spill_multiplier ** self.spill_steps(size)

    def warm_latency(self, size: WarehouseSize) -> float:
        """Warm-cache, zero-contention latency on ``size`` (incl. spilling)."""
        compute = self.base_work_seconds / (size.speedup**self.scale_exponent)
        return compute * self.spill_factor(size)


@dataclass(frozen=True)
class QueryRequest:
    """A single query submission produced by a workload generator."""

    template: QueryTemplate
    arrival_time: float
    # Constants vary per instance; the full-text hash therefore differs per
    # instance group while the template hash stays stable.
    instance_key: str = ""
    # Chained requests model ETL dependencies: the generator emitted this
    # request a fixed lag after the previous step's expected completion.
    chained: bool = False

    @property
    def text_hash(self) -> str:
        return hash_text(f"query:{self.template.name}:{self.instance_key}")

    @property
    def template_hash(self) -> str:
        return self.template.template_hash


@dataclass
class QueryRecord:
    """One row of QUERY_HISTORY telemetry (metadata only, no text/data).

    Field names mirror Snowflake's ACCOUNT_USAGE.QUERY_HISTORY columns the
    paper's §6.1 lists as training inputs: arrival/queue/latency timings,
    bytes scanned, warehouse size and cluster number at execution.
    """

    query_id: int
    warehouse: str
    text_hash: str
    template_hash: str
    arrival_time: float
    start_time: float = 0.0
    end_time: float = 0.0
    queued_seconds: float = 0.0
    execution_seconds: float = 0.0
    bytes_scanned: float = 0.0
    #: Bytes spilled to local/remote storage (memory pressure signal; >0
    #: means the warehouse was too small for this query's working set).
    bytes_spilled: float = 0.0
    warehouse_size: WarehouseSize = WarehouseSize.XS
    cluster_number: int = 0
    cache_hit_ratio: float = 0.0
    is_overhead: bool = False
    chained: bool = False
    completed: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Queue time plus execution time (what the end user experiences)."""
        return self.queued_seconds + self.execution_seconds


def next_query_id() -> int:
    """Monotonically increasing query id shared across all simulations."""
    return next(_query_ids)
