"""Per-second metering with Snowflake-style billing semantics.

Billing rules reproduced here (all load-bearing for the paper's cost model):

* each running **cluster** bills ``credits_per_hour(size)`` pro-rated per
  second while it runs;
* every cluster start incurs a **60-second minimum** charge — frequent
  suspend/resume cycles are therefore not free, which is why tuning the
  auto-suspend interval is a real optimization problem;
* usage is **rolled up hourly** into WAREHOUSE_METERING_HISTORY, the series
  the paper's Figures 4-6 plot.

The meter records one :class:`UsageSegment` per continuous cluster run at a
fixed size; a resize closes the segment and opens a new one at the new rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import WarehouseError
from repro.common.simtime import HOUR, Window, hour_index
from repro.obs import trace as obs
from repro.warehouse.types import WarehouseSize

#: Minimum billed seconds per cluster start.
MINIMUM_BILLED_SECONDS = 60.0


@dataclass
class UsageSegment:
    """A continuous billed run of one cluster at one size."""

    cluster_id: int
    size: WarehouseSize
    start: float
    end: float | None = None
    #: True for the first segment after a cluster (re)start; only such
    #: segments are subject to the 60 s minimum.
    fresh_start: bool = True

    def billed_window(self) -> Window:
        """The window of time actually charged for this segment."""
        if self.end is None:
            raise WarehouseError("segment is still open")
        duration = self.end - self.start
        if self.fresh_start:
            duration = max(duration, MINIMUM_BILLED_SECONDS)
        return Window(self.start, self.start + duration)

    def credits(self) -> float:
        return self.billed_window().duration / HOUR * self.size.credits_per_hour


class BillingMeter:
    """Accumulates usage segments for one warehouse."""

    def __init__(self, warehouse: str):
        self.warehouse = warehouse
        self._closed: list[UsageSegment] = []
        self._open: dict[int, UsageSegment] = {}

    def open_segment(
        self, cluster_id: int, t: float, size: WarehouseSize, fresh_start: bool = True
    ) -> None:
        """Begin billing ``cluster_id`` at ``size`` from time ``t``."""
        if cluster_id in self._open:
            raise WarehouseError(
                f"cluster {cluster_id} of {self.warehouse} already has an open segment"
            )
        self._open[cluster_id] = UsageSegment(cluster_id, size, t, fresh_start=fresh_start)

    def close_segment(self, cluster_id: int, t: float) -> UsageSegment:
        """Stop billing ``cluster_id`` at time ``t`` and archive the segment."""
        seg = self._open.pop(cluster_id, None)
        if seg is None:
            raise WarehouseError(f"cluster {cluster_id} of {self.warehouse} is not being billed")
        if t < seg.start:
            raise WarehouseError("cannot close a segment before it started")
        seg.end = t
        self._closed.append(seg)
        rec = obs.recorder()
        if rec is not None:
            # Segment credits are final at close time (a resize closes and
            # reopens), so this series is the warehouse's spend over sim
            # time — what the spend-rate SLO burns against.
            rec.counter(f"repro.billing.{self.warehouse.lower()}.credits").inc(
                seg.credits(), time=t
            )
        return seg

    def reprice_segment(self, cluster_id: int, t: float, size: WarehouseSize) -> None:
        """Close and reopen a cluster's segment at a new rate (resize).

        The continuation segment is not a fresh start, so it does not incur
        another 60 s minimum.
        """
        self.close_segment(cluster_id, t)
        self.open_segment(cluster_id, t, size, fresh_start=False)

    def is_billing(self, cluster_id: int) -> bool:
        return cluster_id in self._open

    @property
    def open_cluster_ids(self) -> list[int]:
        return sorted(self._open)

    def _all_segments(self, as_of: float | None = None) -> list[UsageSegment]:
        segments = list(self._closed)
        for seg in self._open.values():
            if as_of is None:
                continue
            snapshot = UsageSegment(seg.cluster_id, seg.size, seg.start, max(as_of, seg.start), seg.fresh_start)
            segments.append(snapshot)
        return segments

    def total_credits(self, as_of: float | None = None) -> float:
        """Total credits billed so far (open segments valued at ``as_of``)."""
        return sum(seg.credits() for seg in self._all_segments(as_of))

    def credits_in_window(self, window: Window, as_of: float | None = None) -> float:
        """Credits attributable to ``window`` (minimum charges included at
        the start of their segment's billed window)."""
        total = 0.0
        for seg in self._all_segments(as_of if as_of is not None else window.end):
            billed = seg.billed_window()
            total += billed.overlap(window) / HOUR * seg.size.credits_per_hour
        return total

    def hourly_rollup(self, window: Window, as_of: float | None = None) -> dict[int, float]:
        """WAREHOUSE_METERING_HISTORY: credits per hour index inside ``window``."""
        rollup: dict[int, float] = {}
        for seg in self._all_segments(as_of if as_of is not None else window.end):
            billed = seg.billed_window()
            clipped_start = max(billed.start, window.start)
            clipped_end = min(billed.end, window.end)
            if clipped_end <= clipped_start:
                continue
            for piece in Window(clipped_start, clipped_end).split_hours():
                h = hour_index(piece.start)
                rollup[h] = rollup.get(h, 0.0) + piece.duration / HOUR * seg.size.credits_per_hour
        return rollup

    def active_cluster_seconds(self, window: Window, as_of: float | None = None) -> float:
        """Billed cluster-seconds overlapping ``window`` (for utilization KPIs)."""
        return sum(
            seg.billed_window().overlap(window)
            for seg in self._all_segments(as_of if as_of is not None else window.end)
        )
