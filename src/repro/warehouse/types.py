"""Core vocabulary of the CDW simulator: sizes, states, scaling policies.

The T-shirt size ladder and credit rates follow Snowflake's public pricing
model (credits/hour doubling with each size step), which the paper's §3
describes as the optimization surface for warehouse resizing.
"""

from __future__ import annotations

import enum

from repro.common.errors import ConfigurationError


class WarehouseSize(enum.IntEnum):
    """Snowflake-style T-shirt sizes; the int value is the size index.

    Credits per hour double with each step: XS bills 1 credit/hour, S bills
    2, ..., SIZE_6XL bills 512.  Compute capacity is likewise assumed to
    double per step (§3: "the compute capacity is widely assumed to also
    double with each increment").
    """

    XS = 0
    S = 1
    M = 2
    L = 3
    XL = 4
    SIZE_2XL = 5
    SIZE_3XL = 6
    SIZE_4XL = 7
    SIZE_5XL = 8
    SIZE_6XL = 9

    @property
    def credits_per_hour(self) -> float:
        """Billing rate for one running cluster of this size."""
        return float(2 ** self.value)

    @property
    def speedup(self) -> float:
        """Raw compute capacity relative to XS (doubles per step)."""
        return float(2 ** self.value)

    @property
    def cache_capacity_bytes(self) -> float:
        """Local SSD cache capacity per cluster.

        XS gets 32 GiB and capacity doubles with size, mirroring the "more
        servers per cluster => more local cache" behaviour that makes
        resizing interact with cache warmth.
        """
        return 32 * (2**30) * float(2 ** self.value)

    @property
    def label(self) -> str:
        """Vendor-style label, e.g. ``'X-Small'`` or ``'2X-Large'``."""
        names = {
            WarehouseSize.XS: "X-Small",
            WarehouseSize.S: "Small",
            WarehouseSize.M: "Medium",
            WarehouseSize.L: "Large",
            WarehouseSize.XL: "X-Large",
        }
        if self in names:
            return names[self]
        return f"{self.value - 3}X-Large"

    def step(self, delta: int) -> "WarehouseSize":
        """Return the size ``delta`` steps away, clamped to the ladder."""
        idx = min(max(self.value + delta, WarehouseSize.XS.value), WarehouseSize.SIZE_6XL.value)
        return WarehouseSize(idx)

    @classmethod
    def parse(cls, text: str) -> "WarehouseSize":
        """Parse either enum names ('XS', 'M') or vendor labels ('X-Small')."""
        normalized = text.strip().upper().replace("-", "").replace("_", "").replace(" ", "")
        aliases = {
            "XSMALL": cls.XS,
            "XS": cls.XS,
            "SMALL": cls.S,
            "S": cls.S,
            "MEDIUM": cls.M,
            "M": cls.M,
            "LARGE": cls.L,
            "L": cls.L,
            "XLARGE": cls.XL,
            "XL": cls.XL,
        }
        if normalized in aliases:
            return aliases[normalized]
        for n in range(2, 7):
            if normalized in (f"{n}XLARGE", f"{n}XL", f"SIZE{n}XL"):
                return cls(n + 3)
        raise ConfigurationError(f"unknown warehouse size {text!r}")


class ScalingPolicy(enum.Enum):
    """Multi-cluster scale-out policies (§3 "warehouse parallelism").

    STANDARD  aggressively starts a new cluster as soon as a query queues.
    ECONOMY   starts a new cluster only if the queued work would keep it
              busy for ~6 minutes, favouring cost over queueing delay.
    """

    STANDARD = "standard"
    ECONOMY = "economy"


class WarehouseState(enum.Enum):
    """Lifecycle state of a virtual warehouse."""

    SUSPENDED = "suspended"
    RESUMING = "resuming"
    RUNNING = "running"
