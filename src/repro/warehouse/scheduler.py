"""Multi-cluster query scheduling and scale-out policies (§3).

The scheduler owns the warehouse-level query queue and implements
Snowflake's documented multi-cluster behaviour:

* queries run on any cluster with a free concurrency slot (least-loaded
  cluster first);
* when all slots are taken, queries queue;
* under the **STANDARD** policy a new cluster is started as soon as a query
  queues (successive starts spaced ~20 s apart);
* under the **ECONOMY** policy a new cluster starts only when the queued
  work is estimated to keep a new cluster busy for ~6 minutes;
* clusters are retired (scale-in) after the load has been low enough to
  redistribute for a few consecutive checks — longer under ECONOMY.

The scheduler never starts/stops clusters itself; it asks the warehouse,
which owns billing and lifecycle.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.warehouse.types import ScalingPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.warehouse.warehouse import VirtualWarehouse, _PendingQuery

#: Seconds between successive scale-out cluster starts.
STANDARD_SCALE_OUT_SPACING = 20.0
ECONOMY_SCALE_OUT_SPACING = 60.0
#: ECONOMY starts a cluster only if queued work would keep it busy this long.
ECONOMY_MIN_BUSY_SECONDS = 360.0
#: Consecutive low-load policy checks before retiring a cluster.
STANDARD_SCALE_IN_CHECKS = 3
ECONOMY_SCALE_IN_CHECKS = 12
#: Load headroom required before scale-in: the remaining clusters must be
#: able to absorb current load at <= this fraction of their slots.
SCALE_IN_LOAD_FRACTION = 0.8


class MultiClusterScheduler:
    """Queueing + scale-out/in decisions for one warehouse."""

    def __init__(self, warehouse: "VirtualWarehouse"):
        self.warehouse = warehouse
        self.queue: deque["_PendingQuery"] = deque()
        self._last_scale_out_at = -1e18
        self._low_load_checks = 0

    # ----------------------------------------------------------------- queue
    def __len__(self) -> int:
        return len(self.queue)

    def enqueue(self, pending: "_PendingQuery") -> None:
        self.queue.append(pending)

    def dispatch(self, now: float) -> None:
        """Assign queued queries to free slots; trigger scale-out if stuck."""
        wh = self.warehouse
        while self.queue:
            cluster = self._pick_cluster()
            if cluster is None:
                break
            pending = self.queue.popleft()
            wh._begin_execution(pending, cluster, now)
        if self.queue:
            self._consider_scale_out(now)

    def _pick_cluster(self):
        """Least-loaded available, non-draining cluster (lowest id on ties)."""
        candidates = [
            c
            for c in self.warehouse.active_clusters()
            if c.is_available and c.cluster_id not in self.warehouse.draining
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda c: (c.load, c.cluster_id))

    # ------------------------------------------------------------- scale out
    def _consider_scale_out(self, now: float) -> None:
        wh = self.warehouse
        config = wh.config
        if wh.cluster_count_started() >= config.max_clusters:
            return
        spacing = (
            STANDARD_SCALE_OUT_SPACING
            if config.scaling_policy == ScalingPolicy.STANDARD
            else ECONOMY_SCALE_OUT_SPACING
        )
        if now - self._last_scale_out_at < spacing:
            return
        if config.scaling_policy == ScalingPolicy.ECONOMY:
            # Estimate queued work from the recent average execution time;
            # only scale out if a fresh cluster would stay busy long enough.
            est_work = len(self.queue) * wh.recent_execution_seconds()
            if est_work < ECONOMY_MIN_BUSY_SECONDS:
                return
        self._last_scale_out_at = now
        wh._start_additional_cluster(now)

    # -------------------------------------------------------------- scale in
    def policy_tick(self, now: float) -> None:
        """Periodic check: retire clusters when load stays low (scale-in).

        Also re-attempts dispatch, which doubles as the retry path after a
        cluster finishes starting.
        """
        self.dispatch(now)
        wh = self.warehouse
        config = wh.config
        active = wh.active_clusters()
        n_active = len(active)
        if n_active <= config.min_clusters:
            self._low_load_checks = 0
            return
        running_queries = sum(len(c.running) for c in active)
        reduced_capacity = (n_active - 1) * config.max_concurrency
        redistributable = (
            not self.queue
            and running_queries <= SCALE_IN_LOAD_FRACTION * reduced_capacity
        )
        if redistributable:
            self._low_load_checks += 1
        else:
            self._low_load_checks = 0
            return
        needed_checks = (
            STANDARD_SCALE_IN_CHECKS
            if config.scaling_policy == ScalingPolicy.STANDARD
            else ECONOMY_SCALE_IN_CHECKS
        )
        if self._low_load_checks >= needed_checks:
            self._low_load_checks = 0
            wh._retire_one_cluster(now)

    def reset(self) -> None:
        """Forget policy state (on suspend)."""
        self._low_load_checks = 0
        self._last_scale_out_at = -1e18
