"""Vendor-style client API over the simulated account.

:class:`CloudWarehouseClient` is the only surface Keebo's components are
allowed to touch (§4.5: the actuator "serves as a layer of abstraction
between Keebo and the underlying CDW").  A client is bound to an *actor*;
calls by the ``"keebo"`` actor are metered as service overhead, and config
changes record their initiator so the monitor can distinguish Keebo's own
actions from external (customer) changes — the conflict-detection behaviour
of §4.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.simtime import Window
from repro.warehouse.account import Account
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord
from repro.warehouse.telemetry import WarehouseEvent
from repro.warehouse.types import WarehouseState

#: Cloud-services credits charged per metered service operation.
TELEMETRY_FETCH_CREDITS = 0.0008
ACTUATOR_CALL_CREDITS = 0.0004
MONITOR_POLL_CREDITS = 0.0002

#: The client surface, grouped by effect.  These names are the vocabulary
#: of the fault-injection layer (:mod:`repro.faults`): a ``FaultSpec``
#: targets one of these operations (or a whole group), and the
#: ``FaultingWarehouseClient`` overrides exactly this surface — keep them
#: in sync when adding client methods.
WRITE_OPERATIONS = ("alter_warehouse", "suspend_warehouse", "resume_warehouse")
STATUS_OPERATIONS = ("show_warehouses", "describe_warehouse", "current_config")
TELEMETRY_OPERATIONS = ("query_history", "warehouse_events")
BILLING_OPERATIONS = ("metering_history", "credits_in_window")
ALL_OPERATIONS = (
    WRITE_OPERATIONS + STATUS_OPERATIONS + TELEMETRY_OPERATIONS + BILLING_OPERATIONS
)


@dataclass(frozen=True)
class WarehouseInfo:
    """SHOW WAREHOUSES row."""

    name: str
    state: WarehouseState
    config: WarehouseConfig
    queue_length: int
    running_queries: int
    active_clusters: int


class CloudWarehouseClient:
    """Programmatic access to the simulated CDW, bound to one actor."""

    def __init__(self, account: Account, actor: str = "customer"):
        self.account = account
        self.actor = actor

    # ------------------------------------------------------------- metering
    def _charge(self, credits: float, kind: str, warehouse: str = "") -> None:
        if self.actor == "keebo":
            self.account.overhead.record(self.account.sim.now, credits, kind, warehouse)

    # ----------------------------------------------------------------- DDL
    def alter_warehouse(self, name: str, **changes) -> WarehouseConfig:
        """ALTER WAREHOUSE <name> SET ... — returns the resulting config."""
        wh = self.account.warehouse(name)
        self._charge(ACTUATOR_CALL_CREDITS, "alter_warehouse", name)
        return wh.alter(initiator=self.actor, **changes)

    def suspend_warehouse(self, name: str) -> None:
        wh = self.account.warehouse(name)
        self._charge(ACTUATOR_CALL_CREDITS, "suspend", name)
        wh.suspend(initiator=self.actor)

    def resume_warehouse(self, name: str) -> None:
        wh = self.account.warehouse(name)
        self._charge(ACTUATOR_CALL_CREDITS, "resume", name)
        wh.resume(initiator=self.actor)

    # --------------------------------------------------------------- status
    def show_warehouses(self) -> list[WarehouseInfo]:
        self._charge(MONITOR_POLL_CREDITS, "show_warehouses")
        rows = []
        for name in sorted(self.account.warehouses):
            wh = self.account.warehouses[name]
            rows.append(
                WarehouseInfo(
                    name=name,
                    state=wh.state,
                    config=wh.config,
                    queue_length=wh.queue_length,
                    running_queries=wh.running_query_count,
                    active_clusters=len(wh.active_clusters()),
                )
            )
        return rows

    def describe_warehouse(self, name: str) -> WarehouseInfo:
        wh = self.account.warehouse(name)
        self._charge(MONITOR_POLL_CREDITS, "describe_warehouse", name)
        return WarehouseInfo(
            name=name,
            state=wh.state,
            config=wh.config,
            queue_length=wh.queue_length,
            running_queries=wh.running_query_count,
            active_clusters=len(wh.active_clusters()),
        )

    # -------------------------------------------------------- telemetry views
    def query_history(
        self, warehouse: str, window: Window | None = None, include_overhead: bool = False
    ) -> list[QueryRecord]:
        self._charge(TELEMETRY_FETCH_CREDITS, "query_history", warehouse)
        return self.account.telemetry.query_history(warehouse, window, include_overhead)

    def metering_history(self, warehouse: str, window: Window) -> dict[int, float]:
        """Hourly credits (WAREHOUSE_METERING_HISTORY)."""
        self._charge(TELEMETRY_FETCH_CREDITS, "metering_history", warehouse)
        wh = self.account.warehouse(warehouse)
        return wh.meter.hourly_rollup(window, as_of=self.account.sim.now)

    def credits_in_window(self, warehouse: str, window: Window) -> float:
        self._charge(TELEMETRY_FETCH_CREDITS, "metering_history", warehouse)
        wh = self.account.warehouse(warehouse)
        return wh.meter.credits_in_window(window, as_of=self.account.sim.now)

    def warehouse_events(
        self, warehouse: str, window: Window | None = None, kind: str | None = None
    ) -> list[WarehouseEvent]:
        self._charge(TELEMETRY_FETCH_CREDITS, "warehouse_events", warehouse)
        return self.account.telemetry.warehouse_events(warehouse, window, kind)

    def current_config(self, name: str) -> WarehouseConfig:
        return self.account.warehouse(name).config

    @property
    def now(self) -> float:
        return self.account.sim.now
