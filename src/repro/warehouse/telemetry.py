"""Telemetry store: the metadata views KWO trains on (§6.1).

Three views mirror Snowflake's ACCOUNT_USAGE schema:

* **QUERY_HISTORY** — one :class:`~repro.warehouse.queries.QueryRecord` per
  completed query: hashed text/template, arrival/queue/latency timings,
  bytes scanned, size and cluster number at execution.
* **WAREHOUSE_EVENTS** — resize / suspend / resume / config-change events
  with their initiator (customer, system, or ``"keebo"``), which the cost
  model uses to recover the customer's *original* settings for what-if
  replay.
* **METERING** lives on the billing meter and is exposed through the client
  API (:mod:`repro.warehouse.api`).

Per the paper's C6 security requirement, the store holds no query text and
no customer data — only hashes and numeric metadata.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.common.errors import TelemetryError
from repro.common.simtime import Window
from repro.warehouse.config import WarehouseConfig
from repro.warehouse.queries import QueryRecord


@dataclass(frozen=True)
class WarehouseEvent:
    """A config or lifecycle change on a warehouse."""

    time: float
    warehouse: str
    kind: str  # "resize" | "suspend" | "resume" | "alter" | "create"
    initiator: str  # "customer" | "system" | "keebo"
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ConfigSnapshot:
    """The full knob configuration in force from ``time`` onward."""

    time: float
    config: WarehouseConfig
    initiator: str


class TelemetryStore:
    """Append-only telemetry for one simulated account."""

    def __init__(self):
        self._queries: dict[str, list[QueryRecord]] = {}
        self._query_arrivals: dict[str, list[float]] = {}  # parallel sort keys
        self._events: dict[str, list[WarehouseEvent]] = {}
        self._configs: dict[str, list[ConfigSnapshot]] = {}

    # ------------------------------------------------------------------ write
    def record_query(self, record: QueryRecord) -> None:
        """Record a completed query (insertion kept sorted by arrival)."""
        if not record.completed:
            raise TelemetryError("only completed queries enter QUERY_HISTORY")
        arrivals = self._query_arrivals.setdefault(record.warehouse, [])
        records = self._queries.setdefault(record.warehouse, [])
        idx = bisect.bisect_right(arrivals, record.arrival_time)
        arrivals.insert(idx, record.arrival_time)
        records.insert(idx, record)

    def record_event(self, event: WarehouseEvent) -> None:
        self._events.setdefault(event.warehouse, []).append(event)

    def record_config(self, warehouse: str, snapshot: ConfigSnapshot) -> None:
        history = self._configs.setdefault(warehouse, [])
        if history and snapshot.time < history[-1].time:
            raise TelemetryError("config snapshots must be recorded in time order")
        history.append(snapshot)

    # ------------------------------------------------------------------- read
    def warehouses(self) -> list[str]:
        names = set(self._queries) | set(self._events) | set(self._configs)
        return sorted(names)

    def query_history(
        self,
        warehouse: str,
        window: Window | None = None,
        include_overhead: bool = False,
    ) -> list[QueryRecord]:
        """Completed queries for ``warehouse``, by arrival time.

        ``include_overhead=False`` (the default) filters out KWO's own
        telemetry/actuator queries, matching how the paper separates customer
        usage from Keebo overhead (§7.3).
        """
        records = self._queries.get(warehouse, [])
        if window is not None:
            arrivals = self._query_arrivals.get(warehouse, [])
            lo = bisect.bisect_left(arrivals, window.start)
            hi = bisect.bisect_left(arrivals, window.end)
            records = records[lo:hi]
        if not include_overhead:
            records = [r for r in records if not r.is_overhead]
        # Integrity gate (docs/ROBUSTNESS.md): a corrupted view must surface
        # as a typed TelemetryError the consumers already handle (degraded
        # monitor snapshot, retrain retry) — never as silently wrong training
        # data.
        previous = None
        for r in records:
            if not r.completed or r.total_seconds < 0 or r.queued_seconds < 0:
                raise TelemetryError(
                    f"malformed QUERY_HISTORY row for {warehouse!r} "
                    f"at t={r.arrival_time:g}"
                )
            if previous is not None and r.arrival_time < previous:
                raise TelemetryError(
                    f"QUERY_HISTORY for {warehouse!r} out of order "
                    f"at t={r.arrival_time:g}"
                )
            previous = r.arrival_time
        return list(records)

    def warehouse_events(
        self, warehouse: str, window: Window | None = None, kind: str | None = None
    ) -> list[WarehouseEvent]:
        events = self._events.get(warehouse, [])
        # record_event appends without sorting (writers are concurrent in
        # spirit), so ordering is verified at fetch time instead.
        for prev, cur in zip(events, events[1:]):
            if cur.time < prev.time:
                raise TelemetryError(
                    f"WAREHOUSE_EVENTS for {warehouse!r} out of order "
                    f"at t={cur.time:g}"
                )
        if window is not None:
            events = [e for e in events if window.contains(e.time)]
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        return list(events)

    def config_at(self, warehouse: str, t: float) -> WarehouseConfig:
        """The configuration in force at time ``t``."""
        history = self._configs.get(warehouse)
        if not history:
            raise TelemetryError(f"no configuration history for {warehouse!r}")
        result = None
        for snap in history:
            if snap.time <= t:
                result = snap
            else:
                break
        if result is None:
            # Asked for a time before the warehouse existed: its first config.
            result = history[0]
        return result.config

    def original_config(self, warehouse: str, before: float | None = None) -> WarehouseConfig:
        """The customer's own configuration, ignoring Keebo-initiated changes.

        This is the "without-Keebo" baseline the query replay of §5.1 needs:
        the most recent snapshot whose initiator is not ``"keebo"`` (at or
        before ``before``, when given).
        """
        history = self._configs.get(warehouse)
        if not history:
            raise TelemetryError(f"no configuration history for {warehouse!r}")
        result = None
        for snap in history:
            if before is not None and snap.time > before:
                break
            if snap.initiator != "keebo":
                result = snap
        if result is None:
            result = history[0]
        return result.config

    def config_history(self, warehouse: str) -> list[ConfigSnapshot]:
        return list(self._configs.get(warehouse, []))
