"""Warehouse configuration — the knob surface KWO optimizes.

These are exactly the customer-visible Snowflake knobs the paper's §3
enumerates: size (T-shirt), auto-suspend interval, multi-cluster bounds and
the scale-out policy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.warehouse.types import ScalingPolicy, WarehouseSize

#: Snowflake caps multi-cluster warehouses at 10 clusters.
MAX_CLUSTER_COUNT = 10


@dataclass(frozen=True)
class WarehouseConfig:
    """Immutable snapshot of a warehouse's knob settings.

    Attributes
    ----------
    size:
        T-shirt size; determines billing rate, compute speed and cache size.
    auto_suspend_seconds:
        Idle time after which the warehouse suspends (0 disables
        auto-suspend entirely — the warehouse runs until suspended manually).
    min_clusters / max_clusters:
        Multi-cluster bounds.  ``min == max`` is Snowflake's "Maximized"
        mode: all clusters start with the warehouse.
    scaling_policy:
        STANDARD (scale out aggressively) or ECONOMY (keep clusters full).
    max_concurrency:
        Queries that can run concurrently on one cluster before queueing.
    """

    size: WarehouseSize = WarehouseSize.M
    auto_suspend_seconds: float = 600.0
    min_clusters: int = 1
    max_clusters: int = 1
    scaling_policy: ScalingPolicy = ScalingPolicy.STANDARD
    max_concurrency: int = 8

    def __post_init__(self):
        if self.auto_suspend_seconds < 0:
            raise ConfigurationError("auto_suspend_seconds must be >= 0")
        if not 1 <= self.min_clusters <= self.max_clusters:
            raise ConfigurationError(
                f"need 1 <= min_clusters <= max_clusters, got "
                f"{self.min_clusters}..{self.max_clusters}"
            )
        if self.max_clusters > MAX_CLUSTER_COUNT:
            raise ConfigurationError(f"max_clusters cannot exceed {MAX_CLUSTER_COUNT}")
        if self.max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be >= 1")

    @property
    def is_maximized(self) -> bool:
        return self.min_clusters == self.max_clusters

    def with_changes(self, **changes) -> "WarehouseConfig":
        """Return a modified copy (validation re-runs)."""
        return replace(self, **changes)

    def describe(self) -> str:
        return (
            f"{self.size.label}, suspend={self.auto_suspend_seconds:.0f}s, "
            f"clusters={self.min_clusters}..{self.max_clusters} "
            f"({self.scaling_policy.value})"
        )
