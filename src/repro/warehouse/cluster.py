"""A single compute cluster inside a virtual warehouse.

Clusters are the unit of scale-out (multi-cluster warehouses) and of
billing.  Each cluster has a fixed number of concurrency slots; queries
beyond the slots queue at the warehouse scheduler.  Each cluster owns its
local partition cache, which is dropped whenever the cluster stops (suspend)
or the warehouse is resized (servers are re-provisioned).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import WarehouseError
from repro.warehouse.cache import PartitionCache
from repro.warehouse.queries import QueryRecord
from repro.warehouse.types import WarehouseSize


class ClusterState(enum.Enum):
    STOPPED = "stopped"
    STARTING = "starting"
    RUNNING = "running"


@dataclass
class Cluster:
    """Runtime state of one cluster (billing lives in the warehouse meter)."""

    cluster_id: int
    size: WarehouseSize
    max_concurrency: int
    #: Snowflake-style CLUSTER_NUMBER: 1 for the warehouse's first concurrent
    #: cluster, 2 for the second, etc.  Unlike ``cluster_id`` (globally
    #: unique), ordinals are reused across restarts and are what telemetry
    #: exposes — the cost model reads peak ordinals as concurrency evidence.
    ordinal: int = 1
    state: ClusterState = ClusterState.STOPPED
    started_at: float = 0.0
    last_busy_at: float = 0.0
    cache: PartitionCache = field(init=False)
    running: dict[int, QueryRecord] = field(default_factory=dict)

    def __post_init__(self):
        if self.max_concurrency < 1:
            raise WarehouseError("max_concurrency must be >= 1")
        self.cache = PartitionCache(self.size.cache_capacity_bytes)

    @property
    def is_available(self) -> bool:
        """Can this cluster accept a query right now?"""
        return self.state == ClusterState.RUNNING and self.free_slots > 0

    @property
    def free_slots(self) -> int:
        return max(0, self.max_concurrency - len(self.running))

    @property
    def load(self) -> float:
        """Fraction of concurrency slots in use (0.0 when not running)."""
        if self.state != ClusterState.RUNNING:
            return 0.0
        return len(self.running) / self.max_concurrency

    def begin_query(self, record: QueryRecord, now: float) -> None:
        if self.state != ClusterState.RUNNING:
            raise WarehouseError(f"cluster {self.cluster_id} is not running")
        if self.free_slots <= 0:
            raise WarehouseError(f"cluster {self.cluster_id} has no free slots")
        self.running[record.query_id] = record
        self.last_busy_at = now

    def finish_query(self, query_id: int, now: float) -> QueryRecord:
        record = self.running.pop(query_id, None)
        if record is None:
            raise WarehouseError(f"query {query_id} is not running on cluster {self.cluster_id}")
        self.last_busy_at = now
        return record

    def apply_resize(self, size: WarehouseSize) -> None:
        """Re-provision at a new size: capacity changes, local cache is lost.

        Running queries keep executing at the duration computed when they
        started (Snowflake lets in-flight queries finish on the old servers).
        """
        self.size = size
        self.cache = PartitionCache(size.cache_capacity_bytes)

    def drop_cache(self) -> None:
        self.cache.clear()
