"""Durable control-plane state: checkpoints, a recovery journal, and
crash-consistent restore (docs/ROBUSTNESS.md §v2).

The subsystem is split by responsibility:

- :mod:`repro.durability.io` — atomic writes and journal framing.  The
  only module allowed to open durable artifacts for writing (lint rule
  R019 enforces the discipline everywhere else).
- :mod:`repro.durability.codec` — the :class:`StateCodec` protocol and
  byte-stable encoders for arrays, configs, and windows.
- :mod:`repro.durability.checkpoint` — the on-disk store (MANIFEST +
  snapshot + journal) with compaction, torn-tail repair, and the
  process-level fault-injection hooks.

What *state* goes into a checkpoint is owned by the components
themselves (``state_dict``/``load_state_dict``) and orchestrated by
``KeeboService.checkpoint``/``restore`` in :mod:`repro.core.optimizer`.
"""

from repro.durability.checkpoint import SCHEMA, CheckpointLoad, CheckpointStore
from repro.durability.codec import (
    StateCodec,
    decode_array,
    decode_config,
    decode_window,
    encode_array,
    encode_config,
    encode_window,
    state_checksum,
)
from repro.durability.io import (
    atomic_savez,
    atomic_write_bytes,
    atomic_write_text,
    read_journal,
)

__all__ = [
    "SCHEMA",
    "CheckpointLoad",
    "CheckpointStore",
    "StateCodec",
    "encode_array",
    "decode_array",
    "encode_config",
    "decode_config",
    "encode_window",
    "decode_window",
    "state_checksum",
    "atomic_write_text",
    "atomic_write_bytes",
    "atomic_savez",
    "read_journal",
]
